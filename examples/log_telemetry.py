"""Real-time log and telemetry analysis on one DPU.

Run:  python examples/log_telemetry.py

The paper's introduction motivates the DPU with "real time log and
telemetry analysis". This example chains three of the co-designed
kernels into that pipeline, all on the same simulated chip:

1. **ingest** — a stream of JSON log records is parsed by the
   jump-table FSM parser with DMS triple buffering (§5.5);
2. **distinct users** — HyperLogLog with the CRC32 instruction and
   ATE work stealing estimates session cardinality (§5.4);
3. **alert scan** — a FILT-accelerated filter + group-by summarizes
   error rates per service (§5.3).
"""

import numpy as np

from repro.apps.hll import dpu_hll
from repro.apps.jsonparse import dpu_parse_json
from repro.apps.sql import AggSpec, Between, Table, dpu_groupby
from repro.core import DPU
from repro.core.crc32 import murmur64


def make_log_stream(num_records=1500, seed=23):
    """Synthesize JSON telemetry records."""
    rng = np.random.default_rng(seed)
    services = ["auth", "billing", "search", "ingest", "frontend"]
    records = []
    for i in range(num_records):
        service = services[int(rng.integers(0, len(services)))]
        user = int(rng.zipf(1.5)) % 5000  # heavy-hitter users
        latency = int(rng.integers(1, 2000))
        status = 500 if rng.random() < 0.03 else 200
        records.append(
            '{"ts":%d,"service":"%s","user_id":%d,"latency_ms":%d,'
            '"status":%d}' % (1700000000 + i, service, user, latency, status)
        )
    return "".join(records).encode("ascii"), services


def main():
    dpu = DPU()
    raw, services = make_log_stream()
    print(f"ingesting {len(raw)} bytes of JSON telemetry "
          f"on {dpu.config.num_cores} dpCores...")

    # -- 1. parse ------------------------------------------------------
    address = dpu.store_array(np.frombuffer(raw, dtype=np.uint8))
    parsed = dpu_parse_json(dpu, address, raw, parser="table")
    records = parsed.value
    print(f"  parsed {len(records)} records at {parsed.gbps:.2f} GB/s "
          f"(jump-table FSM + DMS triple buffering)")

    # -- 2. distinct users via HLL --------------------------------------
    # Mix the structured ids through Murmur64 host-side first — the
    # CRC32-based sketch needs well-mixed keys (see tests/test_hll.py).
    user_ids = np.array(
        [murmur64(record["user_id"]) for record in records], dtype=np.uint64
    )
    users_addr = dpu.store_array(user_ids)
    hll = dpu_hll(dpu, users_addr, len(user_ids), hash_fn="crc32")
    true_distinct = len({record["user_id"] for record in records})
    print(f"  distinct users ~ {hll.value:.0f} "
          f"(true {true_distinct}, CRC32 HLL with ATE work stealing)")

    # -- 3. error-rate summary per service -------------------------------
    service_codes = {name: code for code, name in enumerate(services)}
    table = Table("events", {
        "service": np.array(
            [service_codes[record["service"]] for record in records],
            dtype=np.int8,
        ),
        "is_error": np.array(
            [1 if record["status"] >= 500 else 0 for record in records],
            dtype=np.int32,
        ),
        "latency": np.array(
            [record["latency_ms"] for record in records], dtype=np.int32
        ),
    })
    summary = dpu_groupby(
        dpu, table.to_dpu(dpu), "service",
        [AggSpec("count"), AggSpec("sum", "is_error"),
         AggSpec("max", "latency")],
        row_filter=Between("latency", 0, 10000),
    )
    print(f"\n  {'service':<10} {'events':>7} {'errors':>7} {'max ms':>7}")
    for name, code in service_codes.items():
        if code in summary.value:
            count, errors, worst = summary.value[code]
            print(f"  {name:<10} {int(count):>7} {int(errors):>7} "
                  f"{int(worst):>7}")

    total = parsed.seconds + hll.seconds + summary.seconds
    print(f"\nend-to-end simulated pipeline time: {total * 1e3:.2f} ms "
          f"at {dpu.config.tdp_watts:.0f} W provisioned")


if __name__ == "__main__":
    main()
