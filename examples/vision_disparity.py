"""Stereo disparity on the DPU (paper §5.6, Figure 17).

Run:  python examples/vision_disparity.py

Computes a dense disparity map from a synthetic stereo pair with both
parallelization strategies the paper compares, and renders the result
as ASCII art so you can see the depth bands the block matcher
recovered.
"""

import numpy as np

from repro.apps.disparity import (
    disparity_accuracy,
    dpu_disparity,
)
from repro.core import DPU
from repro.workloads.stereo import generate_stereo_pair


def render(disparity, max_shift, rows=12, cols=48):
    """Downsample the disparity map to an ASCII depth image."""
    shades = " .:-=+*#%@"
    r_step = max(1, disparity.shape[0] // rows)
    c_step = max(1, disparity.shape[1] // cols)
    lines = []
    for r in range(0, disparity.shape[0], r_step):
        line = []
        for c in range(0, disparity.shape[1], c_step):
            block = disparity[r : r + r_step, c : c + c_step]
            level = int(block.mean() / max(max_shift, 1) * (len(shades) - 1))
            line.append(shades[min(level, len(shades) - 1)])
        lines.append("".join(line))
    return "\n".join(lines)


def main():
    pair = generate_stereo_pair(rows=96, cols=128, max_shift=8, num_bands=4)
    dpu = DPU()
    addresses = (dpu.store_array(pair.left), dpu.store_array(pair.right))

    fine = dpu_disparity(dpu, pair, addresses, variant="fine")
    coarse = dpu_disparity(dpu, pair, addresses, variant="coarse")

    accuracy = disparity_accuracy(fine.value, pair.true_disparity)
    print(f"{pair.left.shape[0]}x{pair.left.shape[1]} stereo pair, "
          f"shifts 0..{pair.max_shift}")
    print(f"fine-grained   (row tiles + ATE barriers): "
          f"{fine.seconds * 1e3:7.3f} ms, "
          f"{fine.bytes_streamed} DDR bytes")
    print(f"coarse-grained (shift per core):           "
          f"{coarse.seconds * 1e3:7.3f} ms, "
          f"{coarse.bytes_streamed} DDR bytes")
    print(f"maps identical: {np.array_equal(fine.value, coarse.value)}; "
          f"accuracy vs ground truth: {accuracy:.3f}")
    print("\nrecovered depth bands (darker = nearer):")
    print(render(fine.value, pair.max_shift))


if __name__ == "__main__":
    main()
