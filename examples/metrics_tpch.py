"""Continuous sim-time metrics for TPC-H Q1: SLOs, chaos, a report.

Run:  PYTHONPATH=src python examples/metrics_tpch.py [metrics.jsonl]

Two acts, one metrics pipeline (``repro.obs.metrics``):

1. **Single DPU under an SLO.** Runs the paper's Q1 plan (a filtered
   six-aggregate GROUP BY over lineitem) with the hub sampling every
   10k cycles and a p99 latency SLO on the groupby operator. The rule
   is set tight enough that the run breaches it, so the alert path —
   digest, threshold, structured alert — shows up in the output.

2. **Cluster chaos.** Re-runs Q1 sharded over a 2-DPU rack and
   chaos-kills the coordinator (DPU 0) mid-job. The hub annotates the
   kill and the recovery (declare-dead, leader election), a
   fabric-idle rule fires during the post-kill lease window, and the
   job still completes. The exported JSONL renders the full health
   report: timelines, fabric heatmap, alert log, annotations.

Exit status is non-zero if either export fails JSONL schema
validation, which is how CI would use this script.
"""

import sys

from repro.apps.sql import Table, load_tpch_on_dpu, run_query
from repro.baseline import XeonModel
from repro.cluster import Cluster, cluster_tpch_q1
from repro.core import DPU
from repro.faults import ChaosSpec, FaultPlan
from repro.obs import validate_metrics_jsonl
from repro.obs.metrics import render_report, _load_records
from repro.workloads.tpch import generate_tpch


def shard_table(table, num_shards, name="li"):
    """Row-range shards of one table, as in the scale-out benchmarks."""
    total = len(next(iter(table.values())))
    bounds = [round(total * i / num_shards) for i in range(num_shards + 1)]
    return [
        Table(
            f"{name}{i}",
            {n: c[bounds[i]:bounds[i + 1]] for n, c in table.items()},
        )
        for i in range(num_shards)
    ]


def single_dpu_act(data):
    """Q1 on one DPU with a (deliberately breached) p99 operator SLO."""
    dpu = DPU()
    hub = dpu.enable_metrics(cadence=10_000.0)
    hub.add_rule("p99(sql.groupby.cycles) > 1e4 for 0", name="q1-p99")
    tables = load_tpch_on_dpu(dpu, data)
    dpu_result, xeon_result = run_query("Q1", dpu, tables, data, XeonModel())
    # The operator digest fills as host-side wrappers return; one
    # final sample evaluates the SLO against the completed run.
    hub.flush()
    print(f"Q1 on DPU: {dpu_result.seconds * 1e6:.0f} us simulated "
          f"({xeon_result.seconds * 1e6:.0f} us on the Xeon model)")
    groupby = hub.digests["sql.groupby.cycles"]
    print(f"sql.groupby p99: {groupby.p99:.0f} cycles over "
          f"{groupby.count:.0f} calls")
    for alert in hub.alerts:
        print(f"alert: t={alert.t:.0f} {alert.state.upper()} {alert.rule} "
              f"value={alert.value:.0f} threshold={alert.threshold:.0f}")
    return hub


def cluster_chaos_act(data):
    """Q1 sharded over 2 DPUs, coordinator chaos-killed mid-job."""
    shards = shard_table(data.tables["lineitem"], 2)
    reference = cluster_tpch_q1(
        Cluster(1), shard_table(data.tables["lineitem"], 1)
    ).value

    plan = FaultPlan.none().with_chaos(
        ChaosSpec("dpu.dead", (0,), at_cycle=15_000.0)
    )
    cluster = Cluster(2, fault_plan=plan)
    hub = cluster.enable_metrics(cadence=5_000.0)
    # Heartbeats repaint the fabric every 50k cycles; a 20k-cycle
    # sustain window detects the post-kill idle lease in between.
    hub.add_rule("rate(fabric.bytes_sent) < 1.0 for 20000",
                 name="fabric-idle")
    result = cluster_tpch_q1(cluster, shards)
    matches = "byte-equal" if result.value == reference else "MISMATCH"
    print(f"cluster Q1 with coordinator kill: {matches}, "
          f"leader {cluster.leader}, "
          f"{len(hub.alerts)} alert transitions, "
          f"{len(hub.annotations)} annotations")
    return hub


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "metrics.jsonl"

    data = generate_tpch(scale=0.01)
    print("== act 1: single-DPU Q1 under a p99 SLO ==")
    dpu_hub = single_dpu_act(data)

    print("\n== act 2: cluster Q1 with a coordinator kill ==")
    cluster_hub = cluster_chaos_act(data)

    status = 0
    for label, hub, path in (
        ("dpu", dpu_hub, out_path + ".dpu"),
        ("cluster", cluster_hub, out_path),
    ):
        count = hub.export_jsonl(path)
        problems = validate_metrics_jsonl(path)
        if problems:
            status = 1
            print(f"\n{label} metrics FAILED validation "
                  f"({len(problems)} problems):", file=sys.stderr)
            for problem in problems[:20]:
                print(f"  - {problem}", file=sys.stderr)
        else:
            print(f"\nwrote {path}: {count} records (valid)")

    print()
    print(render_report(_load_records(out_path)))
    if status == 0:
        print(f"\nmetrics OK: python -m repro.obs.metrics report {out_path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
