"""Quickstart: the paper's Listing 1, then a FILT-accelerated scan.

Run:  python examples/quickstart.py

Walks through the two core DPU idioms:
1. the three-descriptor DMS chain that streams megabytes through a
   32 KB DMEM (two auto-incrementing data descriptors + one loop
   descriptor, double-buffered with events), and
2. a 32-core SQL filter using the dpCore's SETFL/SETFH/FILT
   instructions at ~1.6 cycles/tuple.
"""

import numpy as np

from repro import DPU
from repro.apps.sql import Between, Table, dpu_filter
from repro.dms import ddr_to_dmem, loop


def listing1_stream(dpu, megabytes=4):
    """Stream `megabytes` of DRAM through one core's DMEM."""
    total_bytes = megabytes * 1024 * 1024
    data = np.arange(total_bytes // 4, dtype=np.uint32)
    source = dpu.store_array(data)
    iterations = total_bytes // 2048  # pairs of 1 KB buffers

    def kernel(ctx):
        # Exactly Listing 1: desc0 and desc1 fill alternate DMEM
        # buffers with auto-incrementing source addresses; the loop
        # descriptor re-runs them `iterations - 1` more times.
        ctx.push(ddr_to_dmem(256, 4, source, 0, notify_event=0,
                             src_addr_inc=True))
        ctx.push(ddr_to_dmem(256, 4, source, 1024, notify_event=1,
                             src_addr_inc=True))
        ctx.push(loop(2, iterations - 1))
        total = 0
        buffer_index = 0
        for _ in range(2 * iterations):
            yield from ctx.wfe(buffer_index)  # dms_wfe(events[i])
            values = ctx.dmem.view(buffer_index * 1024, 1024, np.uint32)
            total += int(values.sum())  # consume_rows()
            ctx.clear_event(buffer_index)
            buffer_index = 1 - buffer_index  # toggle index
        return total

    result = dpu.launch(kernel, cores=[0])
    assert result.values[0] == int(data.sum()), "lost a buffer!"
    print(f"Listing 1: streamed {megabytes} MB through 2 KB of DMEM with "
          f"3 descriptors")
    print(f"  single-core DMS bandwidth: {result.gbps(total_bytes):.2f} GB/s")
    print(f"  checksum verified against host: OK")


def filt_scan(dpu):
    """A SQL filter offloaded to all 32 dpCores."""
    rng = np.random.default_rng(0)
    n = 1024 * 1024
    table = Table("readings", {
        "sensor_value": rng.integers(0, 10000, n).astype(np.int32),
    })
    predicate = Between("sensor_value", 9500, 9900)
    result = dpu_filter(dpu, table.to_dpu(dpu), predicate)
    expected = predicate.mask(table.columns)
    assert np.array_equal(result.value, expected)
    print(f"\nFILT scan: {n} rows filtered on 32 dpCores")
    print(f"  selected: {result.detail['selected']} rows")
    print(f"  bandwidth: {result.gbps:.2f} GB/s "
          f"(paper: 9.6 GB/s at 32 cores)")
    print(f"  simulated time: {result.seconds * 1e6:.0f} us")


def main():
    dpu = DPU()
    print(f"DPU: {dpu.config.num_cores} dpCores @ "
          f"{dpu.config.clock_hz / 1e6:.0f} MHz, "
          f"{dpu.config.ddr_peak_gbps:.1f} GB/s DDR3, "
          f"{dpu.config.tdp_watts:.0f} W provisioned\n")
    listing1_stream(dpu)
    filt_scan(dpu)


if __name__ == "__main__":
    main()
