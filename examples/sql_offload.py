"""SQL offload: TPC-H queries on the DPU engine (paper §5.3).

Run:  python examples/sql_offload.py [scale]

Mirrors the paper's setup: a commercial in-memory columnar database
offloads query plans to the DPU. Generates TPC-H data, loads it into
DPU DRAM column by column, runs Q1/Q3/Q5/Q6/Q12/Q14 through the
engine's physical operators (FILT scans, broadcast-DMEM joins,
hardware-partitioned aggregation, top-k), and prints the Figure 16
comparison against the DBMS executor cost model.
"""

import math
import sys

from repro.apps.sql import (
    TPCH_QUERIES,
    efficiency_gain,
    load_tpch_on_dpu,
    run_query,
)
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.tpch import generate_tpch


def main(scale=0.01):
    print(f"Generating TPC-H at scale factor {scale}...")
    data = generate_tpch(scale=scale)
    print(f"  lineitem: {data.num_rows('lineitem')} rows, "
          f"total {data.total_bytes() / 1e6:.1f} MB columnar")

    dpu = DPU()
    tables = load_tpch_on_dpu(dpu, data)
    model = XeonModel()

    print(f"\n{'query':<6} {'DPU time':>12} {'x86 DBMS':>12} "
          f"{'perf/W gain':>12}")
    gains = []
    for name in TPCH_QUERIES:
        dpu_result, xeon_result = run_query(name, dpu, tables, data, model)
        gain = efficiency_gain(dpu_result, xeon_result)
        gains.append(gain)
        print(f"{name:<6} {dpu_result.seconds * 1e3:9.3f} ms "
              f"{xeon_result.seconds * 1e3:9.3f} ms {gain:10.1f}x")
    geomean = math.exp(sum(math.log(g) for g in gains) / len(gains))
    print(f"\ngeometric mean gain: {geomean:.1f}x  (paper: ~15x)")

    # Show one query's actual answer to make the offload tangible.
    q3_result, _ = run_query("Q3", dpu, tables, data, model)
    print("\nQ3 top shipping-priority orders "
          "(orderkey, revenue cents*100, orderdate, shippriority):")
    for row in q3_result.value[:5]:
        print(f"  {row}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
