"""Emit a Perfetto/Chrome trace of TPC-H Q1 on the simulated DPU.

Run:  PYTHONPATH=src python examples/trace_tpch.py [trace.json]

Enables the sim-time tracer, runs the paper's Q1 plan (a filtered
six-aggregate GROUP BY over lineitem), then a short epilogue kernel
exercising ATE RPCs and a DMS gather so every track type appears:

* ``sql`` — operator spans (``sql.query.Q1`` > ``sql.groupby``),
* ``core<N>`` — compute / wfe / stream.tile spans per dpCore,
* ``dmad<N>`` / ``dmac`` — descriptor execution with ring occupancy,
* ``ate<N>`` — RPC execution slices, flow arrows back to the caller,
* ``ddr`` — channel backlog counter track,
* ``sched`` — kernel launches, jobs, engine processes.

The resulting JSON opens directly in https://ui.perfetto.dev or
chrome://tracing. Timestamps are dpCore cycles (shown as "us").
Exit status is non-zero if the emitted trace fails schema validation,
which is how CI uses this script.
"""

import sys

import numpy as np

from repro.apps.sql import load_tpch_on_dpu, run_query
from repro.baseline import XeonModel
from repro.core import DPU
from repro.dms import Descriptor, DescriptorType
from repro.obs import validate_chrome_trace
from repro.workloads.tpch import generate_tpch

GATHER_ROWS = 2048


def ate_gather_epilogue(dpu):
    """Q1's reduction uses mailboxes, not ATE RPCs — run a small
    kernel with remote atomics, a software RPC and a DMS gather so the
    ate/flow/gather machinery shows up in the same trace."""
    dpu.ate.install_handler(0, "nop", lambda args: None)
    data = dpu.store_array(np.arange(GATHER_ROWS, dtype=np.uint64))
    bv_bytes = GATHER_ROWS // 8
    bitvector = np.full(bv_bytes, 0xF7, dtype=np.uint8)
    counter_addr = dpu.address_map.dmem_address(0, 512)

    def kernel(ctx):
        yield from ctx.fetch_add(0, counter_addr, 1)
        yield from ctx.software_rpc(0, "nop")
        if ctx.core_id != 1:
            # First-silicon RTL bug: only one gather in flight (§3.4).
            return
        ctx.dmem.write(16384, bitvector)
        ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                            rows=bv_bytes // 8, col_width=8,
                            dmem_addr=16384, internal_mem="bv"))
        ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMEM,
                            rows=GATHER_ROWS, col_width=8,
                            ddr_addr=data, dmem_addr=0,
                            gather_src=True, notify_event=0))
        yield from ctx.wfe(0)
        ctx.clear_event(0)

    dpu.launch(kernel, cores=[1, 9])


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "trace.json"

    data = generate_tpch(scale=0.01)
    dpu = DPU()
    tracer = dpu.enable_tracing(capacity=1 << 20)
    tables = load_tpch_on_dpu(dpu, data)
    model = XeonModel()

    dpu_result, xeon_result = run_query("Q1", dpu, tables, data, model)
    ate_gather_epilogue(dpu)

    count = tracer.export(out_path)
    print(f"wrote {out_path}: {count} events "
          f"({tracer.dropped} dropped), {dpu.engine.now:.0f} cycles simulated")
    print(f"Q1 on DPU: {dpu_result.seconds * 1e6:.0f} us simulated "
          f"({xeon_result.seconds * 1e6:.0f} us on the Xeon model)")
    print()
    print(dpu.perf_report().render())

    problems = validate_chrome_trace(tracer.to_chrome())
    if problems:
        print(f"\ntrace FAILED validation ({len(problems)} problems):",
              file=sys.stderr)
        for problem in problems[:20]:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"\ntrace OK: open {out_path} in https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    sys.exit(main())
