"""Rack-scale DPU analytics (paper §1, §2, §4).

Run:  python examples/rack_scaleout.py

The paper's larger project packs 1440 DPUs in a 42U rack — >10 TB/s
of aggregate memory bandwidth and >10 TB of DRAM inside a 20 kW
budget — and scaled applications across 500+ DPU clusters through
each DPU's A9 Infiniband endpoint.

This example does both halves:

1. simulates a small cluster faithfully — every DPU's dpCores, DMS
   and A9 uplink are event-simulated — running a distributed
   distinct-count (HyperLogLog) and a distributed filtered count;
2. prints the rack-scale provisioning arithmetic that motivated the
   whole design.
"""

import numpy as np

from repro.cluster import (
    PAPER_RACK,
    Cluster,
    cluster_filter_count,
    cluster_hll,
)


def main():
    rng = np.random.default_rng(31)
    num_dpus = 6

    print(f"simulating a {num_dpus}-DPU cluster "
          f"({num_dpus * 32} dpCores total)...\n")

    # -- distributed distinct count ------------------------------------
    pool = rng.integers(0, 2**63, 60000, dtype=np.uint64)
    shards = [rng.choice(pool, 40000) for _ in range(num_dpus)]
    truth = len(np.unique(np.concatenate(shards)))
    cluster = Cluster(num_dpus=num_dpus)
    hll = cluster_hll(cluster, shards)
    print("distributed HyperLogLog (sketch locally, merge at DPU 0):")
    print(f"  estimate {hll.value:.0f} vs true {truth} "
          f"({abs(hll.value - truth) / truth * 100:.1f}% error)")
    print(f"  network traffic: {hll.network_bytes} bytes "
          f"({num_dpus} register files) — the data never moved")

    # -- distributed filtered count -------------------------------------
    shards2 = [rng.integers(0, 10000, 200000).astype(np.int32)
               for _ in range(num_dpus)]
    cluster2 = Cluster(num_dpus=num_dpus)
    count = cluster_filter_count(cluster2, shards2, 9000, 9499)
    expected = sum(int(((s >= 9000) & (s <= 9499)).sum()) for s in shards2)
    print(f"\ndistributed FILT count over "
          f"{sum(len(s) for s in shards2)} rows:")
    print(f"  result {count.value} (host check: {expected}), "
          f"{count.seconds * 1e3:.2f} ms simulated")

    # -- the rack arithmetic ----------------------------------------------
    rack = PAPER_RACK
    print(f"\nthe paper's rack ({rack.num_dpus} DPUs):")
    print(f"  aggregate memory bandwidth: "
          f"{rack.aggregate_bandwidth_tbps:.1f} TB/s   (paper: >10)")
    print(f"  memory capacity:            "
          f"{rack.total_capacity_tb:.1f} TB     (paper: >10)")
    print(f"  provisioned power:          {rack.total_watts / 1000:.1f} kW"
          f"    (budget: {rack.rack_budget_watts / 1000:.0f} kW)")
    print(f"  10 TB scan at measured DMS efficiency: "
          f"{rack.seconds_to_scan(10.0):.2f} s  (design goal: sub-second"
          f" per §1)")


if __name__ == "__main__":
    main()
