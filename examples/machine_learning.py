"""Machine learning on the DPU: SVM training + similarity search.

Run:  python examples/machine_learning.py

Covers the paper's two ML-flavoured workloads (§5.1, §5.2):

* train a classifier with the parallel SMO algorithm in Q10.22 fixed
  point — per-core sample slices in DMEM, maximal-violating-pair
  reduction over ATE remote stores, delta broadcast over the mailbox;
* answer text similarity queries against a tf-idf index with the
  dynamic-tile SpMM kernel.
"""

import numpy as np

from repro.apps.simsearch import build_tiled_index, dpu_simsearch
from repro.apps.svm import SmoTrainer, dpu_svm_train
from repro.core import DPU
from repro.workloads.corpus import generate_corpus
from repro.workloads.higgs import generate_higgs_like


def train_svm(dpu):
    dataset = generate_higgs_like(num_samples=512, seed=7)
    print(f"training SVM on {dataset.num_samples} samples x "
          f"{dataset.num_features} features (Q10.22 fixed point)...")
    result = dpu_svm_train(dpu, dataset, tolerance=1e-2)
    model = result.value
    accuracy = model.accuracy(dataset.features, dataset.labels)
    print(f"  converged in {model.iterations} iterations "
          f"({result.seconds * 1e3:.1f} ms simulated)")
    print(f"  training accuracy: {accuracy:.3f}")

    # Compare against the float reference, as the paper does.
    reference = SmoTrainer(
        dataset.features, dataset.labels, tolerance=1e-2, arithmetic="float"
    ).train()
    ref_accuracy = reference.accuracy(dataset.features, dataset.labels)
    print(f"  float reference: {reference.iterations} iterations, "
          f"accuracy {ref_accuracy:.3f} "
          f"(fixed point costs no accuracy)")


def similarity_search(dpu):
    workload = generate_corpus(
        num_docs=3000, vocab=15000, num_queries=32, query_terms=6, seed=11
    )
    tiled = build_tiled_index(workload.index, tile_docs=256)
    print(f"\nsimilarity search: {tiled.num_docs} documents, "
          f"{len(tiled.postings)} postings, "
          f"{tiled.num_tiles} document tiles")
    address = dpu.store_array(tiled.postings)
    result = dpu_simsearch(dpu, workload, tiled, address, variant="dynamic")
    hits = sum(
        1 for query, top in result.value.items()
        if top and top[0][1] == workload.query_truth[query]
    )
    print(f"  effective bandwidth: {result.detail['effective_gbps']:.2f} GB/s "
          f"(dynamic tiles; paper: 5.24)")
    print(f"  top-1 found the source document for {hits}/{len(workload.query_truth)} queries")
    query = 0
    print(f"  query 0 top matches (score, doc): "
          f"{[(round(s, 3), d) for s, d in result.value[query][:3]]}")


def main():
    dpu = DPU()
    train_svm(dpu)
    similarity_search(dpu)


if __name__ == "__main__":
    main()
