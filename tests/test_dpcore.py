"""Tests for the dpCore interpreter: semantics and timing rules."""

import numpy as np
import pytest

from repro.core import DpCoreInterpreter, assemble
from repro.core.crc32 import crc32_u32, crc32_u64
from repro.core.dpcore import MISPREDICT_PENALTY, mul_latency
from repro.memory.dmem import Scratchpad


def run(source, dmem_bytes=None, max_cycles=10**7):
    interpreter = DpCoreInterpreter(assemble(source), Scratchpad(0))
    if dmem_bytes is not None:
        interpreter.dmem.write(0, dmem_bytes)
    result = interpreter.run(max_cycles)
    return interpreter, result


class TestSemantics:
    def test_arithmetic(self):
        itp, _ = run("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r1, r2\n"
                     "mul r5, r1, r2\nhalt\n")
        assert itp.regs[3] == 12 and itp.regs[4] == 2 and itp.regs[5] == 35

    def test_r0_hardwired_zero(self):
        itp, _ = run("li r0, 99\nadd r1, r0, r0\nhalt\n")
        assert itp.read_reg(0) == 0 and itp.regs[1] == 0

    def test_signed_unsigned_compares(self):
        itp, _ = run(
            "li r1, -1\nli r2, 1\nslt r3, r1, r2\nsltu r4, r1, r2\nhalt\n"
        )
        assert itp.regs[3] == 1  # -1 < 1 signed
        assert itp.regs[4] == 0  # 0xFFFF.. > 1 unsigned

    def test_shifts(self):
        itp, _ = run(
            "li r1, -8\nsrai r2, r1, 1\nsrli r3, r1, 60\nslli r4, r1, 1\nhalt\n"
        )
        assert itp.regs[2] == (-4) & (2**64 - 1)
        assert itp.regs[3] == 15
        assert itp.regs[4] == (-16) & (2**64 - 1)

    def test_div_rem_signs_and_zero(self):
        itp, _ = run(
            "li r1, -7\nli r2, 2\ndiv r3, r1, r2\nrem r4, r1, r2\n"
            "div r5, r1, r0\nhalt\n"
        )
        assert itp.regs[3] == (-3) & (2**64 - 1)  # trunc toward zero
        assert itp.regs[4] == (-1) & (2**64 - 1)
        assert itp.regs[5] == 2**64 - 1  # div by zero

    def test_loads_stores_widths_and_sign_extension(self):
        itp, _ = run(
            """
            li r1, 0x80
            sb r1, 0(r0)
            lb r2, 0(r0)
            lbu r3, 0(r0)
            li r4, 0x8000
            sh r4, 8(r0)
            lh r5, 8(r0)
            lhu r6, 8(r0)
            halt
            """
        )
        assert itp.regs[2] == (-128) & (2**64 - 1)
        assert itp.regs[3] == 0x80
        assert itp.regs[5] == (-32768) & (2**64 - 1)
        assert itp.regs[6] == 0x8000

    def test_crc32_instructions_match_reference(self):
        itp, _ = run(
            "li r1, 0x12345678\nli r2, 0\ncrc32w r2, r1\n"
            "li r3, 0\ncrc32d r3, r1\nhalt\n"
        )
        assert itp.regs[2] == crc32_u32(0x12345678)
        assert itp.regs[3] == crc32_u64(0x12345678)

    def test_popc(self):
        itp, _ = run("li r1, 0xF0F0\npopc r2, r1\nhalt\n")
        assert itp.regs[2] == 8

    def test_filt_accumulates_bitvector(self):
        itp, _ = run(
            """
            li r1, 10
            setfl r1
            li r1, 20
            setfh r1
            li r2, 15
            filt r3, r2
            li r2, 25
            filt r4, r2
            rdbv r5
            halt
            """
        )
        assert itp.regs[3] == 1 and itp.regs[4] == 0
        # Two FILTs: bits shift in from the top: 01 in the top bits.
        assert itp.regs[5] == 1 << 62

    def test_bvld_and_bvext(self):
        dmem = np.zeros(8, dtype=np.uint8)
        dmem_words = np.array([0b10100], dtype=np.uint64).view(np.uint8)
        itp, _ = run(
            "bvld 0(r0)\nbvext r1\nbvext r2\nbvext r3\nhalt\n",
            dmem_bytes=dmem_words,
        )
        assert itp.regs[1] == 2
        assert itp.regs[2] == 4
        assert itp.regs[3] == 2**64 - 1  # empty sentinel

    def test_jal_jr_roundtrip(self):
        itp, _ = run(
            """
            jal r31, func
            li r2, 1
            halt
            func:
            li r1, 9
            jr r31
            """
        )
        assert itp.regs[1] == 9 and itp.regs[2] == 1


class TestTiming:
    def test_dual_issue_pairs_alu_with_lsu(self):
        # Independent ALU+LSU pairs retire together.
        _, serial = run("li r1, 1\nli r2, 2\nli r3, 3\nli r4, 4\nhalt\n")
        _, paired = run(
            "li r1, 1\nld r2, 0(r0)\nli r3, 3\nld r4, 8(r0)\nhalt\n"
        )
        assert paired.dual_issues == 2
        assert paired.cycles < serial.cycles + 2  # pairs saved cycles

    def test_raw_hazard_blocks_pairing(self):
        _, result = run("ld r1, 0(r0)\naddi r2, r1, 1\nhalt\n")
        assert result.dual_issues == 0

    def test_backward_branch_predicted_taken(self):
        # A counted loop mispredicts only on exit.
        _, result = run(
            "li r1, 8\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n"
        )
        assert result.branches == 8
        assert result.mispredicts == 1  # the final not-taken

    def test_forward_branch_predicted_not_taken(self):
        _, taken = run("li r1, 1\nbeq r1, r1, skip\nnop\nskip: halt\n")
        _, not_taken = run("li r1, 1\nbeq r1, r0, skip\nnop\nskip: halt\n")
        assert taken.mispredicts == 1
        assert not_taken.mispredicts == 0

    def test_mispredict_penalty_charged(self):
        _, result = run("li r1, 1\nbeq r1, r1, skip\nnop\nskip: halt\n")
        # li + beq + halt = 3 issue slots + penalty.
        assert result.cycles == 3 + MISPREDICT_PENALTY

    def test_mul_latency_operand_dependent(self):
        assert mul_latency(3, 5) < mul_latency(2**40, 2**40)
        assert mul_latency(0xFF51AFD7ED558CCD, 0xFF51AFD7ED558CCD) >= 10

    def test_mul_stalls_pipeline(self):
        _, small = run("li r1, 3\nli r2, 5\nmul r3, r1, r2\nhalt\n")
        _, large = run(
            "li r1, 0xFF51AFD7ED558CCD\nli r2, 0xC4CEB9FE1A85EC53\n"
            "mul r3, r1, r2\nhalt\n"
        )
        assert large.cycles > small.cycles

    def test_ntz_idiom_is_4_cycles(self):
        # popc((x & -x) - 1): the paper's §5.4 claim.
        _, result = run(
            "sub r2, r0, r1\nand r2, r1, r2\naddi r2, r2, -1\n"
            "popc r3, r2\nhalt\n"
        )
        # 4 instructions, all serially dependent ALU ops + halt.
        assert result.cycles - 1 == 4

    def test_ipc_reporting(self):
        _, result = run("li r1, 1\nld r2, 0(r0)\nhalt\n")
        assert 0 < result.ipc <= 2.0

    def test_max_cycles_stops_infinite_loop(self):
        _, result = run("loop: j loop\n", max_cycles=100)
        assert not result.halted
        assert result.cycles >= 100
