"""Tests for the software-coherence checker and serialized RPC."""

import pytest

from repro.core import DPU
from repro.runtime import (
    CoherenceChecker,
    dpu_serialized,
    install_serialized,
)


class TestChecker:
    def test_clean_single_core_traffic_ok(self):
        checker = CoherenceChecker()
        checker.write(0, 0x100, 8)
        checker.read(0, 0x100, 8)
        assert checker.ok()

    def test_stale_read_detected(self):
        checker = CoherenceChecker()
        checker.read(1, 0x200, 8)  # core 1 caches the line
        checker.write(0, 0x200, 8)
        checker.read(1, 0x200, 8)  # stale: no flush/invalidate between
        assert not checker.ok()
        assert any(v.kind == "stale-read" for v in checker.violations)

    def test_flush_invalidate_protocol_is_clean(self):
        checker = CoherenceChecker()
        checker.write(0, 0x300, 8)
        checker.flush(0, 0x300, 8)
        checker.invalidate(1, 0x300, 8)
        checker.read(1, 0x300, 8)
        assert checker.ok(), checker.report()

    def test_missing_flush_still_stale(self):
        checker = CoherenceChecker()
        checker.read(1, 0x340, 8)
        checker.write(0, 0x340, 8)
        checker.invalidate(1, 0x340, 8)  # reader invalidated, writer
        checker.read(1, 0x340, 8)        # never flushed: still stale
        assert any(v.kind == "stale-read" for v in checker.violations)

    def test_lost_write_detected(self):
        checker = CoherenceChecker()
        checker.write(0, 0x400, 8)
        checker.write(1, 0x400, 8)  # both hold the line dirty
        assert any(v.kind == "lost-write" for v in checker.violations)

    def test_false_sharing_detected(self):
        checker = CoherenceChecker()
        checker.read(1, 0x440, 8)   # core 1 caches bytes 0x440..
        checker.write(0, 0x468, 8)  # core 0 writes same 64 B line
        assert any(v.kind == "false-sharing" for v in checker.violations)

    def test_line_aligned_variables_avoid_false_sharing(self):
        # The paper's compiler change: align globals to line boundaries.
        checker = CoherenceChecker()
        checker.read(1, 0x480, 8)
        checker.write(0, 0x4C0, 8)  # next line
        assert checker.ok()

    def test_redundant_flush_counted(self):
        checker = CoherenceChecker()
        checker.read(0, 0x500, 8)
        checker.flush(0, 0x500, 8)  # clean line: redundant
        assert checker.redundant_flushes == 1
        assert checker.useful_flushes == 0

    def test_useful_flush_counted(self):
        checker = CoherenceChecker()
        checker.write(0, 0x540, 8)
        checker.flush(0, 0x540, 8)
        assert checker.useful_flushes == 1

    def test_multi_line_range_ops(self):
        checker = CoherenceChecker()
        checker.write(0, 0x600, 256)  # 4 lines dirty
        checker.flush(0, 0x600, 256)
        assert checker.useful_flushes == 4

    def test_report_format(self):
        checker = CoherenceChecker()
        checker.write(0, 0, 8)
        checker.write(1, 0, 8)
        report = checker.report()
        assert "lost-write" in report
        assert "violation" in report


class TestSerializedRpc:
    def test_protocol_produces_no_violations(self):
        """The paper's 5-step dpu_serialized dance keeps the checker
        clean even with cached traffic on both sides."""
        dpu = DPU()
        checker = CoherenceChecker()
        args_region = dpu.alloc(64)
        result_region = dpu.alloc(64)

        def manipulator(args):
            checker.read(5, args_region, 64)  # owner reads the args
            checker.write(5, result_region, 64)  # owner writes results
            return result_region

        install_serialized(
            dpu, 5, "mutate",
            manipulator,
            args_visitor=lambda args: [(args_region, 64)],
            return_visitor=lambda result: [(result_region, 64)],
            checker=checker,
        )

        def kernel(ctx):
            checker.write(0, args_region, 64)  # caller prepares args
            result = yield from dpu_serialized(
                ctx, 5, "mutate", args_region,
                args_visitor=lambda args: [(args_region, 64)],
                return_visitor=lambda result: [(result_region, 64)],
                checker=checker,
            )
            checker.read(0, result_region, 64)  # caller reads results
            return result

        value = dpu.launch(kernel, cores=[0]).values[0]
        assert value == result_region
        assert checker.ok(), checker.report()

    def test_skipping_protocol_is_caught(self):
        """Without the flushes, the same exchange trips the checker —
        the tool exists precisely to find this."""
        dpu = DPU()
        checker = CoherenceChecker()
        region = dpu.alloc(64)

        def manipulator(args):
            checker.read(5, region, 64)
            return None

        dpu.ate.install_handler(5, "raw", manipulator)

        def kernel(ctx):
            checker.write(0, region, 64)  # cached write, never flushed
            yield from ctx.software_rpc(5, "raw", region)

        dpu.launch(kernel, cores=[0])
        assert not checker.ok()

    def test_serialized_rpc_charges_cache_maintenance(self):
        dpu = DPU()
        region = dpu.alloc(4096)
        install_serialized(
            dpu, 3, "touch", lambda args: None,
            args_visitor=lambda args: [(region, 4096)],
        )

        def bare(ctx):
            yield from ctx.software_rpc(3, "touch", None)

        def with_protocol(ctx):
            yield from dpu_serialized(
                ctx, 3, "touch", None,
                args_visitor=lambda args: [(region, 4096)],
            )

        dpu_a = DPU()
        install_serialized(dpu_a, 3, "touch", lambda args: None)
        bare_cycles = dpu_a.launch(bare, cores=[0]).cycles
        protocol_cycles = dpu.launch(with_protocol, cores=[0]).cycles
        assert protocol_cycles > bare_cycles
