"""Tests for the JSON parsers and chunked parallel parsing."""

import json

import numpy as np
import pytest

from repro.apps.jsonparse import (
    JsonError,
    byte_class_mix,
    dpu_parse_json,
    measure_branchy_dispatch,
    measure_table_dispatch,
    parse_branchy,
    parse_table,
    split_chunks,
    xeon_parse_json,
)
from repro.apps.sql import efficiency_gain
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.jsondata import generate_lineitem_json


def truth_of(data: bytes):
    return json.loads("[" + data.decode().replace("}{", "},{") + "]")


@pytest.fixture(scope="module")
def payload():
    return generate_lineitem_json(300, seed=5)


class TestParsers:
    def test_branchy_matches_json_loads(self, payload):
        assert parse_branchy(payload) == truth_of(payload)

    def test_table_matches_json_loads(self, payload):
        assert parse_table(payload) == truth_of(payload)

    def test_escapes_handled(self):
        data = b'{"k":"a\\"b\\\\c","n":1}'
        assert parse_branchy(data) == [{"k": 'a"b\\c', "n": 1}]
        assert parse_table(data) == [{"k": 'a"b\\c', "n": 1}]

    def test_numbers_int_and_float(self):
        data = b'{"i":42,"f":3.5,"neg":-7,"exp":1e2}'
        for parser in (parse_branchy, parse_table):
            record = parser(data)[0]
            assert record["i"] == 42 and isinstance(record["i"], int)
            assert record["f"] == 3.5
            assert record["neg"] == -7
            assert record["exp"] == 100.0

    def test_literals(self):
        data = b'{"t":true,"f":false,"n":null}'
        for parser in (parse_branchy, parse_table):
            assert parser(data) == [{"t": True, "f": False, "n": None}]

    def test_branchy_handles_nesting(self):
        data = b'{"a":[1,2,{"b":"x"}],"c":{"d":4}}'
        assert parse_branchy(data) == [json.loads(data)]

    def test_malformed_rejected(self):
        for bad in (b'{"k":}', b'{"k"1}', b'{"k":"v"', b'x{"k":1}'):
            with pytest.raises((JsonError, IndexError, KeyError)):
                parse_table(bad)

    def test_empty_input(self):
        assert parse_branchy(b"") == []
        assert parse_table(b"") == []


class TestChunking:
    def test_chunks_cover_all_records(self, payload):
        for num_chunks in (1, 2, 7, 32):
            ranges = split_chunks(payload, num_chunks)
            records = []
            for start, end in ranges:
                if start < end:
                    records.extend(parse_table(payload[start:end]))
            assert records == truth_of(payload), num_chunks

    def test_chunks_do_not_duplicate(self, payload):
        ranges = split_chunks(payload, 8)
        total = sum(
            len(parse_table(payload[s:e])) for s, e in ranges if s < e
        )
        assert total == len(truth_of(payload))

    def test_more_chunks_than_records(self):
        data = generate_lineitem_json(3)
        ranges = split_chunks(data, 32)
        total = sum(
            len(parse_table(data[s:e])) for s, e in ranges if s < e
        )
        assert total == 3

    def test_byte_class_mix_sums(self, payload):
        mix = byte_class_mix(payload)
        assert (
            mix["digits"] + mix["alpha"] + mix["structural"] + mix["other"]
            == mix["total"] == len(payload)
        )


class TestDispatchCosts:
    def test_branchy_near_paper_13_2(self):
        assert 12.0 <= measure_branchy_dispatch(1024) <= 14.5

    def test_table_cheaper_per_structural_byte_overall(self):
        # The jump table wins end-to-end: its dispatch has no
        # mispredicted compare chain and no cached-path stalls.
        assert measure_table_dispatch(1024) < measure_branchy_dispatch(1024) + 20


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def loaded(self):
        data = generate_lineitem_json(800, seed=6)
        dpu = DPU()
        address = dpu.store_array(np.frombuffer(data, dtype=np.uint8))
        return dpu, address, data

    def test_table_parser_records_correct(self, loaded):
        dpu, address, data = loaded
        result = dpu_parse_json(dpu, address, data, parser="table")
        assert result.value == truth_of(data)

    def test_branchy_parser_records_correct(self, loaded):
        dpu, address, data = loaded
        result = dpu_parse_json(dpu, address, data, parser="branchy")
        assert result.value == truth_of(data)

    def test_throughput_shapes(self, loaded):
        """§5.5: branchy ~645 MB/s; jump-table ~1.73 GB/s; x86 5.2;
        perf/watt gain ~8x."""
        dpu, address, data = loaded
        table = dpu_parse_json(dpu, address, data, parser="table")
        branchy = dpu_parse_json(dpu, address, data, parser="branchy")
        xeon = xeon_parse_json(XeonModel(), data)
        assert 1.3 < table.gbps < 2.2  # paper: 1.73 GB/s
        assert 0.45 < branchy.gbps < 0.85  # paper: 0.645 GB/s
        assert xeon.gbps == pytest.approx(5.2, rel=0.01)
        gain = efficiency_gain(table, xeon)
        assert 6.0 < gain < 10.5  # paper: ~8x
