"""Golden snapshots of compiled TPC-H plans (tests/goldens/plans/).

The planner's observable decisions — needed columns, fused filter
ranges, semijoin broadcasts, group-key lowering, offload and exchange
choices — are frozen as JSON. Any planner change that shifts a plan
shows up as a reviewable golden diff; regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/test_plan_goldens.py --update-goldens
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.apps.sql import compile_query, load_query, tpch_catalog
from repro.workloads.tpch import generate_tpch

GOLDEN_DIR = Path(__file__).parent / "goldens" / "plans"
QUERIES = ["q1", "q3", "q5", "q6", "q10", "q12", "q14"]


@pytest.fixture(scope="module")
def catalog():
    return tpch_catalog(generate_tpch(scale=0.002, seed=11))


def _jsonable(value):
    """Plans hold numpy scalars and floats; normalise for stable JSON."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return round(float(value), 9)
    return value


def _observed_plan(catalog, name):
    compiled = compile_query(load_query(name), catalog, name)
    return _jsonable(compiled.plan)


@pytest.mark.parametrize("name", QUERIES)
def test_plan_golden(catalog, name, request):
    observed = _observed_plan(catalog, name)
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(observed, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"no golden plan for {name!r}; generate it with "
            f"--update-goldens and commit {path}"
        )
    golden = json.loads(path.read_text())
    if golden != observed:
        lines = [f"compiled plan for {name!r} drifted from its golden:"]
        for key in sorted(set(golden) | set(observed)):
            if golden.get(key) != observed.get(key):
                lines.append(f"  {key}: golden {golden.get(key)!r}"
                             f" != observed {observed.get(key)!r}")
        pytest.fail("\n".join(lines), pytrace=False)


def test_plans_are_deterministic(catalog):
    first = _observed_plan(catalog, "q5")
    second = _observed_plan(catalog, "q5")
    assert first == second
