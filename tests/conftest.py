"""Shared pytest configuration for the tier-1 suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="Regenerate tests/goldens/*.json equivalence snapshots "
        "instead of asserting against them.",
    )
