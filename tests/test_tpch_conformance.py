"""TPC-H conformance suite for the SQL-text frontend (docs/SQL.md).

Every covered query compiles from the ``.sql`` text shipped in
``src/repro/apps/sql/queries/`` and runs three ways — Xeon reference,
single DPU, and a 2/4/8-DPU cluster — asserting byte-equal result
rows. Where a hand-built plan exists (Q1), the compiled plan must
reproduce its cycle count exactly, and every cost-based decision the
planner records (DPU-offload vs Xeon, all-to-all vs pre-aggregate
exchange) must be consistent with the models it claims to have
consulted.
"""

import numpy as np
import pytest

from repro.apps.sql import (
    GroupKey,
    Table,
    compile_query,
    dpu_groupby,
    load_query,
    load_tpch_on_dpu,
    tpch_catalog,
)
from repro.apps.sql.tpch_queries import q1_plan
from repro.baseline import XeonModel
from repro.baseline.dbms import DbmsCostModel
from repro.cluster import Cluster, ShuffleRackModel, cluster_compiled_query
from repro.core import DPU
from repro.faults import ChaosSpec, FaultPlan
from repro.workloads.tpch import generate_tpch

QUERIES = ["q1", "q3", "q5", "q6", "q10", "q12", "q14"]


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale=0.002, seed=11)


@pytest.fixture(scope="module")
def compiled_queries(data):
    catalog = tpch_catalog(data)
    return {
        name: compile_query(load_query(name), catalog, name)
        for name in QUERIES
    }


def _shard_fact(compiled, data, num_shards):
    fact = data.tables[compiled.fact]
    columns = {name: fact[name] for name in compiled.needed_columns}
    total = len(next(iter(columns.values())))
    bounds = [total * i // num_shards for i in range(num_shards + 1)]
    return [
        Table(
            f"{compiled.fact}_shard{i}",
            {n: c[bounds[i]:bounds[i + 1]] for n, c in columns.items()},
        )
        for i in range(num_shards)
    ]


class TestThreeWayByteEquality:
    """SQL text -> identical rows on Xeon, one DPU, and a cluster."""

    @pytest.mark.parametrize("name", QUERIES)
    def test_xeon_matches_dpu(self, compiled_queries, data, name):
        compiled = compiled_queries[name]
        dpu_rows = compiled.run_dpu(DPU(), data).value
        xeon_rows = compiled.run_xeon(XeonModel(), data).value
        assert len(dpu_rows) > 0
        assert dpu_rows == xeon_rows

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    @pytest.mark.parametrize("name", QUERIES)
    def test_cluster_matches_dpu(self, compiled_queries, data, name,
                                 num_dpus):
        compiled = compiled_queries[name]
        reference = compiled.run_dpu(DPU(), data).value
        cluster = Cluster(num_dpus)
        result = cluster_compiled_query(
            cluster, compiled, _shard_fact(compiled, data, num_dpus))
        assert result.value == reference

    @pytest.mark.parametrize("name", ["q3", "q12"])
    def test_forced_all_to_all_matches(self, compiled_queries, data, name):
        # Single-column group keys may legally repartition by the key
        # even when the planner priced pre-aggregate as cheaper.
        compiled = compiled_queries[name]
        assert compiled.key_column is not None
        reference = compiled.run_dpu(DPU(), data).value
        result = cluster_compiled_query(
            Cluster(4), compiled, _shard_fact(compiled, data, 4),
            strategy="all_to_all")
        assert result.value == reference

    def test_computed_key_rejects_all_to_all(self, compiled_queries, data):
        compiled = compiled_queries["q1"]
        assert compiled.key_column is None
        with pytest.raises(ValueError, match="pre_aggregate"):
            cluster_compiled_query(
                Cluster(2), compiled, _shard_fact(compiled, data, 2),
                strategy="all_to_all")


class TestHandPlanParity:
    """The compiled plan must not cost a cycle more than the hand plan."""

    def test_q1_cycles_match_hand_plan(self, compiled_queries, data):
        compiled = compiled_queries["q1"]
        key, aggs, row_filter = q1_plan()
        dpu = DPU()
        hand = dpu_groupby(
            dpu, load_tpch_on_dpu(dpu, data)["lineitem"],
            key, aggs, row_filter=row_filter)
        result = compiled.run_dpu(DPU(), data)
        assert result.cycles == hand.cycles

    def test_q1_lowering_matches_hand_plan_shape(self, compiled_queries):
        compiled = compiled_queries["q1"]
        key, aggs, _row_filter = q1_plan()
        assert isinstance(compiled.key, GroupKey)
        assert list(compiled.key.columns) == list(key.columns)
        assert compiled.key.cycles_per_row == key.cycles_per_row
        assert len(compiled.aggs) == len(aggs)
        assert compiled.plan["filter_terms"] == 1

    def test_q1_output_matches_hand_groups(self, compiled_queries, data):
        # The compiled finish() decodes the mixed-radix key back into
        # the same (returnflag, linestatus) cells the hand key packs.
        compiled = compiled_queries["q1"]
        key, aggs, row_filter = q1_plan()
        dpu = DPU()
        hand = dpu_groupby(
            dpu, load_tpch_on_dpu(dpu, data)["lineitem"],
            key, aggs, row_filter=row_filter)
        rows = compiled.run_dpu(DPU(), data).value
        assert len(rows) == len(hand.value)
        for row in rows:
            packed = int(row[0]) * 2 + int(row[1])
            assert packed in hand.value


class TestCostModelConsistency:
    """Recorded plan choices must follow from the recorded model inputs."""

    @pytest.mark.parametrize("name", QUERIES)
    def test_offload_choice_is_argmin(self, compiled_queries, name):
        offload = compiled_queries[name].plan["offload"]
        expected = ("dpu" if offload["dpu_seconds"] < offload["xeon_seconds"]
                    else "xeon")
        assert offload["choice"] == expected

    @pytest.mark.parametrize("name", QUERIES)
    def test_offload_xeon_seconds_from_cost_model(self, compiled_queries,
                                                  name):
        compiled = compiled_queries[name]
        offload = compiled.plan["offload"]
        shape = compiled.scan_shape(offload["rows"], offload["nbytes"])
        expected = DbmsCostModel(XeonModel()).plan_seconds([shape])
        assert offload["xeon_seconds"] == pytest.approx(expected)

    @pytest.mark.parametrize("name", QUERIES)
    def test_exchange_cycles_from_shuffle_model(self, compiled_queries,
                                                name):
        compiled = compiled_queries[name]
        exchange = compiled.plan["exchange"]
        offload = compiled.plan["offload"]
        fanout = exchange["fanout"]
        pre = ShuffleRackModel(
            total_rows=offload["rows"],
            record_bytes=exchange["row_bytes"],
            result_bytes=exchange["result_bytes_pre"],
            all_to_all=False,
        ).job_cycles(fanout)
        all_to_all = ShuffleRackModel(
            total_rows=offload["rows"],
            record_bytes=exchange["row_bytes"],
            result_bytes=exchange["result_bytes_all"],
            all_to_all=True,
        ).job_cycles(fanout)
        assert exchange["pre_aggregate_cycles"] == pytest.approx(pre)
        assert exchange["all_to_all_cycles"] == pytest.approx(all_to_all)
        if compiled.key_column is None:
            assert exchange["choice"] == "pre_aggregate"
        elif all_to_all < pre:
            assert exchange["choice"] == "all_to_all"
        else:
            assert exchange["choice"] == "pre_aggregate"

    @pytest.mark.parametrize("name", QUERIES)
    def test_run_auto_follows_offload_choice(self, compiled_queries, data,
                                             name):
        compiled = compiled_queries[name]
        result = compiled.run_auto(DPU(), XeonModel(), data)
        picked_dpu = hasattr(result, "cycles")
        assert picked_dpu == (compiled.plan["offload"]["choice"] == "dpu")


class TestCompiledChaosRecovery:
    """Compiled cluster jobs inherit RecoveryManager semantics: kill
    the coordinator mid-query and still finish byte-equal (PR-6/7
    chaos harness, see tests/test_coordinator_failover.py)."""

    @pytest.mark.parametrize("name", ["q1", "q3"])
    def test_coordinator_kill_byte_equal(self, compiled_queries, data,
                                         name):
        compiled = compiled_queries[name]
        reference = compiled.run_dpu(DPU(), data).value
        plan = FaultPlan.none().with_chaos(
            ChaosSpec("dpu.dead", (0,), at_cycle=15_000.0))
        cluster = Cluster(4, fault_plan=plan)
        result = cluster_compiled_query(
            cluster, compiled, _shard_fact(compiled, data, 4))
        assert result.value == reference
        assert cluster.recovery.stats.leader_changes == 1
        assert 0 in cluster.recovery.declared_dead
        assert cluster.leader == 1

    def test_coordinator_kill_all_to_all(self, compiled_queries, data):
        # The repartitioning path restarts the epoch-tagged exchange
        # on survivors too.
        compiled = compiled_queries["q12"]
        reference = compiled.run_dpu(DPU(), data).value
        plan = FaultPlan.none().with_chaos(
            ChaosSpec("dpu.dead", (0,), at_cycle=15_000.0))
        cluster = Cluster(4, fault_plan=plan)
        result = cluster_compiled_query(
            cluster, compiled, _shard_fact(compiled, data, 4),
            strategy="all_to_all")
        assert result.value == reference
        assert cluster.recovery.stats.leader_changes == 1
