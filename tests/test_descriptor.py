"""Tests for DMS descriptors: Table 2 bit layout, Table 1 rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dms import (
    DESCRIPTOR_CAPABILITIES,
    DESCRIPTOR_SIZE,
    Descriptor,
    DescriptorError,
    DescriptorType,
    PartitionMode,
    PartitionSpec,
    ddr_to_dmem,
    dmem_to_ddr,
    loop,
)


class TestTable2Encoding:
    def test_descriptor_is_16_bytes(self):
        descriptor = ddr_to_dmem(256, 4, 0x1000, 0x200, notify_event=3)
        assert len(descriptor.encode()) == DESCRIPTOR_SIZE == 16

    def test_roundtrip_all_fields(self):
        descriptor = Descriptor(
            dtype=DescriptorType.DDR_TO_DMEM,
            rows=4096,
            col_width=8,
            ddr_addr=0x3_1234_5670,
            dmem_addr=0x1F00,
            gather_src=True,
            scatter_dst=False,
            rle=True,
            src_addr_inc=True,
            dst_addr_inc=False,
            wait_event=5,
            notify_event=17,
            link_addr=0xBEEF,
        )
        decoded = Descriptor.decode(descriptor.encode())
        for field in (
            "dtype", "rows", "col_width", "ddr_addr", "dmem_addr",
            "gather_src", "scatter_dst", "rle", "src_addr_inc",
            "dst_addr_inc", "wait_event", "notify_event", "link_addr",
        ):
            assert getattr(decoded, field) == getattr(descriptor, field), field

    def test_type_field_in_top_nibble_of_word0(self):
        raw = ddr_to_dmem(1, 4, 0, 0).encode()
        word0 = int.from_bytes(raw[0:4], "little")
        assert (word0 >> 28) == DescriptorType.DDR_TO_DMEM.value

    def test_rows_and_dmem_addr_in_word2(self):
        raw = ddr_to_dmem(0x1234, 4, 0, 0x5678).encode()
        word2 = int.from_bytes(raw[8:12], "little")
        assert (word2 >> 16) == 0x1234
        assert (word2 & 0xFFFF) == 0x5678

    def test_ddr_addr_split_36_bits(self):
        address = 0xA_BCDE_F01C  # 36-bit with low nibble 0xC
        raw = ddr_to_dmem(1, 4, address, 0).encode()
        word1 = int.from_bytes(raw[4:8], "little")
        word3 = int.from_bytes(raw[12:16], "little")
        assert (word1 & 0xF) == 0xC
        assert word3 == address >> 4

    def test_none_events_encode_as_slot_31(self):
        raw = ddr_to_dmem(1, 4, 0, 0).encode()
        word0 = int.from_bytes(raw[0:4], "little")
        assert (word0 >> 21) & 0x1F == 31  # notify
        assert (word0 >> 16) & 0x1F == 31  # wait
        assert Descriptor.decode(raw).notify_event is None

    @given(
        rows=st.integers(1, 0xFFFF),
        width=st.sampled_from([1, 2, 4, 8]),
        ddr=st.integers(0, (1 << 36) - 1),
        dmem=st.integers(0, 0xFFFF),
        notify=st.one_of(st.none(), st.integers(0, 30)),
        wait=st.one_of(st.none(), st.integers(0, 30)),
        flags=st.tuples(*([st.booleans()] * 4)),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, rows, width, ddr, dmem, notify, wait,
                                flags):
        gather, scatter, src_inc, dst_inc = flags
        descriptor = Descriptor(
            dtype=DescriptorType.DDR_TO_DMEM,
            rows=rows, col_width=width, ddr_addr=ddr, dmem_addr=dmem,
            gather_src=gather, scatter_dst=scatter,
            src_addr_inc=src_inc, dst_addr_inc=dst_inc,
            wait_event=wait, notify_event=notify,
        )
        assert Descriptor.decode(descriptor.encode()) == descriptor

    def test_only_ddr_dmem_forms_have_table2_encoding(self):
        descriptor = Descriptor(
            dtype=DescriptorType.DDR_TO_DMS, rows=4, col_width=4
        )
        with pytest.raises(DescriptorError):
            descriptor.encode()


class TestTable1Capabilities:
    def test_all_seven_data_directions_present(self):
        data_types = [t for t in DescriptorType if t.is_data]
        assert len(data_types) == 7
        assert set(DESCRIPTOR_CAPABILITIES) == set(data_types)

    def test_gather_only_on_ddr_dmem(self):
        with pytest.raises(DescriptorError):
            Descriptor(dtype=DescriptorType.DDR_TO_DMS, rows=1, col_width=4,
                       gather_src=True)

    def test_partition_only_on_dms_paths(self):
        spec = PartitionSpec(mode=PartitionMode.HASH)
        with pytest.raises(DescriptorError):
            Descriptor(dtype=DescriptorType.DDR_TO_DMEM, rows=1, col_width=4,
                       partition=spec)

    def test_key_column_only_on_ddr_to_dms(self):
        with pytest.raises(DescriptorError):
            Descriptor(dtype=DescriptorType.DDR_TO_DMEM, rows=1, col_width=4,
                       is_key_column=True)
        Descriptor(dtype=DescriptorType.DDR_TO_DMS, rows=1, col_width=4,
                   is_key_column=True)


class TestValidation:
    def test_bad_column_width(self):
        with pytest.raises(DescriptorError):
            ddr_to_dmem(1, 3, 0, 0)

    def test_rows_field_is_16_bits(self):
        with pytest.raises(DescriptorError):
            ddr_to_dmem(1 << 16, 4, 0, 0)

    def test_ddr_addr_is_36_bits(self):
        with pytest.raises(DescriptorError):
            ddr_to_dmem(1, 4, 1 << 36, 0)

    def test_event_range(self):
        with pytest.raises(DescriptorError):
            ddr_to_dmem(1, 4, 0, 0, notify_event=31)

    def test_loop_validation(self):
        loop(2, 100)
        with pytest.raises(DescriptorError):
            loop(0, 100)
        with pytest.raises(DescriptorError):
            loop(1, -1)

    def test_internal_mem_names(self):
        with pytest.raises(DescriptorError):
            Descriptor(dtype=DescriptorType.DMEM_TO_DMS, rows=1, col_width=4,
                       internal_mem="nonsense")


class TestPartitionSpec:
    def test_hash_fanout(self):
        assert PartitionSpec(mode=PartitionMode.HASH, radix_bits=5).fanout == 32

    def test_range_bounds_must_ascend(self):
        with pytest.raises(DescriptorError):
            PartitionSpec(mode=PartitionMode.RANGE, bounds=(5, 3))

    def test_range_bounds_limit_32(self):
        PartitionSpec(mode=PartitionMode.RANGE, bounds=tuple(range(32)))
        with pytest.raises(DescriptorError):
            PartitionSpec(mode=PartitionMode.RANGE, bounds=tuple(range(33)))

    def test_radix_bits_bounds(self):
        with pytest.raises(DescriptorError):
            PartitionSpec(mode=PartitionMode.RADIX, radix_bits=0)

    def test_dmem_to_ddr_constructor(self):
        descriptor = dmem_to_ddr(8, 8, 0x100, 0x40, notify_event=2)
        assert descriptor.dtype is DescriptorType.DMEM_TO_DDR
        assert descriptor.transfer_bytes == 64
