"""Tests for the DMS hardware partitioning pipeline."""

import numpy as np
import pytest

from repro.core import DPU
from repro.core.crc32 import crc32_column
from repro.dms import (
    Descriptor,
    DescriptorError,
    DescriptorType,
    PartitionLayout,
    PartitionMode,
    PartitionSpec,
    compute_cids,
)

COUNT_OFFSET = 31 * 1024


def run_partition(dpu, key, payload_cols, spec, chunk=512, capacity=24 * 1024):
    """Drive the partition pipeline from core 0 over the whole input."""
    rows = len(key)
    key_addr = dpu.store_array(key)
    payload_addrs = [dpu.store_array(col) for col in payload_cols]
    layout = PartitionLayout(
        target_cores=tuple(range(32)), dmem_base=0, capacity=capacity,
        count_offset=COUNT_OFFSET,
    )

    def driver(ctx):
        ctx.push(Descriptor(dtype=DescriptorType.HASH_CONFIG, partition=spec,
                            partition_layout=layout))
        for start in range(0, rows, chunk):
            count = min(chunk, rows - start)
            ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMS, rows=count,
                                col_width=key.dtype.itemsize,
                                ddr_addr=key_addr + start * key.dtype.itemsize,
                                is_key_column=True))
            for col, addr in zip(payload_cols, payload_addrs):
                width = col.dtype.itemsize
                ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMS,
                                    rows=count, col_width=width,
                                    ddr_addr=addr + start * width))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                partition=spec))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMEM,
                                partition=spec))
        while not ctx.dmad.idle():
            yield from ctx.compute(100)

    return dpu.launch(driver, cores=[0]), layout


def read_partition(dpu, core, record_width):
    count = int(dpu.scratchpads[core].view(COUNT_OFFSET, 4, np.uint32)[0])
    raw = dpu.scratchpads[core].view(0, count * record_width, np.uint8)
    return count, raw.copy()


class TestHashPartition:
    def test_counts_match_cid_computation(self):
        dpu = DPU()
        rng = np.random.default_rng(0)
        key = rng.integers(0, 2**32, 4096, dtype=np.uint32)
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        run_partition(dpu, key, [], spec)
        expected = np.bincount(compute_cids(key, spec), minlength=32)
        got = [read_partition(dpu, core, 4)[0] for core in range(32)]
        assert list(expected) == got

    def test_records_land_on_hash_owner(self):
        dpu = DPU()
        rng = np.random.default_rng(1)
        key = rng.integers(0, 2**32, 2048, dtype=np.uint32)
        value = np.arange(2048, dtype=np.uint32)
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        run_partition(dpu, key, [value], spec)
        seen = 0
        for core in range(32):
            count, raw = read_partition(dpu, core, 8)
            records = raw.reshape(count, 8)
            keys = np.ascontiguousarray(records[:, :4]).view(np.uint32).ravel()
            values = np.ascontiguousarray(records[:, 4:]).view(np.uint32).ravel()
            assert np.all(compute_cids(keys, spec) == core)
            # Payload stayed glued to its key.
            original_index = {int(k): int(v) for k, v in zip(key, value)}
            for k, v in zip(keys.tolist(), values.tolist()):
                assert key[v] == k or original_index[k] is not None
            seen += count
        assert seen == 2048

    def test_hash_uses_crc32(self):
        key = np.array([1, 2, 3, 4], dtype=np.uint32)
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        assert list(compute_cids(key, spec)) == list(
            crc32_column(key) & np.uint32(31)
        )


class TestRadixRangePartition:
    def test_radix_uses_low_key_bits(self):
        key = np.arange(128, dtype=np.uint32)
        spec = PartitionSpec(mode=PartitionMode.RADIX, radix_bits=5)
        assert list(compute_cids(key, spec)) == [k % 32 for k in range(128)]

    def test_range_respects_bounds(self):
        key = np.array([-5, 0, 10, 99, 100, 5000], dtype=np.int32)
        spec = PartitionSpec(
            mode=PartitionMode.RANGE, bounds=(0, 100, 1000, 10000),
            radix_bits=5,
        )
        cids = list(compute_cids(key, spec))
        assert cids == [0, 0, 1, 1, 1, 3]

    def test_range_clamps_overflow_to_last(self):
        key = np.array([10**6], dtype=np.int64)
        spec = PartitionSpec(mode=PartitionMode.RANGE, bounds=(10, 20),
                             radix_bits=5)
        assert compute_cids(key, spec)[0] == 1

    def test_radix_partition_end_to_end(self):
        dpu = DPU()
        key = np.arange(1024, dtype=np.uint32)
        spec = PartitionSpec(mode=PartitionMode.RADIX, radix_bits=5)
        run_partition(dpu, key, [], spec)
        for core in range(32):
            count, raw = read_partition(dpu, core, 4)
            keys = raw.view(np.uint32)
            assert np.all(keys % 32 == core)
            assert count == 32


class TestPipelineMechanics:
    def test_partition_bandwidth_near_stream_rate(self):
        """Figure 13: partitioning sustains ~9 GB/s (vs HARP's 6)."""
        dpu = DPU()
        rng = np.random.default_rng(2)
        rows = 32 * 1024
        key = rng.integers(0, 2**32, rows, dtype=np.uint32)
        cols = [np.arange(rows, dtype=np.uint32) for _ in range(3)]
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        result, _layout = run_partition(dpu, key, cols, spec)
        gbps = result.gbps(rows * 16)
        assert gbps > 6.0  # beats HARP
        assert gbps < 12.8

    def test_chunk_larger_than_cmem_rejected(self):
        dpu = DPU()
        key = np.zeros(4096, dtype=np.uint32)  # 16 KB > 8 KB CMEM bank
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        with pytest.raises(DescriptorError, match="CMEM"):
            run_partition(dpu, key, [], spec, chunk=4096)

    def test_output_overflow_rejected(self):
        dpu = DPU()
        key = np.zeros(8192, dtype=np.uint32)  # all keys -> one core
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        with pytest.raises(DescriptorError, match="overflow"):
            run_partition(dpu, key, [], spec, chunk=512, capacity=1024)

    def test_hash_without_chunk_rejected(self):
        dpu = DPU()

        def driver(ctx):
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                partition=PartitionSpec(
                                    mode=PartitionMode.HASH)))
            yield from ctx.compute(100)

        with pytest.raises(DescriptorError, match="no loaded chunk"):
            dpu.launch(driver, cores=[0])

    def test_crc_drain_to_ddr(self):
        dpu = DPU()
        key = np.arange(256, dtype=np.uint32)
        key_addr = dpu.store_array(key)
        drain_addr = dpu.alloc(1024)
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        layout = PartitionLayout(target_cores=tuple(range(32)), dmem_base=0,
                                 capacity=8192, count_offset=COUNT_OFFSET)

        def driver(ctx):
            ctx.push(Descriptor(dtype=DescriptorType.HASH_CONFIG,
                                partition=spec, partition_layout=layout))
            ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMS, rows=256,
                                col_width=4, ddr_addr=key_addr,
                                is_key_column=True))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                partition=spec))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DDR,
                                ddr_addr=drain_addr, internal_mem="crc",
                                notify_event=3))
            yield from ctx.wfe(3)

        dpu.launch(driver, cores=[0])
        drained = dpu.load_array(drain_addr, 256, np.uint32)
        assert np.array_equal(drained, crc32_column(key))
