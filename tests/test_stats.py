"""Tests for the statistics recorder used by every hardware model."""

import pytest

from repro.sim import SampleSeries, StatsRecorder


class TestSampleSeries:
    def test_summary_statistics(self):
        series = SampleSeries("lat")
        for value in (10, 20, 30, 40):
            series.add(value)
        assert series.count == 4
        assert series.total == 100
        assert series.mean == 25
        assert series.minimum == 10
        assert series.maximum == 40
        assert series.stddev == pytest.approx(12.909944, rel=1e-6)

    def test_percentile_nearest_rank(self):
        series = SampleSeries("lat")
        for value in range(1, 101):
            series.add(value)
        assert series.percentile(0.5) == 50
        assert series.percentile(0.99) == 99
        assert series.percentile(1.0) == 100
        assert series.percentile(0.0) == 1

    def test_percentile_bounds_checked(self):
        series = SampleSeries("lat")
        series.add(1)
        with pytest.raises(ValueError):
            series.percentile(1.5)

    def test_empty_series_degenerate(self):
        series = SampleSeries("empty")
        assert series.mean == 0.0
        assert series.stddev == 0.0
        assert series.percentile(0.5) == 0.0


class TestStatsRecorder:
    def test_counters_accumulate(self):
        stats = StatsRecorder()
        stats.count("bytes", 100)
        stats.count("bytes", 50)
        stats.count("messages")
        assert stats.counter("bytes") == 150
        assert stats.counter("messages") == 1
        assert stats.counter("missing") == 0

    def test_series_created_on_demand(self):
        stats = StatsRecorder()
        stats.sample("rtt", 30)
        stats.sample("rtt", 50)
        assert stats.get_series("rtt").mean == 40

    def test_merge_folds_counters_and_series(self):
        a = StatsRecorder()
        b = StatsRecorder()
        a.count("x", 1)
        b.count("x", 2)
        a.sample("s", 10)
        b.sample("s", 20)
        a.merge(b)
        assert a.counter("x") == 3
        assert a.get_series("s").count == 2

    def test_snapshot_flattens(self):
        stats = StatsRecorder()
        stats.count("n", 5)
        stats.sample("s", 7)
        snap = stats.snapshot()
        assert snap["n"] == 5
        assert snap["s.mean"] == 7
        assert snap["s.count"] == 1

    def test_dpu_populates_stats(self):
        """The SoC feeds its recorder during real runs."""
        import numpy as np
        from repro.core import DPU
        from repro.dms import ddr_to_dmem

        dpu = DPU()
        address = dpu.store_array(np.zeros(256, dtype=np.uint32))

        def kernel(ctx):
            ctx.push(ddr_to_dmem(256, 4, address, 0, notify_event=0))
            yield from ctx.wfe(0)
            yield from ctx.fetch_add(
                1, dpu.address_map.dmem_address(1, 0), 1
            )

        dpu.launch(kernel, cores=[0])
        assert dpu.stats.counter("dms.bytes_read") == 1024
        assert dpu.stats.counter("ate.messages") == 1
        assert dpu.ddr_channel.utilization() > 0
