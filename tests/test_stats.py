"""Tests for the statistics recorder used by every hardware model."""

import pytest

from repro.sim import SampleSeries, StatsRecorder


class TestSampleSeries:
    def test_summary_statistics(self):
        series = SampleSeries("lat")
        for value in (10, 20, 30, 40):
            series.add(value)
        assert series.count == 4
        assert series.total == 100
        assert series.mean == 25
        assert series.minimum == 10
        assert series.maximum == 40
        assert series.stddev == pytest.approx(12.909944, rel=1e-6)

    def test_percentile_nearest_rank(self):
        series = SampleSeries("lat")
        for value in range(1, 101):
            series.add(value)
        assert series.percentile(0.5) == 50
        assert series.percentile(0.99) == 99
        assert series.percentile(1.0) == 100
        assert series.percentile(0.0) == 1

    def test_percentile_bounds_checked(self):
        series = SampleSeries("lat")
        series.add(1)
        with pytest.raises(ValueError):
            series.percentile(1.5)

    def test_empty_series_degenerate(self):
        series = SampleSeries("empty")
        assert series.mean == 0.0
        assert series.stddev == 0.0
        assert series.percentile(0.5) == 0.0
        assert series.minimum == 0.0
        assert series.maximum == 0.0
        assert series.histogram(4) == ([], [])

    def test_running_aggregates_match_samples(self):
        """mean/min/max/total are O(1) running values; they must stay
        coherent with the stored samples through add() and extend()."""
        series = SampleSeries("lat")
        series.add(5)
        series.extend([1, 9, 3])
        assert series.total == sum(series.samples) == 18
        assert series.minimum == min(series.samples) == 1
        assert series.maximum == max(series.samples) == 9
        assert series.mean == 4.5

    def test_histogram_equal_width_bins(self):
        series = SampleSeries("lat")
        series.extend([0, 1, 2, 3, 4, 5, 6, 7])
        counts, edges = series.histogram(4)
        assert counts == [2, 2, 2, 2]
        assert len(edges) == 5
        assert edges[0] == 0 and edges[-1] == 7
        assert sum(counts) == len(series)

    def test_histogram_single_value_collapses(self):
        series = SampleSeries("lat")
        series.extend([42, 42, 42])
        assert series.histogram(8) == ([3], [42.0, 42.0])

    def test_histogram_rejects_bad_bins(self):
        series = SampleSeries("lat")
        series.add(1)
        with pytest.raises(ValueError):
            series.histogram(0)


class TestStatsRecorder:
    def test_counters_accumulate(self):
        stats = StatsRecorder()
        stats.count("bytes", 100)
        stats.count("bytes", 50)
        stats.count("messages")
        assert stats.counter("bytes") == 150
        assert stats.counter("messages") == 1
        assert stats.counter("missing") == 0

    def test_series_created_on_demand(self):
        stats = StatsRecorder()
        stats.sample("rtt", 30)
        stats.sample("rtt", 50)
        assert stats.get_series("rtt").mean == 40

    def test_merge_folds_counters_and_series(self):
        a = StatsRecorder()
        b = StatsRecorder()
        a.count("x", 1)
        b.count("x", 2)
        a.sample("s", 10)
        b.sample("s", 20)
        a.merge(b)
        assert a.counter("x") == 3
        assert a.get_series("s").count == 2

    def test_merge_folds_gauges_with_max(self):
        a = StatsRecorder()
        b = StatsRecorder()
        a.peak("ring.occupancy_peak", 3)
        b.peak("ring.occupancy_peak", 9)
        b.peak("other_peak", 2)
        a.merge(b)
        assert a.gauge("ring.occupancy_peak") == 9
        assert a.gauge("other_peak") == 2
        # Merge concatenates series samples, keeping aggregates right.
        a.sample("s", 10)
        b2 = StatsRecorder()
        b2.sample("s", 2)
        b2.sample("s", 30)
        a.merge(b2)
        merged = a.get_series("s")
        assert merged.count == 3
        assert merged.minimum == 2
        assert merged.maximum == 30

    def test_snapshot_flattens(self):
        stats = StatsRecorder()
        stats.count("n", 5)
        stats.sample("s", 7)
        snap = stats.snapshot()
        assert snap["n"] == 5
        assert snap["s.mean"] == 7
        assert snap["s.count"] == 1

    def test_to_dict_sections_sorted(self):
        stats = StatsRecorder()
        stats.count("z.bytes", 10)
        stats.count("a.bytes", 5)
        stats.peak("q.occupancy_peak", 4)
        stats.sample("rtt", 10)
        stats.sample("rtt", 30)
        out = stats.to_dict()
        assert list(out) == ["counters", "gauges", "series"]
        assert list(out["counters"]) == ["a.bytes", "z.bytes"]
        assert out["gauges"] == {"q.occupancy_peak": 4.0}
        assert out["series"]["rtt"]["count"] == 2
        assert out["series"]["rtt"]["mean"] == 20
        assert out["series"]["rtt"]["max"] == 30

    def test_to_dict_does_not_change_snapshot(self):
        """snapshot()'s flat shape is pinned by earlier regressions;
        the sectioned export must not leak into it."""
        stats = StatsRecorder()
        stats.count("n", 5)
        stats.peak("g", 7)
        snap = stats.snapshot()
        assert snap == {"n": 5}  # gauges stay out of snapshot()

    def test_dpu_populates_stats(self):
        """The SoC feeds its recorder during real runs."""
        import numpy as np
        from repro.core import DPU
        from repro.dms import ddr_to_dmem

        dpu = DPU()
        address = dpu.store_array(np.zeros(256, dtype=np.uint32))

        def kernel(ctx):
            ctx.push(ddr_to_dmem(256, 4, address, 0, notify_event=0))
            yield from ctx.wfe(0)
            yield from ctx.fetch_add(
                1, dpu.address_map.dmem_address(1, 0), 1
            )

        dpu.launch(kernel, cores=[0])
        assert dpu.stats.counter("dms.bytes_read") == 1024
        assert dpu.stats.counter("ate.messages") == 1
        assert dpu.ddr_channel.utilization() > 0
