"""Tests for the Atomic Transaction Engine (hardware & software RPCs)."""

import numpy as np
import pytest

from repro.ate import AteError, CrossbarTopology, RpcKind
from repro.core import DPU, DPU_40NM


@pytest.fixture
def dpu():
    return DPU()


class TestHardwareRpcs:
    def test_remote_load_store_on_dmem(self, dpu):
        target_addr = dpu.address_map.dmem_address(5, 128)

        def kernel(ctx):
            yield from ctx.remote_store(5, target_addr, 0xABCD)
            value = yield from ctx.remote_load(5, target_addr)
            return value

        assert dpu.launch(kernel, cores=[0]).values[0] == 0xABCD
        assert dpu.scratchpads[5].read_u64(128) == 0xABCD

    def test_remote_ops_on_ddr(self, dpu):
        address = dpu.alloc(8)

        def kernel(ctx):
            yield from ctx.remote_store(9, address, 77)
            value = yield from ctx.remote_load(9, address)
            return value

        assert dpu.launch(kernel, cores=[1]).values[0] == 77
        assert dpu.ddr.read_u64(address) == 77

    def test_fetch_add_returns_old_value(self, dpu):
        address = dpu.address_map.dmem_address(2, 0)
        dpu.scratchpads[2].write_u64(0, 10)

        def kernel(ctx):
            old = yield from ctx.fetch_add(2, address, 5)
            return old

        assert dpu.launch(kernel, cores=[0]).values[0] == 10
        assert dpu.scratchpads[2].read_u64(0) == 15

    def test_fetch_add_is_atomic_under_contention(self, dpu):
        address = dpu.address_map.dmem_address(0, 0)

        def kernel(ctx):
            for _ in range(10):
                yield from ctx.fetch_add(0, address, 1)

        dpu.launch(kernel)  # all 32 cores
        assert dpu.scratchpads[0].read_u64(0) == 320

    def test_compare_and_swap(self, dpu):
        address = dpu.address_map.dmem_address(3, 8)
        dpu.scratchpads[3].write_u64(8, 100)

        def kernel(ctx):
            seen = yield from ctx.compare_swap(3, address, 100, 200)
            failed = yield from ctx.compare_swap(3, address, 100, 300)
            return seen, failed

        seen, failed = dpu.launch(kernel, cores=[7]).values[0]
        assert seen == 100
        assert failed == 200  # CAS failed, returned current
        assert dpu.scratchpads[3].read_u64(8) == 200

    def test_cas_mutual_exclusion(self, dpu):
        """Exactly one core wins a contended CAS from zero."""
        address = dpu.address_map.dmem_address(0, 64)

        def kernel(ctx):
            observed = yield from ctx.compare_swap(
                0, address, 0, ctx.core_id + 1
            )
            return observed == 0

        winners = sum(dpu.launch(kernel).values)
        assert winners == 1

    def test_bad_address_fails_cleanly(self, dpu):
        def kernel(ctx):
            try:
                yield from ctx.remote_load(1, 1 << 50)
            except AteError:
                return "rejected"

        assert dpu.launch(kernel, cores=[0]).values[0] == "rejected"


class TestSoftwareRpcs:
    def test_handler_runs_on_owner_and_returns(self, dpu):
        log = []

        def handler(args):
            log.append(args)
            return args * 2

        dpu.ate.install_handler(4, "double", handler)

        def kernel(ctx):
            value = yield from ctx.software_rpc(4, "double", 21)
            return value

        assert dpu.launch(kernel, cores=[0]).values[0] == 42
        assert log == [21]

    def test_generator_handler_charges_time(self, dpu):
        engine = dpu.engine

        def handler(args):
            yield engine.timeout(500)
            return "slow"

        dpu.ate.install_handler(2, "slow", handler)

        def kernel(ctx):
            value = yield from ctx.software_rpc(2, "slow")
            return value

        result = dpu.launch(kernel, cores=[0])
        assert result.values[0] == "slow"
        assert result.cycles >= 500

    def test_missing_handler_raises_in_caller(self, dpu):
        def kernel(ctx):
            try:
                yield from ctx.software_rpc(1, "nonexistent")
            except AteError as error:
                return "handler" in str(error)

        assert dpu.launch(kernel, cores=[0]).values[0]

    def test_interrupt_debt_charged_to_owner_compute(self, dpu):
        dpu.ate.install_handler(6, "noop", lambda args: None)

        def caller(ctx):
            yield from ctx.software_rpc(6, "noop")
            return None

        def owner(ctx):
            # Wait until the RPC has landed, then measure one compute.
            while dpu.ate.interrupt_debt[6] == 0:
                yield dpu.engine.timeout(50)
            debt = dpu.ate.interrupt_debt[6]
            before = dpu.engine.now
            yield from ctx.compute(10)
            return dpu.engine.now - before, debt

        def kernel(ctx):
            if ctx.core_id == 0:
                return caller(ctx)
            return owner(ctx)

        result = dpu.launch(
            lambda ctx: (yield from kernel(ctx)), cores=[0, 6]
        )
        elapsed, debt = result.values[1]
        assert debt > 0
        assert elapsed == 10 + debt  # handler stall folded into compute
        assert dpu.ate.interrupt_debt[6] == 0


class TestLatencyModel:
    def test_intra_macro_faster_than_inter_macro(self, dpu):
        topo = CrossbarTopology(dpu.config)
        assert topo.one_way_cycles(0, 7) < topo.one_way_cycles(0, 8)
        assert topo.hops(0, 7) == 1 and topo.hops(0, 31) == 3

    def test_figure2_orderings(self, dpu):
        """Fig. 2 shape: hw load < atomic < software RPC; local < remote."""
        dpu.ate.install_handler(1, "nop", lambda args: None)
        dpu.ate.install_handler(9, "nop", lambda args: None)

        def kernel(ctx):
            timings = {}
            for name, owner, action in (
                ("load_local", 1, "load"),
                ("load_remote", 9, "load"),
                ("faa_local", 1, "faa"),
                ("sw_local", 1, "sw"),
            ):
                start = dpu.engine.now
                address = dpu.address_map.dmem_address(owner, 256)
                if action == "load":
                    yield from ctx.remote_load(owner, address)
                elif action == "faa":
                    yield from ctx.fetch_add(owner, address, 1)
                else:
                    yield from ctx.software_rpc(owner, "nop")
                timings[name] = dpu.engine.now - start
            return timings

        timings = dpu.launch(kernel, cores=[0]).values[0]
        assert timings["load_local"] < timings["load_remote"]
        assert timings["load_local"] < timings["faa_local"]
        assert timings["faa_local"] < timings["sw_local"]

    def test_rtt_samples_recorded(self, dpu):
        def kernel(ctx):
            address = dpu.address_map.dmem_address(1, 0)
            yield from ctx.remote_load(1, address)

        dpu.launch(kernel, cores=[0])
        series = dpu.stats.get_series("ate.rtt.load.local")
        assert series.count == 1
        assert series.mean > 0

    def test_one_outstanding_request_serializes(self, dpu):
        """The paper: one outstanding ATE request per core."""
        address = dpu.address_map.dmem_address(1, 0)

        def kernel(ctx):
            start = dpu.engine.now
            first = yield from ctx.ate.issue(
                ctx.core_id, 1, RpcKind.LOAD, address=address
            )
            # Second issue blocks on the slot until `first` replies.
            second = yield from ctx.ate.issue(
                ctx.core_id, 1, RpcKind.LOAD, address=address
            )
            yield second
            return dpu.engine.now - start

        elapsed = dpu.launch(kernel, cores=[0]).values[0]
        single_rtt = 2 * dpu.config.ate_local_crossbar_cycles
        assert elapsed > 1.5 * single_rtt


def test_point_to_point_fifo_ordering():
    """Messages from one source to one owner apply in issue order."""
    dpu = DPU()
    address = dpu.address_map.dmem_address(2, 0)

    def kernel(ctx):
        for value in range(1, 6):
            yield from ctx.remote_store(2, address, value)

    dpu.launch(kernel, cores=[0])
    assert dpu.scratchpads[2].read_u64(0) == 5


class TestPostedStores:
    def test_posted_store_lands(self, dpu):
        address = dpu.address_map.dmem_address(4, 64)

        def kernel(ctx):
            yield from ctx.posted_store(4, address, 99)
            # Give the message time to land, then confirm via a load.
            value = yield from ctx.remote_load(4, address)
            return value

        assert dpu.launch(kernel, cores=[0]).values[0] == 99

    def test_posted_store_faster_than_blocking(self, dpu):
        address = dpu.address_map.dmem_address(9, 0)  # cross-macro

        def blocking(ctx):
            start = dpu.engine.now
            for value in range(8):
                yield from ctx.remote_store(9, address, value)
            return dpu.engine.now - start

        def posted(ctx):
            start = dpu.engine.now
            for value in range(8):
                yield from ctx.posted_store(9, address, value)
            return dpu.engine.now - start

        blocking_cycles = dpu.launch(blocking, cores=[0]).values[0]
        posted_cycles = dpu.launch(posted, cores=[1]).values[0]
        assert posted_cycles < blocking_cycles
