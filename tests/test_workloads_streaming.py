"""Tests for workload generators and the DMS streaming helper."""

import numpy as np
import pytest

from repro.apps.streaming import stream_columns
from repro.core import DPU
from repro.workloads import (
    generate_corpus,
    generate_higgs_like,
    generate_lineitem_json,
    generate_stereo_pair,
)


class TestHiggs:
    def test_shapes_and_normalization(self):
        data = generate_higgs_like(num_samples=256)
        assert data.features.shape == (256, 28)
        assert np.abs(data.features).max() <= 1.0
        assert set(np.unique(data.labels)) == {-1.0, 1.0}

    def test_classes_roughly_balanced(self):
        data = generate_higgs_like(num_samples=1000)
        positives = int((data.labels > 0).sum())
        assert 400 <= positives <= 600

    def test_separation_controls_difficulty(self):
        easy = generate_higgs_like(num_samples=500, separation=4.0)
        hard = generate_higgs_like(num_samples=500, separation=0.2)
        # Linear probe: project onto the class-mean difference.
        def probe_accuracy(data):
            direction = (
                data.features[data.labels > 0].mean(axis=0)
                - data.features[data.labels < 0].mean(axis=0)
            )
            scores = data.features @ direction
            return np.mean(np.sign(scores) == data.labels)
        assert probe_accuracy(easy) > probe_accuracy(hard)

    def test_deterministic(self):
        a = generate_higgs_like(num_samples=64, seed=3)
        b = generate_higgs_like(num_samples=64, seed=3)
        assert np.array_equal(a.features, b.features)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_higgs_like(num_samples=1)


class TestCorpus:
    def test_csr_well_formed(self):
        workload = generate_corpus(num_docs=200, vocab=1000, num_queries=16)
        index = workload.index
        assert index.indptr[0] == 0
        assert index.indptr[-1] == index.nnz
        assert np.all(np.diff(index.indptr) >= 0)
        assert index.indices.max() < index.num_cols

    def test_rows_l2_normalized(self):
        workload = generate_corpus(num_docs=100, vocab=500, num_queries=8)
        for doc in range(20):
            _cols, values = workload.index.row(doc)
            assert np.linalg.norm(values) == pytest.approx(1.0, abs=1e-5)

    def test_queries_reference_their_source_doc_terms(self):
        workload = generate_corpus(num_docs=150, vocab=600, num_queries=10)
        for query, doc in enumerate(workload.query_truth):
            q_cols, _ = workload.queries.row(query)
            d_cols, _ = workload.index.row(int(doc))
            assert set(q_cols.tolist()) <= set(d_cols.tolist())


class TestJsonData:
    def test_records_have_lineitem_keys(self):
        import json
        data = generate_lineitem_json(5)
        records = json.loads("[" + data.decode().replace("}{", "},{") + "]")
        assert len(records) == 5
        assert "l_shipdate" in records[0] and "l_comment" in records[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_lineitem_json(0)


class TestStereo:
    def test_shapes_and_truth_range(self):
        pair = generate_stereo_pair(rows=64, cols=96, max_shift=6)
        assert pair.left.shape == pair.right.shape == (64, 96)
        assert pair.true_disparity.min() >= 1
        assert pair.true_disparity.max() < 6

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_stereo_pair(cols=32, max_shift=20)


class TestStreamColumns:
    def test_multi_column_tiles_deliver_all_rows(self):
        dpu = DPU()
        n = 5000  # not a multiple of the tile size: partial last tile
        a = np.arange(n, dtype=np.uint32)
        b = np.arange(n, dtype=np.uint64) * 3
        addr_a, addr_b = dpu.store_array(a), dpu.store_array(b)
        seen = {"a": [], "b": []}

        def kernel(ctx):
            def process(tile, lo, hi, arrays):
                seen["a"].append(arrays[0].copy())
                seen["b"].append(arrays[1].copy())
                return 10

            yield from stream_columns(
                ctx, [(addr_a, np.uint32), (addr_b, np.uint64)], n, 512,
                process,
            )

        dpu.launch(kernel, cores=[0])
        assert np.array_equal(np.concatenate(seen["a"]), a)
        assert np.array_equal(np.concatenate(seen["b"]), b)

    def test_signed_dtypes_preserved(self):
        dpu = DPU()
        values = np.array([-5, -1, 0, 3], dtype=np.int32)
        address = dpu.store_array(values)

        def kernel(ctx):
            out = []

            def process(tile, lo, hi, arrays):
                out.extend(arrays[0].tolist())
                return 0

            yield from stream_columns(ctx, [(address, np.int32)], 4, 4, process)
            return out

        assert dpu.launch(kernel, cores=[0]).values[0] == [-5, -1, 0, 3]

    def test_writeback_roundtrip(self):
        dpu = DPU()
        n = 2048
        values = np.arange(n, dtype=np.uint32)
        src = dpu.store_array(values)
        dst = dpu.alloc(n * 4)

        def kernel(ctx):
            def process(tile, lo, hi, arrays):
                arrays[0][:] = arrays[0] * 2  # mutate in DMEM
                return 5

            yield from stream_columns(
                ctx, [(src, np.uint32)], n, 256, process,
                writeback=(dst, np.uint32),
            )

        dpu.launch(kernel, cores=[0])
        assert np.array_equal(
            dpu.load_array(dst, n, np.uint32), values * 2
        )

    def test_dmem_overflow_rejected(self):
        dpu = DPU()
        address = dpu.store_array(np.zeros(10000, dtype=np.uint64))

        def kernel(ctx):
            yield from stream_columns(
                ctx, [(address, np.uint64)], 10000, 4096,
                lambda *a: 0,
            )

        with pytest.raises(ValueError, match="DMEM"):
            dpu.launch(kernel, cores=[0])

    def test_zero_rows_is_noop(self):
        dpu = DPU()

        def kernel(ctx):
            yield from stream_columns(ctx, [(4096, 4)], 0, 64, lambda *a: 0)
            return "done"

        assert dpu.launch(kernel, cores=[0]).values[0] == "done"
