"""Coordinator failover: kill DPU 0 and finish the job anyway.

The headline property of the replicated-journal + leader-election
layer (repro.cluster.recovery): *any* DPU — the coordinator included —
can be chaos-killed mid-job and every ``cluster_*`` job still
completes byte-equal to the fault-free single-DPU reference, with
exactly one :class:`ScaleOutResult` per job even though two leaders
existed along the way.
"""

import numpy as np
import pytest

from repro.apps.sql import Table
from repro.apps.sql.aggregate import AggSpec
from repro.cluster import (
    Cluster,
    ClusterError,
    RecoveryConfig,
    cluster_filter_count,
    cluster_groupby,
    cluster_hll,
    cluster_partitioned_join_count,
    cluster_topk,
    cluster_tpch_q1,
)
from repro.faults import ChaosSpec, FaultError, FaultPlan
from repro.sim import Engine, Store
from repro.workloads.tpch import generate_tpch


def _shard(columns, num_shards, name="shard"):
    total = len(next(iter(columns.values())))
    bounds = [round(total * i / num_shards) for i in range(num_shards + 1)]
    return [
        Table(
            f"{name}{i}",
            {n: c[bounds[i]:bounds[i + 1]] for n, c in columns.items()},
        )
        for i in range(num_shards)
    ]


def _coordinator_kill(at_cycle=15_000.0, extra=()):
    return FaultPlan.none().with_chaos(
        ChaosSpec("dpu.dead", (0,), at_cycle=at_cycle), *extra
    )


AGGS = [AggSpec("sum", "v"), AggSpec("count")]


@pytest.fixture(scope="module")
def datasets():
    rng = np.random.default_rng(3)
    lineitem = generate_tpch(scale=0.005, seed=42).tables["lineitem"]
    return {
        "values": rng.integers(0, 1000, 8000, dtype=np.int64),
        "hll": rng.integers(0, 1 << 40, 30_000, dtype=np.uint64),
        "gb": {
            "k": rng.integers(0, 64, 12_000).astype(np.int64),
            "v": rng.integers(0, 1000, 12_000).astype(np.int64),
        },
        "build": {"k": rng.integers(0, 500, 4000).astype(np.uint32)},
        "probe": {"k": rng.integers(0, 500, 6000).astype(np.uint32)},
        "topk": {"x": rng.permutation(16_000).astype(np.uint32)},
        "lineitem": lineitem,
    }


def _jobs(d):
    return {
        "hll": lambda c, n: cluster_hll(
            c, list(np.array_split(d["hll"], n))),
        "filter_count": lambda c, n: cluster_filter_count(
            c, list(np.array_split(d["values"], n)), 100, 500),
        "groupby": lambda c, n: cluster_groupby(
            c, _shard(d["gb"], n), "k", AGGS),
        "join": lambda c, n: cluster_partitioned_join_count(
            c, _shard(d["build"], n, "b"), "k",
            _shard(d["probe"], n, "p"), "k"),
        "topk": lambda c, n: cluster_topk(
            c, _shard(d["topk"], n), "x", 25),
        "tpch_q1": lambda c, n: cluster_tpch_q1(
            c, _shard(d["lineitem"], n, "li")),
    }


class TestCoordinatorKillMatrix:
    """Every job byte-equal with DPU 0 killed mid-job at 2/4/8 DPUs."""

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    @pytest.mark.parametrize(
        "job", ["hll", "filter_count", "groupby", "join", "topk", "tpch_q1"]
    )
    def test_byte_equal_after_takeover(self, datasets, job, num_dpus):
        run = _jobs(datasets)[job]
        reference = run(Cluster(1), 1).value
        cluster = Cluster(num_dpus, fault_plan=_coordinator_kill())
        result = run(cluster, num_dpus)
        assert result.value == reference
        stats = cluster.recovery.stats
        assert stats.leader_changes == 1
        assert 0 in cluster.recovery.declared_dead
        # Deterministic election: lowest surviving index wins.
        assert cluster.leader == 1

    def test_kill_during_gather_phase(self, datasets):
        # Place the kill inside the final gather: 90% of the fault-free
        # run's total lands after partition+exchange+local compute.
        run = _jobs(datasets)["groupby"]
        reference = run(Cluster(1), 1).value
        clean = run(Cluster(4), 4)
        gather_start = clean.cycles - clean.detail["gather_cycles"]
        assert clean.cycles * 0.9 > gather_start
        plan = _coordinator_kill(at_cycle=clean.cycles * 0.9)
        cluster = Cluster(4, fault_plan=plan)
        result = run(cluster, 4)
        assert result.value == reference
        assert cluster.recovery.stats.leader_changes == 1

    @pytest.mark.parametrize("job", ["filter_count", "groupby"])
    def test_coordinator_plus_worker_kill(self, datasets, job):
        run = _jobs(datasets)[job]
        reference = run(Cluster(1), 1).value
        plan = _coordinator_kill(
            at_cycle=15_000.0,
            extra=(ChaosSpec("dpu.dead", (2,), at_cycle=40_000.0),),
        )
        cluster = Cluster(4, fault_plan=plan)
        result = run(cluster, 4)
        assert result.value == reference
        assert sorted(cluster.recovery.declared_dead) == [0, 2]
        assert cluster.recovery.stats.leader_changes == 1
        assert cluster.leader == 1

    def test_two_dpu_leader_kill_worker_finishes_alone(self, datasets):
        # The degenerate cluster: the only survivor must elect itself
        # and compute every shard locally.
        run = _jobs(datasets)["filter_count"]
        reference = run(Cluster(1), 1).value
        cluster = Cluster(2, fault_plan=_coordinator_kill())
        result = run(cluster, 2)
        assert result.value == reference
        assert cluster.leader == 1
        assert sorted(cluster.recovery.declared_dead) == [0]


class TestExactlyOnceAndAccounting:
    def test_one_result_under_two_leaders(self, datasets):
        run = _jobs(datasets)["groupby"]
        cluster = Cluster(4, fault_plan=_coordinator_kill())
        result = run(cluster, 4)
        # Exactly one ScaleOutResult: the deposed leader's partial
        # gather never surfaces; only the new leader's merge returns.
        stats = cluster.recovery.stats
        assert stats.leader_changes == 1
        assert len(stats.elections) == 1
        old, new, at_cycle, latency = stats.elections[0]
        assert (old, new) == (0, 1)
        assert at_cycle > 15_000.0
        # Latency is measured from the injected kill instant.
        assert latency is not None and 0 < latency < 600_000.0
        assert stats.leader_election_latency_cycles == latency

    def test_counters_and_registry(self, datasets):
        run = _jobs(datasets)["groupby"]
        cluster = Cluster(4, fault_plan=_coordinator_kill())
        run(cluster, 4)
        registry = cluster.counter_registry().snapshot()
        assert registry["recovery.leader_changes"] == 1
        assert registry["recovery.leader_election_latency_cycles"] > 0
        assert "recovery.journal_records" in registry
        assert "recovery.journal_bytes" in registry

    def test_journal_bytes_scale_with_standby_count(self, datasets):
        run = _jobs(datasets)["groupby"]
        sizes = {}
        for standbys in (1, 2):
            cluster = Cluster(
                4,
                fault_plan=FaultPlan.none().with_chaos(
                    ChaosSpec("dpu.slow", (3,), at_cycle=0.0,
                              duration=10_000.0, factor=1.5)
                ),
                recovery_config=RecoveryConfig(standby_count=standbys),
            )
            run(cluster, 4)
            sizes[standbys] = cluster.recovery.stats.journal_bytes
        assert sizes[1] > 0
        assert sizes[2] > sizes[1]

    def test_no_chaos_means_no_journal(self, datasets):
        # FaultPlan.none() keeps the whole failover layer detached:
        # no manager, no journal traffic, no recovery counters.
        run = _jobs(datasets)["groupby"]
        cluster = Cluster(4)
        result = run(cluster, 4)
        assert cluster.recovery is None
        assert result.recovery is None
        registry = cluster.counter_registry().snapshot()
        assert not any(k.startswith("recovery.") for k in registry)

    def test_trace_records_election(self, datasets):
        run = _jobs(datasets)["groupby"]
        cluster = Cluster(4, fault_plan=_coordinator_kill())
        tracer = cluster.enable_tracing()
        run(cluster, 4)
        names = {e.get("name") for e in tracer.events}
        assert "recover.leader_elected" in names
        assert "recover.journal" in names


class TestChaosHarnessLifts:
    def test_install_accepts_partition_containing_coordinator(self):
        plan = FaultPlan.none().with_chaos(
            ChaosSpec("fabric.partition", (0,), at_cycle=10_000.0,
                      duration=50_000.0)
        )
        cluster = Cluster(4, fault_plan=plan)
        assert cluster.recovery is not None

    def test_install_rejects_killing_everyone(self):
        plan = FaultPlan.none().with_chaos(
            *(ChaosSpec("dpu.dead", (i,), at_cycle=1000.0 * (i + 1))
              for i in range(2))
        )
        with pytest.raises(FaultError):
            Cluster(2, fault_plan=plan)

    def test_standby_count_validated(self):
        with pytest.raises(FaultError):
            RecoveryConfig(standby_count=-1)


class TestClusterErrorFields:
    def test_epoch_and_leader_in_structured_error(self):
        # Fail-fast gather (no chaos plan → no recovery manager): the
        # error carries generation 0 under the pinned coordinator.
        cluster = Cluster(2)
        cluster.fabric.schedule_kill(1, at_cycle=0.0)
        shards = [np.arange(100, dtype=np.int64),
                  np.arange(100, dtype=np.int64)]
        with pytest.raises(ClusterError) as info:
            cluster_filter_count(cluster, shards, 10, 50)
        error = info.value
        assert error.epoch == 0
        assert error.leader == 0
        assert "epoch 0 under leader 0" in str(error)

    def test_defaults_stay_optional(self):
        error = ClusterError("site", cycle=1.0)
        assert error.epoch is None and error.leader is None
        assert "epoch" not in str(error)


class TestStoreCancelGetEdges:
    def test_double_cancel_returns_false(self):
        engine = Engine()
        store = Store(engine)
        event = store.get()
        assert store.cancel_get(event) is True
        assert store.cancel_get(event) is False

    def test_cancel_after_delivery_leaves_item_with_caller(self):
        engine = Engine()
        store = Store(engine)
        event = store.get()

        def producer():
            yield store.put("item")

        engine.process(producer())
        engine.run_until_complete(event)
        assert event.value == "item"
        # Fired means the caller owns the item; cancel is a no-op.
        assert store.cancel_get(event) is False
        assert len(store) == 0

    def test_cancel_races_declare_dead_credit_release(self):
        # declare_dead restores the corpse's credits and clears its
        # inbox but leaves pending getters registered: the abandoning
        # receiver must still deregister (True), and only once.
        cluster = Cluster(2)
        fabric = cluster.fabric
        depth = fabric.config.fabric_inbox_depth
        cluster.run([
            cluster.engine.process(fabric.send(0, 1, f"m{i}", 64))
            for i in range(depth)
        ])
        # Let the in-flight deliveries land in the inbox.
        cluster.engine.run_until_complete(
            cluster.engine.timeout(1_000_000.0)
        )
        assert fabric._credits[1] == 0
        pending = fabric._inboxes[1].get()  # drains one queued item
        assert pending.triggered
        while fabric._inboxes[1].items:  # empty it out completely
            fabric._inboxes[1].try_get()
        waiting = fabric._inboxes[1].get()  # genuinely blocks
        assert not waiting.triggered
        fabric.declare_dead(1)
        assert fabric._credits[1] == depth
        assert not fabric._inboxes[1].items
        assert fabric._inboxes[1].cancel_get(waiting) is True
        assert fabric._inboxes[1].cancel_get(waiting) is False
        # A late put cannot resurrect the cancelled getter.
        fabric._inboxes[1].put("late")
        assert not waiting.triggered
