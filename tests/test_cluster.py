"""Tests for the multi-DPU cluster, fabric and rack model."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    FabricConfig,
    IBFabric,
    PAPER_RACK,
    RackSpec,
    cluster_filter_count,
    cluster_hll,
)
from repro.faults import FaultInjector, FaultPlan
from repro.sim import Engine, SimulationError


class TestFabric:
    def test_message_roundtrip(self):
        engine = Engine()
        fabric = IBFabric(engine, 4)

        def sender():
            yield from fabric.send(0, 2, "payload", 4096)

        def receiver():
            src, payload = yield from fabric.receive(2)
            return src, payload

        engine.process(sender())
        proc = engine.process(receiver())
        assert engine.run_until_complete(proc) == (0, "payload")

    def test_latency_components_charged(self):
        engine = Engine()
        config = FabricConfig()
        fabric = IBFabric(engine, 2, config)

        def roundtrip():
            yield from fabric.send(0, 1, None, 4096)
            yield from fabric.receive(1)
            return engine.now

        elapsed = engine.run_until_complete(engine.process(roundtrip()))
        floor = (
            config.a9_send_overhead_cycles
            + config.fabric_latency_cycles
            + config.a9_receive_overhead_cycles
            + 4096 / config.link_bytes_per_cycle
        )
        assert elapsed >= floor

    def test_egress_link_serializes(self):
        engine = Engine()
        fabric = IBFabric(engine, 2, FabricConfig(a9_send_overhead_cycles=0))

        def sender():
            yield from fabric.send(0, 1, "a", 40960)
            yield from fabric.send(0, 1, "b", 40960)

        def receiver():
            first = yield from fabric.receive(1)
            second = yield from fabric.receive(1)
            return first[1], second[1]

        engine.process(sender())
        proc = engine.process(receiver())
        assert engine.run_until_complete(proc) == ("a", "b")
        assert fabric.bytes_sent == 81920

    def test_endpoint_validation(self):
        fabric = IBFabric(Engine(), 2)
        with pytest.raises(SimulationError):
            next(fabric.send(0, 5, None, 8))

    def test_inbox_depth_validated(self):
        with pytest.raises(SimulationError):
            IBFabric(Engine(), 2, FabricConfig(fabric_inbox_depth=0))

    def test_retransmitted_bytes_accounted(self):
        """Regression: the retransmit path re-serializes the message
        but used to leave the re-sent bytes uncounted."""
        engine = Engine()
        injector = FaultInjector(
            FaultPlan(seed=3, rates={"net.drop": 0.5}), engine
        )
        fabric = IBFabric(engine, 2, faults=injector)

        def sender():
            for _ in range(6):
                yield from fabric.send(0, 1, "m", 4096)

        def receiver():
            for _ in range(6):
                yield from fabric.receive(1)

        engine.process(sender())
        proc = engine.process(receiver())
        engine.run_until_complete(proc)
        assert fabric.retransmissions > 0
        assert (
            fabric.bytes_retransmitted == 4096 * fabric.retransmissions
        )
        # bytes_sent stays first-transmission-only; the repeat traffic
        # is reported separately.
        assert fabric.bytes_sent == 6 * 4096

    def test_slow_receiver_backpressures_senders(self):
        """With one receive credit, a slow coordinator stalls its
        senders instead of queueing unboundedly."""
        engine = Engine()
        config = FabricConfig(
            fabric_inbox_depth=1,
            a9_send_overhead_cycles=0,
            a9_receive_overhead_cycles=0,
        )
        fabric = IBFabric(engine, 3, config)
        received = []

        def sender(src):
            for _ in range(3):
                yield from fabric.send(src, 0, f"from{src}", 4096)

        def slow_coordinator():
            for _ in range(6):
                yield engine.timeout(50_000)
                src, _payload = yield from fabric.receive(0)
                received.append(src)

        engine.process(sender(1))
        engine.process(sender(2))
        proc = engine.process(slow_coordinator())
        engine.run_until_complete(proc)
        assert sorted(received) == [1, 1, 1, 2, 2, 2]
        assert fabric.inbox_stalls > 0
        assert fabric.inbox_stall_cycles > 0

    def test_default_depth_never_stalls_small_jobs(self):
        rng = np.random.default_rng(4)
        shards = [rng.integers(0, 2**63, 4000, dtype=np.uint64)
                  for _ in range(4)]
        cluster = Cluster(num_dpus=4)
        cluster_hll(cluster, shards)
        assert cluster.fabric.inbox_stalls == 0


class TestClusterScaleOut:
    def test_distributed_hll_matches_single_node_merge(self):
        rng = np.random.default_rng(1)
        pool = rng.integers(0, 2**63, 20000, dtype=np.uint64)
        shards = [rng.choice(pool, 15000) for _ in range(4)]
        truth = len(np.unique(np.concatenate(shards)))
        cluster = Cluster(num_dpus=4)
        result = cluster_hll(cluster, shards)
        assert abs(result.value - truth) / truth < 0.06
        assert result.network_bytes == 4 * 4096  # one register file each
        assert result.num_dpus == 4

    def test_distributed_filter_count_exact(self):
        rng = np.random.default_rng(2)
        shards = [rng.integers(0, 1000, 60000).astype(np.int32)
                  for _ in range(3)]
        cluster = Cluster(num_dpus=3)
        result = cluster_filter_count(cluster, shards, 250, 499)
        expected = sum(
            int(((shard >= 250) & (shard <= 499)).sum()) for shard in shards
        )
        assert result.value == expected

    def test_back_to_back_jobs_report_per_job_bytes(self):
        """Regression: network_bytes was the fabric's cumulative
        counter, so a second job on the same cluster reported the
        first job's traffic too."""
        rng = np.random.default_rng(3)
        shards = [rng.integers(0, 1000, 20000).astype(np.int32)
                  for _ in range(2)]
        cluster = Cluster(num_dpus=2)
        first = cluster_filter_count(cluster, shards, 100, 199)
        second = cluster_filter_count(cluster, shards, 500, 599)
        assert first.network_bytes == 2 * 8  # one 8-byte count per DPU
        assert second.network_bytes == 2 * 8
        assert cluster.fabric.bytes_sent == 4 * 8
        assert first.retransmissions == 0
        assert second.retransmissions == 0

    def test_shard_count_validated(self):
        cluster = Cluster(num_dpus=2)
        with pytest.raises(ValueError):
            cluster_filter_count(
                cluster, [np.zeros(8, dtype=np.int32)], 0, 1
            )

    def test_cluster_wattage(self):
        cluster = Cluster(num_dpus=8)
        assert cluster.total_watts() == 8 * 6.0


class TestRackSpec:
    def test_paper_rack_claims(self):
        """§1: >10 TB/s aggregate bandwidth and >10 TB capacity in a
        42U rack within the 20 kW budget."""
        assert PAPER_RACK.num_dpus == 1440
        assert PAPER_RACK.aggregate_bandwidth_tbps > 10.0
        assert PAPER_RACK.total_capacity_tb > 10.0
        assert PAPER_RACK.within_budget()

    def test_sub_second_terascale_scan(self):
        """§1's design question: analytics on terabytes in sub-second
        latencies within a rack's power budget."""
        assert PAPER_RACK.seconds_to_scan(10.0) < 1.0

    def test_power_arithmetic(self):
        spec = RackSpec(num_dpus=2, dpu_watts=6, dram_watts_per_channel=3,
                        network_watts_per_dpu=4)
        assert spec.total_watts == 26.0
