"""Tests for group-by across the three physical strategies."""

import numpy as np
import pytest

from repro.apps.sql import (
    AggSpec,
    Between,
    DmemBudget,
    GroupKey,
    Table,
    dpu_groupby,
    merge_groups,
    plan_partitioning,
    xeon_groupby,
)
from repro.baseline import XeonModel
from repro.core import DPU


def host_groupby(table, key, value_col, mask=None):
    keys = table.column(key)
    values = table.column(value_col).astype(np.int64)
    if mask is not None:
        keys, values = keys[mask], values[mask]
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(sums, inverse, values)
    counts = np.bincount(inverse, minlength=len(uniq))
    return {
        int(k): (int(s), int(c)) for k, s, c in zip(uniq, sums, counts)
    }


def check_against_host(result, expected):
    assert len(result) == len(expected)
    for key, (total, count) in expected.items():
        slots = result[key]
        assert slots[0] == pytest.approx(total)
        assert slots[1] == count


class TestPlanner:
    def test_low_ndv_needs_no_partitioning(self):
        plan = plan_partitioning(ndv=100, group_record_bytes=16)
        assert plan.partitions_needed == 1
        assert plan.dpu_sw_rounds == 0 and plan.x86_rounds == 0
        assert plan.dpu_memory_passes == 1.0

    def test_moderate_ndv_hardware_only(self):
        # ~300 KB of groups: fits 32 DMEMs, not one.
        plan = plan_partitioning(ndv=20000, group_record_bytes=16)
        assert 1 < plan.partitions_needed <= 32
        assert plan.dpu_sw_rounds == 0  # the paper's "no extra round-trip"
        assert plan.x86_rounds >= 1  # x86 pays a round the DPU does not

    def test_high_ndv_asymmetry(self):
        # ~12 MB of groups: one DPU software round, two x86 rounds —
        # the §5.3 high-NDV case (9.7x vs 6.7x).
        plan = plan_partitioning(ndv=750_000, group_record_bytes=16)
        assert plan.dpu_sw_rounds == 1
        assert plan.x86_rounds == 2
        assert plan.x86_memory_passes > plan.dpu_memory_passes

    def test_budget_math(self):
        budget = DmemBudget()
        assert budget.hash_table == 32 * 1024 - budget.io_buffers - budget.metadata
        with pytest.raises(ValueError):
            DmemBudget(io_buffers=30 * 1024, metadata=4 * 1024).hash_table

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_partitioning(0, 16)
        with pytest.raises(ValueError):
            plan_partitioning(10, 0)


class TestLowNdv:
    def test_sum_count_match_host(self):
        rng = np.random.default_rng(0)
        n = 32 * 1024
        table = Table("t", {
            "g": rng.integers(0, 50, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
        })
        dpu = DPU()
        result = dpu_groupby(
            dpu, table.to_dpu(dpu), "g",
            [AggSpec("sum", "v"), AggSpec("count")],
        )
        assert result.detail["partitions_needed"] == 1
        check_against_host(result.value, host_groupby(table, "g", "v"))

    def test_min_max(self):
        rng = np.random.default_rng(1)
        table = Table("t", {
            "g": rng.integers(0, 8, 4096).astype(np.int32),
            "v": rng.integers(-1000, 1000, 4096).astype(np.int32),
        })
        dpu = DPU()
        result = dpu_groupby(
            dpu, table.to_dpu(dpu), "g",
            [AggSpec("min", "v"), AggSpec("max", "v")],
        )
        for key in np.unique(table.column("g")):
            selected = table.column("v")[table.column("g") == key]
            assert result.value[int(key)][0] == selected.min()
            assert result.value[int(key)][1] == selected.max()

    def test_filtered_groupby(self):
        rng = np.random.default_rng(2)
        n = 16 * 1024
        table = Table("t", {
            "g": rng.integers(0, 10, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
            "f": rng.integers(0, 1000, n).astype(np.int32),
        })
        dpu = DPU()
        predicate = Between("f", 0, 499)
        result = dpu_groupby(
            dpu, table.to_dpu(dpu), "g",
            [AggSpec("sum", "v"), AggSpec("count")],
            row_filter=predicate,
        )
        mask = predicate.mask(table.columns)
        check_against_host(result.value, host_groupby(table, "g", "v", mask))

    def test_expression_aggregate(self):
        rng = np.random.default_rng(3)
        n = 8192
        table = Table("t", {
            "g": rng.integers(0, 4, n).astype(np.int32),
            "p": rng.integers(1, 100, n).astype(np.int32),
            "d": rng.integers(0, 10, n).astype(np.int32),
        })
        dpu = DPU()
        spec = AggSpec(
            "sum",
            expr=lambda c: c["p"].astype(np.int64) * (100 - c["d"]),
            expr_columns=("p", "d"),
            expr_cycles_per_row=2.0,
        )
        result = dpu_groupby(dpu, table.to_dpu(dpu), "g", [spec])
        p = table.column("p").astype(np.int64)
        d = table.column("d").astype(np.int64)
        g = table.column("g")
        for key in np.unique(g):
            expected = (p[g == key] * (100 - d[g == key])).sum()
            assert result.value[int(key)][0] == pytest.approx(expected)

    def test_computed_group_key(self):
        rng = np.random.default_rng(4)
        n = 8192
        table = Table("t", {
            "a": rng.integers(0, 3, n).astype(np.int8),
            "b": rng.integers(0, 2, n).astype(np.int8),
            "v": rng.integers(0, 10, n).astype(np.int32),
        })
        dpu = DPU()
        key = GroupKey(
            fn=lambda c: c["a"].astype(np.int64) * 2 + c["b"],
            columns=("a", "b"),
            cycles_per_row=1.0,
        )
        result = dpu_groupby(dpu, table.to_dpu(dpu), key, [AggSpec("count")])
        composite = table.column("a").astype(np.int64) * 2 + table.column("b")
        for value in np.unique(composite):
            assert result.value[int(value)][0] == int((composite == value).sum())


class TestHwPartitioned:
    def test_mid_ndv_uses_hw_partition_and_matches(self):
        rng = np.random.default_rng(5)
        n = 64 * 1024
        ndv = 20000
        table = Table("t", {
            "g": rng.integers(0, ndv, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
        })
        dpu = DPU()
        result = dpu_groupby(
            dpu, table.to_dpu(dpu), "g",
            [AggSpec("sum", "v"), AggSpec("count")],
        )
        assert 1 < result.detail["partitions_needed"] <= 32
        check_against_host(result.value, host_groupby(table, "g", "v"))


class TestSwRound:
    def test_small_budget_forces_sw_round_and_matches(self):
        # A tiny DMEM hash budget forces the software round without
        # needing a gigantic table.
        rng = np.random.default_rng(6)
        n = 48 * 1024
        ndv = 12000
        table = Table("t", {
            "g": rng.integers(0, ndv, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
        })
        budget = DmemBudget(total=32 * 1024, io_buffers=28 * 1024,
                            metadata=1024)
        plan = plan_partitioning(ndv, 24, budget)
        assert plan.dpu_sw_rounds == 1
        dpu = DPU()
        result = dpu_groupby(
            dpu, table.to_dpu(dpu), "g",
            [AggSpec("sum", "v"), AggSpec("count")],
            budget=budget,
        )
        assert result.detail["sw_rounds"] == 1
        check_against_host(result.value, host_groupby(table, "g", "v"))


class TestMergeAndXeon:
    def test_merge_groups_combines_all_ops(self):
        aggs = [AggSpec("sum", "v"), AggSpec("count"),
                AggSpec("min", "v"), AggSpec("max", "v")]
        a = {1: [10.0, 2, 3.0, 7.0]}
        b = {1: [5.0, 1, 1.0, 9.0], 2: [1.0, 1, 1.0, 1.0]}
        merged = merge_groups([a, b], aggs)
        assert merged[1] == [15.0, 3, 1.0, 9.0]
        assert merged[2] == [1.0, 1, 1.0, 1.0]

    def test_xeon_matches_dpu_values(self):
        rng = np.random.default_rng(7)
        table = Table("t", {
            "g": rng.integers(0, 30, 16384).astype(np.int32),
            "v": rng.integers(0, 100, 16384).astype(np.int32),
        })
        dpu = DPU()
        aggs = [AggSpec("sum", "v"), AggSpec("count")]
        dpu_result = dpu_groupby(dpu, table.to_dpu(dpu), "g", aggs)
        xeon_result = xeon_groupby(XeonModel(), table, "g", aggs)
        assert set(dpu_result.value) == set(xeon_result.value)
        for key in xeon_result.value:
            assert dpu_result.value[key][0] == pytest.approx(
                xeon_result.value[key][0]
            )

    def test_high_ndv_gain_exceeds_low_ndv_gain(self):
        """The §5.3 asymmetry: 9.7x (high) > 6.7x (low), by shape."""
        from repro.apps.sql import efficiency_gain
        model = XeonModel()
        rng = np.random.default_rng(8)
        n = 64 * 1024
        low = Table("t", {
            "g": rng.integers(0, 64, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
        })
        dpu = DPU()
        aggs = [AggSpec("sum", "v")]
        low_gain = None
        d = dpu_groupby(dpu, low.to_dpu(dpu), "g", aggs)
        x = xeon_groupby(model, low, "g", aggs)
        low_gain = efficiency_gain(d, x)
        assert 4.0 < low_gain < 9.0  # around the paper's 6.7x
