"""Tests for the MBC mailbox and the runtime parallel primitives."""

import pytest

from repro.core import A9_ID, DPU, M0_ID, NUM_MAILBOXES
from repro.runtime import (
    AteBarrier,
    AteMutex,
    DmemLayout,
    SharedCounter,
    WorkQueue,
    chunk_ranges,
    static_partition,
)


@pytest.fixture
def dpu():
    return DPU()


class TestMailbox:
    def test_send_receive_roundtrip(self, dpu):
        def sender(ctx):
            yield from ctx.mbox_send(1, {"ptr": 0x1000})

        def receiver(ctx):
            src, payload = yield from ctx.mbox_receive()
            return src, payload

        def kernel(ctx):
            if ctx.core_id == 0:
                return (yield from sender(ctx))
            return (yield from receiver(ctx))

        result = dpu.launch(lambda ctx: (yield from kernel(ctx)), cores=[0, 1])
        assert result.values[1] == (0, {"ptr": 0x1000})

    def test_fifo_per_receiver(self, dpu):
        def sender(ctx):
            for index in range(4):
                yield from ctx.mbox_send(2, index)

        def receiver(ctx):
            out = []
            for _ in range(4):
                _src, payload = yield from ctx.mbox_receive()
                out.append(payload)
            return out

        def kernel(ctx):
            if ctx.core_id == 0:
                return (yield from sender(ctx))
            return (yield from receiver(ctx))

        result = dpu.launch(lambda ctx: (yield from kernel(ctx)), cores=[0, 2])
        assert result.values[1] == [0, 1, 2, 3]

    def test_costs_charged(self, dpu):
        def kernel(ctx):
            yield from ctx.mbox_send(0, "self")
            yield from ctx.mbox_receive()

        result = dpu.launch(kernel, cores=[0])
        assert result.cycles >= (
            dpu.config.mbc_send_cycles + dpu.config.mbc_interrupt_cycles
        )

    def test_a9_and_m0_have_mailboxes(self, dpu):
        assert A9_ID == 32 and M0_ID == 33 and NUM_MAILBOXES == 34
        dpu.mailbox._check(A9_ID)
        dpu.mailbox._check(M0_ID)
        with pytest.raises(ValueError):
            dpu.mailbox._check(34)

    def test_try_receive_nonblocking(self, dpu):
        ok, _item = dpu.mailbox.try_receive(0)
        assert not ok


class TestSharedCounter:
    def test_fetch_add_sequence(self, dpu):
        counter = SharedCounter(dpu, owner=0, dmem_offset=0, initial=100)

        def kernel(ctx):
            old = yield from counter.fetch_add(ctx, 10)
            return old

        dpu.launch(kernel, cores=[1])
        assert counter.peek() == 110


class TestMutex:
    def test_mutual_exclusion_protects_critical_section(self, dpu):
        mutex = AteMutex(dpu, owner=0, dmem_offset=0)
        shared = {"value": 0, "in_section": 0, "max_in_section": 0}

        def kernel(ctx):
            for _ in range(3):
                yield from mutex.acquire(ctx)
                shared["in_section"] += 1
                shared["max_in_section"] = max(
                    shared["max_in_section"], shared["in_section"]
                )
                yield from ctx.compute(100)  # non-atomic read-modify-write
                shared["value"] += 1
                shared["in_section"] -= 1
                yield from mutex.release(ctx)

        dpu.launch(kernel, cores=range(8))
        assert shared["value"] == 24
        assert shared["max_in_section"] == 1
        assert mutex.holder() is None


class TestBarrier:
    def test_all_cores_reach_before_any_proceeds(self, dpu):
        barrier = AteBarrier(dpu, range(16), counter_offset=0, flag_offset=16)
        arrivals = []
        departures = []

        def kernel(ctx):
            yield from ctx.compute(ctx.core_id * 37)  # stagger arrivals
            arrivals.append(dpu.engine.now)
            yield from barrier.wait(ctx)
            departures.append(dpu.engine.now)

        dpu.launch(kernel, cores=range(16))
        assert max(arrivals) <= min(departures)

    def test_barrier_reusable_across_phases(self, dpu):
        barrier = AteBarrier(dpu, range(8), counter_offset=0, flag_offset=16)
        phases = []

        def kernel(ctx):
            for phase in range(3):
                yield from ctx.compute(ctx.core_id * 11 + phase)
                yield from barrier.wait(ctx)
                if ctx.core_id == 0:
                    phases.append(dpu.engine.now)

        dpu.launch(kernel, cores=range(8))
        assert len(phases) == 3
        assert phases == sorted(phases)


class TestWorkQueue:
    def test_each_chunk_claimed_exactly_once(self, dpu):
        queue = WorkQueue(dpu, owner=0, dmem_offset=0, num_chunks=50)
        claimed = []

        def kernel(ctx):
            while True:
                chunk = yield from queue.claim(ctx)
                if chunk is None:
                    return
                claimed.append(chunk)
                yield from ctx.compute(10 + (chunk % 7) * 30)

        dpu.launch(kernel, cores=range(8))
        assert sorted(claimed) == list(range(50))

    def test_empty_queue_returns_none(self, dpu):
        queue = WorkQueue(dpu, owner=0, dmem_offset=0, num_chunks=0)

        def kernel(ctx):
            chunk = yield from queue.claim(ctx)
            return chunk

        assert dpu.launch(kernel, cores=[0]).values[0] is None


class TestTaskHelpers:
    def test_static_partition_covers_everything(self):
        pieces = [static_partition(100, 7, p) for p in range(7)]
        assert pieces[0][0] == 0 and pieces[-1][1] == 100
        for (lo1, hi1), (lo2, _hi2) in zip(pieces, pieces[1:]):
            assert hi1 == lo2
        sizes = [hi - lo for lo, hi in pieces]
        assert max(sizes) - min(sizes) <= 1

    def test_static_partition_validates(self):
        with pytest.raises(ValueError):
            static_partition(10, 0, 0)
        with pytest.raises(ValueError):
            static_partition(10, 4, 4)

    def test_chunk_ranges(self):
        assert list(chunk_ranges(0, 10, 4)) == [(0, 4), (4, 8), (8, 10)]
        assert list(chunk_ranges(5, 5, 4)) == []
        with pytest.raises(ValueError):
            list(chunk_ranges(0, 10, 0))

    def test_dmem_layout_alignment_and_overflow(self):
        layout = DmemLayout(size=1024)
        first = layout.take(100, align=64)
        second = layout.take(8)
        assert first == 0
        assert second % 8 == 0 and second >= 100
        with pytest.raises(MemoryError):
            layout.take(2000)
        assert layout.remaining < 1024
