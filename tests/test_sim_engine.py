"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Engine, SimulationError


def test_timeout_advances_clock():
    engine = Engine()
    done = engine.timeout(100)
    engine.run()
    assert done.triggered
    assert engine.now == 100


def test_event_succeed_delivers_value():
    engine = Engine()
    event = engine.event()
    seen = []
    event.add_callback(lambda ev: seen.append(ev.value))
    event.succeed(42)
    engine.run()
    assert seen == [42]


def test_event_double_trigger_raises():
    engine = Engine()
    event = engine.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_fail_requires_exception_instance():
    engine = Engine()
    event = engine.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_process_yields_timeouts():
    engine = Engine()

    def worker():
        yield engine.timeout(10)
        yield engine.timeout(5)
        return "done"

    process = engine.process(worker())
    value = engine.run_until_complete(process)
    assert value == "done"
    assert engine.now == 15


def test_process_yields_bare_numbers_as_timeouts():
    engine = Engine()

    def worker():
        yield 7
        yield 3

    engine.run_until_complete(engine.process(worker()))
    assert engine.now == 10


def test_process_receives_event_value():
    engine = Engine()
    event = engine.event()

    def producer():
        yield engine.timeout(5)
        event.succeed("payload")

    def consumer():
        value = yield event
        return value

    engine.process(producer())
    consumer_proc = engine.process(consumer())
    assert engine.run_until_complete(consumer_proc) == "payload"


def test_subprocess_join():
    engine = Engine()

    def child():
        yield engine.timeout(20)
        return 5

    def parent():
        value = yield engine.process(child())
        return value * 2

    assert engine.run_until_complete(engine.process(parent())) == 10


def test_process_exception_propagates_to_waiter():
    engine = Engine()

    def failing():
        yield engine.timeout(1)
        raise ValueError("boom")

    def waiter():
        try:
            yield engine.process(failing())
        except ValueError as error:
            return str(error)

    assert engine.run_until_complete(engine.process(waiter())) == "boom"


def test_unwaited_process_failure_raises_at_run():
    engine = Engine()

    def failing():
        yield engine.timeout(1)
        raise ValueError("unobserved")

    engine.process(failing())
    with pytest.raises(ValueError, match="unobserved"):
        engine.run()


def test_all_of_collects_values_in_order():
    engine = Engine()
    slow = engine.timeout(10, value="slow")
    fast = engine.timeout(1, value="fast")

    def waiter():
        values = yield engine.all_of([slow, fast])
        return values

    assert engine.run_until_complete(engine.process(waiter())) == [
        "slow", "fast",
    ]
    assert engine.now == 10


def test_any_of_returns_first():
    engine = Engine()
    slow = engine.timeout(10, value="slow")
    fast = engine.timeout(1, value="fast")

    def waiter():
        index, value = yield engine.any_of([slow, fast])
        return index, value

    assert engine.run_until_complete(engine.process(waiter())) == (1, "fast")


def test_all_of_empty_succeeds_immediately():
    engine = Engine()

    def waiter():
        values = yield engine.all_of([])
        return values

    assert engine.run_until_complete(engine.process(waiter())) == []


def test_deterministic_tie_break_by_insertion_order():
    engine = Engine()
    order = []
    for tag in ("a", "b", "c"):
        engine.timeout(5).add_callback(lambda ev, t=tag: order.append(t))
    engine.run()
    assert order == ["a", "b", "c"]


def test_run_until_limit_stops_clock():
    engine = Engine()
    engine.timeout(100)
    stopped_at = engine.run(until=30)
    assert stopped_at == 30
    assert engine.now == 30


def test_deadlock_detection():
    engine = Engine()
    never = engine.event()

    def stuck():
        yield never

    process = engine.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_until_complete(process)


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.timeout(-1)
