"""Tests for the range-partitioned sort operator."""

import numpy as np
import pytest

from repro.apps.sql import Table, dpu_sort, efficiency_gain, xeon_sort
from repro.baseline import XeonModel
from repro.core import DPU


def make_table(values):
    return Table("t", {"v": values})


class TestDpuSort:
    def test_sorted_output_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**31, 64 * 1024).astype(np.uint32)
        dpu = DPU()
        result = dpu_sort(dpu, make_table(values).to_dpu(dpu), "v")
        assert np.array_equal(result.value, np.sort(values))

    def test_descending(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 10**6, 8192).astype(np.uint32)
        dpu = DPU()
        result = dpu_sort(dpu, make_table(values).to_dpu(dpu), "v",
                          descending=True)
        assert np.array_equal(result.value, np.sort(values)[::-1])

    def test_skewed_keys(self):
        rng = np.random.default_rng(2)
        values = (rng.zipf(1.3, 32 * 1024) % 100000).astype(np.uint32)
        dpu = DPU()
        result = dpu_sort(dpu, make_table(values).to_dpu(dpu), "v")
        assert np.array_equal(result.value, np.sort(values))

    def test_duplicate_heavy_keys(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 8, 16384).astype(np.uint32)
        dpu = DPU()
        result = dpu_sort(dpu, make_table(values).to_dpu(dpu), "v")
        assert np.array_equal(result.value, np.sort(values))

    def test_negative_keys_rejected(self):
        values = np.array([-1, 2, 3], dtype=np.int32)
        dpu = DPU()
        with pytest.raises(ValueError, match="unsigned"):
            dpu_sort(dpu, make_table(values).to_dpu(dpu), "v")

    def test_wider_keys(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 2**60, 8192).astype(np.uint64)
        dpu = DPU()
        result = dpu_sort(dpu, make_table(values).to_dpu(dpu), "v")
        assert np.array_equal(result.value, np.sort(values))


class TestXeonSortAndGain:
    def test_xeon_sort_functional(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 10**6, 20000).astype(np.uint32)
        result = xeon_sort(XeonModel(), make_table(values), "v")
        assert np.array_equal(result.value, np.sort(values))

    def test_sort_gain_positive(self):
        """Sort is partition-dominated on both platforms; the DPU's
        free hardware partition round keeps it ahead per watt."""
        rng = np.random.default_rng(6)
        values = rng.integers(0, 2**31, 128 * 1024).astype(np.uint32)
        table = make_table(values)
        dpu = DPU()
        dpu_result = dpu_sort(dpu, table.to_dpu(dpu), "v")
        xeon_result = xeon_sort(XeonModel(), table, "v")
        gain = efficiency_gain(dpu_result, xeon_result)
        assert gain > 2.0
