"""Tests for the instruction-level execution monitor (§4 tooling)."""

import numpy as np
import pytest

from repro.core import assemble
from repro.core.profiling import profile_program
from repro.memory.dmem import Scratchpad


LOOP_SOURCE = """
    li   r3, 0
    li   r4, 1024
loop:
    lw   r10, 0(r3)
    addi r11, r11, 1
    addi r3, r3, 4
    bne  r3, r4, loop
    halt
"""


def test_pc_counts_match_trip_counts():
    report = profile_program(assemble(LOOP_SOURCE))
    # The loop body runs 256 times; the preamble once.
    assert report.pc_counts[0] == 1
    assert report.pc_counts[5] == 256  # the bne
    assert report.result.halted


def test_opcode_mix():
    report = profile_program(assemble(LOOP_SOURCE))
    assert report.opcode_counts["lw"] == 256
    assert report.opcode_counts["bne"] == 256
    assert report.opcode_counts["li"] == 2


def test_hot_loop_detection():
    report = profile_program(assemble(LOOP_SOURCE))
    assert report.hot_loops
    loop = report.hot_loops[0]
    assert loop.start == 2 and loop.end == 5
    assert loop.iterations == 256
    assert loop.body_instructions == 4


def test_hottest_returns_disassembly():
    report = profile_program(assemble(LOOP_SOURCE))
    pc, executions, text = report.hottest(1)[0]
    assert executions == 256
    assert text  # disassembled form


def test_dual_issue_rate_reported():
    report = profile_program(assemble(LOOP_SOURCE))
    assert 0.0 < report.dual_issue_rate <= 1.0
    single = profile_program(assemble(LOOP_SOURCE), dual_issue=False)
    assert single.dual_issue_rate == 0.0
    assert single.result.cycles > report.result.cycles


def test_mispredict_rate():
    report = profile_program(assemble(LOOP_SOURCE))
    # Backward-taken predictor: only the exit mispredicts.
    assert report.mispredict_rate == pytest.approx(1 / 256)


def test_render_is_readable():
    report = profile_program(assemble(LOOP_SOURCE))
    text = report.render()
    assert "ipc=" in text
    assert "hottest instructions:" in text
    assert "loop [2..5] x256" in text


def test_profiler_finds_branchy_parser_problem():
    """The §5.5 use case: profiling shows the compare chain dominating
    and mispredicting — the evidence behind the jump-table rewrite."""
    source = """
        li   r3, 0
        li   r4, 512
        li   r20, 34
        li   r21, 48
        li   r22, 58
    byte:
        lbu  r10, 0(r3)
        beq  r10, r20, next
        beq  r10, r21, next
        beq  r10, r22, next
    next:
        addi r3, r3, 1
        bne  r3, r4, byte
        halt
    """
    dmem = Scratchpad(0)
    rng = np.random.default_rng(1)
    dmem.write(0, rng.choice(
        np.array([34, 48, 58, 97], dtype=np.uint8), size=512
    ))
    report = profile_program(assemble(source), dmem)
    # Compare instructions dominate the dynamic mix...
    assert report.opcode_counts["beq"] > report.opcode_counts["lbu"]
    # ...and the taken forward branches mispredict heavily.
    assert report.mispredict_rate > 0.15
