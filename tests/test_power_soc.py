"""Tests for the power model, PMU, SoC configs and DPU launch plumbing."""

import numpy as np
import pytest

from repro.core import (
    DPU,
    DPU_16NM,
    DPU_40NM,
    PowerModel,
    PowerState,
    XEON_TDP_WATTS,
)
from repro.core.pmu import PowerManagementUnit


class TestPowerModel:
    def test_breakdown_sums_to_provisioned(self):
        breakdown = PowerModel(DPU_40NM).breakdown()
        assert breakdown.total == pytest.approx(5.8, abs=0.05)

    def test_leakage_over_37_percent(self):
        # Paper §2.5: "Over 37% of our power goes towards leakage".
        fractions = PowerModel(DPU_40NM).breakdown().fractions()
        assert fractions["leakage"] > 0.37

    def test_dpcore_dynamic_51mw(self):
        breakdown = PowerModel(DPU_40NM).breakdown()
        assert breakdown.dpcores == pytest.approx(32 * 0.051, rel=1e-6)

    def test_perf_per_watt_uses_6w(self):
        model = PowerModel(DPU_40NM)
        assert model.comparison_watts == 6.0
        assert model.perf_per_watt(12.0) == 2.0

    def test_energy_accounting(self):
        model = PowerModel(DPU_40NM)
        # 800 M cycles = 1 second at provisioned power.
        assert model.energy_joules(800e6) == pytest.approx(5.8)

    def test_xeon_tdp_constant(self):
        assert XEON_TDP_WATTS == 145.0


class Test16nmShrink:
    def test_five_complexes_160_cores(self):
        assert DPU_16NM.num_complexes == 5
        assert DPU_16NM.total_cores == 160

    def test_bandwidth_76_gbps(self):
        total = DPU_16NM.ddr_peak_gbps * DPU_16NM.num_complexes
        assert total == pytest.approx(76.0, rel=0.01)

    def test_tdp_12w(self):
        assert DPU_16NM.tdp_watts == 12.0

    def test_efficiency_2_5x(self):
        # 5x compute+bandwidth for 2x power => 2.5x perf/watt.
        scale_perf = DPU_16NM.total_cores / DPU_40NM.total_cores
        scale_power = DPU_16NM.tdp_watts / DPU_40NM.tdp_watts
        assert scale_perf / scale_power == pytest.approx(2.5)

    def test_gather_bug_fixed_in_shrink(self):
        assert DPU_40NM.rtl_gather_bug
        assert not DPU_16NM.rtl_gather_bug


class TestPmu:
    def test_four_power_states(self):
        assert len(PowerState) == 4

    def test_power_gating_reduces_dynamic_power(self):
        pmu = PowerManagementUnit(DPU_40NM)
        full = pmu.effective_core_watts()
        pmu.set_macro_state(0, PowerState.OFF)
        pmu.set_macro_state(1, PowerState.IDLE)
        gated = pmu.effective_core_watts()
        assert gated < full
        assert pmu.active_cores() == 16
        assert pmu.state_of_core(0) is PowerState.OFF
        assert pmu.state_of_core(31) is PowerState.ACTIVE

    def test_bad_macro_rejected(self):
        pmu = PowerManagementUnit(DPU_40NM)
        with pytest.raises(ValueError):
            pmu.set_macro_state(4, PowerState.OFF)


class TestDpuLaunch:
    def test_per_core_args(self):
        dpu = DPU()

        def kernel(ctx, tag):
            yield from ctx.compute(1)
            return (ctx.core_id, tag)

        result = dpu.launch(
            kernel, args=("default",), cores=[0, 1],
            per_core_args={1: ("special",)},
        )
        assert result.values == [(0, "default"), (1, "special")]

    def test_store_load_array_roundtrip(self):
        dpu = DPU()
        data = np.arange(100, dtype=np.int64)
        address = dpu.store_array(data)
        assert np.array_equal(dpu.load_array(address, 100, np.int64), data)

    def test_launch_result_rates(self):
        dpu = DPU()

        def kernel(ctx):
            yield from ctx.compute(800)  # 1 us at 800 MHz

        result = dpu.launch(kernel, cores=[0])
        assert result.seconds == pytest.approx(1e-6)
        assert result.gbps(1000) == pytest.approx(1.0, rel=0.01)
        assert result.rate_per_second(100) == pytest.approx(1e8, rel=0.01)

    def test_sequential_launches_share_engine_time(self):
        dpu = DPU()

        def kernel(ctx):
            yield from ctx.compute(100)

        first = dpu.launch(kernel, cores=[0])
        second = dpu.launch(kernel, cores=[0])
        assert second.start_cycle >= first.end_cycle
        assert second.cycles == pytest.approx(first.cycles)

    def test_macro_of(self):
        assert DPU_40NM.macro_of(0) == 0
        assert DPU_40NM.macro_of(7) == 0
        assert DPU_40NM.macro_of(8) == 1
        assert DPU_40NM.macro_of(31) == 3
