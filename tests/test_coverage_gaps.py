"""Targeted tests for corners the broad suites skip over.

Three areas flagged by the coverage ratchet: histogram edge handling
in the perf-report renderer, the cycle accounting of degrade-policy
admissions, and the structured context a DMAD attaches when its CRC
replay bound is exhausted.
"""

import numpy as np
import pytest

from repro.apps.streaming import stream_columns
from repro.core import DPU
from repro.dms.dmac import DmsHardwareError
from repro.faults import FaultPlan
from repro.obs.registry import CounterRegistry
from repro.obs.report import PerfReport, render_histogram
from repro.runtime.admission import AdmissionController
from repro.sim import Engine
from repro.sim.trace import SampleSeries


# -- obs.report: histogram edges ---------------------------------------------


class TestHistogramEdges:
    def test_empty_series_collapses_to_no_buckets(self):
        series = SampleSeries("lat")
        counts, edges = series.histogram(8)
        assert counts == [] and edges == []

    def test_constant_series_collapses_to_one_bucket(self):
        series = SampleSeries("lat")
        series.extend([7.0, 7.0, 7.0])
        counts, edges = series.histogram(8)
        assert counts == [3]
        assert edges == [7.0, 7.0]

    def test_maximum_sample_lands_in_last_bucket(self):
        series = SampleSeries("lat")
        series.extend([0.0, 1.0, 2.0, 3.0, 4.0])
        counts, edges = series.histogram(4)
        assert sum(counts) == 5  # the max is not dropped off the end
        assert counts[-1] == 2  # 3.0 and 4.0 share the closed last bin
        assert edges[0] == 0.0 and edges[-1] == 4.0
        assert len(edges) == len(counts) + 1

    def test_nonpositive_bins_rejected(self):
        series = SampleSeries("lat")
        series.add(1.0)
        with pytest.raises(ValueError, match="bins"):
            series.histogram(0)

    def test_render_histogram_degenerate_series(self):
        """The renderer must not divide by a zero peak or a zero-width
        range on constant input."""
        series = SampleSeries("lat")
        series.extend([5.0, 5.0])
        lines = render_histogram("lat", series, bins=6)
        assert "n=2" in lines[0] and "p50=5" in lines[0]
        assert len(lines) == 2  # header + the single collapsed bucket
        assert lines[1].strip().startswith("[")

    def test_render_histogram_bar_widths_scale_to_peak(self):
        series = SampleSeries("lat")
        series.extend([0.0] * 10 + [9.0])
        lines = render_histogram("lat", series, bins=2, width=10)
        assert lines[1].count("#") == 10  # the peak bucket fills the width
        assert lines[2].count("#") == 1  # 1/10 of the peak, rounded

    def test_report_rates_zero_on_empty_window(self):
        report = PerfReport(CounterRegistry(), elapsed_cycles=0.0,
                            clock_hz=1e9)
        assert report.gbps("dpu0.dms.bytes_read") == 0.0
        assert report.rate_per_second("dpu0.dms.bytes_read") == 0.0

    def test_render_skips_empty_series_but_shows_populated(self):
        registry = CounterRegistry()
        registry.scope("dpu0.dms").add("bytes_read", 1024)
        empty = SampleSeries("quiet")
        busy = SampleSeries("ate.latency")
        busy.extend([10.0, 20.0, 30.0])
        report = PerfReport(registry, elapsed_cycles=1000.0, clock_hz=1e9,
                            series={"quiet": empty, "ate.latency": busy})
        text = report.render()
        assert "ate.latency: n=3" in text
        assert "quiet" not in text


# -- runtime.admission: degrade-path cycle accounting ------------------------


def _admit(engine, controller, tickets, site):
    def proc():
        ticket = yield from controller.acquire(site)
        tickets.append(ticket)
    engine.process(proc())


class TestDegradeCycleAccounting:
    def test_over_committed_admission_never_waits(self):
        """A saturated degrade admission runs *now*: zero waited
        cycles on the ticket and no wait_cycles counter — the cost is
        taken as reduced fanout, not as queueing delay."""
        engine = Engine()
        controller = AdmissionController(engine, max_concurrent=1,
                                         policy="degrade",
                                         degrade_scale=0.25)
        tickets = []
        for index in range(3):
            _admit(engine, controller, tickets, f"job{index}")
        engine.run()
        assert engine.now == 0.0  # nothing ever slept
        assert [t.degraded for t in tickets] == [False, True, True]
        assert all(t.waited_cycles == 0.0 for t in tickets)
        assert "admission.wait_cycles" not in controller.stats.counters
        assert controller.stats.counters["admission.degraded"] == 2
        assert controller.stats.counters["admission.admitted"] == 3

    def test_degraded_ticket_shrinks_fanout_floor_one(self):
        engine = Engine()
        controller = AdmissionController(engine, max_concurrent=1,
                                         policy="degrade",
                                         degrade_scale=0.25)
        tickets = []
        _admit(engine, controller, tickets, "a")
        _admit(engine, controller, tickets, "b")
        engine.run()
        full, degraded = tickets
        assert full.fanout(range(8)) == list(range(8))
        assert degraded.fanout(range(8)) == [0, 1]  # 8 * 0.25
        assert degraded.fanout([5]) == [5]  # never below one core

    def test_over_admissions_release_before_slots(self):
        """release() retires over-committed jobs first, so the peak
        accounting ends balanced and the slot frees last."""
        engine = Engine()
        controller = AdmissionController(engine, max_concurrent=1,
                                         policy="degrade")
        tickets = []
        _admit(engine, controller, tickets, "a")
        _admit(engine, controller, tickets, "b")
        engine.run()
        assert controller.occupancy()["over_admitted"] == 1
        assert controller.stats.gauges["admission.running_peak"] == 2
        controller.release()  # retires the over-admission
        assert "over_admitted" not in controller.occupancy()
        assert controller.limiter.running == 1
        controller.release()  # now the slot itself
        assert controller.limiter.running == 0

    def test_token_starved_degrade_takes_slot_but_marks_degraded(self):
        """Degrade triggered by the token bucket (slots free) must
        still consume a real slot — only *slot* saturation
        over-commits."""
        engine = Engine()
        controller = AdmissionController(engine, max_concurrent=4,
                                         rate_per_kcycle=0.001, burst=1.0,
                                         policy="degrade")
        tickets = []
        _admit(engine, controller, tickets, "a")  # takes the only token
        _admit(engine, controller, tickets, "b")  # token-starved
        engine.run()
        assert [t.degraded for t in tickets] == [False, True]
        assert controller.limiter.running == 2  # both hold real slots
        assert controller.occupancy().get("over_admitted") is None

    def test_degraded_sort_charges_more_cycles_for_same_bytes(self):
        """The governed-operator contract behind the policy: a
        degraded (spilling) sort returns byte-identical output and a
        strictly larger cycle bill."""
        from repro.apps.sql import Table, dpu_sort
        from repro.runtime.admission import MemoryGovernor

        rng = np.random.default_rng(9)
        values = rng.integers(0, 1 << 16, 8192).astype(np.int32)
        table = Table("t", {"v": values})

        eager_dpu = DPU()
        eager = dpu_sort(eager_dpu, table.to_dpu(eager_dpu), "v")

        tight_dpu = DPU()
        governor = MemoryGovernor(limit_bytes=128 * 1024)
        spilled = dpu_sort(tight_dpu, table.to_dpu(tight_dpu), "v",
                           governor=governor)

        assert spilled.value.tobytes() == eager.value.tobytes()
        assert spilled.value.tobytes() == np.sort(values).tobytes()
        assert spilled.cycles > eager.cycles
        assert spilled.detail.get("spill_segments", 0) > 1


# -- faults: replay-bound exhaustion -----------------------------------------


class TestCrcReplayExhaustion:
    @staticmethod
    def _run_poisoned(dpu):
        addr = dpu.store_array(np.zeros(64, dtype=np.uint64))

        def kernel(ctx):
            yield from stream_columns(ctx, [(addr, 8)], 64, 64,
                                      lambda *a: 8)

        dpu.launch(kernel, cores=[0])

    def test_exhaustion_error_carries_structured_context(self):
        dpu = DPU(fault_plan=FaultPlan(seed=2,
                                       rates={"dms.descriptor": 1.0}))
        with pytest.raises(DmsHardwareError) as excinfo:
            self._run_poisoned(dpu)
        error = excinfo.value
        retries = dpu.config.dms_crc_retries
        assert error.retry_count == retries + 1  # the bound, then fail
        assert error.site == "dmad[0].crc"
        assert error.sim_time is not None and error.sim_time > 0
        assert "channel_pending" in error.occupancy
        # The message embeds the same context for log consumers.
        assert f"retries={retries + 1}" in str(error)
        assert "site=dmad[0].crc" in str(error)

    def test_every_replay_up_to_the_bound_is_counted_and_billed(self):
        dpu = DPU(fault_plan=FaultPlan(seed=2,
                                       rates={"dms.descriptor": 1.0}))
        with pytest.raises(DmsHardwareError):
            self._run_poisoned(dpu)
        retries = dpu.config.dms_crc_retries
        assert dpu.stats.counters["dmad.crc_replays"] == retries + 1
        # Each replay before the fatal one burns setup + CRC-check
        # cycles in simulated time.
        per_replay = (dpu.config.dms_descriptor_setup_cycles
                      + dpu.config.dms_crc_check_cycles)
        assert dpu.engine.now >= retries * per_replay
        assert dpu.faults.fault_count("dms.descriptor") == retries + 1

    def test_bound_is_config_driven(self):
        from repro.core.config import DPUConfig

        config = DPUConfig(dms_crc_retries=1)
        dpu = DPU(config=config,
                  fault_plan=FaultPlan(seed=2,
                                       rates={"dms.descriptor": 1.0}))
        with pytest.raises(DmsHardwareError) as excinfo:
            self._run_poisoned(dpu)
        assert excinfo.value.retry_count == 2
        assert dpu.stats.counters["dmad.crc_replays"] == 2
