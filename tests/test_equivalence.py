"""Golden-snapshot equivalence harness.

The simulator's host-speed fast paths (batched scheduler, vectorized
data plane, cached descriptor programs) must never change *modelled*
behaviour: cycle counts are the paper's results and the functional
data path is byte-exact. This harness pins both. Each scenario in the
canonical matrix runs a workload end to end and records

* the modelled cycle count (bit-exact float),
* a SHA-256 digest of the result bytes (byte-exact data path),
* the hardware-counter snapshot (every counter the run touched).

Snapshots live in ``tests/goldens/<scenario>.json``. They were
generated on the pre-fast-path tree, so any divergence introduced by
a host-perf change fails here with a readable cycle/byte/counter
diff. Regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/test_equivalence.py --update-goldens

and review the JSON diff like any other behavioural change.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.apps.sql import (
    AggSpec,
    Between,
    Table,
    dpu_filter,
    dpu_groupby,
    dpu_partitioned_join_count,
    dpu_sort,
    load_tpch_on_dpu,
    run_query,
)
from repro.baseline import XeonModel
from repro.cluster import Cluster, cluster_filter_count
from repro.core import DPU, DPU_40NM
from repro.dms import (
    Descriptor,
    DescriptorType,
    PartitionLayout,
    PartitionMode,
    PartitionSpec,
)
from repro.workloads.tpch import generate_tpch

GOLDEN_DIR = Path(__file__).parent / "goldens"


# -- canonical digests --------------------------------------------------------


def _feed(hasher, obj):
    """Feed ``obj`` into ``hasher`` in a canonical, type-tagged form."""
    if isinstance(obj, np.ndarray):
        hasher.update(b"nd:" + str(obj.dtype).encode() + str(obj.shape).encode())
        hasher.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, dict):
        hasher.update(b"d:")
        for key in sorted(obj, key=repr):
            _feed(hasher, key)
            _feed(hasher, obj[key])
    elif isinstance(obj, (list, tuple)):
        hasher.update(b"l:")
        for item in obj:
            _feed(hasher, item)
    elif isinstance(obj, float):
        hasher.update(b"f:" + repr(obj).encode())
    elif isinstance(obj, (int, np.integer)):
        hasher.update(b"i:" + str(int(obj)).encode())
    elif isinstance(obj, bytes):
        hasher.update(b"b:" + obj)
    elif obj is None:
        hasher.update(b"n:")
    else:
        hasher.update(b"s:" + str(obj).encode())


def digest(obj) -> str:
    hasher = hashlib.sha256()
    _feed(hasher, obj)
    return hasher.hexdigest()


# -- the scenario matrix ------------------------------------------------------


def _table(seed: int, rows: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table("t", {
        "a": rng.integers(0, 10000, rows).astype(np.int32),
        "b": rng.integers(0, 500, rows).astype(np.int32),
    })


def _snapshot(dpu: DPU, cycles, value) -> dict:
    return {
        "cycles": float(cycles),
        "digest": digest(value),
        "counters": {k: float(v) for k, v in sorted(dpu.stats.snapshot().items())},
    }


def scenario_filter():
    dpu = DPU()
    dtable = _table(101, 16 * 1024).to_dpu(dpu)
    result = dpu_filter(dpu, dtable, Between("a", 1000, 7000))
    return _snapshot(dpu, result.cycles, result.value)


def scenario_gather():
    dpu = DPU(DPU_40NM.with_updates(rtl_gather_bug=False))
    rows = 512
    data = {
        core: dpu.store_array(
            (np.arange(rows, dtype=np.uint64) * 7 + core)
        )
        for core in range(4)
    }
    bv = np.full(rows // 8, 0x9D, dtype=np.uint8)

    def kernel(ctx):
        ctx.dmem.write(16384, bv)
        ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                            rows=len(bv) // 8, col_width=8, dmem_addr=16384,
                            internal_mem="bv"))
        ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMEM,
                            rows=rows, col_width=8,
                            ddr_addr=data[ctx.core_id], dmem_addr=0,
                            gather_src=True, notify_event=0))
        yield from ctx.wfe(0)
        ctx.clear_event(0)

    launch = dpu.launch(kernel, cores=[0, 1, 2, 3])
    selected = int(np.unpackbits(bv).sum())
    out = [dpu.scratchpads[core].read(0, selected * 8) for core in range(4)]
    return _snapshot(dpu, launch.cycles, out)


def scenario_partition():
    dpu = DPU()
    rng = np.random.default_rng(7)
    rows = 4096
    key = rng.integers(0, 2**31, rows).astype(np.uint32)
    payload = rng.integers(0, 2**31, rows).astype(np.uint32)
    key_addr = dpu.store_array(key)
    payload_addr = dpu.store_array(payload)
    spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
    count_offset = 31 * 1024
    layout = PartitionLayout(target_cores=tuple(range(32)), dmem_base=0,
                             capacity=24 * 1024, count_offset=count_offset)

    def driver(ctx):
        ctx.push(Descriptor(dtype=DescriptorType.HASH_CONFIG, partition=spec,
                            partition_layout=layout))
        chunk = 512
        for start in range(0, rows, chunk):
            count = min(chunk, rows - start)
            ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMS, rows=count,
                                col_width=4, ddr_addr=key_addr + start * 4,
                                is_key_column=True))
            ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMS, rows=count,
                                col_width=4, ddr_addr=payload_addr + start * 4))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS, partition=spec))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMEM, partition=spec))
        while not ctx.dmad.idle():
            yield from ctx.compute(100)

    launch = dpu.launch(driver, cores=[0])
    out = []
    for core in range(32):
        count = int(dpu.scratchpads[core].view(count_offset, 4, np.uint32)[0])
        out.append((count, dpu.scratchpads[core].read(0, count * 8)))
    return _snapshot(dpu, launch.cycles, out)


def scenario_sort():
    dpu = DPU()
    dtable = _table(202, 8 * 1024).to_dpu(dpu)
    result = dpu_sort(dpu, dtable, "a")
    return _snapshot(dpu, result.cycles, result.value)


def scenario_groupby():
    dpu = DPU()
    dtable = _table(303, 8 * 1024).to_dpu(dpu)
    result = dpu_groupby(dpu, dtable, "b",
                         [AggSpec("sum", "a"), AggSpec("count", "a")])
    return _snapshot(dpu, result.cycles, result.value)


def scenario_join():
    dpu = DPU()
    rng = np.random.default_rng(404)
    build = Table("build", {
        "k": rng.integers(0, 1500, 2048).astype(np.uint32),
    }).to_dpu(dpu)
    probe = Table("probe", {
        "k": rng.integers(0, 1500, 6144).astype(np.uint32),
    }).to_dpu(dpu)
    result = dpu_partitioned_join_count(dpu, build, "k", probe, "k")
    return _snapshot(dpu, result.cycles, result.value)


def scenario_tpch_q1():
    data = generate_tpch(scale=0.002, seed=11)
    dpu = DPU()
    tables = load_tpch_on_dpu(dpu, data)
    dpu_result, _xeon = run_query("Q1", dpu, tables, data, XeonModel())
    return _snapshot(dpu, dpu_result.cycles, dpu_result.value)


def scenario_ate_pingpong():
    dpu = DPU()
    rounds = 32
    counter_addr = dpu.address_map.dmem_address(0, 512)

    def kernel(ctx):
        total = 0
        for _ in range(rounds):
            value = yield from ctx.fetch_add(0, counter_addr, 1)
            total += value
            yield from ctx.compute(50)
        return total

    launch = dpu.launch(kernel, cores=[1, 2, 3, 4])
    final = dpu.scratchpads[0].read_u64(512)
    return _snapshot(dpu, launch.cycles, (launch.values, final))


def scenario_cluster_2dpu():
    cluster = Cluster(num_dpus=2)
    rng = np.random.default_rng(505)
    shards = [rng.integers(0, 10000, 4096).astype(np.int64) for _ in range(2)]
    result = cluster_filter_count(cluster, shards, 2000, 8000)
    counters = {k: float(v)
                for k, v in sorted(cluster.dpus[0].stats.snapshot().items())}
    counters["net.bytes_sent"] = float(result.network_bytes)
    return {
        "cycles": float(result.cycles),
        "digest": digest(result.value),
        "counters": counters,
    }


SCENARIOS = {
    "filter": scenario_filter,
    "gather": scenario_gather,
    "partition": scenario_partition,
    "sort": scenario_sort,
    "groupby": scenario_groupby,
    "join": scenario_join,
    "tpch_q1": scenario_tpch_q1,
    "ate_pingpong": scenario_ate_pingpong,
    "cluster_2dpu": scenario_cluster_2dpu,
}


# -- golden comparison --------------------------------------------------------


def _diff(name: str, golden: dict, observed: dict) -> str:
    lines = [f"equivalence divergence in scenario {name!r}:"]
    if golden["cycles"] != observed["cycles"]:
        delta = observed["cycles"] - golden["cycles"]
        lines.append(
            f"  cycles: golden {golden['cycles']!r} != observed "
            f"{observed['cycles']!r} (delta {delta:+g})"
        )
    if golden["digest"] != observed["digest"]:
        lines.append(
            f"  result bytes: golden digest {golden['digest'][:16]}... != "
            f"observed {observed['digest'][:16]}..."
        )
    gold_counters = golden["counters"]
    obs_counters = observed["counters"]
    for key in sorted(set(gold_counters) | set(obs_counters)):
        gold_value = gold_counters.get(key)
        obs_value = obs_counters.get(key)
        if gold_value != obs_value:
            lines.append(f"  counter {key}: golden {gold_value} != {obs_value}")
    if len(lines) == 1:
        lines.append("  (golden file is stale or malformed)")
    return "\n".join(lines)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_equivalence_golden(name, request):
    observed = SCENARIOS[name]()
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(observed, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"no golden for scenario {name!r}; generate it with "
            f"--update-goldens and commit {path}"
        )
    golden = json.loads(path.read_text())
    if golden != observed:
        pytest.fail(_diff(name, golden, observed), pytrace=False)


def test_scenarios_are_deterministic():
    """Two runs of a scenario in one process must agree exactly —
    otherwise golden comparisons would flap regardless of fast paths."""
    first = SCENARIOS["filter"]()
    second = SCENARIOS["filter"]()
    assert first == second
