"""Tests for the address map, DDR model and DMEM scratchpads."""

import numpy as np
import pytest

from repro.memory import (
    AddressMap,
    AddressRangeError,
    DDRChannel,
    DDRMemory,
    DMEM_SIZE,
    Scratchpad,
)
from repro.sim import Engine


def make_map(capacity=1 << 20, cores=32):
    return AddressMap(ddr_capacity=capacity, num_cores=cores)


class TestAddressMap:
    def test_ddr_classification(self):
        amap = make_map()
        assert amap.is_ddr(0)
        assert amap.is_ddr((1 << 20) - 1)
        assert not amap.is_ddr(1 << 20)

    def test_dmem_windows_distinct_per_core(self):
        amap = make_map()
        windows = [amap.dmem_window(core) for core in range(32)]
        for i, window in enumerate(windows):
            assert len(window) == DMEM_SIZE
            for other in windows[i + 1 :]:
                assert window.stop <= other.start or other.stop <= window.start

    def test_dmem_address_roundtrip(self):
        amap = make_map()
        address = amap.dmem_address(7, 1234)
        assert amap.is_dmem(address)
        assert amap.split_dmem(address) == (7, 1234)

    def test_dmem_offset_bounds(self):
        amap = make_map()
        with pytest.raises(AddressRangeError):
            amap.dmem_address(0, DMEM_SIZE)
        with pytest.raises(AddressRangeError):
            amap.dmem_address(32, 0)

    def test_check_ddr_range(self):
        amap = make_map()
        amap.check_ddr_range(0, 1 << 20)
        with pytest.raises(AddressRangeError):
            amap.check_ddr_range(10, 1 << 20)
        with pytest.raises(AddressRangeError):
            amap.check_ddr_range(0, -1)

    def test_overlapping_dmem_base_rejected(self):
        with pytest.raises(ValueError):
            AddressMap(ddr_capacity=1 << 41, num_cores=1)


class TestDDRMemory:
    def test_read_write_roundtrip(self):
        ddr = DDRMemory(make_map())
        payload = np.arange(256, dtype=np.uint32)
        ddr.write(4096, payload)
        assert np.array_equal(ddr.read(4096, 1024).view(np.uint32), payload)

    def test_view_is_zero_copy(self):
        ddr = DDRMemory(make_map())
        view = ddr.view(0, 8, np.uint64)
        view[0] = 0xDEADBEEF
        assert ddr.read_u64(0) == 0xDEADBEEF

    def test_u64_i64_accessors(self):
        ddr = DDRMemory(make_map())
        ddr.write_i64(64, -123456789)
        assert ddr.read_i64(64) == -123456789
        ddr.write_u64(72, 2**63 + 1)
        assert ddr.read_u64(72) == 2**63 + 1

    def test_out_of_range_rejected(self):
        ddr = DDRMemory(make_map())
        with pytest.raises(AddressRangeError):
            ddr.read((1 << 20) - 4, 8)


class TestScratchpad:
    def test_size_is_32k(self):
        assert Scratchpad(0).size == 32 * 1024

    def test_read_write(self):
        dmem = Scratchpad(3)
        dmem.write(100, np.arange(16, dtype=np.uint8))
        assert list(dmem.read(100, 16)) == list(range(16))

    def test_bounds_checked(self):
        dmem = Scratchpad(0)
        with pytest.raises(IndexError):
            dmem.read(DMEM_SIZE - 4, 8)
        with pytest.raises(IndexError):
            dmem.write(-1, np.zeros(4, dtype=np.uint8))

    def test_fill(self):
        dmem = Scratchpad(0)
        dmem.write(0, np.arange(64, dtype=np.uint8))
        dmem.fill(0)
        assert dmem.data.sum() == 0


class TestDDRChannel:
    def run_request(self, channel, engine, address, nbytes, **kwargs):
        def worker():
            yield channel.request(address, nbytes, **kwargs)

        engine.run_until_complete(engine.process(worker()))

    def test_peak_rate(self):
        engine = Engine()
        channel = DDRChannel(
            engine, peak_bytes_per_cycle=16, transaction_overhead_cycles=0,
            row_miss_cycles=0,
        )
        self.run_request(channel, engine, 0, 1600)
        assert engine.now == 100

    def test_axi_transaction_overhead(self):
        engine = Engine()
        channel = DDRChannel(
            engine, peak_bytes_per_cycle=16, transaction_overhead_cycles=4,
            row_miss_cycles=0,
        )
        # 1024 B = 4 AXI transactions of <=256 B -> 16 overhead cycles.
        self.run_request(channel, engine, 0, 1024)
        assert engine.now == 64 + 16

    def test_row_miss_charged_once_per_new_row(self):
        engine = Engine()
        channel = DDRChannel(
            engine, peak_bytes_per_cycle=16, transaction_overhead_cycles=0,
            row_miss_cycles=20, row_size=4096,
        )
        self.run_request(channel, engine, 0, 256)  # opens row 0
        misses_after_first = channel.row_misses
        self.run_request(channel, engine, 256, 256)  # same row: hit
        assert channel.row_misses == misses_after_first == 1

    def test_interleaved_streams_keep_rows_open_per_bank(self):
        engine = Engine()
        channel = DDRChannel(
            engine, peak_bytes_per_cycle=16, transaction_overhead_cycles=0,
            row_miss_cycles=20, row_size=4096, num_banks=8,
        )
        # Two streams in different rows: after warm-up, both hit.
        self.run_request(channel, engine, 0, 256)
        self.run_request(channel, engine, 12 * 4096, 256)
        warm = channel.row_misses
        self.run_request(channel, engine, 256, 256)
        self.run_request(channel, engine, 12 * 4096 + 256, 256)
        assert channel.row_misses == warm

    def test_write_row_miss_discounted(self):
        engine = Engine()
        channel = DDRChannel(
            engine, peak_bytes_per_cycle=16, transaction_overhead_cycles=0,
            row_miss_cycles=40, row_size=4096,
        )
        self.run_request(channel, engine, 0, 16, is_write=True)
        write_time = engine.now
        engine2 = Engine()
        channel2 = DDRChannel(
            engine2, peak_bytes_per_cycle=16, transaction_overhead_cycles=0,
            row_miss_cycles=40, row_size=4096,
        )
        def worker():
            yield channel2.request(0, 16)
        engine2.run_until_complete(engine2.process(worker()))
        assert write_time < engine2.now  # write buffering hides activates

    def test_zero_bytes_is_free(self):
        engine = Engine()
        channel = DDRChannel(engine)
        self.run_request(channel, engine, 0, 0)
        assert engine.now == 0
