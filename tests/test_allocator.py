"""Tests for the two-level (Hoard/TCMalloc-like) heap allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    SIZE_CLASSES,
    SUPERBLOCK_SIZE,
    HeapAllocator,
    OutOfMemoryError,
)


def make_heap(capacity=4 * 1024 * 1024, cores=4):
    return HeapAllocator(base=0, capacity=capacity, num_cores=cores)


def test_small_allocations_distinct_and_aligned():
    heap = make_heap()
    addresses = [heap.malloc(48, core_id=0) for _ in range(100)]
    assert len(set(addresses)) == 100
    for address in addresses:
        assert address % 16 == 0


def test_allocations_do_not_overlap():
    heap = make_heap()
    live = []
    for size in (16, 100, 5000, 40000, 16, 100):
        address = heap.malloc(size)
        live.append((address, heap.allocation_size(address)))
    intervals = sorted((a, a + s) for a, s in live)
    for (lo1, hi1), (lo2, _hi2) in zip(intervals, intervals[1:]):
        assert hi1 <= lo2


def test_free_and_reuse_same_class():
    heap = make_heap()
    address = heap.malloc(64, core_id=1)
    heap.free(address)
    again = heap.malloc(64, core_id=1)
    assert again == address  # slot reused from the local free list


def test_per_core_heaps_are_independent():
    heap = make_heap()
    a = heap.malloc(64, core_id=0)
    b = heap.malloc(64, core_id=1)
    # Different cores draw from different superblocks.
    assert abs(a - b) >= SUPERBLOCK_SIZE or a // SUPERBLOCK_SIZE != b // SUPERBLOCK_SIZE


def test_large_allocation_bypasses_classes():
    heap = make_heap()
    big = max(SIZE_CLASSES) + 1
    address = heap.malloc(big)
    assert heap.allocation_size(address) == big
    heap.free(address)


def test_double_free_rejected():
    heap = make_heap()
    address = heap.malloc(32)
    heap.free(address)
    with pytest.raises(ValueError):
        heap.free(address)


def test_free_unknown_address_rejected():
    heap = make_heap()
    with pytest.raises(ValueError):
        heap.free(12345)


def test_out_of_memory_raises():
    heap = HeapAllocator(base=0, capacity=SUPERBLOCK_SIZE, num_cores=1)
    with pytest.raises(OutOfMemoryError):
        heap.malloc(SUPERBLOCK_SIZE * 2)


def test_live_bytes_and_peak_tracking():
    heap = make_heap()
    a = heap.malloc(1000)
    peak_a = heap.peak_live_bytes
    heap.free(a)
    assert heap.live_bytes() == 0
    assert heap.peak_live_bytes == peak_a


def test_superblock_returned_after_drain():
    heap = make_heap(capacity=8 * SUPERBLOCK_SIZE)
    # Fill several superblocks of one class, then free everything;
    # hysteresis keeps one cached, the rest return to the global heap.
    per_block = SUPERBLOCK_SIZE // 1024
    addresses = [heap.malloc(1024, core_id=0) for _ in range(3 * per_block)]
    out_before = heap.global_heap.superblocks_out
    for address in addresses:
        heap.free(address)
    assert heap.global_heap.superblocks_out < out_before


def test_coalescing_allows_big_after_frees():
    heap = make_heap(capacity=4 * SUPERBLOCK_SIZE)
    big = SUPERBLOCK_SIZE + 1  # large class
    a = heap.malloc(big)
    b = heap.malloc(big)
    heap.free(a)
    heap.free(b)
    # After coalescing, an even bigger allocation fits.
    c = heap.malloc(2 * big)
    assert heap.allocation_size(c) == 2 * big


@given(
    st.lists(
        st.tuples(st.integers(1, 50000), st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=150,
    )
)
@settings(max_examples=50, deadline=None)
def test_random_alloc_free_never_overlaps(operations):
    heap = make_heap()
    live = {}
    for size, core, should_free in operations:
        address = heap.malloc(size, core_id=core)
        effective = heap.allocation_size(address)
        for other, other_size in live.items():
            assert address + effective <= other or other + other_size <= address
        if should_free:
            heap.free(address)
        else:
            live[address] = effective
    for address in live:
        heap.free(address)
    assert heap.live_bytes() == 0


# -- structured exhaustion errors, stats, and watermarks -------------------


def test_oom_error_carries_structured_context():
    heap = make_heap(capacity=SUPERBLOCK_SIZE)
    with pytest.raises(OutOfMemoryError) as info:
        heap.malloc(SUPERBLOCK_SIZE * 4, core_id=2)
    error = info.value
    assert error.site == "heap.malloc[core 2]"
    assert error.requested == SUPERBLOCK_SIZE * 4
    assert error.heap_stats["live_bytes"] == 0
    assert error.heap_stats["global"]["capacity"] == SUPERBLOCK_SIZE
    assert "site=heap.malloc" in str(error)


def test_oom_error_includes_superblock_occupancy():
    heap = make_heap(capacity=2 * SUPERBLOCK_SIZE)
    held = [heap.malloc(1024, core_id=0) for _ in range(8)]
    with pytest.raises(OutOfMemoryError) as info:
        heap.malloc(4 * SUPERBLOCK_SIZE)
    stats = info.value.heap_stats
    (local,) = stats["local_heaps"]
    assert local["core_id"] == 0
    assert local["size_classes"][1024]["allocated_slots"] == 8
    assert local["size_classes"][1024]["superblocks"] == 1
    for address in held:
        heap.free(address)


def test_stats_reports_two_level_shape():
    heap = make_heap()
    a = heap.malloc(100, core_id=1)
    b = heap.malloc(SUPERBLOCK_SIZE)  # large path
    stats = heap.stats()
    assert stats["live_bytes"] == heap.live_bytes()
    assert stats["global"]["superblocks_out"] == 1
    assert stats["global"]["fragments"] >= 1
    (local,) = stats["local_heaps"]
    assert local["core_id"] == 1 and local["bytes_in_use"] == 128
    heap.free(a)
    heap.free(b)


def test_superblock_recycled_across_cycles():
    """Exhaustion then full drain: the next allocation cycle reuses
    recycled superblocks instead of leaking the address space."""
    heap = make_heap(capacity=4 * SUPERBLOCK_SIZE)
    per_block = SUPERBLOCK_SIZE // 32768
    for _ in range(3):
        addresses = [heap.malloc(32768) for _ in range(3 * per_block)]
        with pytest.raises(OutOfMemoryError):
            heap.malloc(2 * SUPERBLOCK_SIZE)
        for address in addresses:
            heap.free(address)
    assert heap.live_bytes() == 0
    assert heap.global_heap.free_bytes() >= 3 * SUPERBLOCK_SIZE


def test_watermark_fires_on_crossing_and_rearms():
    heap = make_heap(capacity=4 * SUPERBLOCK_SIZE)
    fired = []
    heap.add_watermark(0.5, lambda h: fired.append(h.live_bytes()))
    big = SUPERBLOCK_SIZE + 1
    a = heap.malloc(big)
    assert not fired
    b = heap.malloc(big)
    assert len(fired) == 1  # crossed 50%
    c = heap.malloc(big)
    assert len(fired) == 1  # still above: no re-fire
    heap.free(b)
    heap.free(c)
    d = heap.malloc(big)
    e = heap.malloc(big)
    assert len(fired) == 2  # dropped below, re-armed, crossed again
    for address in (a, d, e):
        heap.free(address)


def test_watermark_rejects_bad_fraction():
    heap = make_heap()
    with pytest.raises(ValueError):
        heap.add_watermark(0.0, lambda h: None)
    with pytest.raises(ValueError):
        heap.add_watermark(1.5, lambda h: None)
