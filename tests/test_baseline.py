"""Tests for the Xeon roofline and DBMS executor cost models."""

import pytest

from repro.baseline import XEON_E5_2699V3, XeonConfig, XeonModel
from repro.baseline.dbms import DbmsCostModel, ScanShape


class TestRoofline:
    def test_memory_seconds(self):
        model = XeonModel()
        # 34.5 GB in one second at effective bandwidth.
        assert model.memory_seconds(34.5e9) == pytest.approx(1.0)
        assert model.memory_seconds(34.5e9, passes=2) == pytest.approx(2.0)

    def test_compute_seconds(self):
        model = XeonModel()
        rate = 3.0 * 2.3e9 * 36
        assert model.compute_seconds(rate) == pytest.approx(1.0)

    def test_roofline_takes_max(self):
        model = XeonModel()
        compute_heavy = model.roofline_seconds(
            instructions=1e12, nbytes=1e6
        )
        memory_heavy = model.roofline_seconds(
            instructions=1e6, nbytes=1e12
        )
        assert compute_heavy == model.compute_seconds(1e12)
        assert memory_heavy == model.memory_seconds(1e12)

    def test_sajson_anchor_consistent(self):
        """The paper's SAJSON measurement (5.2 GB/s, IPC 3.05) should
        be reachable by the model's compute side."""
        model = XeonModel()
        instr_per_byte = (
            model.config.scalar_ipc * model.config.clock_hz
            * model.config.cores / 5.2e9
        )
        seconds = model.compute_seconds(5.2e9 * instr_per_byte)
        assert seconds == pytest.approx(1.0, rel=0.01)

    def test_partition_rounds(self):
        model = XeonModel()
        assert model.partition_rounds(1) == 0
        assert model.partition_rounds(200) == 1
        assert model.partition_rounds(300) == 2
        assert model.partition_rounds(256 * 256) == 2

    def test_perf_per_watt_uses_145w(self):
        model = XeonModel()
        assert model.perf_per_watt(145.0) == 1.0

    def test_custom_config(self):
        config = XeonConfig(cores=18, effective_bandwidth_gbps=17.0)
        model = XeonModel(config)
        assert model.memory_seconds(17e9) == pytest.approx(1.0)
        assert XEON_E5_2699V3.cores == 36


class TestDbmsModel:
    def test_feature_costs_additive(self):
        dbms = DbmsCostModel(XeonModel())
        plain = dbms.scan_cycles_per_row(ScanShape(rows=1, nbytes=1))
        filtered = dbms.scan_cycles_per_row(
            ScanShape(rows=1, nbytes=1, filter_terms=2)
        )
        joined = dbms.scan_cycles_per_row(
            ScanShape(rows=1, nbytes=1, join_probes=1)
        )
        assert filtered == plain + 2 * DbmsCostModel.FILTER_TERM_CYCLES
        assert joined == plain + DbmsCostModel.JOIN_PROBE_CYCLES

    def test_scan_seconds_roofline(self):
        model = XeonModel()
        dbms = DbmsCostModel(model)
        # Huge compute, tiny memory: compute side binds.
        shape = ScanShape(rows=10**9, nbytes=1)
        expected = (
            10**9 * dbms.scan_cycles_per_row(shape)
            / (model.config.clock_hz * model.config.cores)
        )
        assert dbms.scan_seconds(shape) == pytest.approx(expected)

    def test_plan_sums_scans(self):
        dbms = DbmsCostModel(XeonModel())
        shape = ScanShape(rows=10**6, nbytes=10**6)
        assert dbms.plan_seconds([shape, shape]) == pytest.approx(
            2 * dbms.scan_seconds(shape)
        )

    def test_q1_class_scan_in_published_range(self):
        """Commercial engines run Q1-class aggregation at roughly
        100-400 cycles/row-core — the calibration target."""
        dbms = DbmsCostModel(XeonModel())
        q1 = ScanShape(rows=1, nbytes=1, filter_terms=1, aggregates=6,
                       groupby=True)
        assert 100 <= dbms.scan_cycles_per_row(q1) <= 400

    def test_q6_class_scan_in_published_range(self):
        dbms = DbmsCostModel(XeonModel())
        q6 = ScanShape(rows=1, nbytes=1, filter_terms=3, aggregates=1)
        assert 40 <= dbms.scan_cycles_per_row(q6) <= 110
