"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.streaming import stream_columns
from repro.core import DPU
from repro.dms import PartitionMode, PartitionSpec, compute_cids
from repro.dms.descriptor import DescriptorError
from repro.runtime.task import static_partition
from repro.sim import Engine


class TestEngineDeterminism:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_same_program_same_trace(self, delays):
        """Two runs of the same process structure produce identical
        event orders — the property every simulation result rests on."""

        def trace(run_engine):
            order = []

            def worker(tag, delay):
                yield run_engine.timeout(delay)
                order.append((tag, run_engine.now))

            for tag, delay in enumerate(delays):
                run_engine.process(worker(tag, delay))
            run_engine.run()
            return order

        assert trace(Engine()) == trace(Engine())


class TestPartitionProperties:
    @given(
        keys=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=200),
        radix_bits=st.integers(1, 6),
        mode=st.sampled_from([PartitionMode.HASH, PartitionMode.RADIX]),
    )
    @settings(max_examples=100, deadline=None)
    def test_cids_within_fanout_and_deterministic(self, keys, radix_bits,
                                                  mode):
        column = np.asarray(keys, dtype=np.uint32)
        spec = PartitionSpec(mode=mode, radix_bits=radix_bits)
        cids = compute_cids(column, spec)
        assert cids.min() >= 0
        assert cids.max() < spec.fanout
        assert np.array_equal(cids, compute_cids(column, spec))

    @given(
        keys=st.lists(st.integers(-1000, 1000), min_size=1, max_size=100),
        bounds=st.lists(st.integers(-900, 900), min_size=1, max_size=32,
                        unique=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_range_cids_are_monotone_in_key(self, keys, bounds):
        column = np.asarray(sorted(keys), dtype=np.int64)
        spec = PartitionSpec(
            mode=PartitionMode.RANGE, bounds=tuple(sorted(bounds)),
            radix_bits=5,
        )
        cids = compute_cids(column, spec)
        assert np.all(np.diff(cids.astype(np.int64)) >= 0)  # monotone

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_equal_keys_get_equal_cids(self, keys):
        column = np.asarray(keys * 2, dtype=np.uint32)  # every key twice
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        cids = compute_cids(column, spec)
        half = len(keys)
        assert np.array_equal(cids[:half], cids[half:])


class TestStaticPartitionProperties:
    @given(st.integers(0, 10000), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_partition_is_exact_cover(self, total, parts):
        ranges = [static_partition(total, parts, p) for p in range(parts)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi1 == lo2
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestStreamingRoundtrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_shapes_deliver_exact_bytes(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6000))
        tile = int(rng.integers(64, 1024))
        dtype = rng.choice([np.uint8, np.uint16, np.uint32, np.int32])
        dpu = DPU()
        info = np.iinfo(dtype)
        values = rng.integers(
            info.min, int(info.max), rows
        ).astype(dtype)
        address = dpu.store_array(values)
        chunks = []

        def kernel(ctx):
            def process(t, lo, hi, arrays):
                chunks.append(arrays[0].copy())
                return 1

            yield from stream_columns(
                ctx, [(address, dtype)], rows, tile, process
            )

        dpu.launch(kernel, cores=[0])
        assert np.array_equal(np.concatenate(chunks), values)


class TestDescriptorFuzz:
    @given(
        rows=st.integers(-5, 1 << 17),
        width=st.integers(0, 16),
    )
    @settings(max_examples=100, deadline=None)
    def test_invalid_geometry_never_constructs(self, rows, width):
        from repro.dms import Descriptor, DescriptorType
        valid_rows = 1 <= rows < (1 << 16)
        valid_width = width in (1, 2, 4, 8)
        try:
            Descriptor(dtype=DescriptorType.DDR_TO_DMEM, rows=rows,
                       col_width=width)
            constructed = True
        except DescriptorError:
            constructed = False
        assert constructed == (valid_rows and valid_width)
