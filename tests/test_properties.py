"""Cross-cutting property-based tests on core invariants."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sql import (
    AggSpec,
    Between,
    Table,
    dpu_filter,
    dpu_groupby,
    dpu_sort,
    dpu_topk,
    xeon_filter,
    xeon_groupby,
    xeon_topk,
)
from repro.apps.streaming import stream_columns
from repro.baseline import XeonModel
from repro.core import DPU
from repro.dms import PartitionMode, PartitionSpec, compute_cids
from repro.dms.descriptor import DescriptorError
from repro.runtime.task import static_partition
from repro.sim import Engine


class TestEngineDeterminism:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_same_program_same_trace(self, delays):
        """Two runs of the same process structure produce identical
        event orders — the property every simulation result rests on."""

        def trace(run_engine):
            order = []

            def worker(tag, delay):
                yield run_engine.timeout(delay)
                order.append((tag, run_engine.now))

            for tag, delay in enumerate(delays):
                run_engine.process(worker(tag, delay))
            run_engine.run()
            return order

        assert trace(Engine()) == trace(Engine())


class TestPartitionProperties:
    @given(
        keys=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=200),
        radix_bits=st.integers(1, 6),
        mode=st.sampled_from([PartitionMode.HASH, PartitionMode.RADIX]),
    )
    @settings(max_examples=100, deadline=None)
    def test_cids_within_fanout_and_deterministic(self, keys, radix_bits,
                                                  mode):
        column = np.asarray(keys, dtype=np.uint32)
        spec = PartitionSpec(mode=mode, radix_bits=radix_bits)
        cids = compute_cids(column, spec)
        assert cids.min() >= 0
        assert cids.max() < spec.fanout
        assert np.array_equal(cids, compute_cids(column, spec))

    @given(
        keys=st.lists(st.integers(-1000, 1000), min_size=1, max_size=100),
        bounds=st.lists(st.integers(-900, 900), min_size=1, max_size=32,
                        unique=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_range_cids_are_monotone_in_key(self, keys, bounds):
        column = np.asarray(sorted(keys), dtype=np.int64)
        spec = PartitionSpec(
            mode=PartitionMode.RANGE, bounds=tuple(sorted(bounds)),
            radix_bits=5,
        )
        cids = compute_cids(column, spec)
        assert np.all(np.diff(cids.astype(np.int64)) >= 0)  # monotone

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_equal_keys_get_equal_cids(self, keys):
        column = np.asarray(keys * 2, dtype=np.uint32)  # every key twice
        spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
        cids = compute_cids(column, spec)
        half = len(keys)
        assert np.array_equal(cids[:half], cids[half:])


class TestStaticPartitionProperties:
    @given(st.integers(0, 10000), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_partition_is_exact_cover(self, total, parts):
        ranges = [static_partition(total, parts, p) for p in range(parts)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi1 == lo2
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestStreamingRoundtrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_shapes_deliver_exact_bytes(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6000))
        tile = int(rng.integers(64, 1024))
        dtype = rng.choice([np.uint8, np.uint16, np.uint32, np.int32])
        dpu = DPU()
        info = np.iinfo(dtype)
        values = rng.integers(
            info.min, int(info.max), rows
        ).astype(dtype)
        address = dpu.store_array(values)
        chunks = []

        def kernel(ctx):
            def process(t, lo, hi, arrays):
                chunks.append(arrays[0].copy())
                return 1

            yield from stream_columns(
                ctx, [(address, dtype)], rows, tile, process
            )

        dpu.launch(kernel, cores=[0])
        assert np.array_equal(np.concatenate(chunks), values)


class TestSeededDifferential:
    """Seeded differential properties: the simulated DPU data plane
    versus the x86 baseline model and plain numpy, on randomly shaped
    inputs.

    Unlike the hypothesis suites above, case generation here uses only
    the stdlib ``random`` module: the parametrized seed IS the whole
    test case, so a failure replays exactly from the test id with no
    shrinking database. Three invariants per operator:

    * the DPU's *functional* result is byte-equal to numpy's answer
      (the data plane really moved the bytes it claims to), and
    * the Xeon baseline computes the same values, so modelled gains
      compare like with like, and
    * timing is sane — positive, and monotone in the row count.
    """

    SEEDS = [11, 23, 47]

    @staticmethod
    def _random_table(seed, max_rows=16384, ndv=None, value_hi=10_000):
        gen = random.Random(seed)
        rows = gen.randrange(1024, max_rows)
        ndv = ndv if ndv is not None else gen.choice([4, 50, 400])
        rng = np.random.default_rng(seed)
        table = Table("t", {
            "g": rng.integers(0, ndv, rows).astype(np.int32),
            "v": rng.integers(0, value_hi, rows).astype(np.int32),
        })
        return table, gen

    @staticmethod
    def _host_groupby(table):
        keys = table.column("g")
        values = table.column("v").astype(np.int64)
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, values)
        counts = np.bincount(inverse, minlength=len(uniq))
        return {
            int(k): (int(s), int(c)) for k, s, c in zip(uniq, sums, counts)
        }

    @pytest.mark.parametrize("seed", SEEDS)
    def test_filter_differential(self, seed):
        table, gen = self._random_table(seed)
        lo = gen.randrange(0, 5000)
        hi = lo + gen.randrange(1, 5000)
        predicate = Between("v", lo, hi)
        expected = predicate.mask(table.columns)

        dpu = DPU()
        dpu_result = dpu_filter(dpu, table.to_dpu(dpu), predicate)
        assert dpu_result.value.tobytes() == expected.tobytes()

        xeon_result = xeon_filter(XeonModel(), table, predicate)
        assert np.array_equal(np.asarray(xeon_result.value, dtype=bool),
                              expected)
        assert dpu_result.cycles > 0 and xeon_result.seconds > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_groupby_differential(self, seed):
        table, _gen = self._random_table(seed)
        expected = self._host_groupby(table)
        aggs = [AggSpec("sum", "v"), AggSpec("count")]

        dpu = DPU()
        dpu_result = dpu_groupby(dpu, table.to_dpu(dpu), "g", aggs)
        xeon_result = xeon_groupby(XeonModel(), table, "g", aggs)
        for result in (dpu_result, xeon_result):
            assert set(result.value) == set(expected)
            for key, (total, count) in expected.items():
                assert int(result.value[key][0]) == total
                assert int(result.value[key][1]) == count
        assert dpu_result.cycles > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sort_differential(self, seed):
        gen = random.Random(seed ^ 0x5A17)
        rows = gen.randrange(2048, 12288)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << 20, rows).astype(np.int32)
        table = Table("t", {"v": values})
        dpu = DPU()
        result = dpu_sort(dpu, table.to_dpu(dpu), "v")
        assert result.value.tobytes() == np.sort(values).tobytes()
        assert result.cycles > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_topk_differential(self, seed):
        gen = random.Random(seed ^ 0x70F)
        rows = gen.randrange(2048, 12288)
        k = gen.randrange(1, 64)
        rng = np.random.default_rng(seed)
        # Unique values so the (value, row) ranking is tie-free and the
        # DPU and baseline answers must agree exactly, rows included.
        values = rng.permutation(rows).astype(np.int32)
        table = Table("t", {"v": values})
        dpu = DPU()
        dpu_result = dpu_topk(dpu, table.to_dpu(dpu), "v", k)
        xeon_result = xeon_topk(XeonModel(), table, "v", k)
        assert [(int(v), r) for v, r in dpu_result.value] == \
            [(int(v), r) for v, r in xeon_result.value]
        order = np.argsort(values)[::-1][:k]
        assert [r for _v, r in dpu_result.value] == [int(i) for i in order]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_filter_cycles_monotone_in_rows(self, seed):
        """Same distribution, growing prefixes: modelled cycles must
        not decrease as the scan covers more rows."""
        table, gen = self._random_table(seed, max_rows=12288)
        full = table.column("v")
        predicate = Between("v", 1000, 8000)
        sizes = sorted({len(full) // 4, len(full) // 2, len(full)})
        previous = 0.0
        for rows in sizes:
            prefix = Table("t", {"v": full[:rows].copy()})
            dpu = DPU()
            result = dpu_filter(dpu, prefix.to_dpu(dpu), predicate)
            assert result.cycles >= previous
            previous = result.cycles
        assert previous > 0


class TestDescriptorFuzz:
    @given(
        rows=st.integers(-5, 1 << 17),
        width=st.integers(0, 16),
    )
    @settings(max_examples=100, deadline=None)
    def test_invalid_geometry_never_constructs(self, rows, width):
        from repro.dms import Descriptor, DescriptorType
        valid_rows = 1 <= rows < (1 << 16)
        valid_width = width in (1, 2, 4, 8)
        try:
            Descriptor(dtype=DescriptorType.DDR_TO_DMEM, rows=rows,
                       col_width=width)
            constructed = True
        except DescriptorError:
            constructed = False
        assert constructed == (valid_rows and valid_width)


class TestCompiledQueryDifferential:
    """Differential conformance for the SQL-text frontend: seeded
    random SELECT / WHERE / GROUP BY queries must agree exactly across
    the compiled DPU plan, the compiled Xeon plan, and a direct numpy
    evaluation of the same semantics (all aggregates are
    integer-valued sums below 2^53, so equality is byte-equality)."""

    SEEDS = list(range(16))

    _AGGS = {
        "sum(v1)": lambda c, m: float(c["v1"][m].sum()),
        "count(*)": lambda c, m: float(m.sum()),
        "sum(v1 + v2)": lambda c, m: float((c["v1"][m] + c["v2"][m]).sum()),
        "sum(v1 * 2)": lambda c, m: float((c["v1"][m] * 2).sum()),
        "avg(v1)": lambda c, m: (
            float(c["v1"][m].sum()) / float(m.sum()) if m.any() else 0.0),
        "sum(case when g2 = 1 then v1 else 0 end)": lambda c, m: float(
            np.where(c["g2"][m] == 1, c["v1"][m], 0).sum()),
    }

    @staticmethod
    def _dataset(seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(200, 3000))
        return {
            "g1": rng.integers(0, 5, rows).astype(np.int64),
            "g2": rng.integers(0, 3, rows).astype(np.int64),
            "v1": rng.integers(0, 1000, rows).astype(np.int64),
            "v2": rng.integers(1, 50, rows).astype(np.int64),
        }

    @classmethod
    def _predicates(cls, gen):
        chosen = []
        for _ in range(gen.randrange(3)):
            kind = gen.randrange(5)
            if kind == 0:
                cut = gen.randrange(100, 900)
                chosen.append((f"v1 < {cut}",
                               lambda c, cut=cut: c["v1"] < cut))
            elif kind == 1:
                lo = gen.randrange(0, 400)
                hi = lo + gen.randrange(100, 500)
                chosen.append((f"v1 between {lo} and {hi}",
                               lambda c, lo=lo, hi=hi:
                               (c["v1"] >= lo) & (c["v1"] <= hi)))
            elif kind == 2:
                val = gen.randrange(0, 5)
                chosen.append((f"g1 = {val}",
                               lambda c, val=val: c["g1"] == val))
            elif kind == 3:
                chosen.append(("g2 in (0, 2)",
                               lambda c: np.isin(c["g2"], (0, 2))))
            else:
                lo = gen.randrange(100, 400)
                hi = lo + gen.randrange(200, 500)
                chosen.append((f"(v1 < {lo} or v1 >= {hi})",
                               lambda c, lo=lo, hi=hi:
                               (c["v1"] < lo) | (c["v1"] >= hi)))
        return chosen

    @classmethod
    def _hand_eval(cls, columns, group_cols, preds, agg_names):
        rows = len(columns["g1"])
        mask = np.ones(rows, dtype=bool)
        for _text, fn in preds:
            mask &= fn(columns)
        if not group_cols:
            if not mask.any():
                return ()
            row = tuple(cls._AGGS[name](columns, mask)
                        for name in agg_names)
            return (row,)
        keys = list(zip(*(columns[g][mask] for g in group_cols)))
        out = []
        for cell in sorted(set(keys)):
            cell_mask = mask.copy()
            for g, v in zip(group_cols, cell):
                cell_mask &= columns[g] == v
            out.append(tuple(int(v) for v in cell)
                       + tuple(cls._AGGS[name](columns, cell_mask)
                               for name in agg_names))
        return tuple(sorted(out))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compiled_targets_match_hand_eval(self, seed):
        from repro.apps.sql import compile_query
        from repro.apps.sql.ir import Catalog

        gen = random.Random(seed)
        columns = self._dataset(seed)
        group_cols = gen.choice([[], ["g1"], ["g2"], ["g1", "g2"]])
        preds = self._predicates(gen)
        agg_names = ["sum(v1)"] + gen.sample(
            sorted(set(self._AGGS) - {"sum(v1)"}), gen.randrange(1, 4))

        select = ", ".join(group_cols + agg_names)
        sql = f"select {select} from t"
        if preds:
            sql += " where " + " and ".join(text for text, _fn in preds)
        if group_cols:
            sql += " group by " + ", ".join(group_cols)

        compiled = compile_query(sql, Catalog({"t": columns}),
                                 f"prop{seed}")
        data = {"t": columns}
        dpu_rows = compiled.run_dpu(DPU(), data).value
        xeon_rows = compiled.run_xeon(XeonModel(), data).value
        assert dpu_rows == xeon_rows
        assert dpu_rows == self._hand_eval(columns, group_cols, preds,
                                           agg_names)
