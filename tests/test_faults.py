"""Tests for the fault-injection framework and the recovery paths.

Everything here is seeded and deterministic: a test that passes once
passes forever, because all nondeterminism flows through the per-site
PCG64 streams of :class:`repro.faults.FaultInjector`.
"""

import numpy as np
import pytest

from repro.apps.streaming import stream_columns
from repro.ate import AteError
from repro.core import DPU
from repro.dms.dmac import DmsHardwareError
from repro.faults import FAULT_SITES, FaultError, FaultInjector, FaultPlan
from repro.memory import MachineCheckError, SecdedEcc, classify_flips
from repro.runtime import WorkQueue, resilient_launch, surviving_cores
from repro.sim import DeadlockError, Engine, SimulationError, Watchdog


# -- FaultPlan ----------------------------------------------------------------


class TestFaultPlan:
    def test_none_is_disabled(self):
        plan = FaultPlan.none()
        assert not plan.enabled
        for site in FAULT_SITES:
            assert plan.rate(site) == 0.0

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultPlan(rates={"cosmic.ray": 0.1})
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultPlan.none().rate("cosmic.ray")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultError, match="must be in"):
            FaultPlan(rates={"ddr.bitflip": 1.5})

    def test_with_rates_spells_dots_as_double_underscore(self):
        plan = FaultPlan.none().with_rates(ddr__bitflip=1e-6, net__drop=0.5)
        assert plan.rate("ddr.bitflip") == 1e-6
        assert plan.rate("net.drop") == 0.5
        assert plan.enabled

    def test_uniform_covers_all_sites(self):
        plan = FaultPlan.uniform(1e-3, seed=7)
        assert all(plan.rate(site) == 1e-3 for site in FAULT_SITES)


class TestInjectorDeterminism:
    def test_same_seed_same_draws(self):
        a = FaultInjector(FaultPlan.uniform(0.3, seed=11))
        b = FaultInjector(FaultPlan.uniform(0.3, seed=11))
        assert [a.roll("net.drop") for _ in range(64)] == [
            b.roll("net.drop") for _ in range(64)
        ]

    def test_different_seed_different_draws(self):
        a = FaultInjector(FaultPlan.uniform(0.3, seed=11))
        b = FaultInjector(FaultPlan.uniform(0.3, seed=12))
        assert [a.roll("net.drop") for _ in range(256)] != [
            b.roll("net.drop") for _ in range(256)
        ]

    def test_sites_draw_from_independent_streams(self):
        """Consuming one site's stream must not perturb another's."""
        quiet = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        noisy = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        for _ in range(1000):  # burn an unrelated site's stream
            noisy.roll("ate.drop")
        assert [quiet.roll("net.drop") for _ in range(64)] == [
            noisy.roll("net.drop") for _ in range(64)
        ]

    def test_disabled_site_never_touches_rng(self):
        injector = FaultInjector(FaultPlan.none().with_rates(net__drop=1.0))
        assert not injector.roll("ddr.bitflip")
        assert injector.count("ddr.bitflip", 10_000) == 0
        assert "ddr.bitflip" not in injector._streams
        assert injector.roll("net.drop")

    def test_same_plan_same_trace_and_timing_end_to_end(self):
        """Two runs of one faulty workload: identical fault trace
        (site, cycle, detail) and identical final cycle count."""
        plan = FaultPlan(seed=8, rates={"ate.drop": 0.2,
                                        "dms.descriptor": 0.2})
        data = np.arange(2048, dtype=np.uint64)

        def run():
            dpu = DPU(fault_plan=plan)
            addr = dpu.store_array(data)
            address = dpu.address_map.dmem_address(3, 0)

            def kernel(ctx):
                yield from stream_columns(ctx, [(addr, 8)], 2048, 512,
                                          lambda *a: 8)
                for _ in range(8):
                    yield from ctx.fetch_add(3, address, 1)

            launch = dpu.launch(kernel, cores=[0, 1])
            return launch.cycles, dpu.faults.trace

        first_cycles, first_trace = run()
        second_cycles, second_trace = run()
        assert first_trace  # the plan actually fired
        assert first_trace == second_trace
        assert first_cycles == second_cycles

    def test_trace_records_hits(self):
        injector = FaultInjector(FaultPlan.none().with_rates(net__drop=1.0))
        injector.roll("net.drop", detail="link 0->1")
        assert injector.fault_count() == 1
        assert injector.fault_count("net.drop") == 1
        assert injector.fault_count("ate.drop") == 0
        assert injector.trace[0].detail == "link 0->1"


# -- SECDED ECC ---------------------------------------------------------------


class TestEcc:
    def test_classify_single_flips_corrected(self):
        corrected, bad = classify_flips([5, 70, 200])  # words 0, 1, 3
        assert corrected == 3
        assert list(bad) == []

    def test_classify_double_flip_in_one_word_uncorrectable(self):
        corrected, bad = classify_flips([65, 70, 5])  # two flips in word 1
        assert corrected == 1
        assert list(bad) == [1]

    def test_single_flips_charge_scrub_latency(self):
        injector = FaultInjector(
            FaultPlan(seed=3, rates={"ddr.bitflip": 2e-4})
        )
        ecc = SecdedEcc(injector, scrub_cycles=6.0)
        for _ in range(400):
            before = ecc.corrected
            try:
                latency = ecc.check(0, 64)  # 512 bits per transfer
            except MachineCheckError:
                continue  # a rare same-word double; not under test here
            assert latency == (ecc.corrected - before) * 6.0
        assert ecc.corrected > 0

    def test_double_flip_raises_machine_check(self):
        injector = FaultInjector(FaultPlan(seed=3, rates={"ddr.bitflip": 0.5}))
        ecc = SecdedEcc(injector, scrub_cycles=6.0)
        with pytest.raises(MachineCheckError):
            ecc.check(0x1000, 8)  # ~32 of 64 bits flip: hopeless
        assert ecc.uncorrectable >= 1

    def test_dpu_streaming_survives_correctable_flips(self):
        """End to end: bit flips on DDR reads are scrubbed, the
        streamed bytes are exact, and the run costs extra cycles."""
        rows = 4096
        data = np.arange(rows, dtype=np.uint64)

        def run(plan):
            dpu = DPU(fault_plan=plan)
            addr = dpu.store_array(data)
            seen = []

            def kernel(ctx):
                yield from stream_columns(
                    ctx, [(addr, 8)], rows, 512,
                    lambda tile, lo, hi, arrays: seen.append(
                        arrays[0].copy()
                    ) or 8,
                )

            launch = dpu.launch(kernel, cores=[0])
            return dpu, np.concatenate(seen), launch.cycles

        clean_dpu, clean_bytes, clean_cycles = run(FaultPlan.none())
        plan = FaultPlan(seed=4, rates={"ddr.bitflip": 1e-5})
        faulty_dpu, faulty_bytes, faulty_cycles = run(plan)

        assert faulty_dpu.ddr_channel.ecc.corrected > 0
        assert np.array_equal(faulty_bytes, data)
        assert np.array_equal(clean_bytes, data)
        assert faulty_cycles > clean_cycles


# -- DMS descriptor validation ------------------------------------------------


class TestDmsDescriptorCrc:
    def test_corrupted_descriptors_replay_and_stream_stays_exact(self):
        rows = 4096
        data = np.arange(rows, dtype=np.uint64) * 3
        plan = FaultPlan(seed=3, rates={"dms.descriptor": 0.2})
        dpu = DPU(fault_plan=plan)
        addr = dpu.store_array(data)
        seen = []

        def kernel(ctx):
            yield from stream_columns(
                ctx, [(addr, 8)], rows, 512,
                lambda tile, lo, hi, arrays: seen.append(arrays[0].copy())
                or 8,
            )

        dpu.launch(kernel, cores=[0])
        assert np.array_equal(np.concatenate(seen), data)
        assert dpu.stats.counters["dmad.crc_replays"] > 0
        assert dpu.faults.fault_count("dms.descriptor") > 0

    def test_persistent_corruption_exhausts_retries(self):
        plan = FaultPlan(seed=2, rates={"dms.descriptor": 1.0})
        dpu = DPU(fault_plan=plan)
        addr = dpu.store_array(np.zeros(64, dtype=np.uint64))

        def kernel(ctx):
            yield from stream_columns(
                ctx, [(addr, 8)], 64, 64, lambda *a: 8
            )

        with pytest.raises(DmsHardwareError, match="CRC"):
            dpu.launch(kernel, cores=[0])


# -- ATE retry protocol -------------------------------------------------------


class TestAteRetry:
    def test_drops_are_retried_and_atomics_stay_exactly_once(self):
        """Lossy crossbar, exact counter: sequence numbers + the reply
        cache dedup retransmitted fetch-adds."""
        plan = FaultPlan(seed=4, rates={"ate.drop": 0.15})
        dpu = DPU(fault_plan=plan)
        address = dpu.address_map.dmem_address(0, 0)

        def kernel(ctx):
            for _ in range(8):
                yield from ctx.fetch_add(0, address, 1)

        dpu.launch(kernel, cores=[0, 1, 2, 3])
        assert dpu.scratchpads[0].read_u64(0) == 32
        assert dpu.stats.counters["ate.dropped"] > 0
        assert dpu.stats.counters["ate.retries"] > 0

    def test_delay_faults_slow_but_complete(self):
        def run(plan):
            dpu = DPU(fault_plan=plan)
            address = dpu.address_map.dmem_address(5, 8)

            def kernel(ctx):
                for _ in range(16):
                    yield from ctx.fetch_add(5, address, 1)

            launch = dpu.launch(kernel, cores=[0])
            return dpu, launch.cycles

        _clean, clean_cycles = run(FaultPlan.none())
        dpu, slow_cycles = run(FaultPlan(seed=6, rates={"ate.delay": 0.5}))
        assert dpu.scratchpads[5].read_u64(8) == 16
        assert slow_cycles > clean_cycles

    def test_total_loss_exhausts_retries_with_ate_error(self):
        plan = FaultPlan(seed=4, rates={"ate.drop": 1.0})
        dpu = DPU(fault_plan=plan)
        address = dpu.address_map.dmem_address(1, 0)

        def kernel(ctx):
            yield from ctx.remote_load(1, address)

        with pytest.raises(AteError, match="gave up"):
            dpu.launch(kernel, cores=[0])
        assert dpu.stats.counters["ate.retries"] >= dpu.config.ate_rpc_max_retries


# -- Core failover ------------------------------------------------------------


class TestFailover:
    def test_surviving_cores_disabled_returns_all(self):
        injector = FaultInjector(FaultPlan.none())
        assert surviving_cores(injector, range(8)) == list(range(8))

    def test_at_least_one_core_survives_total_death(self):
        injector = FaultInjector(FaultPlan(seed=1, rates={"core.dead": 1.0}))
        assert surviving_cores(injector, [4, 9, 17]) == [4]

    def test_work_redistributes_to_survivors(self):
        """A WorkQueue kernel drains every chunk no matter which cores
        die — the fetch-add cursor is the failover mechanism."""
        num_chunks = 48

        def run(plan):
            dpu = DPU(fault_plan=plan)
            queue = WorkQueue(dpu, owner=0, dmem_offset=0,
                              num_chunks=num_chunks)

            def kernel(ctx):
                claimed = []
                while True:
                    chunk = yield from queue.claim(ctx)
                    if chunk is None:
                        return claimed
                    claimed.append(chunk)
                    yield from ctx.compute(100)

            launch = resilient_launch(dpu, kernel, cores=range(8))
            return dpu, launch

        clean_dpu, clean = run(FaultPlan.none())
        dead_dpu, degraded = run(FaultPlan(seed=13, rates={"core.dead": 0.4}))

        dead = dead_dpu.stats.counters["runtime.dead_cores"]
        assert 0 < dead < 8
        assert len(degraded.values) == 8 - dead
        # Every chunk processed exactly once in both worlds.
        assert sorted(sum(clean.values, [])) == list(range(num_chunks))
        assert sorted(sum(degraded.values, [])) == list(range(num_chunks))
        assert degraded.cycles > clean.cycles  # fewer cores, same work


# -- Watchdog and failure surfacing ------------------------------------------


class TestWatchdog:
    def test_two_process_wait_cycle_is_diagnosed(self):
        engine = Engine()
        first = engine.event()
        second = engine.event()

        def a():
            yield second
            first.succeed()

        def b():
            yield first
            second.succeed()

        process = engine.process(a(), name="proc-a")
        engine.process(b(), name="proc-b")
        with pytest.raises(DeadlockError, match="deadlock") as info:
            engine.run_until_complete(process)
        names = [p.name for p in info.value.blocked]
        assert "proc-a" in names and "proc-b" in names
        assert "proc-a" in str(info.value)

    def test_event_budget_converts_livelock_to_error(self):
        engine = Engine()
        engine.watchdog = Watchdog(max_events=5000)

        def spin():
            while True:  # no exit condition: would run forever
                yield engine.timeout(1)

        engine.process(spin(), name="spinner")
        with pytest.raises(DeadlockError, match="livelock"):
            engine.run()

    def test_watchdog_silent_when_budget_suffices(self):
        engine = Engine()
        engine.watchdog = Watchdog(max_events=5000)

        def worker():
            for _ in range(10):
                yield engine.timeout(1)
            return "done"

        assert engine.run_until_complete(engine.process(worker())) == "done"

    def test_daemons_excluded_from_blocked_report(self):
        engine = Engine()
        gate = engine.event()

        def service():
            yield engine.event()  # waits forever, by design

        def stuck():
            yield gate

        engine.process(service(), name="svc", daemon=True)
        engine.process(stuck(), name="stuck")
        engine.run()  # drains: nothing runnable, nothing failed
        names = [p.name for p in engine.blocked_processes()]
        assert names == ["stuck"]


class TestUnobservedFailures:
    def test_failed_event_with_no_waiter_surfaces_at_run_end(self):
        engine = Engine()
        doomed = engine.event()

        def worker():
            yield engine.timeout(5)
            doomed.fail(ValueError("lost failure"))

        engine.process(worker())
        with pytest.raises(SimulationError, match="never observed"):
            engine.run()

    def test_observed_failure_is_not_double_reported(self):
        engine = Engine()
        doomed = engine.event()

        def failer():
            yield engine.timeout(5)
            doomed.fail(ValueError("caught failure"))

        def waiter():
            try:
                yield doomed
            except ValueError:
                return "handled"

        engine.process(failer())
        process = engine.process(waiter())
        assert engine.run_until_complete(process) == "handled"


# -- Zero-overhead-off regression --------------------------------------------


class TestZeroOverheadOff:
    def test_disabled_plan_reproduces_seed_timings_exactly(self):
        """FaultPlan.none() must take the original code path: same end
        cycle, same stats, bit-identical bytes as no plan at all."""
        rows = 2048
        data = np.arange(rows, dtype=np.uint64)

        def run(**kwargs):
            dpu = DPU(**kwargs)
            addr = dpu.store_array(data)
            address = dpu.address_map.dmem_address(2, 0)

            def kernel(ctx):
                yield from stream_columns(
                    ctx, [(addr, 8)], rows, 512, lambda *a: 8, dmem_base=64
                )
                for _ in range(4):
                    yield from ctx.fetch_add(2, address, 1)

            launch = dpu.launch(kernel, cores=[0, 1])
            return launch.cycles, dict(dpu.stats.counters)

        seed_cycles, seed_stats = run()
        off_cycles, off_stats = run(fault_plan=FaultPlan.none())
        assert off_cycles == seed_cycles
        assert off_stats == seed_stats
