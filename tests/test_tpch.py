"""Tests for the TPC-H generator and query plans (DPU vs baseline)."""

import numpy as np
import pytest

from repro.apps.sql import TPCH_QUERIES, load_tpch_on_dpu, run_query
from repro.apps.sql.tpch_queries import _Q1_CUTOFF, _Q6_PRED
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.tpch import (
    DATE_EPOCH_DAYS,
    NATIONS,
    REGIONS,
    SHIP_MODES,
    date_code,
    generate_tpch,
    part_type_is_promo,
)


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale=0.002, seed=11)


@pytest.fixture(scope="module")
def platform(data):
    dpu = DPU()
    tables = load_tpch_on_dpu(dpu, data)
    return dpu, tables, XeonModel()


class TestGenerator:
    def test_cardinality_ratios(self, data):
        orders = data.num_rows("orders")
        lineitems = data.num_rows("lineitem")
        customers = data.num_rows("customer")
        assert orders == 10 * customers  # dbgen: 1.5M vs 150K per SF
        assert 1.0 <= lineitems / orders <= 7.0

    def test_dates_in_dbgen_window(self, data):
        shipdate = data.table("lineitem")["l_shipdate"]
        assert shipdate.min() >= 0
        assert shipdate.max() <= DATE_EPOCH_DAYS + 122

    def test_date_ordering_invariants(self, data):
        line = data.table("lineitem")
        assert np.all(line["l_receiptdate"] > line["l_shipdate"])

    def test_foreign_keys_valid(self, data):
        assert data.table("lineitem")["l_orderkey"].max() < data.num_rows("orders")
        assert data.table("orders")["o_custkey"].max() < data.num_rows("customer")
        assert data.table("lineitem")["l_partkey"].max() < data.num_rows("part")

    def test_discount_tax_ranges(self, data):
        line = data.table("lineitem")
        assert line["l_discount"].min() >= 0 and line["l_discount"].max() <= 10
        assert line["l_tax"].min() >= 0 and line["l_tax"].max() <= 8

    def test_nation_region_mapping(self, data):
        nation = data.table("nation")
        assert len(nation["n_nationkey"]) == len(NATIONS) == 25
        assert nation["n_regionkey"].max() < len(REGIONS)

    def test_deterministic_given_seed(self):
        a = generate_tpch(scale=0.001, seed=5)
        b = generate_tpch(scale=0.001, seed=5)
        assert np.array_equal(
            a.table("lineitem")["l_shipdate"], b.table("lineitem")["l_shipdate"]
        )

    def test_promo_type_predicate(self):
        codes = np.array([0, 24, 25, 149], dtype=np.int16)
        assert list(part_type_is_promo(codes)) == [True, True, False, False]

    def test_date_code(self):
        assert date_code(1992, 1, 1) == 0
        assert date_code(1992, 1, 2) == 1
        assert date_code(1998, 12, 31) == DATE_EPOCH_DAYS


class TestQueries:
    def test_q1_matches_host_truth(self, data, platform):
        dpu, tables, model = platform
        dpu_result, xeon_result = run_query("Q1", dpu, tables, data, model)
        line = data.table("lineitem")
        mask = line["l_shipdate"] <= _Q1_CUTOFF
        for rf in range(3):
            for ls in range(2):
                key = rf * 2 + ls
                selected = (
                    mask
                    & (line["l_returnflag"] == rf)
                    & (line["l_linestatus"] == ls)
                )
                if not selected.any():
                    assert key not in dpu_result.value
                    continue
                slots = dpu_result.value[key]
                assert slots[0] == pytest.approx(
                    line["l_quantity"][selected].sum()
                )
                assert slots[5] == int(selected.sum())  # count
        # Both platforms computed identical group tables.
        assert set(dpu_result.value) == set(xeon_result.value)
        for key in xeon_result.value:
            for a, b in zip(dpu_result.value[key], xeon_result.value[key]):
                assert a == pytest.approx(b)

    def test_q6_matches_host_truth(self, data, platform):
        dpu, tables, model = platform
        dpu_result, xeon_result = run_query("Q6", dpu, tables, data, model)
        line = data.table("lineitem")
        mask = _Q6_PRED.mask(line)
        expected = int(
            (line["l_extendedprice"][mask].astype(np.int64)
             * line["l_discount"][mask]).sum()
        )
        assert dpu_result.value[0][0] == pytest.approx(expected)
        assert xeon_result.value[0][0] == pytest.approx(expected)

    @pytest.mark.parametrize("name", ["Q3", "Q5", "Q10", "Q12", "Q14"])
    def test_query_platforms_agree(self, data, platform, name):
        dpu, tables, model = platform
        dpu_result, xeon_result = run_query(name, dpu, tables, data, model)
        if isinstance(dpu_result.value, dict):
            assert set(dpu_result.value) == set(xeon_result.value)
            for key in xeon_result.value:
                for a, b in zip(dpu_result.value[key], xeon_result.value[key]):
                    assert a == pytest.approx(b)
        elif isinstance(dpu_result.value, float):
            assert dpu_result.value == pytest.approx(xeon_result.value)
        else:
            assert dpu_result.value == xeon_result.value

    def test_q14_ratio_is_percentage(self, data, platform):
        dpu, tables, model = platform
        dpu_result, _ = run_query("Q14", dpu, tables, data, model)
        assert 0.0 <= dpu_result.value <= 100.0

    def test_all_queries_show_dpu_advantage(self, data, platform):
        """Figure 16 shape: every query wins on perf/watt."""
        from repro.apps.sql import efficiency_gain
        dpu, tables, model = platform
        for name in TPCH_QUERIES:
            dpu_result, xeon_result = run_query(name, dpu, tables, data, model)
            assert efficiency_gain(dpu_result, xeon_result) > 3.0, name
