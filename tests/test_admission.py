"""Admission control, load shedding, and memory-grant degradation.

Covers the software end of the backpressure chain
(:mod:`repro.runtime.admission`): token bucket and concurrency
limiter mechanics, the three admission policies, the memory governor,
the DPU launch gate, and the pinned zero-overhead regressions — with
no controller attached, timings must be bit-identical to the seed.
"""

import numpy as np
import pytest

from repro.apps.sql import Table
from repro.apps.sql.aggregate import AggSpec, DmemBudget, dpu_groupby
from repro.apps.sql.join import dpu_partitioned_join_count
from repro.apps.sql.sort import dpu_sort
from repro.apps.streaming import stream_columns
from repro.core.dpu import DPU
from repro.runtime.admission import (
    Admission,
    AdmissionController,
    ConcurrencyLimiter,
    MemoryGovernor,
    OverloadError,
    TokenBucket,
)
from repro.sim import Engine


# -- token bucket ----------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_depletes(self):
        bucket = TokenBucket(rate_per_kcycle=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_per_kcycle=1.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(500.0)  # half a token
        assert bucket.try_take(1000.0)

    def test_cycles_until_available_is_deterministic(self):
        bucket = TokenBucket(rate_per_kcycle=2.0, burst=1.0)
        assert bucket.try_take(0.0)
        # 1 token at 2/kcycle => 500 cycles.
        assert bucket.cycles_until_available(0.0) == pytest.approx(500.0)

    def test_oversized_request_is_never_available(self):
        bucket = TokenBucket(rate_per_kcycle=1.0, burst=1.0)
        assert bucket.cycles_until_available(0.0, cost=2.0) == float("inf")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_kcycle=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_kcycle=1.0, burst=0.0)


class TestConcurrencyLimiter:
    def test_counts_running_and_queued(self):
        engine = Engine()
        limiter = ConcurrencyLimiter(engine, 2)
        assert limiter.limit == 2

        def job(hold):
            yield limiter.acquire()
            yield hold
            limiter.release()

        hold = engine.event()
        for _ in range(3):
            engine.process(job(hold))
        engine.run(until=0)
        assert limiter.running == 2 and limiter.queued == 1
        hold.succeed()
        engine.run()
        assert limiter.running == 0 and limiter.queued == 0


# -- the controller's three policies ---------------------------------------


def _acquire(engine, controller, site="job"):
    process = engine.process(controller.acquire(site))
    return engine.run_until_complete(process)


class TestShedPolicy:
    def test_sheds_when_slots_busy_with_context(self):
        engine = Engine()
        controller = AdmissionController(engine, max_concurrent=1,
                                         policy="shed")
        _acquire(engine, controller)
        with pytest.raises(OverloadError) as info:
            _acquire(engine, controller, site="q2")
        error = info.value
        assert error.site == "q2"
        assert error.limit == 1
        assert error.occupancy["running"] == 1
        assert controller.shed == 1
        controller.release()
        assert _acquire(engine, controller).degraded is False

    def test_sheds_on_empty_token_bucket(self):
        engine = Engine()
        controller = AdmissionController(
            engine, max_concurrent=8, rate_per_kcycle=1.0, burst=1.0,
            policy="shed",
        )
        _acquire(engine, controller)
        with pytest.raises(OverloadError, match="arrival rate"):
            _acquire(engine, controller)


class TestQueuePolicy:
    def test_waits_for_token_in_simulated_time(self):
        engine = Engine()
        controller = AdmissionController(
            engine, max_concurrent=8, rate_per_kcycle=1.0, burst=1.0,
            policy="queue",
        )
        first = _acquire(engine, controller)
        assert first.waited_cycles == 0.0
        second = _acquire(engine, controller)
        assert second.waited_cycles == pytest.approx(1000.0)
        assert engine.now == pytest.approx(1000.0)

    def test_bounded_queue_sheds_past_depth(self):
        engine = Engine()
        controller = AdmissionController(
            engine, max_concurrent=1, policy="queue", max_queue_depth=1
        )

        def job():
            ticket = yield from controller.acquire("held")
            yield engine.event()  # never released
            return ticket

        engine.process(job())
        engine.process(job())  # queued (depth 1)
        engine.run(until=0)
        with pytest.raises(OverloadError, match="queue full"):
            _acquire(engine, controller)


class TestDegradePolicy:
    def test_saturated_admission_over_commits_at_reduced_fanout(self):
        engine = Engine()
        controller = AdmissionController(
            engine, max_concurrent=1, policy="degrade", degrade_scale=0.5
        )
        full = _acquire(engine, controller)
        assert not full.degraded
        assert full.fanout([0, 1, 2, 3]) == [0, 1, 2, 3]
        reduced = _acquire(engine, controller)
        assert reduced.degraded
        assert reduced.fanout([0, 1, 2, 3]) == [0, 1]
        assert reduced.fanout([7]) == [7]  # at least one core kept
        assert controller.occupancy()["over_admitted"] == 1
        controller.release()  # retires the over-admission first
        controller.release()
        assert controller.occupancy()["running"] == 0

    def test_ticket_dataclass_defaults(self):
        ticket = Admission(site="s")
        assert ticket.fanout([1, 2]) == [1, 2]
        assert not ticket.degraded


# -- memory governor -------------------------------------------------------


class TestMemoryGovernor:
    def test_grant_and_release_budget(self):
        governor = MemoryGovernor(1000)
        assert governor.try_grant(600)
        assert not governor.try_grant(600)
        assert governor.denials == 1
        governor.release_grant(600)
        assert governor.try_grant(600)

    def test_grant_or_largest_floors_and_scales(self):
        governor = MemoryGovernor(1000)
        assert governor.grant_or_largest(800, floor=100) == 800
        # 200 left: largest multiple of 150 that fits is the floor.
        assert governor.grant_or_largest(700, floor=150) == 150
        governor.release_grant(950)
        # Largest multiple of 300 inside 1000 is 900.
        assert governor.grant_or_largest(5000, floor=300) == 900

    def test_release_more_than_granted_raises(self):
        governor = MemoryGovernor(1000)
        governor.try_grant(100)
        with pytest.raises(ValueError):
            governor.release_grant(200)

    def test_snapshot_shape(self):
        governor = MemoryGovernor(1000)
        governor.try_grant(100)
        snap = governor.stats_snapshot()
        assert snap == {"limit_bytes": 1000, "granted_bytes": 100,
                        "denials": 0}


# -- DPU launch gate -------------------------------------------------------


def _noop_kernel(ctx):
    yield from ctx.compute(10)
    return ctx.core_id


class TestDpuLaunchGate:
    def test_shed_policy_raises_typed_error(self):
        dpu = DPU()
        controller = AdmissionController(dpu.engine, max_concurrent=1,
                                         policy="shed")
        dpu.set_admission(controller)
        _acquire(dpu.engine, controller, site="hog")
        with pytest.raises(OverloadError) as info:
            dpu.launch(_noop_kernel, cores=[0, 1])
        assert info.value.site.startswith("dpu.launch:")
        controller.release()
        launch = dpu.launch(_noop_kernel, cores=[0, 1])
        assert launch.values == [0, 1]

    def test_degrade_policy_shrinks_fanout(self):
        dpu = DPU()
        controller = AdmissionController(dpu.engine, max_concurrent=1,
                                         policy="degrade")
        dpu.set_admission(controller)
        _acquire(dpu.engine, controller, site="hog")
        launch = dpu.launch(_noop_kernel, cores=[0, 1, 2, 3])
        assert launch.values == [0, 1]  # half the requested cores
        controller.release()

    def test_spawn_job_runs_gated_jobs_concurrently(self):
        dpu = DPU()
        controller = AdmissionController(dpu.engine, max_concurrent=2,
                                         policy="queue")
        dpu.set_admission(controller)
        jobs = [dpu.spawn_job(_noop_kernel, cores=[0, 1]) for _ in range(5)]
        gate = dpu.engine.all_of(jobs)
        values = dpu.engine.run_until_complete(gate)
        assert values == [[0, 1]] * 5
        assert controller.admitted == 5
        assert controller.stats.gauge("admission.running_peak") == 2


# -- governed operators stay byte-exact ------------------------------------


class TestGovernedOperators:
    def test_sort_spills_to_segments_byte_exact(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1_000_000, 6000, dtype=np.int64)
        table = Table("t", {"k": values})

        def run(governor):
            dpu = DPU()
            return dpu_sort(dpu, table.to_dpu(dpu), "k", governor=governor)

        base = run(None)
        assert base.detail["spill_segments"] == 1
        governor = MemoryGovernor(40_000)
        spilled = run(governor)
        assert spilled.detail["spill_segments"] > 1
        assert spilled.cycles > base.cycles
        assert np.array_equal(base.value, spilled.value)
        assert governor.granted_bytes == 0  # grant released

    def test_groupby_sw_round_chunks_byte_exact(self):
        rng = np.random.default_rng(6)
        n = 24 * 1024
        table = Table("t", {
            "g": rng.integers(0, 9000, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
        })
        budget = DmemBudget(total=32 * 1024, io_buffers=28 * 1024,
                            metadata=1024)

        def run(governor):
            dpu = DPU()
            result = dpu_groupby(
                dpu, table.to_dpu(dpu), "g",
                [AggSpec("sum", "v"), AggSpec("count")],
                budget=budget, governor=governor,
            )
            return result, dpu

        base, dpu_base = run(None)
        governor = MemoryGovernor(80_000)
        chunked, dpu_chunked = run(governor)
        assert chunked.value == base.value
        assert chunked.cycles > base.cycles
        # Chunked rounds free their bucket regions; the eager plan
        # leaves them live.
        assert (dpu_chunked.heap.live_bytes() < dpu_base.heap.live_bytes())
        assert governor.granted_bytes == 0

    def test_join_segments_build_side_exact_count(self):
        rng = np.random.default_rng(11)
        build = Table("b", {"k": rng.integers(0, 5000, 8000).astype(np.int32)})
        probe = Table("p", {"k": rng.integers(0, 5000, 16000).astype(np.int32)})

        def run(governor):
            dpu = DPU()
            return dpu_partitioned_join_count(
                dpu, build.to_dpu(dpu), "k", probe.to_dpu(dpu), "k",
                governor=governor,
            )

        base = run(None)
        assert base.detail["build_segments"] == 1
        governor = MemoryGovernor(30_000)
        segmented = run(governor)
        assert segmented.detail["build_segments"] > 1
        assert segmented.value == base.value
        assert segmented.cycles > base.cycles
        assert governor.granted_bytes == 0


# -- zero-overhead-off regression ------------------------------------------


class TestZeroOverheadUngated:
    def test_canonical_kernel_timing_is_pinned(self):
        """The no-admission, no-governor path must cost exactly what
        the seed did — pinned cycles and counters."""
        rows = 2048
        data = np.arange(rows, dtype=np.uint64)
        dpu = DPU()
        addr = dpu.store_array(data)
        address = dpu.address_map.dmem_address(2, 0)

        def kernel(ctx):
            yield from stream_columns(
                ctx, [(addr, 8)], rows, 512, lambda *a: 8, dmem_base=64
            )
            for _ in range(4):
                yield from ctx.fetch_add(2, address, 1)

        launch = dpu.launch(kernel, cores=[0, 1])
        assert launch.cycles == 2896.0
        assert dict(dpu.stats.counters) == {
            "dms.bytes_read": 32768.0,
            "dms.descriptors": 8.0,
            "dmad.completed": 8.0,
            "ate.messages": 8.0,
        }

    def test_ungoverned_sort_timing_is_pinned(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1_000_000, 20000, dtype=np.int64)
        table = Table("t", {"k": values})
        dpu = DPU()
        result = dpu_sort(dpu, table.to_dpu(dpu), "k")
        assert result.cycles == 88182.0
        assert np.array_equal(result.value, np.sort(values))
