"""Tests for DMS streaming: DMAD lists, loops, flow control, gather."""

import numpy as np
import pytest

from repro.core import DPU, DPU_40NM
from repro.core.bitvector import pack_bits
from repro.dms import (
    Descriptor,
    DescriptorType,
    DmsHardwareError,
    ddr_to_dmem,
    dmem_to_ddr,
    loop,
)


@pytest.fixture
def dpu():
    return DPU()


def test_simple_ddr_to_dmem_moves_real_bytes(dpu):
    data = np.arange(256, dtype=np.uint32)
    address = dpu.store_array(data)

    def kernel(ctx):
        ctx.push(ddr_to_dmem(256, 4, address, 0, notify_event=0))
        yield from ctx.wfe(0)
        return ctx.dmem.view(0, 1024, np.uint32).copy()

    result = dpu.launch(kernel, cores=[0])
    assert np.array_equal(result.values[0], data)


def test_dmem_to_ddr_writes_back(dpu):
    target = dpu.alloc(1024)

    def kernel(ctx):
        ctx.dmem.write(0, np.full(256, 7, dtype=np.uint32))
        ctx.push(dmem_to_ddr(256, 4, target, 0, notify_event=1))
        yield from ctx.wfe(1)

    dpu.launch(kernel, cores=[3])
    assert np.array_equal(
        dpu.load_array(target, 256, np.uint32), np.full(256, 7, np.uint32)
    )


def test_listing1_loop_descriptor_streams_whole_buffer(dpu):
    """The paper's Listing 1: 3 descriptors stream megabytes."""
    data = np.arange(64 * 1024, dtype=np.uint32)  # 256 KB
    address = dpu.store_array(data)
    iterations = len(data) * 4 // 2048

    def kernel(ctx):
        ctx.push(ddr_to_dmem(256, 4, address, 0, notify_event=0,
                             src_addr_inc=True))
        ctx.push(ddr_to_dmem(256, 4, address, 1024, notify_event=1,
                             src_addr_inc=True))
        ctx.push(loop(2, iterations - 1))
        total = 0
        buf = 0
        for _ in range(2 * iterations):
            yield from ctx.wfe(buf)
            total += int(ctx.dmem.view(buf * 1024, 1024, np.uint32).sum())
            ctx.clear_event(buf)
            buf = 1 - buf
        return total

    result = dpu.launch(kernel, cores=[0])
    assert result.values[0] == int(data.sum())


def test_flow_control_backpressure_blocks_refill(dpu):
    """A descriptor whose notify event is still set must not refill
    the buffer (the §3.1 back-pressure rule)."""
    data = np.arange(512, dtype=np.uint32)
    address = dpu.store_array(data)

    def kernel(ctx):
        ctx.push(ddr_to_dmem(256, 4, address, 0, notify_event=0,
                             src_addr_inc=True))
        ctx.push(ddr_to_dmem(256, 4, address, 0, notify_event=0,
                             src_addr_inc=True))
        yield from ctx.wfe(0)
        first = ctx.dmem.view(0, 1024, np.uint32).copy()
        # Stall long enough that an un-gated refill would have landed.
        yield from ctx.compute(5000)
        still = ctx.dmem.view(0, 1024, np.uint32).copy()
        assert np.array_equal(first, still), "buffer overwritten early"
        ctx.clear_event(0)
        yield from ctx.wfe(0)
        second = ctx.dmem.view(0, 1024, np.uint32).copy()
        return first, second

    first, second = dpu.launch(kernel, cores=[0]).values[0]
    assert np.array_equal(first, data[:256])
    assert np.array_equal(second, data[256:])


def test_wait_event_gates_descriptor(dpu):
    data = np.arange(64, dtype=np.uint32)
    address = dpu.store_array(data)

    def kernel(ctx):
        ctx.push(
            ddr_to_dmem(64, 4, address, 0, notify_event=1, wait_event=2)
        )
        yield from ctx.compute(2000)
        assert not ctx.events.is_set(1), "descriptor ran before its gate"
        ctx.set_event(2)
        yield from ctx.wfe(1)
        return True

    assert dpu.launch(kernel, cores=[0]).values[0]


def test_gather_with_bitvector(dpu):
    rows = 512
    data = np.arange(rows, dtype=np.uint64)
    address = dpu.store_array(data)
    mask = np.zeros(rows, dtype=bool)
    mask[::7] = True
    expected = data[mask]

    def kernel(ctx):
        words = pack_bits(mask)
        ctx.dmem.write(8192, words)
        ctx.push(
            Descriptor(
                dtype=DescriptorType.DMEM_TO_DMS,
                rows=len(words), col_width=8, dmem_addr=8192,
                internal_mem="bv",
            )
        )
        ctx.push(
            Descriptor(
                dtype=DescriptorType.DDR_TO_DMEM,
                rows=rows, col_width=8, ddr_addr=address, dmem_addr=0,
                gather_src=True, notify_event=0,
            )
        )
        yield from ctx.wfe(0)
        return ctx.dmem.view(0, len(expected) * 8, np.uint64).copy()

    result = dpu.launch(kernel, cores=[0])
    assert np.array_equal(result.values[0], expected)


def test_scatter_with_bitvector(dpu):
    rows = 256
    target = dpu.alloc(rows * 8)
    mask = np.zeros(rows, dtype=bool)
    mask[[3, 50, 100, 255]] = True
    payload = np.array([11, 22, 33, 44], dtype=np.uint64)

    def kernel(ctx):
        ctx.dmem.write(8192, pack_bits(mask))
        ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                            rows=4, col_width=8, dmem_addr=8192,
                            internal_mem="bv"))
        ctx.dmem.write(0, payload)
        ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DDR,
                            rows=rows, col_width=8, ddr_addr=target,
                            dmem_addr=0, scatter_dst=True, notify_event=0))
        yield from ctx.wfe(0)

    dpu.launch(kernel, cores=[0])
    written = dpu.load_array(target, rows, np.uint64)
    assert list(written[[3, 50, 100, 255]]) == [11, 22, 33, 44]
    assert written.sum() == payload.sum()


def test_strided_read(dpu):
    matrix = np.arange(64 * 4, dtype=np.uint32).reshape(64, 4)
    address = dpu.store_array(matrix)

    def kernel(ctx):
        # Column 2 of a row-major matrix: stride 16 B between elements.
        ctx.push(
            Descriptor(
                dtype=DescriptorType.DDR_TO_DMEM,
                rows=64, col_width=4, ddr_addr=address + 8, dmem_addr=0,
                ddr_stride=16, notify_event=0,
            )
        )
        yield from ctx.wfe(0)
        return ctx.dmem.view(0, 256, np.uint32).copy()

    result = dpu.launch(kernel, cores=[0])
    assert np.array_equal(result.values[0], matrix[:, 2])


def test_rtl_gather_bug_raises_on_concurrent_gathers():
    dpu = DPU(DPU_40NM.with_updates(rtl_gather_bug=True))
    rows = 2048
    data = np.arange(rows, dtype=np.uint64)
    address = dpu.store_array(data)
    mask = np.ones(rows, dtype=bool)

    def kernel(ctx):
        ctx.dmem.write(16384, pack_bits(mask[:rows]))
        ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                            rows=rows // 64, col_width=8, dmem_addr=16384,
                            internal_mem="bv"))
        ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMEM,
                            rows=rows, col_width=8, ddr_addr=address,
                            dmem_addr=0, gather_src=True, notify_event=0))
        yield from ctx.wfe(0)

    with pytest.raises(DmsHardwareError, match="gather"):
        dpu.launch(kernel, cores=[0, 1])


def test_gather_fixed_silicon_allows_concurrency():
    dpu = DPU(DPU_40NM.with_updates(rtl_gather_bug=False))
    rows = 2048
    data = np.arange(rows, dtype=np.uint64)
    address = dpu.store_array(data)
    mask = np.ones(rows, dtype=bool)

    def kernel(ctx):
        ctx.dmem.write(16384, pack_bits(mask))
        ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                            rows=rows // 64, col_width=8, dmem_addr=16384,
                            internal_mem="bv"))
        ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMEM,
                            rows=rows, col_width=8, ddr_addr=address,
                            dmem_addr=0, gather_src=True, notify_event=0))
        yield from ctx.wfe(0)
        return int(ctx.dmem.view(0, rows * 8, np.uint64)[5])

    result = dpu.launch(kernel, cores=[0, 1])
    assert result.values == [5, 5]


def test_aggregate_stream_bandwidth_above_9_gbps():
    """Figure 11's headline: >9 GB/s at 8 KB buffers on 32 cores."""
    dpu = DPU()
    per_core = 128 * 1024
    nrows = per_core // 4
    sources = {c: dpu.store_array(np.zeros(nrows, dtype=np.uint32))
               for c in range(32)}

    def kernel(ctx):
        source = sources[ctx.core_id]
        iterations = nrows // 2048 // 2
        ctx.push(ddr_to_dmem(2048, 4, source, 0, notify_event=0,
                             src_addr_inc=True))
        ctx.push(ddr_to_dmem(2048, 4, source, 8192, notify_event=1,
                             src_addr_inc=True))
        ctx.push(loop(2, iterations - 1))
        buf = 0
        for _ in range(2 * iterations):
            yield from ctx.wfe(buf)
            ctx.clear_event(buf)
            buf = 1 - buf

    result = dpu.launch(kernel)
    gbps = result.gbps(32 * per_core)
    assert 9.0 < gbps < 12.8  # paper: >9 GB/s, below DDR3 peak


def test_rle_not_modelled_is_explicit(dpu):
    def kernel(ctx):
        ctx.push(ddr_to_dmem(16, 4, 4096, 0, rle=True, notify_event=0))
        yield from ctx.wfe(0)

    with pytest.raises(Exception, match="RLE"):
        dpu.launch(kernel, cores=[0])


def test_serialize_gathers_workaround_on_buggy_silicon():
    """The paper's software workaround for the first-silicon gather
    bug: wrap each gather in an ATE mutex so only one dpCore ever has
    a gather in flight. Concurrent gather kernels then succeed on
    rtl_gather_bug hardware, byte-exact with the fixed-silicon run."""
    from repro.runtime import AteMutex

    rows = 2048
    data = np.arange(rows, dtype=np.uint64)
    mask = np.ones(rows, dtype=bool)

    def run(rtl_bug, serialize):
        dpu = DPU(DPU_40NM.with_updates(rtl_gather_bug=rtl_bug))
        address = dpu.store_array(data)
        mutex = AteMutex(dpu, owner=0, dmem_offset=24576)

        def kernel(ctx):
            ctx.dmem.write(16384, pack_bits(mask))
            if serialize:
                yield from mutex.acquire(ctx)
            try:
                ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                                    rows=rows // 64, col_width=8,
                                    dmem_addr=16384, internal_mem="bv"))
                ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMEM,
                                    rows=rows, col_width=8, ddr_addr=address,
                                    dmem_addr=0, gather_src=True,
                                    notify_event=0))
                yield from ctx.wfe(0)
                ctx.clear_event(0)
            finally:
                if serialize:
                    yield from mutex.release(ctx)
            return ctx.dmem.view(0, rows * 8, np.uint64).copy()

        return dpu.launch(kernel, cores=[0, 1, 2, 3])

    serialized = run(rtl_bug=True, serialize=True)
    fixed = run(rtl_bug=False, serialize=False)
    for got, want in zip(serialized.values, fixed.values):
        assert np.array_equal(got, want)
    assert np.array_equal(serialized.values[0], data)
    # Serialization costs cycles; the mutex must not deadlock or skew
    # results, only slow the overlapping gathers down.
    assert serialized.cycles >= fixed.cycles
