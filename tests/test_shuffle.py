"""Tests for the partitioned exchange and the exchange-based cluster
jobs (paper §4): shuffle correctness, byte-exact distributed SQL at
2/4/8 DPUs, fault tolerance, and per-job fabric accounting."""

import numpy as np
import pytest

from repro.apps.sql import Table
from repro.apps.sql.aggregate import AggSpec, GroupKey, dpu_groupby
from repro.apps.sql.join import dpu_partitioned_join_count
from repro.apps.sql.topk import dpu_topk
from repro.apps.sql.tpch_queries import q1_plan
from repro.cluster import (
    Cluster,
    cluster_groupby,
    cluster_partitioned_join_count,
    cluster_topk,
    cluster_tpch_q1,
    shuffle_cids,
    shuffle_exchange,
    shuffle_spec,
)
from repro.core.config import DPU_40NM
from repro.core.dpu import DPU
from repro.faults import FaultPlan
from repro.workloads.tpch import generate_tpch


def _shard(columns, num_shards, name="shard"):
    """Row-range shard a dict of equal-length columns."""
    total = len(next(iter(columns.values())))
    bounds = [round(total * i / num_shards) for i in range(num_shards + 1)]
    return [
        Table(
            f"{name}{i}",
            {n: c[bounds[i]:bounds[i + 1]] for n, c in columns.items()},
        )
        for i in range(num_shards)
    ]


@pytest.fixture(scope="module")
def groupby_data():
    rng = np.random.default_rng(7)
    n = 6000
    return {
        "k": rng.integers(0, 64, n, dtype=np.uint32),
        "v": rng.integers(0, 1000, n, dtype=np.uint32),
    }


class TestShuffleSpec:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            shuffle_spec(3)
        with pytest.raises(ValueError):
            shuffle_spec(1)

    def test_decorrelated_from_intra_dpu_bits(self):
        """The exchange uses hash bits 16.. so the 32-way intra-DPU
        partitioner (bits 0..4) still spreads rows after a shuffle."""
        assert shuffle_spec(8).radix_shift == 16

    def test_cids_cover_all_destinations(self):
        keys = np.arange(4096, dtype=np.uint32)
        cids = shuffle_cids(keys, 4)
        assert set(np.unique(cids)) == {0, 1, 2, 3}


class TestShuffleExchange:
    def test_rows_conserved_and_key_locality(self, groupby_data):
        num_dpus = 4
        cluster = Cluster(num_dpus)
        shards = _shard(groupby_data, num_dpus)
        dtables = [s.to_dpu(d) for s, d in zip(shards, cluster.dpus)]
        result = shuffle_exchange(cluster, dtables, "k", ["k", "v"])

        total = sum(len(c["k"]) for c in result.columns)
        assert total == len(groupby_data["k"])
        # Every row landed on the DPU its key hashes to.
        for dest, columns in enumerate(result.columns):
            if len(columns["k"]):
                assert (shuffle_cids(columns["k"], num_dpus) == dest).all()
        # Multiset of (k, v) pairs is preserved.
        got = np.sort(
            np.concatenate(
                [c["k"].astype(np.uint64) << np.uint64(32)
                 | c["v"].astype(np.uint64) for c in result.columns]
            )
        )
        want = np.sort(
            groupby_data["k"].astype(np.uint64) << np.uint64(32)
            | groupby_data["v"].astype(np.uint64)
        )
        assert (got == want).all()

    def test_fabric_bytes_match_moved_bytes(self, groupby_data):
        cluster = Cluster(2)
        shards = _shard(groupby_data, 2)
        dtables = [s.to_dpu(d) for s, d in zip(shards, cluster.dpus)]
        before = cluster.fabric.bytes_sent
        result = shuffle_exchange(cluster, dtables, "k", ["k", "v"])
        assert cluster.fabric.bytes_sent - before == result.bytes_moved
        assert result.bytes_moved == result.rows_moved * 8  # two u32 cols


class TestClusterGroupby:
    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_byte_equal_to_single_dpu(self, groupby_data, num_dpus):
        aggs = [AggSpec("sum", "v"), AggSpec("count")]
        single = DPU(DPU_40NM)
        reference = dpu_groupby(
            single, Table("t", groupby_data).to_dpu(single), "k", aggs
        ).value

        cluster = Cluster(num_dpus)
        result = cluster_groupby(
            cluster, _shard(groupby_data, num_dpus), "k", aggs
        )
        assert result.value == reference
        assert result.num_dpus == num_dpus
        assert result.detail["rows_moved"] > 0
        assert result.network_bytes > 0

    def test_composite_key_rejected(self, groupby_data):
        cluster = Cluster(2)
        key = GroupKey(fn=lambda c: c["k"], columns=("k",), name="k2")
        with pytest.raises(ValueError):
            cluster_groupby(
                cluster, _shard(groupby_data, 2), key, [AggSpec("count")]
            )

    def test_single_dpu_degenerate(self, groupby_data):
        aggs = [AggSpec("sum", "v")]
        single = DPU(DPU_40NM)
        reference = dpu_groupby(
            single, Table("t", groupby_data).to_dpu(single), "k", aggs
        ).value
        cluster = Cluster(1)
        result = cluster_groupby(cluster, _shard(groupby_data, 1), "k", aggs)
        assert result.value == reference
        assert result.network_bytes == 0


class TestClusterJoin:
    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_byte_equal_to_single_dpu(self, num_dpus):
        rng = np.random.default_rng(11)
        build = {"k": rng.integers(0, 512, 3000, dtype=np.uint32)}
        probe = {"k": rng.integers(0, 512, 4500, dtype=np.uint32)}
        single = DPU(DPU_40NM)
        reference = int(
            dpu_partitioned_join_count(
                single,
                Table("b", build).to_dpu(single), "k",
                Table("p", probe).to_dpu(single), "k",
            ).value
        )

        cluster = Cluster(num_dpus)
        result = cluster_partitioned_join_count(
            cluster,
            _shard(build, num_dpus, "b"), "k",
            _shard(probe, num_dpus, "p"), "k",
        )
        assert result.value == reference
        # Two shuffles: both phases appear in the breakdown.
        assert result.detail["exchange_cycles"] > 0


class TestClusterTopk:
    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_exact_with_unique_values(self, num_dpus):
        rng = np.random.default_rng(13)
        values = rng.permutation(
            np.arange(20000, dtype=np.uint32)
        )[:8000]
        single = DPU(DPU_40NM)
        reference = dpu_topk(
            single, Table("t", {"x": values}).to_dpu(single), "x", 25
        ).value

        cluster = Cluster(num_dpus)
        result = cluster_topk(
            cluster, _shard({"x": values}, num_dpus), "x", 25
        )
        assert result.value == reference


class TestClusterTpchQ1:
    @pytest.fixture(scope="class")
    def q1_setup(self):
        data = generate_tpch(scale=0.005, seed=42)
        lineitem = data.tables["lineitem"]
        single = DPU(DPU_40NM)
        key, aggs, row_filter = q1_plan()
        reference = dpu_groupby(
            single, Table("lineitem", lineitem).to_dpu(single),
            key, aggs, row_filter=row_filter,
        ).value
        return lineitem, reference

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_byte_equal_to_single_dpu(self, q1_setup, num_dpus):
        lineitem, reference = q1_setup
        cluster = Cluster(num_dpus)
        result = cluster_tpch_q1(
            cluster, _shard(lineitem, num_dpus, "lineitem")
        )
        assert result.value == reference
        # Pre-aggregation strategy: only group-table partials cross
        # the fabric (<= 56 bytes per group per DPU), never lineitem.
        groups = len(reference)
        assert result.network_bytes <= num_dpus * 56 * groups


class TestFaultyCluster:
    """Seeded net.drop faults: byte-exact results, positive
    retransmission counters, strictly slower than fault-free."""

    def test_groupby_exact_under_drops(self, groupby_data):
        aggs = [AggSpec("sum", "v"), AggSpec("count")]
        shards = _shard(groupby_data, 4)

        clean_cluster = Cluster(4)
        clean = cluster_groupby(clean_cluster, shards, "k", aggs)

        faulty_cluster = Cluster(
            4, fault_plan=FaultPlan(seed=5, rates={"net.drop": 0.2})
        )
        faulty = cluster_groupby(faulty_cluster, shards, "k", aggs)

        assert faulty.value == clean.value
        assert faulty.retransmissions > 0
        assert clean.retransmissions == 0
        assert faulty.cycles > clean.cycles
        assert faulty_cluster.fabric.bytes_retransmitted > 0

    def test_tpch_q1_exact_under_drops(self):
        data = generate_tpch(scale=0.002, seed=42)
        shards = _shard(data.tables["lineitem"], 2, "lineitem")
        clean = cluster_tpch_q1(Cluster(2), shards)
        faulty = cluster_tpch_q1(
            Cluster(2, fault_plan=FaultPlan(seed=7,
                                            rates={"net.drop": 0.6})),
            shards,
        )
        assert faulty.value == clean.value
        assert faulty.retransmissions > 0
        assert faulty.cycles > clean.cycles


class TestPerJobAccounting:
    def test_back_to_back_jobs_report_deltas(self, groupby_data):
        """Regression for the cumulative-counter bug: the second job's
        network_bytes must exclude the first job's traffic."""
        aggs = [AggSpec("count")]
        cluster = Cluster(2)
        shards = _shard(groupby_data, 2)
        first = cluster_groupby(cluster, shards, "k", aggs)
        second = cluster_groupby(cluster, shards, "k", aggs)
        # Identical work: identical per-job traffic, not 2x.
        assert second.network_bytes == first.network_bytes
        assert (
            cluster.fabric.bytes_sent
            == first.network_bytes + second.network_bytes
        )


class TestClusterObservability:
    def test_counter_registry_covers_fabric_and_dpus(self, groupby_data):
        cluster = Cluster(2)
        cluster_groupby(
            cluster, _shard(groupby_data, 2), "k", [AggSpec("count")]
        )
        snapshot = cluster.counter_registry().snapshot()
        assert snapshot["fabric.bytes_sent"] > 0
        assert snapshot["fabric.retransmissions"] == 0
        assert "fabric.tx0.utilization" in snapshot
        assert any(name.startswith("dpu0.") for name in snapshot)
        assert any(name.startswith("dpu1.") for name in snapshot)

    def test_cluster_trace_has_shuffle_spans(self, groupby_data):
        cluster = Cluster(2)
        tracer = cluster.enable_tracing(capacity=1 << 18)
        cluster_groupby(
            cluster, _shard(groupby_data, 2), "k", [AggSpec("count")]
        )
        names = {event["name"] for event in tracer.events}
        assert "ib.send" in names
        assert "ib.deliver" in names
        assert "cluster.groupby" in names
