"""Multi-tenant serving layer (docs/SERVING.md).

Covers the PR-10 surface end to end: the shared-default-config bugfix
sweep (no two construction sites may alias one ``FabricConfig``), the
anchor-based :class:`~repro.runtime.admission.TokenBucket` (a long
run of tiny refills admits exactly what one large refill admits),
start-time fair queueing, plan/result caches with catalog-version
invalidation, shared-scan batching, the QoS serving front end — and
the byte-equality contract that makes all of it safe: every cached,
batched, or chaos-recovered response equals the rows of a standalone
:func:`~repro.cluster.scaleout.cluster_compiled_query` run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sql import Table, compile_query, load_query, tpch_catalog
from repro.apps.sql.ir import PlanError
from repro.cluster import (
    Cluster,
    FabricConfig,
    IBFabric,
    ShuffleRackModel,
    cluster_batched_queries,
    cluster_compiled_query,
)
from repro.faults import ChaosSpec, FaultPlan
from repro.runtime.admission import TokenBucket, WeightedFairQueue
from repro.serve import (
    DEFAULT_TIERS,
    OpenLoopWorkload,
    PlanCache,
    QueryRequest,
    ResultCache,
    ServingFrontend,
    TierSpec,
)
from repro.sim import Engine
from repro.workloads.tpch import generate_tpch

QUERIES = ["q1", "q6", "q12", "q14"]


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale=0.002, seed=11)


@pytest.fixture(scope="module")
def catalog(data):
    return tpch_catalog(data)


@pytest.fixture(scope="module")
def query_texts():
    return {name: load_query(name) for name in QUERIES}


def _full_shards(data, num_shards, fact="lineitem"):
    """Row-shard the fact table keeping every column (the serving
    front end projects per batch)."""
    table = data.tables[fact]
    columns = list(table)
    total = len(table[columns[0]])
    bounds = [total * i // num_shards for i in range(num_shards + 1)]
    return [
        Table(
            f"{fact}_shard{i}",
            {n: table[n][bounds[i]:bounds[i + 1]] for n in columns},
        )
        for i in range(num_shards)
    ]


def _reference_rows(query_texts, catalog, data, name, num_dpus=4):
    """Standalone cluster run of one query: the byte-equality oracle."""
    compiled = compile_query(query_texts[name], catalog, name)
    shards = _full_shards(data, num_dpus)
    projected = [
        Table(s.name, {n: s.columns[n] for n in compiled.needed_columns})
        for s in shards
    ]
    return cluster_compiled_query(Cluster(num_dpus), compiled,
                                  projected).value


# -- shared-default-config bugfix sweep (B006/B008) ------------------------


class TestNoSharedConfigDefaults:
    """Each construction site must build its own FabricConfig.

    The config dataclass is frozen, so a shared instance cannot be
    mutated today — but any future mutable field (or an ``object.__
    setattr__`` escape hatch) would silently couple every fabric in
    the process. The fix is ``None``-sentinel defaults and
    ``default_factory``; these tests pin the resulting identity
    semantics at all four former ``f(cfg=FabricConfig())`` sites.
    """

    def test_ibfabric_defaults_are_distinct_instances(self):
        engine = Engine()
        a = IBFabric(engine, num_endpoints=2)
        b = IBFabric(engine, num_endpoints=2)
        assert a.config is not b.config
        assert a.config == b.config  # same values, different objects

    def test_cluster_defaults_are_distinct_instances(self):
        a = Cluster(2)
        b = Cluster(2)
        assert a.fabric.config is not b.fabric.config

    def test_shuffle_model_field_uses_default_factory(self):
        a = ShuffleRackModel(total_rows=1000, record_bytes=8,
                             result_bytes=64)
        b = ShuffleRackModel(total_rows=1000, record_bytes=8,
                             result_bytes=64)
        assert a.fabric is not b.fabric

    def test_explicit_config_is_used_verbatim(self):
        config = FabricConfig(fabric_latency_cycles=7)
        cluster = Cluster(2, fabric_config=config)
        assert cluster.fabric.config is config
        detail = {"partition_cycles": 100.0, "local_cycles": 200.0}
        model = ShuffleRackModel.from_sim(
            detail, num_dpus=2, total_rows=1000, record_bytes=8,
            fabric=config)
        assert model.fabric is config


# -- token bucket drift ----------------------------------------------------


class TestTokenBucketDrift:
    """The level must be a pure function of (anchor, now): observing
    the bucket many times between consumptions cannot change what it
    admits."""

    @given(
        steps=st.lists(st.floats(min_value=0.01, max_value=50.0),
                       min_size=1, max_size=300),
        rate=st.floats(min_value=0.01, max_value=10.0),
        burst=st.floats(min_value=1.0, max_value=16.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_many_small_refills_equal_one_large_refill(
            self, steps, rate, burst):
        watched = TokenBucket(rate_per_kcycle=rate, burst=burst)
        ignored = TokenBucket(rate_per_kcycle=rate, burst=burst)
        now = 0.0
        for step in steps:
            now += step
            watched.cycles_until_available(now)  # read-only observation
        ignored.cycles_until_available(now)  # one large refill
        assert watched.tokens == ignored.tokens
        # Both buckets now admit the identical prefix of takes.
        admitted_watched = admitted_ignored = 0
        while watched.try_take(now):
            admitted_watched += 1
        while ignored.try_take(now):
            admitted_ignored += 1
        assert admitted_watched == admitted_ignored

    def test_long_observed_run_admits_like_single_jump(self):
        # Regression for the accumulate-per-refill implementation: 1e5
        # observations of a 0.1-cycle step used to drift the level away
        # from one 1e4-cycle jump.
        observed = TokenBucket(rate_per_kcycle=1.0, burst=8.0)
        jumped = TokenBucket(rate_per_kcycle=1.0, burst=8.0)
        assert observed.try_take(0.0) and jumped.try_take(0.0)
        now = 0.0
        for _ in range(100_000):
            now += 0.1
            observed.cycles_until_available(now)
        assert now == pytest.approx(10_000.0)
        count_observed = count_jumped = 0
        while observed.try_take(10_000.0):
            count_observed += 1
        while jumped.try_take(10_000.0):
            count_jumped += 1
        assert count_observed == count_jumped
        assert observed.tokens == jumped.tokens

    def test_cap_is_exact_after_idle(self):
        bucket = TokenBucket(rate_per_kcycle=0.3, burst=5.0)
        assert bucket.try_take(0.0, cost=5.0)
        bucket.cycles_until_available(1e9)
        assert bucket.tokens == 5.0


# -- weighted fair queue ---------------------------------------------------


class TestWeightedFairQueue:
    def test_service_in_weight_ratio(self):
        queue = WeightedFairQueue()
        queue.register("gold", 8.0)
        queue.register("bronze", 1.0)
        for i in range(90):
            queue.push("gold", f"g{i}")
            queue.push("bronze", f"b{i}")
        served = [queue.pop()[0] for _ in range(90)]
        gold = served.count("gold")
        bronze = served.count("bronze")
        assert gold / max(bronze, 1) == pytest.approx(8.0, rel=0.3)

    def test_fifo_within_flow(self):
        queue = WeightedFairQueue()
        queue.register("t", 2.0)
        for i in range(10):
            queue.push("t", i)
        assert [queue.pop()[1] for i in range(10)] == list(range(10))

    def test_no_starvation(self):
        # A backlogged weight-1 flow's head tag ages; it must be
        # served long before the weight-8 flow drains.
        queue = WeightedFairQueue()
        queue.register("gold", 8.0)
        queue.register("bronze", 1.0)
        queue.push("bronze", "b0")
        for i in range(64):
            queue.push("gold", f"g{i}")
        served = [queue.pop()[0] for _ in range(16)]
        assert "bronze" in served

    def test_eligibility_filter_skips_flows(self):
        queue = WeightedFairQueue()
        queue.register("a", 1.0)
        queue.register("b", 1.0)
        queue.push("a", 1)
        queue.push("b", 2)
        flow, item = queue.pop({"a": False, "b": True})
        assert (flow, item) == ("b", 2)
        assert queue.pop({"a": False, "b": False}) is None
        assert len(queue) == 1

    def test_idle_flow_gains_no_credit(self):
        # An idle flow re-enters at the current virtual time: it may
        # win the next slot but cannot burst through the backlog.
        queue = WeightedFairQueue()
        queue.register("busy", 1.0)
        queue.register("idle", 1.0)
        for i in range(20):
            queue.push("busy", i)
        for _ in range(10):
            queue.pop()
        queue.push("idle", "late")
        served = [queue.pop()[0] for _ in range(3)]
        assert served.count("idle") == 1

    def test_deterministic_order(self):
        def run():
            queue = WeightedFairQueue()
            queue.register("x", 3.0)
            queue.register("y", 1.0)
            for i in range(30):
                queue.push("x", i)
                queue.push("y", i)
            return [queue.pop() for _ in range(60)]

        assert run() == run()

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            WeightedFairQueue().register("t", 0.0)


# -- caches ----------------------------------------------------------------


class TestCaches:
    def test_result_cache_hit_and_miss(self):
        cache = ResultCache(capacity=4)
        assert cache.get("q1", 0) is None
        cache.put("q1", 0, ((1, 2),))
        assert cache.get("q1", 0) == ((1, 2),)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        cache.get("a", 0)  # refresh a
        cache.put("c", 0, 3)  # evicts b
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == 1
        assert cache.stats()["evictions"] == 1

    def test_version_change_misses_and_invalidates(self):
        cache = ResultCache(capacity=4)
        cache.put("q1", 0, "old")
        assert cache.get("q1", 1) is None  # stale key never matches
        cache.put("q1", 1, "new")  # eagerly drops version-0 entry
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 1

    def test_stale_put_does_not_evict_newer_version(self):
        # A put carrying an older catalog_version (a plan compiled
        # before an interleaved catalog bump) must not invalidate the
        # newer-version entry: eager invalidation is strictly older-only.
        cache = ResultCache(capacity=4)
        cache.put("q1", 1, "new")
        cache.put("q1", 0, "stale")
        assert cache.get("q1", 1) == "new"
        assert cache.stats()["invalidations"] == 0

    def test_catalog_update_bumps_version_and_invalidates(
            self, data, query_texts):
        catalog = tpch_catalog(data)
        cache = PlanCache()
        version = catalog.version
        compiled = compile_query(query_texts["q6"], catalog, "q6")
        cache.put("q6", version, compiled)
        assert cache.get("q6", catalog.version) is compiled
        quantity = catalog.tables["lineitem"]["l_quantity"]
        assert catalog.update_column(
            "lineitem", "l_quantity", quantity.copy()) == version + 1
        assert cache.get("q6", catalog.version) is None
        recompiled = compile_query(query_texts["q6"], catalog, "q6")
        assert recompiled.catalog_version == version + 1
        assert recompiled.batch_key != compiled.batch_key

    def test_catalog_update_rejects_bad_shapes(self, data):
        catalog = tpch_catalog(data)
        with pytest.raises(PlanError):
            catalog.update_column("lineitem", "nope", np.zeros(4))
        with pytest.raises(PlanError):
            catalog.update_column("lineitem", "l_quantity", np.zeros(4))


# -- shared-scan batching --------------------------------------------------


class TestBatchedQueries:
    @pytest.mark.parametrize("num_dpus", [1, 2, 4])
    def test_batch_byte_equal_to_standalone(self, data, catalog,
                                            query_texts, num_dpus):
        batch = [compile_query(query_texts[n], catalog, n)
                 for n in QUERIES]
        shards = _full_shards(data, num_dpus)
        union = list(dict.fromkeys(
            n for c in batch for n in c.needed_columns))
        projected = [Table(s.name, {n: s.columns[n] for n in union})
                     for s in shards]
        result = cluster_batched_queries(Cluster(num_dpus), batch,
                                         projected)
        assert result.detail["batch"] == len(batch)
        for compiled, rows in zip(batch, result.value):
            assert rows == _reference_rows(query_texts, catalog, data,
                                           compiled.name, num_dpus)

    def test_rejects_empty_batch(self, data):
        with pytest.raises(ValueError):
            cluster_batched_queries(Cluster(2), [],
                                    _full_shards(data, 2))

    def test_rejects_mixed_catalog_versions(self, data, query_texts):
        catalog = tpch_catalog(data)
        q6 = compile_query(query_texts["q6"], catalog, "q6")
        catalog.bump_version()
        q14 = compile_query(query_texts["q14"], catalog, "q14")
        with pytest.raises(ValueError, match="cannot share a scan"):
            cluster_batched_queries(Cluster(2), [q6, q14],
                                    _full_shards(data, 2))

    def test_batch_cheaper_than_separate_jobs(self, data, catalog,
                                              query_texts):
        # The batch pays one admission, one fabric message per DPU,
        # and one gather for the whole query list; payload bytes are
        # identical (the same partial group tables cross the fabric).
        batch = [compile_query(query_texts[n], catalog, n)
                 for n in QUERIES]
        shards = _full_shards(data, 4)
        batched = cluster_batched_queries(Cluster(4), batch, shards)
        separate_cycles = 0.0
        separate_bytes = 0
        for name in QUERIES:
            compiled = compile_query(query_texts[name], catalog, name)
            projected = [
                Table(s.name,
                      {n: s.columns[n] for n in compiled.needed_columns})
                for s in shards
            ]
            result = cluster_compiled_query(
                Cluster(4), compiled, projected,
                strategy="pre_aggregate")
            separate_cycles += result.cycles
            separate_bytes += result.network_bytes
        assert batched.network_bytes == separate_bytes
        assert batched.cycles < separate_cycles


# -- serving front end -----------------------------------------------------


TENANTS = {"acme": "gold", "beta": "silver", "corp": "bronze",
           "dyn": "bronze"}


def _frontend(data, catalog, query_texts, num_dpus=4, fault_plan=None,
              tenants=None, **kwargs):
    cluster = (Cluster(num_dpus, fault_plan=fault_plan)
               if fault_plan is not None else Cluster(num_dpus))
    return ServingFrontend(
        cluster, catalog, query_texts,
        {"lineitem": _full_shards(data, num_dpus)},
        tenants=tenants if tenants is not None else dict(TENANTS),
        **kwargs,
    )


class TestServingFrontend:
    def test_all_requests_served_byte_equal(self, data, catalog,
                                            query_texts):
        workload = OpenLoopWorkload(TENANTS, QUERIES, seed=7)
        requests = workload.generate(40, mean_interarrival_cycles=20_000.0)
        frontend = _frontend(data, catalog, query_texts)
        report = frontend.run(requests)
        assert len(report.records) == len(requests)
        assert report.counters["cache_hits"] > 0
        assert report.counters.get("batches", 0) > 0
        for name in QUERIES:
            assert report.results[name] == _reference_rows(
                query_texts, catalog, data, name)

    def test_uncached_unbatched_byte_equal(self, data, catalog,
                                           query_texts):
        workload = OpenLoopWorkload(TENANTS, QUERIES, seed=3)
        requests = workload.generate(12, mean_interarrival_cycles=40_000.0)
        frontend = _frontend(data, catalog, query_texts,
                             batching=False, caching=False)
        report = frontend.run(requests)
        assert len(report.records) == len(requests)
        assert all(r.source == "direct" for r in report.records)
        for name in {r.query for r in requests}:
            assert report.results[name] == _reference_rows(
                query_texts, catalog, data, name)

    def test_deterministic_replay(self, data, catalog, query_texts):
        workload = OpenLoopWorkload(TENANTS, QUERIES, seed=5)
        requests = workload.generate(24, mean_interarrival_cycles=15_000.0)

        def run():
            report = _frontend(data, catalog, query_texts).run(requests)
            return [(r.request.index, r.completion, r.latency, r.source)
                    for r in report.records]

        assert run() == run()

    def test_workload_is_deterministic_and_zipfian(self):
        workload = OpenLoopWorkload(TENANTS, QUERIES, seed=9)
        first = workload.generate(200, mean_interarrival_cycles=1000.0)
        second = OpenLoopWorkload(TENANTS, QUERIES, seed=9).generate(
            200, mean_interarrival_cycles=1000.0)
        assert first == second
        counts = {t: sum(1 for r in first if r.tenant == t)
                  for t in TENANTS}
        assert counts["acme"] > counts["corp"]  # rank-1 beats rank-3

    def test_gold_latency_beats_bronze_under_overload(self, data, catalog,
                                                      query_texts):
        workload = OpenLoopWorkload(TENANTS, QUERIES, seed=13)
        requests = workload.generate(60, mean_interarrival_cycles=4_000.0)
        report = _frontend(data, catalog, query_texts).run(requests)
        gold = report.tier_digests["gold"]
        bronze = report.tier_digests["bronze"]
        assert gold.quantile(0.99) < bronze.quantile(0.99)

    def test_result_cache_serves_repeats(self, data, catalog, query_texts):
        workload = OpenLoopWorkload({"solo": "gold"}, ["q6"], seed=1)
        requests = workload.generate(8, mean_interarrival_cycles=50_000.0)
        frontend = _frontend(data, catalog, query_texts,
                             tenants={"solo": "gold"})
        report = frontend.run(requests)
        sources = [r.source for r in sorted(report.records,
                                            key=lambda r: r.request.index)]
        assert sources[0] == "direct"
        assert sources.count("cache") == 7


# -- rate-limit integrity --------------------------------------------------


class TestRateLimitIntegrity:
    """The token bucket must gate *every* dequeue path, including the
    shared-scan batch window, and failures must be loud."""

    def test_token_starved_tenant_not_batched(self, data, catalog,
                                              query_texts):
        # A tenant whose bucket is empty must stay queued even while a
        # co-tenant's batch window is open: the batch-collection loop
        # used to omit starved flows from the eligibility map, which
        # WeightedFairQueue.pop treats as eligible — a silent
        # rate-limit bypass.
        tiers = dict(DEFAULT_TIERS)
        tiers["trickle"] = TierSpec("trickle", weight=1.0,
                                    rate_per_kcycle=0.001, burst=1.0)
        refill_cycles = 1000.0 / 0.001  # one token per 1e6 cycles
        tenants = {"fast": "gold", "slow": "trickle"}
        requests = [
            QueryRequest(0, "slow", "trickle", "q6", 0.0),
            QueryRequest(1, "slow", "trickle", "q1", 1.0),
            QueryRequest(2, "fast", "gold", "q12", 2.0),
            QueryRequest(3, "fast", "gold", "q14", 3.0),
        ]
        frontend = _frontend(data, catalog, query_texts, tenants=tenants,
                             tiers=tiers, caching=False)
        report = frontend.run(requests)
        assert len(report.records) == len(requests)
        second = next(r for r in report.records if r.request.index == 1)
        # The slow tenant spent its only token on request 0 near cycle
        # 0; request 1 cannot be served before the bucket refills.
        assert second.completion >= refill_cycles
        for name in {r.query for r in requests}:
            assert report.results[name] == _reference_rows(
                query_texts, catalog, data, name)

    def test_failed_token_take_raises(self, data, catalog, query_texts):
        # If the eligibility map and a bucket ever disagree, the take
        # must fail loudly instead of serving an unmetered request.
        frontend = _frontend(data, catalog, query_texts)
        assert frontend.buckets["corp"].try_take(0.0)  # drain bronze
        with pytest.raises(RuntimeError, match="without an available"):
            frontend._take_token("corp", 0.0)

    def test_tier_rejects_sub_token_burst(self):
        # burst < 1 makes cycles_until_available return inf forever,
        # which used to hang the serving loop's idle branch.
        with pytest.raises(ValueError, match="burst"):
            TierSpec("bad", weight=1.0, rate_per_kcycle=1.0, burst=0.5)

    def test_unfillable_bucket_stalls_loudly(self, data, catalog,
                                             query_texts):
        # Defense in depth behind the TierSpec check: a bucket that can
        # never hold a full token must raise, not _advance(inf).
        frontend = _frontend(data, catalog, query_texts,
                             tenants={"solo": "gold"})
        frontend.buckets["solo"] = TokenBucket(rate_per_kcycle=1.0,
                                               burst=0.5)
        with pytest.raises(RuntimeError, match="stalled"):
            frontend.run([QueryRequest(0, "solo", "gold", "q6", 0.0)])


# -- chaos serving ---------------------------------------------------------


class TestChaosServing:
    """Kill DPU 0 mid-run: every response stays byte-equal and the
    gold tenant's tail degrades less than bronze's."""

    def _run(self, data, catalog, query_texts, fault_plan,
             mean_interarrival_cycles=6_000.0, **kwargs):
        workload = OpenLoopWorkload(TENANTS, QUERIES, seed=21)
        requests = workload.generate(
            48, mean_interarrival_cycles=mean_interarrival_cycles)
        frontend = _frontend(data, catalog, query_texts,
                             fault_plan=fault_plan, **kwargs)
        report = frontend.run(requests)
        return frontend, report

    def test_dpu0_killed_mid_run_byte_equal(self, data, catalog,
                                            query_texts):
        plan = FaultPlan.none().with_chaos(
            ChaosSpec("dpu.dead", (0,), at_cycle=30_000.0))
        frontend, report = self._run(data, catalog, query_texts, plan)
        assert len(report.records) == 48
        assert 0 in frontend.cluster.recovery.declared_dead
        assert frontend.cluster.leader == 1
        for name in QUERIES:
            assert report.results[name] == _reference_rows(
                query_texts, catalog, data, name)

    def test_gold_tail_degrades_less_than_bronze(self, data, catalog,
                                                 query_texts):
        # Run uncached and unbatched at moderate load: every request
        # is a real cluster job, so the post-recovery backlog drains
        # in weighted-fair order and the tier weights — not a shared
        # warmup backlog or batch membership — set the tails. (With
        # caching on, only the four unique queries ever reach the
        # cluster and every tier's p99 sits in the same warmup queue,
        # where the kill stall shifts gold and bronze identically.)
        plan = FaultPlan.none().with_chaos(
            ChaosSpec("dpu.dead", (0,), at_cycle=200_000.0))
        direct = dict(mean_interarrival_cycles=80_000.0,
                      caching=False, batching=False)
        _, healthy = self._run(data, catalog, query_texts, None, **direct)
        _, chaotic = self._run(data, catalog, query_texts, plan, **direct)
        gold_delta = (chaotic.tier_digests["gold"].quantile(0.99)
                      - healthy.tier_digests["gold"].quantile(0.99))
        bronze_delta = (chaotic.tier_digests["bronze"].quantile(0.99)
                        - healthy.tier_digests["bronze"].quantile(0.99))
        assert gold_delta < bronze_delta
