"""Tests for shared-resource primitives (FIFO, bandwidth, events)."""

import pytest

from repro.sim import (
    BandwidthServer,
    BinaryEvent,
    Engine,
    Resource,
    SimulationError,
    Store,
)


def run(engine, generator):
    return engine.run_until_complete(engine.process(generator))


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        first = resource.acquire()
        second = resource.acquire()
        third = resource.acquire()
        engine.run()
        assert first.triggered and second.triggered
        assert not third.triggered

    def test_release_wakes_fifo_order(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        granted = []

        def holder():
            yield resource.acquire()
            yield engine.timeout(10)
            resource.release()

        def waiter(tag):
            yield resource.acquire()
            granted.append((tag, engine.now))
            resource.release()

        engine.process(holder())
        engine.process(waiter("a"))
        engine.process(waiter("b"))
        engine.run()
        assert [tag for tag, _t in granted] == ["a", "b"]

    def test_release_without_acquire_raises(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        engine = Engine()
        store = Store(engine)

        def worker():
            yield store.put("x")
            value = yield store.get()
            return value

        assert run(engine, worker()) == "x"

    def test_get_blocks_until_put(self):
        engine = Engine()
        store = Store(engine)

        def producer():
            yield engine.timeout(50)
            yield store.put("late")

        def consumer():
            value = yield store.get()
            return value, engine.now

        engine.process(producer())
        value, at = run(engine, consumer())
        assert value == "late"
        assert at == 50

    def test_fifo_ordering(self):
        engine = Engine()
        store = Store(engine)

        def worker():
            for item in (1, 2, 3):
                yield store.put(item)
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        assert run(engine, worker()) == [1, 2, 3]

    def test_capacity_blocks_putter(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        progress = []

        def producer():
            yield store.put("a")
            progress.append("a-in")
            yield store.put("b")
            progress.append("b-in")

        def consumer():
            yield engine.timeout(10)
            yield store.get()

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert progress == ["a-in", "b-in"]
        assert len(store) == 1  # "b" admitted after "a" drained

    def test_try_get(self):
        engine = Engine()
        store = Store(engine)
        assert store.try_get() == (False, None)
        store.put("item")
        engine.run()
        assert store.try_get() == (True, "item")


class TestBandwidthServer:
    def test_transfer_duration(self):
        engine = Engine()
        server = BandwidthServer(engine, bytes_per_cycle=16)

        def worker():
            yield server.transfer(1600)

        run(engine, worker())
        assert engine.now == 100

    def test_serial_queueing_under_contention(self):
        engine = Engine()
        server = BandwidthServer(engine, bytes_per_cycle=16)
        finishes = []

        def client(tag):
            yield server.transfer(160)
            finishes.append((tag, engine.now))

        for tag in range(3):
            engine.process(client(tag))
        engine.run()
        assert [t for _tag, t in finishes] == [10, 20, 30]

    def test_overhead_charged_per_transfer(self):
        engine = Engine()
        server = BandwidthServer(engine, bytes_per_cycle=16, overhead_cycles=5)

        def worker():
            yield server.transfer(160)

        run(engine, worker())
        assert engine.now == 15

    def test_utilization_accounting(self):
        engine = Engine()
        server = BandwidthServer(engine, bytes_per_cycle=16)

        def worker():
            yield server.transfer(160)
            yield engine.timeout(10)  # idle

        run(engine, worker())
        assert server.utilization() == pytest.approx(0.5)
        assert server.bytes_served == 160
        assert server.transfers_served == 1

    def test_zero_rate_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthServer(Engine(), bytes_per_cycle=0)


class TestBinaryEvent:
    def test_wait_on_set_event_is_immediate(self):
        engine = Engine()
        flag = BinaryEvent(engine)
        flag.set()

        def worker():
            yield flag.wait()
            return engine.now

        assert run(engine, worker()) == 0

    def test_wait_blocks_until_set(self):
        engine = Engine()
        flag = BinaryEvent(engine)

        def setter():
            yield engine.timeout(25)
            flag.set()

        def waiter():
            yield flag.wait()
            return engine.now

        engine.process(setter())
        assert run(engine, waiter()) == 25

    def test_wait_clear_blocks_until_cleared(self):
        engine = Engine()
        flag = BinaryEvent(engine)
        flag.set()

        def clearer():
            yield engine.timeout(30)
            flag.clear()

        def waiter():
            yield flag.wait_clear()
            return engine.now

        engine.process(clearer())
        assert run(engine, waiter()) == 30

    def test_clear_then_set_wakes_new_waiters_only_on_set(self):
        engine = Engine()
        flag = BinaryEvent(engine)
        flag.set()
        flag.clear()
        assert not flag.is_set

        def waiter():
            yield flag.wait()
            return True

        def setter():
            yield engine.timeout(5)
            flag.set()

        engine.process(setter())
        assert run(engine, waiter()) is True
