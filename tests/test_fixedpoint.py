"""Tests for Q10.22 fixed-point arithmetic, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import (
    FXP_MAX,
    FXP_MIN,
    FXP_ONE,
    from_fixed,
    fxp_abs,
    fxp_add,
    fxp_div,
    fxp_mul,
    fxp_neg,
    fxp_sub,
    saturate,
    to_fixed,
)

# Values representable without saturation: |x| < 2^9.
reals = st.floats(
    min_value=-500.0, max_value=500.0, allow_nan=False, allow_infinity=False
)


def test_one_is_2_pow_22():
    assert to_fixed(1.0) == FXP_ONE == 1 << 22


def test_roundtrip_precision():
    for value in (0.0, 0.5, -0.25, 1.0 / 3.0, 255.999, -511.0):
        assert from_fixed(to_fixed(value)) == pytest.approx(value, abs=2**-22)


@given(reals)
@settings(max_examples=200, deadline=None)
def test_roundtrip_error_bounded(value):
    assert abs(from_fixed(to_fixed(value)) - value) <= 2**-22


halves = st.floats(
    min_value=-250.0, max_value=250.0, allow_nan=False, allow_infinity=False
)


@given(halves, halves)
@settings(max_examples=200, deadline=None)
def test_add_matches_float(a, b):
    result = from_fixed(fxp_add(to_fixed(a), to_fixed(b)))
    assert result == pytest.approx(a + b, abs=2**-21)


@given(st.floats(min_value=-20, max_value=20), st.floats(min_value=-20, max_value=20))
@settings(max_examples=200, deadline=None)
def test_mul_matches_float(a, b):
    result = from_fixed(fxp_mul(to_fixed(a), to_fixed(b)))
    assert result == pytest.approx(a * b, abs=2**-20 * (1 + abs(a) + abs(b)))


@given(reals)
@settings(max_examples=100, deadline=None)
def test_neg_is_involution(a):
    fixed = to_fixed(a)
    if fixed not in (FXP_MIN,):  # FXP_MIN negation saturates
        assert fxp_neg(fxp_neg(fixed)) == fixed


def test_saturation_on_overflow():
    assert to_fixed(1e9) == FXP_MAX
    assert to_fixed(-1e9) == FXP_MIN
    assert fxp_add(FXP_MAX, FXP_MAX) == FXP_MAX
    assert fxp_sub(FXP_MIN, FXP_ONE) == FXP_MIN
    assert fxp_mul(to_fixed(500), to_fixed(500)) == FXP_MAX


def test_abs_saturates_min():
    assert fxp_abs(FXP_MIN) == FXP_MAX
    assert fxp_abs(to_fixed(-2.5)) == to_fixed(2.5)


def test_div_basic():
    assert from_fixed(fxp_div(to_fixed(1.0), to_fixed(4.0))) == pytest.approx(
        0.25, abs=2**-22
    )
    assert from_fixed(fxp_div(to_fixed(-3.0), to_fixed(2.0))) == pytest.approx(
        -1.5, abs=2**-22
    )


def test_div_by_zero_saturates_by_sign():
    assert fxp_div(to_fixed(1.0), 0) == FXP_MAX
    assert fxp_div(to_fixed(-1.0), 0) == FXP_MIN
    assert fxp_div(0, 0) == FXP_MAX


def test_vectorized_matches_scalar():
    rng = np.random.default_rng(0)
    a = rng.uniform(-100, 100, 64)
    b = rng.uniform(-100, 100, 64)
    fa, fb = to_fixed(a), to_fixed(b)
    for index in range(64):
        assert int(fxp_mul(fa, fb)[index]) == fxp_mul(
            int(fa[index]), int(fb[index])
        )
        assert int(fxp_add(fa, fb)[index]) == fxp_add(
            int(fa[index]), int(fb[index])
        )
        assert int(fxp_div(fa, fb)[index]) == fxp_div(
            int(fa[index]), int(fb[index])
        )


def test_vectorized_div_by_zero():
    num = to_fixed(np.array([1.0, -1.0, 0.0]))
    den = to_fixed(np.array([0.0, 0.0, 0.0]))
    out = fxp_div(num, den)
    assert list(out) == [FXP_MAX, FXP_MIN, FXP_MAX]


def test_saturate_array():
    values = np.array([FXP_MAX + 10, FXP_MIN - 10, 5], dtype=np.int64)
    clamped = saturate(values)
    assert list(clamped) == [FXP_MAX, FXP_MIN, 5]
