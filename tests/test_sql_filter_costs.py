"""Tests for SQL scan-filter, projection, and ISA-derived costs."""

import numpy as np
import pytest

from repro.apps.sql import (
    AGG_CYCLES_PER_ROW,
    And,
    Between,
    Eq,
    FILTER_CYCLES_PER_TUPLE,
    Ge,
    InSet,
    Le,
    Or,
    Table,
    dpu_filter,
    dpu_scan_project,
    measure_agg_loop,
    measure_filter_loop,
    xeon_filter,
)
from repro.apps.sql.aggregate import RowFilter
from repro.baseline import XeonModel
from repro.core import DPU


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(3)
    n = 64 * 1024
    return Table("t", {
        "a": rng.integers(0, 10000, n).astype(np.int32),
        "b": rng.integers(-50, 50, n).astype(np.int32),
    })


@pytest.fixture()
def loaded(table):
    dpu = DPU()
    return dpu, table.to_dpu(dpu)


class TestCosts:
    def test_filter_constant_matches_interpreter(self):
        measured = measure_filter_loop(1024)
        assert measured == pytest.approx(FILTER_CYCLES_PER_TUPLE, abs=0.05)

    def test_filter_near_paper_1_65(self):
        # Figure 15: ~1.65 cycles/tuple (482 Mtuples/s at 800 MHz).
        assert 1.4 <= measure_filter_loop(1024) <= 1.8

    def test_agg_constant_matches_interpreter(self):
        assert measure_agg_loop(256) == pytest.approx(
            AGG_CYCLES_PER_ROW, abs=0.5
        )


class TestPredicates:
    def test_between_mask(self, table):
        mask = Between("a", 100, 200).mask(table.columns)
        values = table.column("a")
        assert np.array_equal(mask, (values >= 100) & (values <= 200))

    def test_compound_and_or(self, table):
        predicate = (Between("a", 0, 5000) & Ge("b", 0)) | Eq("b", -50)
        mask = predicate.mask(table.columns)
        a, b = table.column("a"), table.column("b")
        expected = ((a <= 5000) & (b >= 0)) | (b == -50)
        assert np.array_equal(mask, expected)

    def test_inset_terms_count(self):
        assert InSet("a", [1, 2, 3]).filt_terms() == 3
        assert Between("a", 0, 1).filt_terms() == 1
        combined = And([Between("a", 0, 1), InSet("b", [1, 2])])
        assert combined.filt_terms() == 3

    def test_cost_scales_with_terms(self):
        single = Between("a", 0, 1).dpu_cycles_per_row()
        triple = InSet("a", [1, 2, 3]).dpu_cycles_per_row()
        assert triple > 2.9 * single

    def test_inset_requires_values(self):
        with pytest.raises(ValueError):
            InSet("a", [])


class TestDpuFilter:
    def test_mask_matches_numpy(self, loaded):
        dpu, dtable = loaded
        predicate = Between("a", 1000, 3000)
        result = dpu_filter(dpu, dtable, predicate)
        expected = predicate.mask(dtable.table.columns)
        assert np.array_equal(result.value, expected)
        assert result.detail["selected"] == int(expected.sum())

    def test_compound_predicate_on_dpu(self, loaded):
        dpu, dtable = loaded
        predicate = Between("a", 0, 5000) & Between("b", -10, 10)
        result = dpu_filter(dpu, dtable, predicate)
        assert np.array_equal(
            result.value, predicate.mask(dtable.table.columns)
        )

    def test_single_core_filter_rate_near_500_mtuples(self):
        """Figure 15: one dpCore is compute-bound at ~1.6 cyc/tuple."""
        dpu = DPU()
        n = 128 * 1024
        table = Table("t", {"a": np.arange(n, dtype=np.int32)})
        dtable = table.to_dpu(dpu)
        result = dpu_filter(dpu, dtable, Between("a", 0, 50), cores=[0],
                            tile_rows=2048)
        tuples_per_second = n / result.seconds
        assert 4.0e8 < tuples_per_second < 5.5e8

    def test_32_core_filter_is_bandwidth_bound(self, loaded):
        dpu, dtable = loaded
        result = dpu_filter(dpu, dtable, Between("a", 0, 50))
        assert result.gbps > 7.0  # near DMS stream bandwidth

    def test_rowfilter_accepted(self, loaded):
        dpu, dtable = loaded
        custom = RowFilter(
            mask_fn=lambda c: (c["a"] % 2 == 0),
            columns=("a",),
            dpu_cycles_per_row=2.0,
            xeon_ops_per_row=0.5,
        )
        result = dpu_filter(dpu, dtable, custom)
        assert np.array_equal(
            result.value, dtable.table.column("a") % 2 == 0
        )


class TestScanProject:
    def test_projection_materializes_computed_column(self, loaded):
        dpu, dtable = loaded
        row_filter = RowFilter(
            mask_fn=lambda c: np.ones(len(c["a"]), dtype=bool),
            columns=("a", "b"),
            dpu_cycles_per_row=3.0,
            xeon_ops_per_row=1.0,
        )
        result = dpu_scan_project(
            dpu, dtable, row_filter,
            project=lambda c: (c["a"].astype(np.int64)
                               + c["b"].astype(np.int64)).astype(np.int32),
            out_dtype=np.int32,
        )
        expected = (
            dtable.table.column("a").astype(np.int64)
            + dtable.table.column("b").astype(np.int64)
        ).astype(np.int32)
        assert np.array_equal(result.value.view(np.int32), expected)


class TestXeonFilter:
    def test_same_mask_as_dpu(self, loaded):
        dpu, dtable = loaded
        predicate = Between("a", 500, 1500)
        dpu_result = dpu_filter(dpu, dtable, predicate)
        xeon_result = xeon_filter(XeonModel(), dtable.table, predicate)
        assert np.array_equal(dpu_result.value, xeon_result.value)

    def test_xeon_filter_memory_bound(self, table):
        model = XeonModel()
        result = xeon_filter(model, table, Between("a", 0, 10))
        floor = model.memory_seconds(table.column("a").nbytes)
        assert result.seconds >= floor
