"""Tests for SVM training (parallel SMO, fixed point vs float)."""

import numpy as np
import pytest

from repro.apps.sql import efficiency_gain
from repro.apps.svm import SmoTrainer, dpu_svm_train, xeon_svm_train
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.higgs import generate_higgs_like


@pytest.fixture(scope="module")
def dataset():
    return generate_higgs_like(num_samples=384, seed=7)


@pytest.fixture(scope="module")
def float_model(dataset):
    return SmoTrainer(
        dataset.features, dataset.labels, tolerance=1e-2, arithmetic="float"
    ).train()


class TestReferenceTrainer:
    def test_float_converges(self, dataset, float_model):
        assert float_model.converged
        assert float_model.iterations > 10

    def test_accuracy_near_bayes_optimal(self, dataset, float_model):
        # separation=1.2 in 28 dims: Bayes accuracy ~0.73.
        accuracy = float_model.accuracy(dataset.features, dataset.labels)
        assert accuracy > 0.68

    def test_fixed_matches_float_accuracy(self, dataset, float_model):
        """The paper: fixed point costs no classification accuracy."""
        fixed = SmoTrainer(
            dataset.features, dataset.labels, tolerance=1e-2,
            arithmetic="fixed",
        ).train()
        assert fixed.converged
        float_acc = float_model.accuracy(dataset.features, dataset.labels)
        fixed_acc = fixed.accuracy(dataset.features, dataset.labels)
        assert abs(fixed_acc - float_acc) < 0.02

    def test_fixed_iterations_not_more_than_float(self, dataset, float_model):
        """Paper: the fixed version converged in *fewer* iterations
        (35% fewer on HIGGS+RBF; with a linear kernel the effect is
        smaller — we assert it never needs meaningfully more)."""
        fixed = SmoTrainer(
            dataset.features, dataset.labels, tolerance=1e-2,
            arithmetic="fixed",
        ).train()
        assert fixed.iterations <= 1.1 * float_model.iterations

    def test_alphas_stay_in_box(self, dataset):
        trainer = SmoTrainer(
            dataset.features, dataset.labels, C=1.0, tolerance=1e-2,
            arithmetic="float",
        )
        trainer.train(max_iterations=200)
        assert np.all(trainer.alphas >= -1e-9)
        assert np.all(trainer.alphas <= 1.0 + 1e-9)

    def test_kkt_satisfied_at_convergence(self, dataset):
        trainer = SmoTrainer(
            dataset.features, dataset.labels, tolerance=1e-2,
            arithmetic="float",
        )
        trainer.train()
        assert trainer.select_pair() is None

    def test_bad_arithmetic_rejected(self, dataset):
        with pytest.raises(ValueError):
            SmoTrainer(dataset.features, dataset.labels, arithmetic="bfloat")


class TestDpuTraining:
    @pytest.fixture(scope="class")
    def dpu_result(self, dataset):
        dpu = DPU()
        return dpu_svm_train(dpu, dataset, tolerance=1e-2)

    def test_distributed_converges(self, dpu_result):
        assert dpu_result.detail["converged"]

    def test_distributed_matches_reference_iterations(
        self, dataset, dpu_result
    ):
        reference = SmoTrainer(
            dataset.features, dataset.labels, tolerance=1e-2,
            arithmetic="fixed",
        ).train()
        assert dpu_result.detail["iterations"] == reference.iterations

    def test_distributed_accuracy(self, dataset, dpu_result):
        accuracy = dpu_result.value.accuracy(dataset.features, dataset.labels)
        assert accuracy > 0.68

    def test_slices_are_dmem_resident_for_small_sets(self, dpu_result):
        assert dpu_result.detail["resident"]

    def test_gain_in_paper_band(self, dataset, dpu_result):
        """§5.1: ~15x perf/watt over LIBSVM."""
        xeon = xeon_svm_train(XeonModel(), dataset, tolerance=1e-2)
        gain = efficiency_gain(dpu_result, xeon)
        assert 8.0 < gain < 25.0

    def test_xeon_uses_float_reference(self, dataset):
        xeon = xeon_svm_train(XeonModel(), dataset, tolerance=1e-2)
        assert xeon.value.converged
        assert xeon.seconds > 0


class TestRbfKernel:
    """The RBF extension: exp via a fixed-point LUT (the dpCore has
    no FPU, so a nonlinear kernel needs exactly this)."""

    @pytest.fixture(scope="class")
    def rings(self):
        rng = np.random.default_rng(0)
        n = 300
        radius = np.concatenate(
            [rng.uniform(0, 0.5, n // 2), rng.uniform(1.0, 1.5, n // 2)]
        )
        angle = rng.uniform(0, 2 * np.pi, n)
        features = np.stack(
            [radius * np.cos(angle), radius * np.sin(angle)], axis=1
        ) / 1.5
        labels = np.concatenate([np.ones(n // 2), -np.ones(n // 2)])
        return features, labels

    def test_exp_lut_accuracy(self):
        from repro.apps.svm import fxp_exp_neg
        from repro.fixedpoint import from_fixed, to_fixed
        xs = np.linspace(0.0, 15.0, 200)
        approx = from_fixed(fxp_exp_neg(to_fixed(xs)))
        assert np.max(np.abs(approx - np.exp(-xs))) < 0.02

    def test_exp_lut_saturates_to_zero(self):
        from repro.apps.svm import fxp_exp_neg
        from repro.fixedpoint import to_fixed
        assert fxp_exp_neg(to_fixed(np.array([100.0])))[0] == 0

    def test_rbf_separates_rings_linear_cannot(self, rings):
        features, labels = rings
        linear = SmoTrainer(features, labels, tolerance=1e-2,
                            kernel="linear", arithmetic="float").train()
        rbf = SmoTrainer(features, labels, C=5.0, tolerance=1e-2,
                         kernel="rbf", gamma=4.0,
                         arithmetic="float").train()
        assert linear.accuracy(features, labels) < 0.85
        assert rbf.accuracy(features, labels) > 0.97

    def test_fixed_point_rbf_matches_float_accuracy(self, rings):
        features, labels = rings
        fixed = SmoTrainer(features, labels, C=5.0, tolerance=1e-2,
                           kernel="rbf", gamma=4.0,
                           arithmetic="fixed").train()
        assert fixed.accuracy(features, labels) > 0.97

    def test_dpu_rbf_training(self, rings):
        features, labels = rings
        from repro.workloads.higgs import HiggsLike
        dataset = HiggsLike(features=features, labels=labels)
        dpu = DPU()
        result = dpu_svm_train(dpu, dataset, C=5.0, tolerance=1e-2,
                               kernel="rbf", gamma=4.0)
        assert result.value.accuracy(features, labels) > 0.97
        assert result.detail["converged"]

    def test_unknown_kernel_rejected(self, rings):
        features, labels = rings
        with pytest.raises(ValueError):
            SmoTrainer(features, labels, kernel="poly")
