"""Tests for the continuous sim-time metrics pipeline (repro.obs.metrics).

Covers the acceptance criteria of the metrics PR: metrics disabled is
bit-identical to the seed (pinned cycles and counters), metrics enabled
never perturbs timing (same pins), per-interval integration reproduces
``LaunchResult.gbps`` bit for bit, time series rings keep the newest
window, latency digests bound quantile error, the SLO engine fires and
resolves sustained-threshold alerts into the tracer, exporters
round-trip through the JSONL validator and the CLI, and a chaos
coordinator-kill cluster run produces the full health story: counter
tracks in a valid merged trace, a utilization dip with recovery, a
fired alert, and annotated chaos/election events in the report.
"""

import json

import numpy as np
import pytest

from repro.apps.streaming import stream_columns
from repro.cluster import Cluster, cluster_filter_count
from repro.core import DPU
from repro.faults import ChaosSpec, FaultPlan
from repro.obs import (
    NULL_HUB,
    LatencyDigest,
    MetricsHub,
    SloRule,
    TimeSeries,
    Tracer,
    validate_chrome_trace,
    validate_metrics_jsonl,
)
from repro.obs.metrics import is_gauge_path
from repro.obs.metrics import main as metrics_main

PINNED_CYCLES = 2896.0
PINNED_COUNTERS = {
    "dms.bytes_read": 32768.0,
    "dms.descriptors": 8.0,
    "dmad.completed": 8.0,
    "ate.messages": 8.0,
}


def canonical_launch(dpu):
    """The pinned-regression kernel from tests/test_obs.py."""
    rows = 2048
    data = np.arange(rows, dtype=np.uint64)
    addr = dpu.store_array(data)
    address = dpu.address_map.dmem_address(2, 0)

    def kernel(ctx):
        yield from stream_columns(
            ctx, [(addr, 8)], rows, 512, lambda *a: 8, dmem_base=64
        )
        for _ in range(4):
            yield from ctx.fetch_add(2, address, 1)

    return dpu.launch(kernel, cores=[0, 1])


class _Clock:
    """A bare sim clock for driving MetricsHub.sample() by hand."""

    def __init__(self):
        self.now = 0.0


class TestZeroOverheadDisabled:
    def test_default_dpu_uses_null_hub(self):
        dpu = DPU()
        assert dpu.metrics is NULL_HUB
        assert NULL_HUB.enabled is False

    def test_disabled_metrics_is_bit_identical(self):
        dpu = DPU()
        launch = canonical_launch(dpu)
        assert launch.cycles == PINNED_CYCLES
        assert dict(dpu.stats.counters) == PINNED_COUNTERS

    def test_null_hub_is_inert(self):
        NULL_HUB.touch()
        NULL_HUB.flush()
        NULL_HUB.sample()
        NULL_HUB.observe("x", 1.0)
        NULL_HUB.annotate("chaos.kill", dpu=3)
        NULL_HUB.add_sampler(lambda: {"x": 1.0})
        NULL_HUB.add_rule("value(x) > 1")
        assert not hasattr(NULL_HUB, "series")


class TestZeroPerturbationEnabled:
    def test_enabled_metrics_does_not_perturb_timing(self):
        """Sampling reads, never schedules work: same cycles, same
        stats as the metrics-off pinned run."""
        dpu = DPU()
        hub = dpu.enable_metrics(cadence=200.0)
        launch = canonical_launch(dpu)
        assert launch.cycles == PINNED_CYCLES
        assert dict(dpu.stats.counters) == PINNED_COUNTERS
        assert hub.ticks > 2
        assert "dpu0.dms.bytes_read" in hub.series

    def test_enabled_with_tracing_still_pinned_and_valid(self):
        dpu = DPU()
        dpu.enable_metrics(cadence=200.0)
        tracer = dpu.enable_tracing()
        launch = canonical_launch(dpu)
        assert launch.cycles == PINNED_CYCLES
        counters = [e for e in tracer.events if e["ph"] == "C"]
        assert len(counters) > 0
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_engine_drains_with_dormant_ticks(self):
        """Sampler ticks go dormant when only metrics work remains, so
        a drain-style engine.run() always terminates."""
        dpu = DPU()
        dpu.enable_metrics(cadence=200.0)
        canonical_launch(dpu)
        dpu.engine.run()
        assert dpu.engine._metric_ticks == 0

    def test_disable_metrics_restores_null_hub(self):
        dpu = DPU()
        hub = dpu.enable_metrics(cadence=200.0)
        canonical_launch(dpu)
        dpu.engine.run()  # let the last dormant tick drain
        dpu.disable_metrics()
        ticks = hub.ticks
        assert dpu.metrics is NULL_HUB
        canonical_launch(dpu)
        assert hub.ticks == ticks  # detached: no more samples


class TestIntegrationExactness:
    def test_integrated_rate_reproduces_gbps_bit_for_bit(self):
        """Sum of per-interval deltas over the sampled window must
        equal the point-in-time registry total, so derived GB/s equals
        LaunchResult.gbps exactly."""
        dpu = DPU()
        hub = dpu.enable_metrics(cadence=200.0)
        result = canonical_launch(dpu)
        nbytes = dpu.stats.counter("dms.bytes_read")
        total = hub.integrate("dpu0.dms.bytes_read")
        assert total == nbytes
        assert result.gbps(total) == result.gbps(nbytes)

    def test_second_launch_keeps_telescoping(self):
        dpu = DPU()
        hub = dpu.enable_metrics(cadence=200.0)
        canonical_launch(dpu)
        canonical_launch(dpu)
        assert (hub.integrate("dpu0.dms.bytes_read")
                == dpu.stats.counter("dms.bytes_read"))

    def test_midrun_counter_backfills_zero_baseline(self):
        """A counter born mid-run was implicitly zero at the previous
        sample; the backfilled point keeps integration exact."""
        clock = _Clock()
        hub = MetricsHub(clock, cadence=100.0)
        box = {"v": None}
        hub.add_sampler(
            lambda: {} if box["v"] is None else {"late.bytes": box["v"]}
        )
        hub.sample()
        clock.now = 100.0
        box["v"] = 4096.0
        hub.sample()
        series = hub.series["late.bytes"]
        assert list(series.points) == [(0.0, 0.0), (100.0, 4096.0)]
        assert hub.integrate("late.bytes") == 4096.0

    def test_rate_points_per_interval(self):
        clock = _Clock()
        hub = MetricsHub(clock, cadence=100.0, clock_hz=1.0)
        box = {"v": 0.0}
        hub.add_sampler(lambda: {"net.bytes": box["v"]})
        for t, v in [(0.0, 0.0), (100.0, 1000.0), (200.0, 1000.0)]:
            clock.now, box["v"] = t, v
            hub.sample()
        assert hub.rate_points("net.bytes") == [(100.0, 10.0), (200.0, 0.0)]
        assert hub.latest("net.bytes") == 1000.0


class TestTimeSeries:
    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=1)

    def test_ring_keeps_newest_window_and_counts_drops(self):
        series = TimeSeries("x.bytes", capacity=4)
        for i in range(10):
            series.append(float(i), float(i * i))
        assert len(series) == 4
        assert series.dropped == 6
        assert [t for t, _v in series.points] == [6.0, 7.0, 8.0, 9.0]

    def test_equal_timestamp_replaces_not_appends(self):
        """A flush at the same instant as a cadence tick re-reads the
        counters: the series must stay a function of time."""
        series = TimeSeries("x.bytes", capacity=4)
        series.append(0.0, 1.0)
        series.append(0.0, 2.0)
        assert list(series.points) == [(0.0, 2.0)]
        assert series.dropped == 0

    def test_deltas_and_integrate_telescope(self):
        series = TimeSeries("x.bytes", capacity=8)
        for t, v in [(0.0, 0.0), (1.0, 10.0), (2.0, 25.0)]:
            series.append(t, v)
        assert series.deltas() == [(1.0, 10.0), (2.0, 15.0)]
        assert series.integrate() == 25.0

    def test_gauge_detection(self):
        assert TimeSeries("dpu0.heap.live_bytes").gauge
        assert not TimeSeries("dpu0.dms.bytes_read").gauge


class TestGaugeHeuristic:
    @pytest.mark.parametrize("path", [
        "dpu0.dmad.occupancy_peak",
        "fabric.rx0.utilization",
        "dpu0.admission.running",
        "dpu0.admission.queued",
        "dpu0.heap.live_bytes",
        "fabric.inbox3.occupancy",
        "recovery.epochs",
    ])
    def test_gauges(self, path):
        assert is_gauge_path(path)

    @pytest.mark.parametrize("path", [
        "dpu0.dms.bytes_read",
        "fabric.bytes_sent",
        "recovery.journal_records",
        "dpu0.admission_free.shed",
    ])
    def test_counters(self, path):
        assert not is_gauge_path(path)


class TestLatencyDigest:
    def test_exact_stats_and_bounded_quantile_error(self):
        digest = LatencyDigest("op.cycles")
        values = list(range(1, 1001))
        for value in values:
            digest.add(float(value))
        assert digest.count == 1000
        assert digest.total == sum(values)
        assert digest.minimum == 1.0
        assert digest.maximum == 1000.0
        assert digest.mean == pytest.approx(500.5)
        # Log2 x 32-subbucket digest: ~1.6% relative error.
        assert digest.p50 == pytest.approx(500.0, rel=0.05)
        assert digest.p99 == pytest.approx(990.0, rel=0.05)
        assert digest.quantile(1.0) == 1000.0

    def test_non_positive_samples_stay_out_of_log_buckets(self):
        digest = LatencyDigest()
        digest.add(0.0)
        digest.add(-3.0)
        digest.add(8.0)
        assert digest.zeros == 2
        assert digest.minimum == -3.0
        assert digest.p50 <= 0.0
        assert digest.maximum == 8.0

    def test_merge_matches_union(self):
        a, b, union = LatencyDigest(), LatencyDigest(), LatencyDigest()
        for value in range(1, 501):
            a.add(float(value))
            union.add(float(value))
        for value in range(501, 1001):
            b.add(float(value))
            union.add(float(value))
        a.merge(b)
        assert a.count == union.count
        assert a.total == union.total
        assert a.p50 == union.p50
        assert a.p99 == union.p99
        assert a.maximum == union.maximum

    def test_to_dict_keys(self):
        digest = LatencyDigest()
        digest.add(5.0)
        assert sorted(digest.to_dict()) == [
            "count", "max", "mean", "min", "p50", "p99", "p999",
        ]


class TestSloRuleParsing:
    def test_parse_quantile_with_sustain(self):
        rule = SloRule.parse("p99(ate.rtt) > 5000 for 100000")
        assert rule.kind == "quantile"
        assert rule.quantile == pytest.approx(0.99)
        assert rule.series == "ate.rtt"
        assert rule.op == ">"
        assert rule.threshold == 5000.0
        assert rule.sustained_for == 100000.0
        assert rule.name == "p99(ate.rtt) > 5000 for 100000"

    @pytest.mark.parametrize("spelling,quantile", [
        ("p50", 0.50), ("p999", 0.999), ("p99.9", 0.999),
    ])
    def test_quantile_spellings(self, spelling, quantile):
        rule = SloRule.parse(f"{spelling}(d) > 1")
        assert rule.quantile == pytest.approx(quantile)

    def test_parse_value_and_rate(self):
        value = SloRule.parse("value(adm.queued) >= 8", name="q-depth")
        assert (value.kind, value.name) == ("value", "q-depth")
        assert value.sustained_for == 0.0
        rate = SloRule.parse("rate(fabric.bytes_sent) < 1.0 for 2e4")
        assert rate.kind == "rate"
        assert rate.sustained_for == 20000.0

    @pytest.mark.parametrize("text", [
        "bogus(x) > 1", "value(x) != 1", "value x > 1", "p99() > 1",
    ])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            SloRule.parse(text)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SloRule("r", "s", "!", 1.0)
        with pytest.raises(ValueError):
            SloRule("r", "s", ">", 1.0, kind="median")
        with pytest.raises(ValueError):
            SloRule("r", "s", ">", 1.0, sustained_for=-1.0)


class TestSloEngine:
    def _hub(self, **kwargs):
        clock = _Clock()
        return clock, MetricsHub(clock, cadence=100.0, **kwargs)

    def test_sustained_breach_fires_then_resolves(self):
        clock, hub = self._hub()
        box = {"v": 1.0}
        hub.add_sampler(lambda: {"adm.queued": box["v"]})
        hub.add_rule("value(adm.queued) > 5 for 200")
        timeline = [(0.0, 1.0), (100.0, 9.0), (200.0, 9.0),
                    (300.0, 9.0), (400.0, 2.0)]
        for t, v in timeline:
            clock.now, box["v"] = t, v
            hub.sample()
            if t == 200.0:
                assert hub.alerts == []  # breached 100 < 200 cycles
            if t == 300.0:
                assert hub.firing() == ["value(adm.queued) > 5 for 200"]
        states = [(a.state, a.t, a.since) for a in hub.alerts]
        assert states == [("firing", 300.0, 100.0),
                          ("resolved", 400.0, 100.0)]
        assert hub.firing() == []

    def test_rate_rule_fires_on_idle_counter(self):
        clock, hub = self._hub(clock_hz=1.0)
        box = {"v": 0.0}
        hub.add_sampler(lambda: {"net.bytes": box["v"]})
        hub.add_rule("rate(net.bytes) < 1.0 for 0", name="net-idle")
        for t, v in [(0.0, 0.0), (100.0, 1000.0)]:
            clock.now, box["v"] = t, v
            hub.sample()
        assert hub.alerts == []  # rate 10/s, above threshold
        clock.now = 200.0
        hub.sample()
        assert [(a.rule, a.state) for a in hub.alerts] == [
            ("net-idle", "firing")
        ]

    def test_quantile_rule_reads_digest(self):
        clock, hub = self._hub()
        hub.add_rule("p99(op.cycles) > 100 for 0")
        hub.observe("op.cycles", 5000.0)
        clock.now = 100.0
        hub.sample()
        assert hub.alerts[0].state == "firing"
        assert hub.alerts[0].value > 100.0

    def test_rule_without_data_stays_silent(self):
        clock, hub = self._hub()
        hub.add_rule("value(ghost.series) > 0")
        hub.sample()
        assert hub.alerts == []

    def test_alert_instants_land_in_tracer(self):
        clock = _Clock()
        tracer = Tracer(clock)
        hub = MetricsHub(clock, cadence=100.0, trace=tracer)
        hub.add_sampler(lambda: {"adm.queued": 9.0})
        hub.add_rule("value(adm.queued) > 5", name="q-depth")
        hub.sample()
        instants = [e for e in tracer.events
                    if e["ph"] == "i" and e.get("cat") == "alert"]
        assert len(instants) == 1
        args = instants[0]["args"]
        assert args["rule"] == "q-depth"
        assert args["state"] == "firing"
        assert args["value"] == 9.0
        assert args["threshold"] == 5.0


class TestAnnotations:
    def test_annotate_defaults_to_now_and_keeps_attrs(self):
        clock = _Clock()
        hub = MetricsHub(clock, cadence=100.0)
        clock.now = 42.0
        hub.annotate("chaos.dpu.dead", targets="0")
        hub.annotate("recover.leader_elected", t=99.0, new_leader=1)
        kinds = [(n.t, n.kind) for n in hub.annotations]
        assert kinds == [(42.0, "chaos.dpu.dead"),
                         (99.0, "recover.leader_elected")]
        assert hub.annotations[1].attrs == {"new_leader": 1}

    def test_annotation_ring_is_bounded(self):
        hub = MetricsHub(_Clock(), cadence=100.0, capacity=4)
        for i in range(6):
            hub.annotate(f"note{i}")
        assert len(hub.annotations) == 4
        assert hub.annotations_dropped == 2
        assert hub.annotations[0].kind == "note2"

    def test_annotation_instant_lands_in_tracer(self):
        clock = _Clock()
        tracer = Tracer(clock)
        hub = MetricsHub(clock, cadence=100.0, trace=tracer)
        hub.annotate("chaos.dpu.dead", t=15000.0, targets="0")
        instants = [e for e in tracer.events
                    if e["ph"] == "i" and e.get("cat") == "annotation"]
        assert len(instants) == 1
        assert instants[0]["name"] == "note.chaos.dpu.dead"
        assert instants[0]["ts"] == 15000.0
        assert instants[0]["args"]["kind"] == "chaos.dpu.dead"


class TestTraceCounterMirror:
    def test_gauges_mirror_values_counters_mirror_rates(self):
        dpu = DPU()
        dpu.enable_metrics(cadence=200.0)
        tracer = dpu.enable_tracing()
        canonical_launch(dpu)
        by_name = {}
        for event in tracer.events:
            if event["ph"] == "C":
                by_name.setdefault(event["name"], []).append(event)
        reads = by_name["dpu0.dms.bytes_read"]
        assert all("per_second" in e["args"] for e in reads)
        assert any(e["args"]["per_second"] > 0 for e in reads)
        live = by_name["dpu0.heap.live_bytes"]
        assert all("value" in e["args"] for e in live)

    def test_trace_patterns_bound_mirrored_series(self):
        dpu = DPU()
        hub = dpu.enable_metrics(cadence=200.0)
        tracer = dpu.enable_tracing()
        canonical_launch(dpu)
        mirrored = {e["name"] for e in tracer.events if e["ph"] == "C"}
        # The full snapshot lands in the hub's series...
        assert len(hub.series) > len(mirrored)
        # ...but only pattern-matched paths reach the trace.
        assert "dpu0.dms.bytes_read" in mirrored
        assert not any(".core" in name for name in mirrored)


class TestExporters:
    def _run_hub(self):
        dpu = DPU()
        hub = dpu.enable_metrics(cadence=200.0)
        hub.add_rule("value(dpu0.heap.live_bytes) >= 0", name="always-on")
        canonical_launch(dpu)
        return hub

    def test_jsonl_round_trips_through_validator(self, tmp_path):
        hub = self._run_hub()
        path = tmp_path / "metrics.jsonl"
        count = hub.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count
        assert json.loads(lines[0])["type"] == "meta"
        assert validate_metrics_jsonl(str(path)) == []

    def test_prometheus_exposition(self, tmp_path):
        hub = self._run_hub()
        text = hub.to_prometheus()
        assert "# TYPE repro_dpu0_dms_bytes_read counter" in text
        assert "# TYPE repro_dpu0_heap_live_bytes gauge" in text
        assert "# TYPE repro_dpu_launch_cycles summary" in text
        assert 'repro_dpu_launch_cycles{quantile="0.99"}' in text
        assert "repro_slo_alerts_fired_total 1" in text
        path = tmp_path / "metrics.prom"
        hub.export_prometheus(str(path))
        assert path.read_text() == text

    def test_render_report_sections(self):
        report = self._run_hub().render_report()
        assert "cluster health report" in report
        assert "timelines (sampled window)" in report
        assert "dpu0.dms.bytes_read" in report
        assert "latency digests" in report
        assert "alert log" in report
        assert "FIRING" in report

    def test_cli_validate_and_report(self, tmp_path, capsys):
        hub = self._run_hub()
        path = tmp_path / "metrics.jsonl"
        hub.export_jsonl(str(path))
        assert metrics_main(["validate", str(path)]) == 0
        assert "valid metrics export" in capsys.readouterr().out
        assert metrics_main(["report", str(path)]) == 0
        assert "cluster health report" in capsys.readouterr().out

    def test_cli_usage_and_invalid_file(self, tmp_path, capsys):
        assert metrics_main([]) == 2
        assert metrics_main(["report"]) == 2
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        assert metrics_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestMetricsJsonlValidator:
    def _write(self, tmp_path, lines):
        path = tmp_path / "m.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_meta_must_come_first(self, tmp_path):
        path = self._write(tmp_path, [
            '{"type": "series", "name": "s", "points": [[0, 1]]}',
        ])
        assert any("meta" in p for p in validate_metrics_jsonl(path))

    def test_rejects_non_monotone_series(self, tmp_path):
        path = self._write(tmp_path, [
            '{"type": "meta", "cadence": 1, "clock_hz": 1, "ticks": 2,'
            ' "engine_now": 5}',
            '{"type": "series", "name": "s",'
            ' "points": [[5, 1], [3, 2]]}',
        ])
        assert any("monotone" in p for p in validate_metrics_jsonl(path))

    def test_rejects_non_finite_points(self, tmp_path):
        path = self._write(tmp_path, [
            '{"type": "meta", "cadence": 1, "clock_hz": 1, "ticks": 1,'
            ' "engine_now": 5}',
            '{"type": "series", "name": "s", "points": [[0, NaN]]}',
        ])
        assert any("non-finite" in p for p in validate_metrics_jsonl(path))

    def test_rejects_bad_alert_and_unknown_type(self, tmp_path):
        path = self._write(tmp_path, [
            '{"type": "meta", "cadence": 1, "clock_hz": 1, "ticks": 1,'
            ' "engine_now": 5}',
            '{"type": "alert", "t": 1, "rule": "r", "state": "maybe",'
            ' "value": 1, "threshold": 1, "since": 0}',
            '{"type": "alert", "t": 1, "rule": "r", "state": "firing",'
            ' "value": 1, "threshold": 1}',
            '{"type": "annotation", "t": "soon"}',
            '{"type": "mystery"}',
        ])
        problems = validate_metrics_jsonl(path)
        assert any("unknown state" in p for p in problems)
        assert any("missing 'since'" in p for p in problems)
        assert any("no kind" in p for p in problems)
        assert any("unknown record type" in p for p in problems)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert validate_metrics_jsonl(str(path)) == ["empty metrics file"]


class TestClusterChaosHealthStory:
    """The acceptance run: kill the coordinator mid-job and read the
    whole incident off the metrics pipeline."""

    @pytest.fixture(scope="class")
    def incident(self):
        values = np.random.default_rng(3).integers(
            0, 1000, 8000, dtype=np.int64
        )
        shards = list(np.array_split(values, 2))
        reference = cluster_filter_count(
            Cluster(1), [values], 100, 500
        ).value
        plan = FaultPlan.none().with_chaos(
            ChaosSpec("dpu.dead", (0,), at_cycle=15_000.0)
        )
        cluster = Cluster(2, fault_plan=plan)
        tracer = cluster.enable_tracing()
        hub = cluster.enable_metrics(cadence=5_000.0)
        # Heartbeats repaint fabric.bytes_sent every 50k cycles, so a
        # 20k-cycle sustain window detects the post-kill idle lease.
        hub.add_rule("rate(fabric.bytes_sent) < 1.0 for 20000",
                     name="fabric-idle")
        result = cluster_filter_count(cluster, shards, 100, 500)
        return {
            "cluster": cluster,
            "tracer": tracer,
            "hub": hub,
            "result": result,
            "reference": reference,
        }

    def test_job_still_byte_equal(self, incident):
        assert incident["result"].value == incident["reference"]
        assert incident["cluster"].leader == 1

    def test_chaos_and_recovery_annotated(self, incident):
        notes = {n.kind: n for n in incident["hub"].annotations}
        assert notes["chaos.dpu.dead"].t == 15_000.0
        assert notes["chaos.dpu.dead"].attrs["targets"] == "0"
        dead = notes["recover.declare_dead"]
        assert dead.attrs["dpu"] == 0
        assert dead.t > 15_000.0
        elected = notes["recover.leader_elected"]
        assert elected.attrs["old_leader"] == 0
        assert elected.attrs["new_leader"] == 1

    def test_fabric_utilization_dips_then_recovers(self, incident):
        rates = incident["hub"].rate_points("fabric.bytes_sent")
        kill = 15_000.0
        before = [r for t, r in rates if t <= kill]
        during = [r for t, r in rates if kill < t <= kill + 25_000.0]
        after = [r for t, r in rates if t > kill + 25_000.0]
        assert max(before) > 0  # traffic before the kill
        assert min(during) == 0.0  # the dip
        assert max(after) > 0  # recovery traffic resumes

    def test_slo_rule_fires_during_outage(self, incident):
        fired = [a for a in incident["hub"].alerts if a.state == "firing"]
        assert fired
        assert fired[0].rule == "fabric-idle"
        assert fired[0].t > 15_000.0

    def test_merged_trace_has_counter_tracks_and_validates(self, incident):
        tracer = incident["tracer"]
        events = list(tracer.events)
        assert any(e["ph"] == "C" and e["name"] == "fabric.bytes_sent"
                   for e in events)
        assert any(e["ph"] == "i" and e.get("cat") == "alert"
                   for e in events)
        assert any(e["ph"] == "i" and e.get("cat") == "annotation"
                   for e in events)
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_health_report_tells_the_story(self, incident):
        report = incident["hub"].render_report()
        assert "fabric heatmap" in report
        assert "alert log" in report
        assert "fabric-idle" in report
        assert "chaos.dpu.dead" in report
        assert "recover.leader_elected" in report

    def test_cli_report_on_exported_incident(self, incident, tmp_path,
                                             capsys):
        path = tmp_path / "incident.jsonl"
        incident["hub"].export_jsonl(str(path))
        assert validate_metrics_jsonl(str(path)) == []
        assert metrics_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "chaos.dpu.dead" in out
        assert "fabric-idle" in out


class TestJobAndAdmissionDigests:
    def test_launch_and_job_digests_populate(self):
        dpu = DPU()
        hub = dpu.enable_metrics(cadence=200.0)
        canonical_launch(dpu)
        digest = hub.digests["dpu.launch.cycles"]
        assert digest.count == 1
        assert digest.maximum == PINNED_CYCLES

    def test_admission_wait_digest(self):
        from repro.runtime import AdmissionController

        dpu = DPU()
        dpu.set_admission(
            AdmissionController(dpu.engine, max_concurrent=1)
        )
        hub = dpu.enable_metrics(cadence=200.0)

        def tiny(ctx):
            yield from ctx.compute(50)

        jobs = [dpu.spawn_job(tiny, cores=[0]),
                dpu.spawn_job(tiny, cores=[1])]
        dpu.engine.run_until_complete(dpu.engine.all_of(jobs))
        digest = hub.digests["admission.wait_cycles"]
        assert digest.count == 2
        assert digest.maximum > 0  # the second job queued
