"""Tests for the sim-time observability subsystem (repro.obs).

Covers the acceptance criteria of the tracing PR: disabled tracing is
bit-identical to the seed, enabled tracing never perturbs timing, ATE
RPC callee spans nest inside the caller's span, DMS gather span
durations equal the DMAC's reported cycles, the counter registry
round-trips snapshot/delta/merge, and ``DPU.perf_report()`` reproduces
Figure 11's DMS GB/s from registry counters alone.
"""

import numpy as np
import pytest

from repro.apps.streaming import stream_columns
from repro.core import DPU
from repro.core.pmu import PowerManagementUnit, PowerState
from repro.dms import Descriptor, DescriptorType
from repro.obs import (
    NULL_TRACER,
    CounterRegistry,
    Tracer,
    validate_chrome_trace,
)

PINNED_CYCLES = 2896.0
PINNED_COUNTERS = {
    "dms.bytes_read": 32768.0,
    "dms.descriptors": 8.0,
    "dmad.completed": 8.0,
    "ate.messages": 8.0,
}


def canonical_launch(dpu):
    """The pinned-regression kernel from tests/test_admission.py."""
    rows = 2048
    data = np.arange(rows, dtype=np.uint64)
    addr = dpu.store_array(data)
    address = dpu.address_map.dmem_address(2, 0)

    def kernel(ctx):
        yield from stream_columns(
            ctx, [(addr, 8)], rows, 512, lambda *a: 8, dmem_base=64
        )
        for _ in range(4):
            yield from ctx.fetch_add(2, address, 1)

    return dpu.launch(kernel, cores=[0, 1])


def unit_name_of(tracer, event):
    """Reverse the tracer's unit -> tid interning for assertions."""
    for unit, tid in tracer._tids.items():
        if tid == event["tid"]:
            return unit
    return None


class TestZeroOverhead:
    def test_default_dpu_uses_null_tracer(self):
        dpu = DPU()
        assert dpu.trace is NULL_TRACER
        assert dpu.dmac.trace is NULL_TRACER
        assert dpu.ate.trace is NULL_TRACER
        assert dpu.engine.tracer is None

    def test_disabled_tracing_is_bit_identical(self):
        dpu = DPU()
        launch = canonical_launch(dpu)
        assert launch.cycles == PINNED_CYCLES
        assert dict(dpu.stats.counters) == PINNED_COUNTERS
        assert NULL_TRACER.events == ()

    def test_enabled_tracing_does_not_perturb_timing(self):
        """Tracing records, never schedules: same cycles, same stats."""
        dpu = DPU()
        tracer = dpu.enable_tracing()
        launch = canonical_launch(dpu)
        assert launch.cycles == PINNED_CYCLES
        assert dict(dpu.stats.counters) == PINNED_COUNTERS
        assert len(tracer.events) > 0

    def test_null_tracer_records_nothing(self):
        span = NULL_TRACER.span("x", unit="core0", a=1)
        span.set(b=2)
        span.end()
        NULL_TRACER.instant("x")
        NULL_TRACER.counter("x", v=1.0)
        NULL_TRACER.complete_async("x", "u", 0.0)
        assert NULL_TRACER.events == ()


class TestEnableDisableRoundTrip:
    def test_round_trip_restores_null_everywhere(self):
        dpu = DPU()
        tracer = dpu.enable_tracing()
        assert dpu.trace is tracer
        assert dpu.dmac.trace is tracer
        assert dpu.ate.trace is tracer
        assert dpu.ddr_channel.trace is tracer
        assert all(d.trace is tracer for d in dpu.dmads.values())
        assert dpu.engine.tracer is tracer
        dpu.disable_tracing()
        assert dpu.trace is NULL_TRACER
        assert dpu.dmac.trace is NULL_TRACER
        assert dpu.engine.tracer is None
        before = len(tracer.events)
        canonical_launch(dpu)
        assert len(tracer.events) == before  # disabled: nothing recorded

    def test_shared_buffer_views(self):
        dpu = DPU()
        tracer = dpu.enable_tracing()
        view = tracer.view(pid=1, process_name="dpu1")
        view.instant("hello", unit="core0")
        assert list(tracer.events)[-1]["pid"] == 1


class TestAteSpanNesting:
    def test_callee_exec_nests_inside_caller_span(self):
        dpu = DPU()
        tracer = dpu.enable_tracing()

        def kernel(ctx):
            yield from ctx.fetch_add(
                9, dpu.address_map.dmem_address(9, 64), 1
            )

        dpu.launch(kernel, cores=[0])
        events = list(tracer.events)
        callers = [e for e in events if e.get("name") == "ate.faa"
                   and e["ph"] == "X"]
        callees = [e for e in events if e.get("name") == "ate.exec.faa"
                   and e["ph"] == "X"]
        assert len(callers) == 1 and len(callees) == 1
        caller, callee = callers[0], callees[0]
        assert unit_name_of(tracer, caller) == "core0"
        assert unit_name_of(tracer, callee) == "ate9"
        # The trace id propagated through the message ties them...
        assert callee["args"]["parent"] == caller["args"]["span_id"]
        # ...and the callee's interval is contained in the caller's.
        assert caller["ts"] <= callee["ts"]
        assert callee["ts"] + callee["dur"] <= caller["ts"] + caller["dur"]
        # Flow arrow: one s/f pair sharing the caller span's id.
        flows = [e for e in events if e["ph"] in ("s", "f")
                 and e.get("id") == caller["args"]["span_id"]]
        assert sorted(e["ph"] for e in flows) == ["f", "s"]


class TestGatherSpan:
    def test_gather_span_duration_matches_reported_cycles(self):
        dpu = DPU()
        tracer = dpu.enable_tracing()
        rows = 512
        data = dpu.store_array(np.arange(rows, dtype=np.uint64))
        bv_bytes = rows // 8
        bv = np.full(bv_bytes, 0xF7, dtype=np.uint8)

        def kernel(ctx):
            ctx.dmem.write(16384, bv)
            ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                                rows=bv_bytes // 8, col_width=8,
                                dmem_addr=16384, internal_mem="bv"))
            ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMEM,
                                rows=rows, col_width=8, ddr_addr=data,
                                dmem_addr=0, gather_src=True,
                                notify_event=0))
            yield from ctx.wfe(0)
            ctx.clear_event(0)

        dpu.launch(kernel, cores=[0])
        events = list(tracer.events)
        begins = [e for e in events if e.get("name") == "dms.gather"
                  and e["ph"] == "b"]
        assert len(begins) == 1
        begin = begins[0]
        end = next(e for e in events if e.get("name") == "dms.gather"
                   and e["ph"] == "e" and e["id"] == begin["id"])
        assert end["ts"] - begin["ts"] == begin["args"]["cycles"]
        # 0xF7 selects 7 of every 8 rows.
        assert begin["args"]["rows"] == rows * 7 // 8


class TestCounterRegistry:
    def test_scope_and_dot_paths(self):
        registry = CounterRegistry()
        dmac = registry.scope("dpu0").scope("dmac")
        dmac.add("bytes_gathered", 64)
        dmac.add("bytes_gathered", 64)
        assert registry.get("dpu0.dmac.bytes_gathered") == 128
        assert "dpu0.dmac.bytes_gathered" in registry

    def test_snapshot_sorted_and_delta(self):
        registry = CounterRegistry()
        registry.add("b.two", 2)
        registry.add("a.one", 1)
        snap = registry.snapshot()
        assert list(snap) == ["a.one", "b.two"]
        registry.add("b.two", 3)
        registry.add("c.new", 7)
        delta = registry.delta(snap)
        assert delta == {"b.two": 3.0, "c.new": 7.0}

    def test_merge_sums_counters_and_maxes_peaks(self):
        a = CounterRegistry()
        b = CounterRegistry()
        a.add("dpu0.dms.bytes_read", 100)
        b.add("dpu0.dms.bytes_read", 50)
        a.peak("dpu0.dmad.occupancy_peak", 3)
        b.peak("dpu0.dmad.occupancy_peak", 9)
        a.merge(b)
        assert a.get("dpu0.dms.bytes_read") == 150
        assert a.get("dpu0.dmad.occupancy_peak") == 9

    def test_delta_from_empty_snapshot_is_everything(self):
        registry = CounterRegistry()
        before = registry.snapshot()
        registry.add("a.one", 1)
        registry.peak("b.depth_peak", 4)
        assert registry.delta(before) == {"a.one": 1.0, "b.depth_peak": 4.0}

    def test_delta_of_unchanged_registry_is_empty(self):
        registry = CounterRegistry()
        registry.add("a.one", 1)
        assert registry.delta(registry.snapshot()) == {}

    def test_merge_peak_missing_on_one_side(self):
        """Max-folding must treat an absent peak as -inf, not clobber
        or drop the present side."""
        a, b = CounterRegistry(), CounterRegistry()
        b.peak("dmad.occupancy_peak", 7)
        a.merge(b)
        assert a.get("dmad.occupancy_peak") == 7
        c = CounterRegistry()
        c.peak("dmad.occupancy_peak", 3)
        a.merge(c)  # lower incoming peak must not regress the max
        assert a.get("dmad.occupancy_peak") == 7

    def test_merge_mixes_new_and_existing_keys(self):
        a, b = CounterRegistry(), CounterRegistry()
        a.add("x.bytes", 10)
        b.add("x.bytes", 5)
        b.add("y.bytes", 2)
        a.merge(b)
        assert a.get("x.bytes") == 15
        assert a.get("y.bytes") == 2

    def test_adopt_stats_imports_counters_and_gauges(self):
        from repro.sim import StatsRecorder

        stats = StatsRecorder()
        stats.count("dms.bytes_read", 1024)
        stats.peak("dmad.occupancy_peak", 5)
        registry = CounterRegistry()
        registry.adopt_stats(stats, prefix="dpu0")
        registry.adopt_stats(stats, prefix="dpu0")  # counters re-sum
        assert registry.get("dpu0.dms.bytes_read") == 2048
        assert registry.get("dpu0.dmad.occupancy_peak") == 5  # gauge max


class TestPerfReport:
    def test_dms_gbps_matches_launch_result_exactly(self):
        """Figure 11's GB/s from registry counters must equal the
        benchmark arithmetic on LaunchResult, bit for bit."""
        rows = 4096
        dpu = DPU()
        addr = dpu.store_array(np.arange(rows, dtype=np.uint64))

        def kernel(ctx):
            yield from stream_columns(
                ctx, [(addr, 8)], rows, 512, lambda *a: 0, dmem_base=64
            )

        result = dpu.launch(kernel, cores=[0])
        nbytes = dpu.stats.counter("dms.bytes_read")
        assert nbytes == rows * 8
        report = dpu.perf_report(elapsed_cycles=result.cycles)
        assert report.dms_read_gbps == result.gbps(nbytes)
        assert report.dms_read_gbps > 0

    def test_render_includes_utilization_and_counters(self):
        dpu = DPU()
        canonical_launch(dpu)
        text = dpu.perf_report().render()
        assert "unit utilization" in text
        assert "ddr" in text
        assert "dpu0.dms.bytes_read" in text
        assert "GB/s" in text


class TestPmuResidency:
    class _Clock:
        def __init__(self):
            self.now = 0.0

    def test_transitions_accrue_residency(self):
        clock = self._Clock()
        pmu = PowerManagementUnit(DPU().config, engine=clock)
        clock.now = 100.0
        pmu.set_macro_state(0, PowerState.IDLE)
        clock.now = 250.0
        pmu.set_macro_state(0, PowerState.ACTIVE)
        counters = pmu.residency_counters(upto=300.0)
        assert counters["macro0.active_cycles"] == 100.0 + 50.0
        assert counters["macro0.idle_cycles"] == 150.0
        assert pmu.transitions == 2

    def test_same_state_is_not_a_transition(self):
        pmu = PowerManagementUnit(DPU().config, engine=self._Clock())
        pmu.set_macro_state(0, PowerState.ACTIVE)
        assert pmu.transitions == 0

    def test_transition_emits_trace_events(self):
        dpu = DPU()
        tracer = dpu.enable_tracing()
        dpu.pmu.set_macro_state(1, PowerState.RETENTION)
        names = [e.get("name") for e in tracer.events]
        assert "pmu.transition" in names
        assert "pmu.active_cores" in names

    def test_active_cycles_always_present(self):
        pmu = PowerManagementUnit(DPU().config, engine=self._Clock())
        counters = pmu.residency_counters(upto=0.0)
        assert all(
            f"macro{m}.active_cycles" in counters
            for m in range(pmu.config.num_macros)
        )


class TestValidator:
    def test_accepts_live_trace(self):
        dpu = DPU()
        tracer = dpu.enable_tracing()
        canonical_launch(dpu)
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_rejects_missing_fields(self):
        problems = validate_chrome_trace([{"ph": "X", "ts": 0}])
        assert any("missing required" in p for p in problems)

    def test_rejects_unbalanced_async(self):
        events = [
            {"name": "a", "ph": "b", "ts": 0, "pid": 0, "tid": 1,
             "id": 1, "cat": "async"},
        ]
        problems = validate_chrome_trace(events)
        assert any("never closed" in p for p in problems)

    def test_rejects_partial_overlap(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 0, "tid": 1},
        ]
        problems = validate_chrome_trace(events)
        assert any("partially overlaps" in p for p in problems)

    def test_rejects_empty_trace(self):
        assert validate_chrome_trace([]) == ["trace contains no events"]

    def test_rejects_x_without_dur(self):
        events = [{"name": "a", "ph": "X", "ts": 0, "pid": 0, "tid": 1}]
        problems = validate_chrome_trace(events)
        assert any("dur" in p for p in problems)

    def _with_span(self, *events):
        """Pad with one valid span so only the checks under test fire."""
        return [{"name": "s", "ph": "X", "ts": 0, "dur": 1,
                 "pid": 0, "tid": 1}, *events]

    def test_rejects_non_finite_counter_sample(self):
        events = self._with_span(
            {"name": "c", "ph": "C", "ts": 0, "pid": 0, "tid": 2,
             "args": {"v": float("nan")}},
        )
        problems = validate_chrome_trace(events)
        assert any("not finite numeric" in p for p in problems)

    def test_rejects_counter_timestamp_regression(self):
        events = self._with_span(
            {"name": "c", "ph": "C", "ts": 10, "pid": 0, "tid": 2,
             "args": {"v": 1.0}},
            {"name": "c", "ph": "C", "ts": 5, "pid": 0, "tid": 2,
             "args": {"v": 2.0}},
        )
        problems = validate_chrome_trace(events)
        assert any("precedes previous sample" in p for p in problems)

    def test_counter_series_are_tracked_independently(self):
        events = self._with_span(
            {"name": "c", "ph": "C", "ts": 10, "pid": 0, "tid": 2,
             "args": {"v": 1.0}},
            {"name": "other", "ph": "C", "ts": 5, "pid": 0, "tid": 2,
             "args": {"v": 2.0}},
        )
        assert validate_chrome_trace(events) == []

    def test_rejects_alert_instant_without_args(self):
        events = self._with_span(
            {"name": "slo.x", "ph": "i", "ts": 0, "pid": 0, "tid": 3,
             "cat": "alert"},
        )
        problems = validate_chrome_trace(events)
        assert any("has no args" in p for p in problems)

    def test_rejects_alert_with_unknown_state(self):
        events = self._with_span(
            {"name": "slo.x", "ph": "i", "ts": 0, "pid": 0, "tid": 3,
             "cat": "alert",
             "args": {"rule": "x", "state": "maybe", "value": 1,
                      "threshold": 1, "since": 0}},
        )
        problems = validate_chrome_trace(events)
        assert any("unknown state" in p for p in problems)

    def test_rejects_annotation_without_kind(self):
        events = self._with_span(
            {"name": "note.x", "ph": "i", "ts": 0, "pid": 0, "tid": 3,
             "cat": "annotation", "args": {}},
        )
        problems = validate_chrome_trace(events)
        assert any("needs args with a 'kind'" in p for p in problems)

    def test_accepts_well_formed_alert_and_annotation(self):
        events = self._with_span(
            {"name": "slo.x", "ph": "i", "ts": 0, "pid": 0, "tid": 3,
             "cat": "alert",
             "args": {"rule": "x", "state": "firing", "value": 2.0,
                      "threshold": 1.0, "since": 0.0}},
            {"name": "note.x", "ph": "i", "ts": 1, "pid": 0, "tid": 3,
             "cat": "annotation", "args": {"kind": "chaos.dpu.dead"}},
        )
        assert validate_chrome_trace(events) == []


class TestTracedSqlOperators:
    def test_operator_span_on_sql_track(self):
        from repro.apps.sql import Between, Table, dpu_filter

        rng = np.random.default_rng(0)
        table = Table("t", {"v": rng.integers(0, 100, 4096).astype(np.int32)})
        dpu = DPU()
        tracer = dpu.enable_tracing()
        dpu_filter(dpu, table.to_dpu(dpu), Between("v", 10, 20))
        spans = [e for e in tracer.events
                 if e.get("name") == "sql.filter" and e["ph"] == "X"]
        assert len(spans) == 1
        assert unit_name_of(tracer, spans[0]) == "sql"
        assert spans[0]["dur"] > 0


class TestTracerBuffer:
    def test_ring_drops_oldest_and_counts(self):
        dpu = DPU()
        tracer = dpu.enable_tracing(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", unit="core0")
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        payload = tracer.to_chrome()
        assert payload["otherData"]["dropped_events"] == 6

    def test_overflow_evicts_oldest_first(self):
        dpu = DPU()
        tracer = dpu.enable_tracing(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", unit="core0")
        names = [e["name"] for e in tracer.events]
        assert names == ["e6", "e7", "e8", "e9"]  # newest window survives

    def test_export_writes_valid_json(self, tmp_path):
        from repro.obs import validate_file

        dpu = DPU()
        tracer = dpu.enable_tracing()
        canonical_launch(dpu)
        path = tmp_path / "trace.json"
        count = tracer.export(str(path))
        assert count == len(tracer.events) + len(tracer._meta)
        assert validate_file(str(path)) == []
