"""Tests for rack-scale fault tolerance (repro.cluster.recovery).

Covers the chaos schedule harness, the fabric fault primitives
(seeded kills, partition windows, credit release on death), the
lease-guarded fail-fast gather, and the headline property: every
``cluster_*`` job survives a seeded DPU kill, a transient fabric
partition, and an injected straggler with results byte-equal to the
fault-free single-DPU reference.
"""

import numpy as np
import pytest

from repro.apps.sql import Table
from repro.apps.sql.aggregate import AggSpec, dpu_groupby
from repro.cluster import (
    Cluster,
    ClusterError,
    RecoveryConfig,
    cluster_filter_count,
    cluster_groupby,
    cluster_hll,
    cluster_partitioned_join_count,
    cluster_topk,
    cluster_tpch_q1,
)
from repro.core.config import DPU_40NM
from repro.core.dpu import DPU
from repro.faults import ChaosSpec, FaultError, FaultPlan, chaos_schedule
from repro.sim import Engine, Store
from repro.workloads.tpch import generate_tpch


def _shard(columns, num_shards, name="shard"):
    total = len(next(iter(columns.values())))
    bounds = [round(total * i / num_shards) for i in range(num_shards + 1)]
    return [
        Table(
            f"{name}{i}",
            {n: c[bounds[i]:bounds[i + 1]] for n, c in columns.items()},
        )
        for i in range(num_shards)
    ]


def _kill_plan(victim=1, at_cycle=15_000.0):
    return FaultPlan.none().with_chaos(
        ChaosSpec("dpu.dead", (victim,), at_cycle=at_cycle)
    )


def _partition_plan(victim=1, at_cycle=10_000.0, duration=400_000.0):
    return FaultPlan.none().with_chaos(
        ChaosSpec("fabric.partition", (victim,), at_cycle=at_cycle,
                  duration=duration)
    )


def _slow_plan(victim, duration=2_000_000.0, factor=4.0):
    return FaultPlan.none().with_chaos(
        ChaosSpec("dpu.slow", (victim,), at_cycle=0.0,
                  duration=duration, factor=factor)
    )


# -- chaos schedule harness ---------------------------------------------------


class TestChaosSchedule:
    def test_deterministic_for_seed(self):
        a = chaos_schedule(seed=7, num_dpus=8, horizon_cycles=1e6,
                           kills=2, partitions=1, stragglers=1)
        b = chaos_schedule(seed=7, num_dpus=8, horizon_cycles=1e6,
                           kills=2, partitions=1, stragglers=1)
        assert a == b

    def test_different_seeds_differ(self):
        a = chaos_schedule(seed=7, num_dpus=8, horizon_cycles=1e6, kills=3)
        b = chaos_schedule(seed=8, num_dpus=8, horizon_cycles=1e6, kills=3)
        assert a != b

    def test_coordinator_not_targeted_by_default(self):
        # Default draws stay over DPUs 1..N-1 so every historical seed
        # reproduces its exact schedule (seed-compat); targeting the
        # coordinator is opt-in via include_coordinator=True.
        for seed in range(20):
            specs = chaos_schedule(seed=seed, num_dpus=4,
                                   horizon_cycles=1e6, kills=2,
                                   partitions=1, stragglers=1)
            for spec in specs:
                assert 0 not in spec.targets

    def test_include_coordinator_widens_the_pool(self):
        hit = False
        for seed in range(40):
            specs = chaos_schedule(seed=seed, num_dpus=4,
                                   horizon_cycles=1e6, kills=2,
                                   include_coordinator=True)
            if any(0 in spec.targets for spec in specs):
                hit = True
                break
        assert hit, "40 seeds never drew DPU 0 from a 4-wide pool"

    def test_seed_compat_pinned_schedule(self):
        # Regression pin: the old "DPU 0 cannot be killed" guard was
        # replaced by "at least one DPU survives", but the default
        # victim draw must stay bit-identical for old seeds.
        specs = chaos_schedule(seed=7, num_dpus=8, horizon_cycles=1e6,
                               kills=2, partitions=1, stragglers=1)
        summary = [(s.site, s.targets, round(s.at_cycle, 3))
                   for s in specs]
        assert summary == [
            ("dpu.dead", (1,), 83702.059),
            ("dpu.dead", (3,), 163428.635),
            ("dpu.slow", (5,), 534387.818),
            ("fabric.partition", (4,), 843126.169),
        ]

    def test_all_workers_may_die_but_not_everyone(self):
        # New guard: "at least one DPU survives". Killing every worker
        # is now legal (the coordinator finishes the job alone)...
        specs = chaos_schedule(seed=1, num_dpus=4, horizon_cycles=1e6,
                               kills=3)
        assert len(specs) == 3
        # ...killing every DPU is not, from either candidate pool.
        with pytest.raises(FaultError):
            chaos_schedule(seed=1, num_dpus=4, horizon_cycles=1e6,
                           kills=4)
        with pytest.raises(FaultError):
            chaos_schedule(seed=1, num_dpus=4, horizon_cycles=1e6,
                           kills=4, include_coordinator=True)

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_deterministic_and_iteration_order_free(self, num_dpus):
        # The draw must depend only on (seed, sorted DPU ids), never
        # on dict/set iteration order: building unrelated dicts (which
        # perturbs the hash state of the interpreter session) between
        # two draws must not change the schedule.
        first = chaos_schedule(seed=13, num_dpus=num_dpus,
                               horizon_cycles=2e6,
                               kills=num_dpus - 1,
                               include_coordinator=True)
        _noise = {object(): i for i in range(64)}
        second = chaos_schedule(seed=13, num_dpus=num_dpus,
                                horizon_cycles=2e6,
                                kills=num_dpus - 1,
                                include_coordinator=True)
        assert first == second
        for spec in first:
            assert all(0 <= t < num_dpus for t in spec.targets)

    PINNED_COORDINATOR_KILLS = {
        2: (0,),
        4: (0, 2, 3),
        8: (0, 2, 3, 4, 5, 6, 7),
    }

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_pinned_coordinator_draws(self, num_dpus):
        # Pin the include_coordinator victim draw at 2/4/8 DPUs so a
        # numpy or derivation change cannot silently reshuffle every
        # chaos run in CI.
        specs = chaos_schedule(seed=0, num_dpus=num_dpus,
                               horizon_cycles=2e6,
                               kills=num_dpus - 1,
                               include_coordinator=True)
        victims = tuple(sorted(t for s in specs for t in s.targets))
        assert victims == tuple(
            sorted(self.PINNED_COORDINATOR_KILLS[num_dpus])
        )

    def test_specs_sorted_by_time(self):
        specs = chaos_schedule(seed=3, num_dpus=8, horizon_cycles=1e6,
                               kills=2, partitions=2)
        times = [spec.at_cycle for spec in specs]
        assert times == sorted(times)


class TestChaosSpecValidation:
    def test_bad_site_rejected(self):
        with pytest.raises(FaultError):
            ChaosSpec("dpu.meltdown", (1,), at_cycle=0.0)

    def test_slow_needs_factor_above_one(self):
        with pytest.raises(FaultError):
            ChaosSpec("dpu.slow", (1,), at_cycle=0.0, duration=10.0,
                      factor=0.5)

    def test_dead_end_cycle_is_forever(self):
        spec = ChaosSpec("dpu.dead", (1,), at_cycle=5.0)
        assert spec.end_cycle == float("inf")

    def test_recovery_config_validation(self):
        with pytest.raises(FaultError):
            RecoveryConfig(heartbeat_interval_cycles=100.0,
                           lease_cycles=200.0)
        with pytest.raises(FaultError):
            RecoveryConfig(lease_cycles=400_000.0,
                           stall_patience_cycles=100_000.0)


# -- fabric fault primitives --------------------------------------------------


class TestFabricPrimitives:
    def test_scheduled_kill_blackholes_sends(self):
        cluster = Cluster(2)
        fabric = cluster.fabric
        fabric.schedule_kill(1, at_cycle=0.0)
        assert fabric.endpoint_dead(1)
        assert not fabric.endpoint_dead(0)

        def sender():
            yield from fabric.send(1, 0, "late", 64)

        cluster.run([cluster.engine.process(sender())])
        assert fabric.blackholed == 1
        assert fabric.messages_sent == 0

    def test_partition_window_drops_and_releases_credit(self):
        cluster = Cluster(2)
        fabric = cluster.fabric
        fabric.sever([1], start_cycle=0.0, end_cycle=1e9)

        def sender():
            yield from fabric.send(0, 1, "into the void", 64)

        cluster.run([cluster.engine.process(sender())])
        # The drop happens at the delivery instant; drain past it.
        cluster.engine.run_until_complete(
            cluster.engine.timeout(100_000.0)
        )
        assert fabric.partition_drops == 1
        # The dropped frame must hand back the receive credit.
        assert fabric._credits[1] == fabric.config.fabric_inbox_depth

    def test_declare_dead_releases_credits(self):
        cluster = Cluster(2)
        fabric = cluster.fabric
        depth = fabric.config.fabric_inbox_depth
        processes = [
            cluster.engine.process(fabric.send(0, 1, f"m{i}", 64))
            for i in range(depth)
        ]
        cluster.run(processes)
        assert fabric._credits[1] == 0
        fabric.declare_dead(1)
        assert fabric._credits[1] == depth
        assert fabric.credits_released_on_death == depth
        assert not fabric._inboxes[1].items

    def test_counters_exposed(self):
        cluster = Cluster(2)
        counters = cluster.fabric.counters()
        for name in ("messages_sent", "bytes_sent", "retransmissions",
                     "partition_drops", "blackholed",
                     "credits_released_on_death"):
            assert name in counters


class TestStoreCancelGet:
    def test_cancelled_getter_does_not_swallow(self):
        engine = Engine()
        store = Store(engine)
        first = store.get()
        assert store.cancel_get(first) is True
        second = store.get()

        def producer():
            yield store.put("item")

        engine.process(producer())
        engine.run_until_complete(second)
        assert second.value == "item"
        assert not first.triggered

    def test_cancel_after_fire_returns_false(self):
        engine = Engine()
        store = Store(engine)

        def producer():
            yield store.put("item")

        engine.process(producer())
        event = store.get()
        engine.run_until_complete(event)
        assert store.cancel_get(event) is False


# -- fail-fast gather (no recovery manager) -----------------------------------


class TestFailFastGather:
    def test_missing_partial_raises_structured_error(self):
        # A DPU dies under a cluster with NO chaos plan: the gather
        # must fail fast with a diagnosis, not hang until watchdog.
        cluster = Cluster(2)
        cluster.fabric.schedule_kill(1, at_cycle=0.0)
        shards = [np.arange(100, dtype=np.int64),
                  np.arange(100, dtype=np.int64)]
        with pytest.raises(ClusterError) as info:
            cluster_filter_count(cluster, shards, 10, 50)
        error = info.value
        assert error.site == "filter_count"
        assert error.missing == (1,)
        assert error.cycle > 0
        assert "messages_sent" in error.fabric
        assert "lease" in str(error)


# -- byte-equal recovery across every job -------------------------------------


@pytest.fixture(scope="module")
def groupby_data():
    rng = np.random.default_rng(5)
    return {
        "k": rng.integers(0, 50, 6000).astype(np.uint32),
        "v": rng.integers(0, 100, 6000).astype(np.uint32),
    }


@pytest.fixture(scope="module")
def groupby_reference(groupby_data):
    aggs = [AggSpec("sum", "v"), AggSpec("count")]
    single = DPU(DPU_40NM)
    return dpu_groupby(
        single, Table("t", groupby_data).to_dpu(single), "k", aggs
    ).value


class TestGroupbyRecoveryMatrix:
    """The exchange-based job under every fault type at 2/4/8 DPUs."""

    AGGS = [AggSpec("sum", "v"), AggSpec("count")]

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_survives_kill(self, groupby_data, groupby_reference, num_dpus):
        cluster = Cluster(num_dpus, fault_plan=_kill_plan())
        result = cluster_groupby(
            cluster, _shard(groupby_data, num_dpus), "k", self.AGGS
        )
        assert result.value == groupby_reference
        stats = result.recovery
        assert stats.declared_dead == (1,)
        assert stats.reexecuted_shards >= 1
        assert stats.detection_latency_cycles is not None
        assert stats.detection_latency_cycles > 0

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_survives_partition(self, groupby_data, groupby_reference,
                                num_dpus):
        cluster = Cluster(num_dpus, fault_plan=_partition_plan())
        result = cluster_groupby(
            cluster, _shard(groupby_data, num_dpus), "k", self.AGGS
        )
        assert result.value == groupby_reference
        assert cluster.fabric.partition_drops > 0

    @pytest.mark.parametrize("num_dpus", [2, 4, 8])
    def test_survives_straggler(self, groupby_data, groupby_reference,
                                num_dpus):
        cluster = Cluster(
            num_dpus, fault_plan=_slow_plan(victim=num_dpus - 1)
        )
        result = cluster_groupby(
            cluster, _shard(groupby_data, num_dpus), "k", self.AGGS
        )
        assert result.value == groupby_reference
        stats = result.recovery
        # The dilated worker never actually dies...
        assert stats.declared_dead == ()
        # ...speculation beats it to the finish line.
        assert stats.speculative_launches >= 1
        assert stats.speculative_wins >= 1

    def test_transient_partition_no_false_death(self, groupby_data,
                                                groupby_reference):
        # A window shorter than the lease: heartbeats resume before
        # the lease expires, so nobody is declared dead — the lost
        # sends are simply retried.
        plan = _partition_plan(victim=1, at_cycle=10_000.0,
                               duration=100_000.0)
        cluster = Cluster(4, fault_plan=plan)
        result = cluster_groupby(
            cluster, _shard(groupby_data, 4), "k", self.AGGS
        )
        assert result.value == groupby_reference
        assert result.recovery.declared_dead == ()


class TestEveryJobSurvivesKill:
    """Each remaining cluster_* job under a seeded kill at 4 DPUs."""

    NUM_DPUS = 4

    def test_hll(self):
        rng = np.random.default_rng(9)
        values = rng.integers(0, 1 << 40, 30_000, dtype=np.uint64)
        reference = cluster_hll(Cluster(1), [values]).value
        cluster = Cluster(self.NUM_DPUS, fault_plan=_kill_plan())
        result = cluster_hll(
            cluster, list(np.array_split(values, self.NUM_DPUS))
        )
        assert result.value == reference
        assert result.recovery.declared_dead == (1,)

    def test_filter_count(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1000, 8000, dtype=np.int64)
        reference = cluster_filter_count(
            Cluster(1), [values], 100, 500
        ).value
        # The filter partials are tiny and fast: kill early, before
        # the victim's send can beat the fail-stop instant.
        cluster = Cluster(
            self.NUM_DPUS, fault_plan=_kill_plan(at_cycle=500.0)
        )
        result = cluster_filter_count(
            cluster, list(np.array_split(values, self.NUM_DPUS)), 100, 500
        )
        assert result.value == reference
        assert result.recovery.declared_dead == (1,)

    def test_topk(self):
        rng = np.random.default_rng(11)
        values = rng.permutation(16_000).astype(np.uint32)
        reference = cluster_topk(
            Cluster(1), _shard({"x": values}, 1), "x", 25
        ).value
        cluster = Cluster(self.NUM_DPUS, fault_plan=_kill_plan())
        result = cluster_topk(
            cluster, _shard({"x": values}, self.NUM_DPUS), "x", 25
        )
        assert result.value == reference
        assert result.recovery.declared_dead == (1,)

    def test_join(self):
        rng = np.random.default_rng(13)
        build = rng.integers(0, 500, 4000).astype(np.uint32)
        probe = rng.integers(0, 500, 6000).astype(np.uint32)
        reference = cluster_partitioned_join_count(
            Cluster(1), _shard({"k": build}, 1, "b"), "k",
            _shard({"k": probe}, 1, "p"), "k",
        ).value
        cluster = Cluster(self.NUM_DPUS, fault_plan=_kill_plan())
        result = cluster_partitioned_join_count(
            cluster, _shard({"k": build}, self.NUM_DPUS, "b"), "k",
            _shard({"k": probe}, self.NUM_DPUS, "p"), "k",
        )
        assert result.value == reference
        assert result.recovery.declared_dead == (1,)

    def test_tpch_q1(self):
        data = generate_tpch(scale=0.005, seed=42)
        lineitem = data.tables["lineitem"]
        reference = cluster_tpch_q1(
            Cluster(1), _shard(lineitem, 1, "lineitem")
        ).value
        cluster = Cluster(self.NUM_DPUS, fault_plan=_kill_plan())
        result = cluster_tpch_q1(
            cluster, _shard(lineitem, self.NUM_DPUS, "lineitem")
        )
        assert result.value == reference
        assert result.recovery.declared_dead == (1,)


# -- per-job accounting across a recovered failure ----------------------------


class TestBackToBackAfterRecovery:
    def test_per_job_deltas_and_counter_reset(self):
        rng = np.random.default_rng(17)
        values = rng.integers(0, 1000, 8000, dtype=np.int64)
        shards = list(np.array_split(values, 4))
        reference = cluster_filter_count(Cluster(1), [values], 100, 500).value

        cluster = Cluster(4, fault_plan=_kill_plan(at_cycle=500.0))
        first = cluster_filter_count(cluster, shards, 100, 500)
        assert first.value == reference
        assert first.recovery.declared_dead == (1,)
        assert first.recovery.rounds >= 2
        first_registry = cluster.counter_registry()
        assert first_registry.get("recovery.detections") == 1

        # Second job on the same cluster: the dead DPU stays dead, its
        # shard is rerouted in round one, and the job's accounting
        # covers only its own traffic.
        before_bytes = cluster.fabric.bytes_sent
        before_retr = cluster.fabric.retransmissions
        second = cluster_filter_count(cluster, shards, 100, 500)
        assert second.value == reference
        assert second.network_bytes == cluster.fabric.bytes_sent - before_bytes
        assert second.network_bytes > 0
        assert second.network_bytes < first.network_bytes
        assert second.retransmissions == (
            cluster.fabric.retransmissions - before_retr
        )
        # Per-job recovery counters reset at job start: no NEW death
        # was detected in job two (the corpse was already declared).
        stats = second.recovery
        assert stats.detections == []
        assert stats.site == "filter_count"
        registry = cluster.counter_registry()
        assert registry.get("recovery.detections") == 0
        assert registry.get("recovery.rounds") == stats.rounds

    def test_speculative_win_then_clean_job(self, groupby_data,
                                            groupby_reference):
        # Straggler window covers job one only; job two runs clean.
        plan = _slow_plan(victim=3, duration=1_500_000.0)
        cluster = Cluster(4, fault_plan=plan)
        aggs = [AggSpec("sum", "v"), AggSpec("count")]
        first = cluster_groupby(cluster, _shard(groupby_data, 4), "k", aggs)
        assert first.value == groupby_reference
        assert first.recovery.speculative_wins >= 1


# -- FaultPlan.none() zero-overhead regression --------------------------------


class TestZeroOverheadWithoutChaos:
    def test_no_recovery_manager_without_chaos(self):
        assert Cluster(2).recovery is None
        assert Cluster(2, fault_plan=FaultPlan.none()).recovery is None

    def test_chaos_plan_attaches_manager(self):
        cluster = Cluster(2, fault_plan=_kill_plan())
        assert cluster.recovery is not None

    def test_cycles_identical_with_and_without_fault_plan(self):
        rng = np.random.default_rng(23)
        values = rng.integers(0, 1000, 4000, dtype=np.int64)
        shards = list(np.array_split(values, 2))

        plain = cluster_filter_count(Cluster(2), shards, 100, 500)
        none_plan = cluster_filter_count(
            Cluster(2, fault_plan=FaultPlan.none()), shards, 100, 500
        )
        assert plain.cycles == none_plan.cycles
        assert plain.network_bytes == none_plan.network_bytes
        assert plain.value == none_plan.value
        assert none_plan.recovery is None
