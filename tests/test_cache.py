"""Tests for the software-coherent cache models."""

import pytest

from repro.memory import Cache, CacheConfig, MacroCacheHierarchy


def small_cache(ways=2, sets=4, line=64):
    return Cache(CacheConfig(size=ways * sets * line, line_size=line,
                             associativity=ways))


def test_miss_then_hit():
    cache = small_cache()
    hit, _wb = cache.access(0x100)
    assert not hit
    hit, _wb = cache.access(0x100)
    assert hit
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_same_line_different_bytes_hit():
    cache = small_cache()
    cache.access(0x100)
    hit, _ = cache.access(0x13F)  # same 64 B line
    assert hit


def test_lru_eviction():
    cache = small_cache(ways=2, sets=1)
    lines = [0, 64, 128]  # all map to set 0
    cache.access(lines[0])
    cache.access(lines[1])
    cache.access(lines[0])  # refresh 0
    cache.access(lines[2])  # evicts line 64 (LRU)
    assert cache.lookup(lines[0])
    assert not cache.lookup(lines[1])
    assert cache.lookup(lines[2])


def test_dirty_eviction_counts_writeback():
    cache = small_cache(ways=1, sets=1)
    cache.access(0, write=True)
    _hit, writebacks = cache.access(64)
    assert writebacks == 1
    assert cache.stats.writebacks == 1


def test_flush_range_writes_back_dirty_only():
    cache = small_cache()
    cache.access(0, write=True)
    cache.access(64, write=False)
    written = cache.flush_range(0, 128)
    assert written == 1
    assert not cache.lookup(0) and not cache.lookup(64)


def test_invalidate_drops_without_writeback():
    cache = small_cache()
    cache.access(0, write=True)
    dropped = cache.invalidate_range(0, 64)
    assert dropped == 1
    assert cache.stats.writebacks == 0
    assert not cache.lookup(0)


def test_flush_all():
    cache = small_cache()
    for line in range(0, 512, 64):
        cache.access(line, write=True)
    written = cache.flush_all()
    assert written == 8
    assert not any(cache.lookup(line) for line in range(0, 512, 64))


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig(size=1000, line_size=64, associativity=4)


class TestHierarchy:
    def make(self):
        return MacroCacheHierarchy(
            core_ids=range(8),
            l1d_config=CacheConfig(size=16 * 1024),
            l2_config=CacheConfig(size=256 * 1024, associativity=8,
                                  hit_cycles=12),
            ddr_latency_cycles=110,
        )

    def test_cost_tiers(self):
        hierarchy = self.make()
        cold = hierarchy.access(0, 0x1000)  # L1 miss, L2 miss
        warm_l1 = hierarchy.access(0, 0x1000)
        assert cold == 1 + 12 + 110
        assert warm_l1 == 1

    def test_l2_shared_between_cores(self):
        hierarchy = self.make()
        hierarchy.access(0, 0x2000)  # fills L2
        cost_other_core = hierarchy.access(1, 0x2000)  # L1 miss, L2 hit
        assert cost_other_core == 1 + 12

    def test_no_hardware_coherence_between_l1s(self):
        hierarchy = self.make()
        hierarchy.access(0, 0x3000, write=True)
        hierarchy.access(1, 0x3000)
        # Both L1s now hold the line; nothing invalidated the writer's
        # copy — software must manage this (checked by the coherence
        # tool, not the cache).
        assert hierarchy.l1d[0].lookup(0x3000)
        assert hierarchy.l1d[1].lookup(0x3000)

    def test_flush_and_invalidate_cost(self):
        hierarchy = self.make()
        hierarchy.access(0, 0x4000, write=True)
        flush_cost = hierarchy.flush(0, 0x4000, 64)
        assert flush_cost >= 1
        assert not hierarchy.l1d[0].lookup(0x4000)
        inval_cost = hierarchy.invalidate(0, 0x4000, 128)
        assert inval_cost >= 2
