"""Tests for join operators and top-k."""

import numpy as np
import pytest

from repro.apps.sql import (
    Between,
    Table,
    bitmap_filter,
    dpu_partitioned_join_count,
    dpu_topk,
    key_bitmap,
    lookup_filter,
    xeon_join_count,
    xeon_topk,
)
from repro.baseline import XeonModel
from repro.core import DPU


class TestKeyBitmap:
    def test_bits_set_for_selected_keys(self):
        bitmap = key_bitmap(np.array([0, 5, 63, 64, 99]), domain=100)
        bits = np.unpackbits(bitmap.view(np.uint8), bitorder="little")[:100]
        assert list(np.nonzero(bits)[0]) == [0, 5, 63, 64, 99]

    def test_bitmap_filter_semijoin(self):
        bitmap = key_bitmap(np.array([2, 4]), domain=8)
        row_filter = bitmap_filter("k", bitmap)
        columns = {"k": np.array([0, 2, 3, 4, 7])}
        assert list(row_filter.mask_fn(columns)) == [
            False, True, False, True, False,
        ]

    def test_bitmap_filter_with_extra_predicate(self):
        bitmap = key_bitmap(np.array([1, 2, 3]), domain=8)
        row_filter = bitmap_filter("k", bitmap, extra=Between("v", 10, 20))
        columns = {
            "k": np.array([1, 2, 5]),
            "v": np.array([15, 50, 15]),
        }
        assert list(row_filter.mask_fn(columns)) == [True, False, False]
        assert "v" in row_filter.columns and "k" in row_filter.columns

    def test_lookup_filter(self):
        table = np.array([0, 1, 0, 1], dtype=np.uint8)
        row_filter = lookup_filter("k", table, lambda v: v == 1)
        columns = {"k": np.array([0, 1, 2, 3])}
        assert list(row_filter.mask_fn(columns)) == [False, True, False, True]


class TestPartitionedJoin:
    def test_match_count_equals_numpy(self):
        rng = np.random.default_rng(0)
        build = Table("b", {"k": rng.integers(0, 500, 2000).astype(np.int32)})
        probe = Table("p", {"k": rng.integers(0, 500, 8000).astype(np.int32)})
        dpu = DPU()
        result = dpu_partitioned_join_count(
            dpu, build.to_dpu(dpu), "k", probe.to_dpu(dpu), "k"
        )
        expected = 0
        counts = np.bincount(build.column("k"), minlength=500)
        expected = int(counts[probe.column("k")].sum())
        assert result.value == expected

    def test_xeon_join_matches(self):
        rng = np.random.default_rng(1)
        build = rng.integers(0, 100, 500).astype(np.int64)
        probe = rng.integers(0, 100, 3000).astype(np.int64)
        result = xeon_join_count(XeonModel(), build, probe)
        counts = np.bincount(build, minlength=100)
        assert result.value == int(counts[probe].sum())

    def test_disjoint_keys_join_to_zero(self):
        dpu = DPU()
        build = Table("b", {"k": np.arange(0, 100, dtype=np.int32)})
        probe = Table("p", {"k": np.arange(1000, 1100, dtype=np.int32)})
        result = dpu_partitioned_join_count(
            dpu, build.to_dpu(dpu), "k", probe.to_dpu(dpu), "k"
        )
        assert result.value == 0


class TestTopK:
    def test_values_match_numpy(self):
        rng = np.random.default_rng(2)
        table = Table("t", {"v": rng.integers(0, 10**6, 50000).astype(np.int64)})
        dpu = DPU()
        result = dpu_topk(dpu, table.to_dpu(dpu), "v", k=10)
        expected = np.sort(table.column("v"))[::-1][:10]
        got = [value for value, _row in result.value]
        assert got == list(expected.astype(float))

    def test_row_ids_point_at_values(self):
        rng = np.random.default_rng(3)
        table = Table("t", {"v": rng.permutation(10000).astype(np.int64)})
        dpu = DPU()
        result = dpu_topk(dpu, table.to_dpu(dpu), "v", k=5)
        for value, row in result.value:
            assert table.column("v")[row] == value

    def test_negative_values_handled(self):
        table = Table("t", {
            "v": np.array([-5, -2, -100, -1, -50], dtype=np.int32)
        })
        dpu = DPU()
        result = dpu_topk(dpu, table.to_dpu(dpu), "v", k=2)
        assert [v for v, _r in result.value] == [-1.0, -2.0]

    def test_k_larger_than_table(self):
        table = Table("t", {"v": np.array([3, 1, 2], dtype=np.int32)})
        dpu = DPU()
        result = dpu_topk(dpu, table.to_dpu(dpu), "v", k=10)
        assert [v for v, _r in result.value] == [3.0, 2.0, 1.0]

    def test_k_validation(self):
        dpu = DPU()
        table = Table("t", {"v": np.array([1], dtype=np.int32)})
        with pytest.raises(ValueError):
            dpu_topk(dpu, table.to_dpu(dpu), "v", k=0)

    def test_xeon_topk_same_values(self):
        rng = np.random.default_rng(4)
        table = Table("t", {"v": rng.integers(0, 10**6, 20000).astype(np.int64)})
        dpu = DPU()
        dpu_result = dpu_topk(dpu, table.to_dpu(dpu), "v", k=8)
        xeon_result = xeon_topk(XeonModel(), table, "v", k=8)
        assert [v for v, _ in dpu_result.value] == [
            v for v, _ in xeon_result.value
        ]
