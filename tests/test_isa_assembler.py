"""Tests for the dpCore assembler and ISA tables."""

import pytest

from repro.core import OPCODES, IsaError, assemble
from repro.core.isa import Unit


def test_basic_program_assembles():
    program = assemble(
        """
        li   r1, 10
        addi r1, r1, -1
        bne  r1, r0, 1f  # not a label; removed below
        halt
        """.replace("1f", "loop")  # keep the source readable
        .replace("bne  r1, r0, loop", "bne r1, r0, start")
        .replace("li   r1, 10", "start: li r1, 10")
    )
    assert len(program) == 4
    assert program.labels["start"] == 0
    assert program[2].target == 0


def test_label_on_own_line():
    program = assemble("top:\n  nop\n  j top\n")
    assert program.labels["top"] == 0
    assert program[1].target == 0


def test_comments_stripped():
    program = assemble("nop # comment\nnop ; other\nnop // third\n")
    assert len(program) == 3


def test_memref_operands():
    program = assemble("lw r5, 12(r3)\nsw r5, -4(r2)\n")
    load, store = program.instructions
    assert (load.rd, load.rs, load.imm) == (5, 3, 12)
    assert (store.rt, store.rs, store.imm) == (5, 2, -4)


def test_hex_immediates():
    program = assemble("li r1, 0xFF51AFD7ED558CCD\n")
    assert program[0].imm == 0xFF51AFD7ED558CCD


def test_unknown_opcode_rejected():
    with pytest.raises(IsaError, match="unknown opcode"):
        assemble("frobnicate r1, r2\n")


def test_wrong_operand_count_rejected():
    with pytest.raises(IsaError, match="expects operands"):
        assemble("add r1, r2\n")


def test_bad_register_rejected():
    with pytest.raises(IsaError):
        assemble("add r1, r2, r32\n")


def test_undefined_label_rejected():
    with pytest.raises(IsaError, match="undefined label"):
        assemble("j nowhere\n")


def test_duplicate_label_rejected():
    with pytest.raises(IsaError, match="duplicate label"):
        assemble("a:\nnop\na:\nnop\n")


def test_listing_roundtrips():
    source = "start: li r1, 5\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n"
    program = assemble(source)
    listing = program.listing()
    reassembled = assemble(listing)
    assert len(reassembled) == len(program)
    assert reassembled.labels == program.labels


def test_opcode_table_units():
    assert OPCODES["add"].unit is Unit.ALU
    assert OPCODES["ld"].unit is Unit.LSU
    assert OPCODES["bne"].unit is Unit.BRANCH
    assert OPCODES["halt"].unit is Unit.SYSTEM


def test_analytics_instructions_single_cycle():
    # Paper §2.2: BVLD, FILT, CRC32 are single-cycle.
    for mnemonic in ("filt", "crc32w", "crc32d", "popc", "bvld"):
        assert OPCODES[mnemonic].latency == 1


def test_multiplier_is_multicycle_and_serializing():
    assert OPCODES["mul"].latency > 1
    assert OPCODES["mul"].serializing


def test_reads_writes_tracking():
    program = assemble("add r1, r2, r3\nsw r1, 0(r4)\ncrc32w r5, r6\n")
    add, store, crc = program.instructions
    assert set(add.reads()) == {2, 3} and add.writes() == (1,)
    assert 1 in store.reads() and store.writes() == ()
    assert set(crc.reads()) == {6, 5} and crc.writes() == (5,)  # seed in rd
