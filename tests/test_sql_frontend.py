"""Parser + planner unit tests, including every structured failure path.

Unsupported SQL must surface as a :class:`PlanError` carrying the
query text and the offending clause — never an assertion or a
mid-lowering crash — so harnesses can report exactly what was
rejected and why.
"""

import pytest

from repro.apps.sql import (
    PlanError,
    compile_query,
    load_query,
    parse_sql,
    tpch_catalog,
)
from repro.apps.sql.frontend import QUERY_DIR
from repro.apps.sql.ir import Lit, sql_repr
from repro.workloads.tpch import generate_tpch


@pytest.fixture(scope="module")
def catalog():
    return tpch_catalog(generate_tpch(scale=0.001, seed=11))


def _compile(sql, catalog):
    return compile_query(sql, catalog, "unit")


class TestParser:
    def test_parses_all_shipped_queries(self):
        import os
        names = sorted(f[:-4] for f in os.listdir(QUERY_DIR)
                       if f.endswith(".sql"))
        assert names == ["q1", "q10", "q12", "q14", "q3", "q5", "q6"]
        for name in names:
            stmt = parse_sql(load_query(name))
            assert stmt.items and stmt.tables

    def test_comments_and_semicolon(self):
        stmt = parse_sql(
            "-- a comment\nselect sum(l_quantity) from lineitem;")
        assert stmt.tables == ["lineitem"]

    def test_date_arithmetic_folds(self):
        stmt = parse_sql(
            "select sum(l_quantity) from lineitem "
            "where l_shipdate < date '1992-01-01' + interval '31' day")
        bound = stmt.where
        # date_code(1992,1,1) == 0, so +31 days folds to literal 31.
        assert Lit(31) in [bound.left, bound.right]

    def test_operator_precedence(self):
        stmt = parse_sql("select sum(a + b * c) from lineitem")
        assert sql_repr(stmt.items[0][0]) == "sum((a + (b * c)))"

    def test_or_binds_looser_than_and(self):
        stmt = parse_sql(
            "select sum(x) from t where a = 1 and b = 2 or c = 3")
        assert stmt.where.op == "or"

    def test_count_star(self):
        stmt = parse_sql("select count(*) from lineitem")
        assert sql_repr(stmt.items[0][0]) == "count(*)"


def _plan_error(sql, catalog=None, clause=None, match=None):
    with pytest.raises(PlanError) as excinfo:
        if catalog is None:
            parse_sql(sql)
        else:
            _compile(sql, catalog)
    err = excinfo.value
    assert err.query is not None and err.query.strip() == sql.strip()
    if clause is not None:
        assert err.clause == clause
    if match is not None:
        assert match in str(err)
    return err


class TestParserRejections:
    def test_distinct(self):
        _plan_error("select distinct l_quantity from lineitem",
                    clause="select", match="DISTINCT")

    def test_having(self):
        _plan_error("select sum(l_quantity) from lineitem group by "
                    "l_shipmode having sum(l_quantity) > 3",
                    clause="having", match="HAVING")

    def test_union(self):
        _plan_error("select sum(a) from t union select sum(b) from u",
                    clause="union", match="UNION")

    def test_not(self):
        _plan_error("select sum(a) from t where not a = 1",
                    clause="where", match="NOT")

    def test_trailing_garbage(self):
        _plan_error("select sum(a) from t offset 3", match="trailing")

    def test_bad_token(self):
        _plan_error("select sum(a) from t where a = @", match="tokenize")

    def test_truncated(self):
        _plan_error("select sum(a) from t where", match="end of")

    def test_bad_interval_unit(self):
        _plan_error("select sum(a) from t where "
                    "d < date '1994-01-01' + interval '2' week",
                    match="interval unit")

    def test_limit_needs_integer(self):
        _plan_error("select sum(a) from t limit x", clause="limit")


class TestPlannerRejections:
    def test_unknown_table(self, catalog):
        _plan_error("select sum(l_quantity) from lineitems", catalog,
                    match="unknown table")

    def test_unknown_column(self, catalog):
        _plan_error("select sum(l_totally_fake) from lineitem", catalog,
                    match="unknown column")

    def test_unknown_dictionary_value(self, catalog):
        _plan_error("select sum(l_quantity) from lineitem "
                    "where l_returnflag = 'Z'", catalog,
                    clause="string literal", match="l_returnflag")

    def test_non_prefix_like(self, catalog):
        _plan_error("select sum(l_extendedprice) from lineitem, part "
                    "where l_partkey = p_partkey "
                    "and p_type like '%PROMO%'", catalog, clause="like")

    def test_table_joined_twice(self, catalog):
        _plan_error("select sum(l_quantity) from lineitem, orders "
                    "where l_orderkey = o_orderkey "
                    "and l_suppkey = o_orderkey", catalog,
                    match="joined twice")

    def test_group_by_expression(self, catalog):
        _plan_error("select sum(l_quantity) from lineitem "
                    "group by l_quantity + 1", catalog, clause="group by")

    def test_order_by_not_in_select(self, catalog):
        _plan_error("select l_shipmode, sum(l_quantity) from lineitem "
                    "group by l_shipmode order by l_extendedprice",
                    catalog, clause="order by")

    def test_select_not_determined_by_key(self, catalog):
        _plan_error("select l_partkey, sum(l_quantity) from lineitem "
                    "group by l_shipmode", catalog, clause="select")

    def test_no_aggregates(self, catalog):
        _plan_error("select l_shipmode from lineitem group by l_shipmode",
                    catalog, match="aggregate")

    def test_division_in_streamed_expression(self, catalog):
        _plan_error("select sum(l_extendedprice / l_quantity) "
                    "from lineitem", catalog, match="division")

    def test_or_over_join_probe(self, catalog):
        _plan_error("select sum(l_quantity) from lineitem, orders "
                    "where l_orderkey = o_orderkey "
                    "and (o_orderpriority = '1-URGENT' "
                    "or l_quantity < 10)", catalog, clause="where")

    def test_constant_predicate(self, catalog):
        _plan_error("select sum(l_quantity) from lineitem where 1 = 1",
                    catalog, clause="where")

    def test_error_message_carries_clause_and_snippet(self, catalog):
        err = _plan_error("select distinct l_quantity from lineitem",
                          clause="select")
        text = str(err)
        assert "[clause: select]" in text
        assert "select distinct l_quantity" in text
