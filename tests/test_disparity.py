"""Tests for the stereo disparity application."""

import numpy as np
import pytest

from repro.apps.disparity import (
    _box_filter,
    compute_disparity_reference,
    disparity_accuracy,
    dpu_disparity,
    xeon_disparity,
)
from repro.apps.sql import efficiency_gain
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.stereo import generate_stereo_pair


@pytest.fixture(scope="module")
def pair():
    return generate_stereo_pair(rows=96, cols=128, max_shift=8, seed=17)


@pytest.fixture(scope="module")
def reference(pair):
    return compute_disparity_reference(pair)


def brute_force_box(values, window):
    rows, cols = values.shape
    half = window // 2
    padded = np.pad(values, half, mode="edge")
    out = np.zeros((rows, cols), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            out[r, c] = padded[r : r + window, c : c + window].sum()
    return out


class TestBoxFilter:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 256, (12, 15)).astype(np.int64)
        for window in (3, 5):
            assert np.array_equal(
                _box_filter(values, window), brute_force_box(values, window)
            )


class TestReference:
    def test_recovers_ground_truth(self, pair, reference):
        accuracy = disparity_accuracy(reference, pair.true_disparity)
        assert accuracy > 0.9

    def test_shape_and_range(self, pair, reference):
        assert reference.shape == pair.left.shape
        assert reference.min() >= 0
        assert reference.max() <= pair.max_shift


class TestDpuVariants:
    @pytest.fixture(scope="class")
    def platform(self, pair):
        dpu = DPU()
        left = dpu.store_array(pair.left)
        right = dpu.store_array(pair.right)
        return dpu, (left, right)

    def test_fine_grained_bit_identical(self, pair, reference, platform):
        dpu, addresses = platform
        result = dpu_disparity(dpu, pair, addresses, variant="fine")
        assert np.array_equal(result.value, reference)

    def test_coarse_grained_bit_identical(self, pair, reference, platform):
        dpu, addresses = platform
        result = dpu_disparity(dpu, pair, addresses, variant="coarse")
        assert np.array_equal(result.value, reference)

    def test_fine_beats_coarse(self, pair, platform):
        """§5.6: the fine-grained variant wins despite the barriers —
        the coarse one refetches the image pair once per shift."""
        dpu, addresses = platform
        fine = dpu_disparity(dpu, pair, addresses, variant="fine")
        coarse = dpu_disparity(dpu, pair, addresses, variant="coarse")
        assert fine.seconds < coarse.seconds
        assert fine.bytes_streamed < coarse.bytes_streamed

    def test_fine_gain_in_paper_band(self, pair, platform):
        """§5.6: ~8.6x perf/watt vs OpenMP. At this small image size
        barrier overhead bites harder, so the band is wide."""
        dpu, addresses = platform
        fine = dpu_disparity(dpu, pair, addresses, variant="fine")
        xeon = xeon_disparity(XeonModel(), pair)
        gain = efficiency_gain(fine, xeon)
        assert 3.0 < gain < 12.0

    def test_larger_image_approaches_8_6x(self):
        pair = generate_stereo_pair(rows=192, cols=256, max_shift=8, seed=3)
        dpu = DPU()
        addresses = (dpu.store_array(pair.left), dpu.store_array(pair.right))
        fine = dpu_disparity(dpu, pair, addresses, variant="fine")
        xeon = xeon_disparity(XeonModel(), pair)
        gain = efficiency_gain(fine, xeon)
        assert 6.0 < gain < 12.0

    def test_bad_variant(self, pair, platform):
        dpu, addresses = platform
        with pytest.raises(ValueError):
            dpu_disparity(dpu, pair, addresses, variant="medium")


class TestXeon:
    def test_xeon_matches_reference(self, pair, reference):
        result = xeon_disparity(XeonModel(), pair)
        assert np.array_equal(result.value, reference)
