"""Tests for CRC32/Murmur hashing and bit-vector helpers."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import (
    bitvector_words,
    nlz64,
    ntz64,
    pack_bits,
    popcount64,
    selected_indices,
    unpack_bits,
)
from repro.core.crc32 import (
    crc32_bytes,
    crc32_column,
    crc32_u32,
    crc32_u64,
    murmur64,
)


class TestCrc32:
    def test_matches_zlib(self):
        for data in (b"", b"a", b"hello world", bytes(range(256))):
            assert crc32_bytes(data) == zlib.crc32(data)

    def test_u32_u64_are_little_endian_byte_crcs(self):
        assert crc32_u32(0x12345678) == zlib.crc32(
            (0x12345678).to_bytes(4, "little")
        )
        assert crc32_u64(0xDEADBEEFCAFEF00D) == zlib.crc32(
            (0xDEADBEEFCAFEF00D).to_bytes(8, "little")
        )

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32, np.uint64])
    def test_column_matches_scalar(self, dtype):
        rng = np.random.default_rng(1)
        info = np.iinfo(dtype)
        column = rng.integers(0, int(info.max), 64, dtype=dtype)
        hashes = crc32_column(column)
        width = column.dtype.itemsize
        for value, digest in zip(column.tolist(), hashes.tolist()):
            assert digest == crc32_bytes(int(value).to_bytes(width, "little"))

    def test_column_rejects_odd_widths(self):
        with pytest.raises(ValueError):
            crc32_column(np.zeros(4, dtype=[("a", "u1", 3)]))

    def test_seed_chains(self):
        whole = crc32_bytes(b"abcdef")
        chained = crc32_bytes(b"def", seed=crc32_bytes(b"abc"))
        assert whole == chained

    def test_murmur64_reference_values(self):
        # fmix64 fixed points and known outputs.
        assert murmur64(0) == 0
        assert murmur64(1) != murmur64(2)
        assert murmur64(123456789) < 2**64


class TestBitvector:
    def test_pack_unpack_roundtrip_simple(self):
        bits = np.array([True, False, True, True] + [False] * 100)
        words = pack_bits(bits)
        assert np.array_equal(unpack_bits(words, len(bits)), bits)

    @given(st.lists(st.booleans(), min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_roundtrip_property(self, bools):
        bits = np.array(bools, dtype=bool)
        words = pack_bits(bits)
        assert len(words) == bitvector_words(len(bits))
        assert np.array_equal(unpack_bits(words, len(bits)), bits)

    def test_bit_order_is_little_endian(self):
        bits = np.zeros(64, dtype=bool)
        bits[0] = True
        assert int(pack_bits(bits)[0]) == 1
        bits = np.zeros(64, dtype=bool)
        bits[63] = True
        assert int(pack_bits(bits)[0]) == 1 << 63

    def test_selected_indices(self):
        bits = np.zeros(130, dtype=bool)
        bits[[0, 64, 129]] = True
        assert list(selected_indices(pack_bits(bits), 130)) == [0, 64, 129]

    def test_popcount(self):
        assert popcount64(0) == 0
        assert popcount64(2**64 - 1) == 64
        assert popcount64(0b1011) == 3

    @given(st.integers(min_value=1, max_value=2**64 - 1))
    @settings(max_examples=200, deadline=None)
    def test_ntz_nlz_against_bit_length(self, value):
        assert ntz64(value) == (value & -value).bit_length() - 1
        assert nlz64(value) == 64 - value.bit_length()

    def test_zero_conventions(self):
        assert ntz64(0) == 64
        assert nlz64(0) == 64
