"""Tests for the HyperLogLog application."""

import numpy as np
import pytest

from repro.apps.hll import (
    HllSketch,
    _update_registers,
    dpu_hll,
    hll_estimate,
    measure_hash_loop,
    murmur64_column,
    xeon_hll,
)
from repro.apps.sql import efficiency_gain
from repro.baseline import XeonModel
from repro.core import DPU
from repro.core.crc32 import crc32_column, murmur64


def distinct_values(cardinality, repeats, seed=0):
    rng = np.random.default_rng(seed)
    pool = rng.integers(0, 2**63, cardinality, dtype=np.uint64)
    values = rng.choice(pool, cardinality * repeats)
    return values, len(np.unique(values))


class TestSketch:
    def test_estimate_within_hll_error(self):
        values, truth = distinct_values(20000, 5)
        sketch = HllSketch.empty(12)
        _update_registers(sketch, murmur64_column(values), 64)
        estimate = hll_estimate(sketch)
        # Standard error ~1.04/sqrt(4096) ~ 1.6%; allow 5%.
        assert abs(estimate - truth) / truth < 0.05

    def test_small_range_correction(self):
        values = np.arange(10, dtype=np.uint64)
        sketch = HllSketch.empty(12)
        _update_registers(sketch, murmur64_column(values), 64)
        estimate = hll_estimate(sketch)
        assert abs(estimate - 10) < 2

    def test_merge_equals_union(self):
        a_vals, _ = distinct_values(5000, 2, seed=1)
        b_vals, _ = distinct_values(5000, 2, seed=2)
        separate = HllSketch.empty(12)
        _update_registers(separate, murmur64_column(
            np.concatenate([a_vals, b_vals])), 64)
        a = HllSketch.empty(12)
        b = HllSketch.empty(12)
        _update_registers(a, murmur64_column(a_vals), 64)
        _update_registers(b, murmur64_column(b_vals), 64)
        a.merge(b)
        assert np.array_equal(a.registers, separate.registers)

    def test_precision_validation(self):
        with pytest.raises(ValueError):
            HllSketch.empty(2)

    def test_murmur_column_matches_scalar(self):
        values = np.array([0, 1, 12345, 2**63 - 1], dtype=np.uint64)
        assert list(murmur64_column(values)) == [
            murmur64(int(v)) for v in values
        ]

    def test_crc_low_entropy_bias_documented(self):
        """CRC32 is XOR-linear: low-entropy keys (small ints) land in
        an affine subspace and bias the trailing-zero statistics. This
        is a real property of the paper's CRC32 choice — HLL over CRC
        needs well-mixed keys."""
        low_entropy = np.arange(50000, dtype=np.uint64)
        sketch = HllSketch.empty(12)
        _update_registers(sketch, crc32_column(low_entropy).astype(np.uint64), 32)
        bias = abs(hll_estimate(sketch) - 50000) / 50000
        high_entropy, truth = distinct_values(50000, 1)
        sketch2 = HllSketch.empty(12)
        _update_registers(
            sketch2, crc32_column(high_entropy).astype(np.uint64), 32
        )
        good = abs(hll_estimate(sketch2) - truth) / truth
        assert good < 0.05
        assert bias > good  # the structured-key bias is visible


class TestIsaCosts:
    def test_ntz_cheaper_than_nlz(self):
        """§5.4: NTZ (4 instrs via POPC) vs NLZ (~13 instrs)."""
        ntz = measure_hash_loop("crc32", "ntz", 128)
        nlz = measure_hash_loop("crc32", "nlz", 128)
        assert nlz - ntz >= 8  # ~9-11 extra cycles per value

    def test_murmur_much_slower_than_crc(self):
        """§5.4: Murmur64's 64-bit multiplies hurt on the dpCore."""
        crc = measure_hash_loop("crc32", "ntz", 128)
        murmur = measure_hash_loop("murmur64", "ntz", 128)
        assert murmur > 2.5 * crc

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_hash_loop("sha256", "ntz")
        with pytest.raises(ValueError):
            measure_hash_loop("crc32", "clz")


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def workload(self):
        values, truth = distinct_values(30000, 4, seed=3)
        return values, truth

    def test_dpu_estimate_accurate(self, workload):
        values, truth = workload
        dpu = DPU()
        address = dpu.store_array(values)
        result = dpu_hll(dpu, address, len(values), hash_fn="crc32", chunk_values=2048)
        assert abs(result.value - truth) / truth < 0.06

    def test_crc_faster_than_murmur_on_dpu(self, workload):
        values, _ = workload
        dpu = DPU()
        address = dpu.store_array(values)
        crc = dpu_hll(dpu, address, len(values), hash_fn="crc32", chunk_values=2048)
        murmur = dpu_hll(dpu, address, len(values), hash_fn="murmur64", chunk_values=2048)
        assert crc.seconds < murmur.seconds

    def test_gains_match_paper_shape(self, workload):
        """§5.4: CRC ~9x vs x86; Murmur 'does poorly'."""
        values, _ = workload
        dpu = DPU()
        address = dpu.store_array(values)
        xeon = xeon_hll(XeonModel(), values)
        crc_gain = efficiency_gain(
            dpu_hll(dpu, address, len(values), hash_fn="crc32", chunk_values=2048), xeon
        )
        murmur_gain = efficiency_gain(
            dpu_hll(dpu, address, len(values), hash_fn="murmur64", chunk_values=2048), xeon
        )
        assert 6.0 < crc_gain < 12.0  # paper: ~9x
        assert murmur_gain < 0.6 * crc_gain
