"""Tests for similarity search (SpMM over a tiled inverted index)."""

import numpy as np
import pytest

from repro.apps.simsearch import (
    build_tiled_index,
    dpu_simsearch,
    xeon_simsearch,
)
from repro.apps.sql import efficiency_gain
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.corpus import generate_corpus


@pytest.fixture(scope="module")
def workload():
    return generate_corpus(
        num_docs=1500, vocab=8000, num_queries=48, query_terms=6, seed=9
    )


@pytest.fixture(scope="module")
def tiled(workload):
    return build_tiled_index(workload.index, tile_docs=128)


class TestTiledIndex:
    def test_segments_partition_the_postings(self, tiled):
        covered = np.zeros(len(tiled.postings), dtype=bool)
        for (tile, _term), (lo, hi) in tiled.segments.items():
            assert not covered[lo:hi].any(), "overlapping segments"
            covered[lo:hi] = True
            assert 0 <= tile < tiled.num_tiles
        assert covered.all()

    def test_postings_sorted_by_tile(self, tiled):
        docs = tiled.postings[:, 0].astype(np.int64)
        tiles = docs // tiled.tile_docs
        assert np.all(np.diff(tiles) >= 0)

    def test_tile_starts_consistent(self, tiled):
        docs = tiled.postings[:, 0].astype(np.int64)
        for tile in range(tiled.num_tiles):
            lo, hi = tiled.tile_starts[tile], tiled.tile_starts[tile + 1]
            if lo < hi:
                assert docs[lo] // tiled.tile_docs == tile
                assert docs[hi - 1] // tiled.tile_docs == tile

    def test_nnz_preserved(self, workload, tiled):
        assert len(tiled.postings) == workload.index.nnz

    def test_bad_tile_size(self, workload):
        with pytest.raises(ValueError):
            build_tiled_index(workload.index, tile_docs=0)


class TestSearch:
    @pytest.fixture(scope="class")
    def platform(self, workload, tiled):
        dpu = DPU()
        address = dpu.store_array(tiled.postings)
        return dpu, address

    def test_dynamic_finds_source_documents(self, workload, tiled, platform):
        dpu, address = platform
        result = dpu_simsearch(dpu, workload, tiled, address, variant="dynamic")
        hits = sum(
            1 for q, top in result.value.items()
            if top and top[0][1] == workload.query_truth[q]
        )
        assert hits >= 0.9 * len(workload.query_truth)

    def test_naive_and_dynamic_agree(self, workload, tiled, platform):
        dpu, address = platform
        dynamic = dpu_simsearch(dpu, workload, tiled, address, variant="dynamic")
        naive = dpu_simsearch(dpu, workload, tiled, address, variant="naive")
        for query in dynamic.value:
            assert [d for _s, d in dynamic.value[query]] == [
                d for _s, d in naive.value[query]
            ]

    def test_naive_wastes_bandwidth(self, workload, tiled, platform):
        """§5.2: the fixed-buffer fetches discard almost everything."""
        dpu, address = platform
        naive = dpu_simsearch(dpu, workload, tiled, address, variant="naive")
        assert naive.detail["utilization"] < 0.2
        dynamic = dpu_simsearch(dpu, workload, tiled, address, variant="dynamic")
        assert dynamic.detail["utilization"] == pytest.approx(1.0)
        assert (
            dynamic.detail["effective_gbps"]
            > 5 * naive.detail["effective_gbps"]
        )

    def test_xeon_agrees_on_top1(self, workload, tiled):
        result = xeon_simsearch(XeonModel(), workload, tiled)
        hits = sum(
            1 for q, top in result.value.items()
            if top and top[0][1] == workload.query_truth[q]
        )
        assert hits >= 0.9 * len(workload.query_truth)

    def test_gain_in_paper_band(self, workload, tiled, platform):
        """§5.2: ~3.9x perf/watt for the dynamic-tile variant."""
        dpu, address = platform
        dynamic = dpu_simsearch(dpu, workload, tiled, address, variant="dynamic")
        xeon = xeon_simsearch(XeonModel(), workload, tiled)
        gain = efficiency_gain(dynamic, xeon)
        assert 1.5 < gain < 8.0

    def test_bad_variant(self, workload, tiled, platform):
        dpu, address = platform
        with pytest.raises(ValueError):
            dpu_simsearch(dpu, workload, tiled, address, variant="magic")
