#!/usr/bin/env python
"""Host-performance measurement and before/after comparison.

The simulator's *modelled* numbers (cycles, GB/s) are pinned by
``tests/test_equivalence.py``; this tool watches the other axis — how
much host wall-clock the simulation itself burns. Two subcommands:

``measure``
    Run the host-perf workload set and write a JSON report::

        PYTHONPATH=src python tools/perfcmp.py measure -o current.json

    Workloads (seconds unless noted):

    * ``tier1_wall_s``    — the full tier-1 pytest suite, subprocess
    * ``goldens_wall_s``  — the equivalence harness alone, subprocess
    * ``fig16_body_s``    — TPC-H query sweep body, in-process
    * ``fig11_body_s``    — DMS bandwidth sweep body, in-process
    * ``engine_1m_events_s`` — one million timer events through the
      raw event engine, in-process (events/s also recorded)
    * ``metrics_sweep_s``  — repeated DMS streaming launches with
      continuous metrics sampling enabled at a fine cadence,
      in-process (records the sampling path's host cost; the
      disabled path is pinned to literally zero by tests)

``compare``
    Diff a baseline report against a current one::

        PYTHONPATH=src python tools/perfcmp.py compare \\
            benchmarks/host_perf_baseline.json current.json -o report.json

    Prints a speedup table (baseline / current; >1 means faster now)
    and exits nonzero when ``tier1_wall_s`` regressed more than
    ``--max-regression`` (default 0.25 = 25%), which is the CI gate.

The committed baseline (``benchmarks/host_perf_baseline.json``) was
measured on the pre-fast-path tree so the report shows the honest
cumulative speedup of the host-perf work; regenerate it only when the
hardware running CI changes, via ``measure`` on a baseline checkout.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Workloads measured in-process need src/ and benchmarks/ importable.
for path in (os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)


# -- workloads ---------------------------------------------------------------


def _pytest_wall(args) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    began = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    elapsed = time.perf_counter() - began
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
        raise SystemExit(f"workload pytest {' '.join(args)} failed")
    return elapsed


def measure_tier1() -> float:
    return _pytest_wall([])


def measure_goldens() -> float:
    return _pytest_wall(["tests/test_equivalence.py"])


def measure_fig16_body() -> float:
    import test_fig16_tpch

    began = time.perf_counter()
    test_fig16_tpch.run_all_queries()
    return time.perf_counter() - began


def measure_fig11_body() -> float:
    import test_fig11_dms_bandwidth as fig11

    began = time.perf_counter()
    # The figure's three axes: buffer-size sweep, column sweep, R+W.
    for tile_bytes in (2048, 4096, 8192):
        fig11.sweep_point(1, tile_bytes // 4, False)
    for num_columns in (1, 4, 8):
        fig11.sweep_point(num_columns, 2048 // num_columns, False,
                          rows_per_core=8192)
    fig11.sweep_point(1, 2048, True)
    return time.perf_counter() - began


def run_engine_events(num_events: int) -> float:
    """Drive ``num_events`` timer events through the raw engine;
    returns elapsed host seconds."""
    from repro.sim import Engine

    engine = Engine()

    def ticker(count):
        for _ in range(count):
            yield engine.timeout(1.0)

    # A handful of interleaved processes so the heap sees realistic
    # same-timestamp contention rather than a single hot timer.
    processes = 8
    per_process = num_events // processes
    began = time.perf_counter()
    for _ in range(processes):
        engine.process(ticker(per_process))
    engine.run()
    return time.perf_counter() - began


def measure_engine_1m() -> float:
    return run_engine_events(1_000_000)


def measure_metrics_sweep() -> float:
    """Repeated DMS streaming launches with the continuous-metrics
    sampler on at a fine cadence: full-registry snapshots every 500
    cycles plus digest feeds, the worst realistic sampling load."""
    import numpy as np
    from repro.apps.streaming import stream_columns
    from repro.core import DPU

    dpu = DPU()
    dpu.enable_metrics(cadence=500.0)
    rows = 2048
    addr = dpu.store_array(np.arange(rows, dtype=np.uint64))

    def kernel(ctx):
        yield from stream_columns(
            ctx, [(addr, 8)], rows, 512, lambda *a: 8, dmem_base=64
        )

    began = time.perf_counter()
    for _ in range(40):
        dpu.launch(kernel, cores=[0, 1])
    return time.perf_counter() - began


WORKLOADS = {
    "tier1_wall_s": measure_tier1,
    "goldens_wall_s": measure_goldens,
    "fig16_body_s": measure_fig16_body,
    "fig11_body_s": measure_fig11_body,
    "engine_1m_events_s": measure_engine_1m,
    "metrics_sweep_s": measure_metrics_sweep,
}

# The CI regression gate applies to this key.
GATE_KEY = "tier1_wall_s"


# -- commands ----------------------------------------------------------------


def cmd_measure(options) -> int:
    selected = options.only or list(WORKLOADS)
    unknown = [name for name in selected if name not in WORKLOADS]
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)}")
    report = {
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "workloads": {},
    }
    for name in selected:
        print(f"measuring {name} ...", flush=True)
        seconds = WORKLOADS[name]()
        report["workloads"][name] = round(seconds, 4)
        print(f"  {name}: {seconds:.3f}s", flush=True)
    if "engine_1m_events_s" in report["workloads"]:
        seconds = report["workloads"]["engine_1m_events_s"]
        report["workloads"]["engine_events_per_s"] = round(1_000_000 / seconds)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if options.output:
        with open(options.output, "w") as handle:
            handle.write(text)
        print(f"wrote {options.output}")
    else:
        print(text)
    return 0


def cmd_compare(options) -> int:
    with open(options.baseline) as handle:
        baseline = json.load(handle)
    with open(options.current) as handle:
        current = json.load(handle)
    base_loads = baseline["workloads"]
    curr_loads = current["workloads"]
    rows = []
    for name in sorted(set(base_loads) | set(curr_loads)):
        base = base_loads.get(name)
        curr = curr_loads.get(name)
        if base is None or curr is None or name.endswith("_per_s"):
            continue
        speedup = base / curr if curr else float("inf")
        rows.append((name, base, curr, speedup))
    width = max(len(name) for name, *_rest in rows) if rows else 10
    print(f"{'workload':<{width}}  {'baseline':>9}  {'current':>9}  speedup")
    for name, base, curr, speedup in rows:
        print(f"{name:<{width}}  {base:>8.3f}s  {curr:>8.3f}s  {speedup:6.2f}x")

    verdict = "ok"
    gate_base = base_loads.get(GATE_KEY)
    gate_curr = curr_loads.get(GATE_KEY)
    exit_code = 0
    if gate_base is not None and gate_curr is not None:
        regression = gate_curr / gate_base - 1.0
        if regression > options.max_regression:
            verdict = (
                f"REGRESSION: {GATE_KEY} {gate_curr:.2f}s is "
                f"{regression:+.0%} vs baseline {gate_base:.2f}s "
                f"(limit {options.max_regression:+.0%})"
            )
            exit_code = 1
        else:
            verdict = (
                f"{GATE_KEY} {gate_curr:.2f}s vs baseline "
                f"{gate_base:.2f}s ({regression:+.1%}, "
                f"limit {options.max_regression:+.0%})"
            )
    print(verdict)

    if options.output:
        merged = {
            "baseline": baseline,
            "current": current,
            "speedups": {name: round(s, 3) for name, _b, _c, s in rows},
            "gate": {
                "key": GATE_KEY,
                "max_regression": options.max_regression,
                "verdict": verdict,
                "passed": exit_code == 0,
            },
        }
        with open(options.output, "w") as handle:
            handle.write(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {options.output}")
    return exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    measure = commands.add_parser("measure", help="run workloads, write JSON")
    measure.add_argument("-o", "--output", help="JSON output path")
    measure.add_argument(
        "--only",
        nargs="+",
        metavar="WORKLOAD",
        help=f"subset of workloads ({', '.join(WORKLOADS)})",
    )
    measure.set_defaults(func=cmd_measure)

    compare = commands.add_parser("compare", help="diff two measure reports")
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument("-o", "--output", help="merged JSON report path")
    compare.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional tier-1 wall-clock regression (default 0.25)",
    )
    compare.set_defaults(func=cmd_compare)

    options = parser.parse_args(argv)
    return options.func(options)


if __name__ == "__main__":
    raise SystemExit(main())
