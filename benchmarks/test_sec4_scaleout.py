"""§4: scaling distributed SQL across the rack.

The paper's claim: the A9 network path and system services "allowed
us to scale several of the applications in Section 5 across 500+ DPU
clusters". Two regenerations:

* **Near-linear speedup** — the pre-aggregating job family (TPC-H Q1
  here, HLL in §5.4): each DPU runs the full plan on its shard and
  only tiny partials cross the fabric, so the rack model calibrated
  from 2/4/8-DPU simulations stays near-linear through 512 DPUs.

* **Fabric-bytes model** — the shuffle family (hash group-by): the
  all-to-all moves ``(D-1)/D`` of the table, and the analytic volume
  matches the simulated fabric byte counters at every measured size.

Network bytes are **per job** (deltas, not cumulative fabric
counters) — the benchmark runs back-to-back jobs on one cluster and
checks the second job reports only its own traffic.
"""

from dataclasses import replace

import numpy as np
from conftest import run_once

from repro.apps.sql import Table
from repro.apps.sql.aggregate import AggSpec
from repro.cluster import (
    Cluster,
    ShuffleRackModel,
    cluster_groupby,
    cluster_tpch_q1,
)
from repro.workloads.tpch import generate_tpch

SIM_DPUS = (2, 4, 8)
RACK_DPUS = (2, 4, 8, 16, 32, 64, 128, 256, 512)


def _shard(columns, num_shards, name="shard"):
    total = len(next(iter(columns.values())))
    bounds = [round(total * i / num_shards) for i in range(num_shards + 1)]
    return [
        Table(
            f"{name}{i}",
            {n: c[bounds[i]:bounds[i + 1]] for n, c in columns.items()},
        )
        for i in range(num_shards)
    ]


def test_sec4_scaleout_scaling(benchmark, report):
    def run():
        rng = np.random.default_rng(17)
        groupby_rows = 12000
        data = {
            "k": rng.integers(0, 64, groupby_rows, dtype=np.uint32),
            "v": rng.integers(0, 1000, groupby_rows, dtype=np.uint32),
        }
        aggs = [AggSpec("sum", "v"), AggSpec("count")]
        tpch = generate_tpch(scale=0.005, seed=42)
        lineitem = tpch.tables["lineitem"]

        shuffle_sims = {}
        q1_sims = {}
        for num_dpus in SIM_DPUS:
            cluster = Cluster(num_dpus)
            shuffle_sims[num_dpus] = cluster_groupby(
                cluster, _shard(data, num_dpus), "k", aggs
            )
            q1_sims[num_dpus] = cluster_tpch_q1(
                Cluster(num_dpus), _shard(lineitem, num_dpus, "lineitem")
            )

        # Per-job accounting: a second identical job on the same
        # (already-used) cluster must report only its own bytes.
        repeat_cluster = Cluster(4)
        first = cluster_groupby(repeat_cluster, _shard(data, 4), "k", aggs)
        second = cluster_groupby(repeat_cluster, _shard(data, 4), "k", aggs)
        return (groupby_rows, lineitem, shuffle_sims, q1_sims,
                first, second)

    (groupby_rows, lineitem, shuffle_sims, q1_sims,
     first, second) = run_once(benchmark, run)

    # -- satellite regression: per-job network-byte deltas ------------
    assert second.network_bytes == first.network_bytes
    assert second.value == first.value

    # -- distributed == single-DPU results across sim sizes -----------
    reference = q1_sims[2].value
    for num_dpus in SIM_DPUS:
        assert q1_sims[num_dpus].value == reference
        assert (shuffle_sims[num_dpus].value
                == shuffle_sims[2].value)

    # -- fabric-bytes model vs simulated shuffle ----------------------
    record_bytes = 8  # two u32 columns
    volume_rows = []
    for num_dpus in SIM_DPUS:
        sim = shuffle_sims[num_dpus]
        simulated = sim.detail["rows_moved"] * record_bytes
        modeled = (groupby_rows * record_bytes
                   * (num_dpus - 1) / num_dpus)
        error = abs(simulated - modeled) / modeled
        volume_rows.append(
            f"{num_dpus:>4} {simulated:>12.0f} {modeled:>12.0f} "
            f"{100 * error:>6.2f}%"
        )
        assert error < 0.05, (
            f"shuffle volume off by {error:.1%} at {num_dpus} DPUs"
        )

    # -- rack model: pre-aggregate speedup through 512 DPUs -----------
    lineitem_rows = len(lineitem["l_quantity"])
    calibrated = q1_sims[8]
    groups = len(calibrated.value)
    calibrated_model = ShuffleRackModel.from_sim(
        calibrated.detail, 8, lineitem_rows, record_bytes=48,
        result_bytes=56 * groups, all_to_all=False,
    )
    # Weak-scale the input to rack size (paper: "analytics on
    # terabytes"); the per-row costs stay as calibrated from the sim.
    model = replace(calibrated_model, total_rows=lineitem_rows * 1024)
    speedups = [model.speedup(num_dpus) for num_dpus in RACK_DPUS]
    assert all(b > a for a, b in zip(speedups, speedups[1:])), (
        f"speedup not monotone: {speedups}"
    )
    assert speedups[RACK_DPUS.index(8)] > 7.0  # near-linear at 8
    assert speedups[-1] > 300.0  # still scaling at 512

    shuffle_model = ShuffleRackModel.from_sim(
        shuffle_sims[8].detail, 8, groupby_rows, record_bytes,
        result_bytes=24 * 64,
    )

    rack_rows = []
    for num_dpus, speedup in zip(RACK_DPUS, speedups):
        shuffle_mb = shuffle_model.network_bytes(num_dpus) / 1e6
        q1_kb = model.network_bytes(num_dpus) / 1e3
        rack_rows.append(
            f"{num_dpus:>4} {speedup:>8.1f} {q1_kb:>10.1f} "
            f"{shuffle_mb:>12.3f}"
        )

    report(
        "§4: shuffle volume, model vs simulation (12000-row group-by)",
        f"{'DPUs':>4} {'sim bytes':>12} {'model bytes':>12} {'error':>7}",
        volume_rows,
    )
    report(
        "§4: rack model (Q1 weak-scaled x1024; per-job network bytes)",
        f"{'DPUs':>4} {'speedup':>8} {'Q1 net KB':>10} "
        f"{'shuffle net MB':>12}",
        rack_rows,
    )

    benchmark.extra_info["speedup_512"] = speedups[-1]
    benchmark.extra_info["per_job_bytes"] = second.network_bytes
    benchmark.extra_info["sim_cycles_8dpu"] = q1_sims[8].cycles
