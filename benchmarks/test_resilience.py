"""Resilience: throughput vs. fault rate, with byte-exact results.

Not a paper figure — the paper models the happy path — but the
experiment any hardware team runs before tape-out: inject faults at
increasing rates and check that (a) results stay bit-identical, since
every recovery mechanism (ECC scrub, descriptor replay, ATE
retransmission, link-level retry, core failover) repairs rather than
approximates, and (b) throughput degrades smoothly rather than
collapsing.

The swept axis is a fault intensity ``lam`` in {0, 1e-6, 1e-5, 1e-4}.
Sites see ``lam`` scaled by their event exposure, so one knob moves
every layer by a comparable amount:

=================  ============  ====================================
site               rate          why
=================  ============  ====================================
``ddr.bitflip``    ``lam / 10``  fires per *bit*: millions of trials
``dms.descriptor``  ``lam * 1e3``  fires per descriptor: dozens
``ate.drop``       ``lam * 1e3``  fires per message leg: hundreds
``ate.delay``      ``lam * 1e3``  fires per message leg
``net.drop``       ``lam * 1e3``  fires per fabric message: dozens
``core.dead``      ``lam * 1e3``  fires per core: a handful
=================  ============  ====================================

The ``lam == 0`` column doubles as the zero-overhead-off regression:
it must reproduce the no-plan seed timings exactly.
"""

import numpy as np
from conftest import run_once

from repro.apps.hll import dpu_hll
from repro.apps.streaming import stream_columns
from repro.cluster import Cluster, cluster_hll
from repro.core import DPU
from repro.faults import FaultPlan
from repro.runtime import surviving_cores

LAMBDAS = [0.0, 1e-6, 1e-5, 1e-4]


def plan_for(lam, seed=20, sites=("ddr.bitflip", "dms.descriptor",
                                  "ate.drop", "ate.delay", "net.drop",
                                  "core.dead")):
    if lam == 0.0:
        return FaultPlan.none()
    scale = {
        "ddr.bitflip": lam / 10.0,
        "dms.descriptor": lam * 1e3,
        "ate.drop": lam * 1e3,
        "ate.delay": lam * 1e3,
        "net.drop": lam * 1e3,
        "core.dead": lam * 1e3,
    }
    return FaultPlan(seed=seed, rates={s: scale[s] for s in sites})


# -- DMS streaming ------------------------------------------------------------


def dms_streaming_curve():
    rows = 32768
    data = np.arange(rows, dtype=np.uint64) ^ 0x5A5A
    points = []
    for lam in LAMBDAS:
        dpu = DPU(fault_plan=plan_for(
            lam, sites=("ddr.bitflip", "dms.descriptor")))
        addr = dpu.store_array(data)
        seen = []

        def kernel(ctx):
            yield from stream_columns(
                ctx, [(addr, 8)], rows, 1024,
                lambda tile, lo, hi, arrays: seen.append(arrays[0].copy())
                or 8,
            )

        launch = dpu.launch(kernel, cores=[0])
        assert np.array_equal(np.concatenate(seen), data), lam
        gbps = launch.gbps(rows * 8)
        points.append((lam, launch.cycles, gbps, dpu))
    return points


def test_resilience_dms_streaming(benchmark, report):
    points = run_once(benchmark, dms_streaming_curve)
    baseline = points[0][1]
    rows = []
    for lam, cycles, gbps, dpu in points:
        scrubs = dpu.ddr_channel.ecc.corrected
        replays = dpu.stats.counters.get("dmad.crc_replays", 0)
        rows.append(f"{lam:8.0e}  {gbps:6.2f} GB/s  {cycles:10.0f} cyc"
                    f"  scrubs={scrubs:<4} replays={replays:.0f}")
        benchmark.extra_info[f"gbps@{lam:g}"] = gbps
    report("Resilience: DMS streaming vs fault intensity",
           "  lambda  throughput       cycles  recovery", rows)
    # Zero-overhead off: explicit none() equals the implicit default.
    seed_dpu = DPU()
    seed_addr = seed_dpu.store_array(np.arange(1024, dtype=np.uint64))

    def seed_kernel(ctx):
        yield from stream_columns(ctx, [(seed_addr, 8)], 1024, 512,
                                  lambda *a: 8)

    off_dpu = DPU(fault_plan=FaultPlan.none())
    off_addr = off_dpu.store_array(np.arange(1024, dtype=np.uint64))

    def off_kernel(ctx):
        yield from stream_columns(ctx, [(off_addr, 8)], 1024, 512,
                                  lambda *a: 8)

    assert (seed_dpu.launch(seed_kernel, cores=[0]).cycles
            == off_dpu.launch(off_kernel, cores=[0]).cycles)
    # Faults cost cycles, monotonically in intensity for this seed.
    assert points[-1][1] > baseline
    assert all(cycles >= baseline for _lam, cycles, _g, _d in points)
    # At the top intensity both recovery paths actually fired.
    assert points[-1][3].ddr_channel.ecc.corrected > 0
    assert points[-1][3].stats.counters.get("dmad.crc_replays", 0) > 0


# -- ATE RPC ping -------------------------------------------------------------


def ate_ping_curve():
    pings = 256
    points = []
    for lam in LAMBDAS:
        dpu = DPU(fault_plan=plan_for(lam, sites=("ate.drop", "ate.delay")))
        address = dpu.address_map.dmem_address(9, 0)

        def kernel(ctx):
            for _ in range(pings):
                yield from ctx.fetch_add(9, address, 1)

        launch = dpu.launch(kernel, cores=[0])
        assert dpu.scratchpads[9].read_u64(0) == pings, lam
        points.append((lam, launch.cycles / pings, dpu))
    return points


def test_resilience_ate_rpc_ping(benchmark, report):
    points = run_once(benchmark, ate_ping_curve)
    baseline = points[0][1]
    rows = []
    for lam, cyc_per_rpc, dpu in points:
        dropped = dpu.stats.counters.get("ate.dropped", 0)
        retries = dpu.stats.counters.get("ate.retries", 0)
        rows.append(f"{lam:8.0e}  {cyc_per_rpc:8.1f} cyc/rpc"
                    f"  dropped={dropped:.0f} retries={retries:.0f}")
        benchmark.extra_info[f"cycles_per_rpc@{lam:g}"] = cyc_per_rpc
    report("Resilience: ATE fetch-add ping vs fault intensity",
           "  lambda  latency          recovery", rows)
    assert points[0][1] == baseline
    assert points[-1][1] > baseline  # retries cost real cycles
    assert points[-1][2].stats.counters.get("ate.retries", 0) > 0
    # Exactly-once held at every intensity (asserted inside the curve).


# -- Scale-out HLL ------------------------------------------------------------


def scaleout_hll_curve():
    rng = np.random.default_rng(17)
    shards = [rng.integers(0, 2**63, 16384, dtype=np.uint64).view(np.uint64)
              for _ in range(2)]
    points = []
    for lam in LAMBDAS:
        cluster = Cluster(2, fault_plan=plan_for(
            lam, sites=("net.drop", "ddr.bitflip")))
        result = cluster_hll(cluster, shards, precision=10)
        points.append((lam, result, cluster))
    return points


def test_resilience_scaleout_hll(benchmark, report):
    points = run_once(benchmark, scaleout_hll_curve)
    baseline = points[0][1]
    rows = []
    for lam, result, cluster in points:
        rows.append(
            f"{lam:8.0e}  {result.cycles:12.0f} cyc  est={result.value:9.1f}"
            f"  retx={cluster.fabric.retransmissions}"
        )
        benchmark.extra_info[f"cycles@{lam:g}"] = result.cycles
    report("Resilience: scale-out HLL (2 DPUs) vs fault intensity",
           "  lambda        cycles  estimate     recovery", rows)
    # Bit-identical estimate at every fault intensity: recovery
    # repairs, it never approximates.
    for _lam, result, _cluster in points[1:]:
        assert result.value == baseline.value
    assert points[-1][1].cycles >= baseline.cycles


# -- Core failover ------------------------------------------------------------


def failover_hll_curve():
    # Murmur64 is compute-bound on the iterative multiplier (the CRC32
    # variant saturates DMS bandwidth long before 32 cores, which
    # would hide the cost of dead cores entirely), and small chunks
    # give the survivors enough work items to redistribute.
    rng = np.random.default_rng(23)
    values = rng.integers(0, 2**63, 65536, dtype=np.uint64).view(np.uint64)
    points = []
    for lam in LAMBDAS:
        dpu = DPU(fault_plan=plan_for(lam, seed=31, sites=("core.dead",)))
        addr = dpu.store_array(values)
        cores = surviving_cores(dpu.faults, dpu.config.core_ids)
        result = dpu_hll(dpu, addr, len(values), precision=10,
                         hash_fn="murmur64", chunk_values=512, cores=cores)
        points.append((lam, result, len(cores)))
    return points


def test_resilience_hll_core_failover(benchmark, report):
    points = run_once(benchmark, failover_hll_curve)
    baseline = points[0][1]
    rows = []
    for lam, result, ncores in points:
        rows.append(f"{lam:8.0e}  {result.cycles:10.0f} cyc"
                    f"  cores={ncores:<3} est={result.value:9.1f}")
        benchmark.extra_info[f"cores@{lam:g}"] = ncores
    report("Resilience: HLL under core failures (work stealing)",
           "  lambda      cycles  survivors", rows)
    # The fetch-add work queue redistributes dead cores' chunks: the
    # sketch (and so the estimate) is identical at any core count.
    for _lam, result, _ncores in points[1:]:
        assert result.value == baseline.value
        assert np.array_equal(result.detail["registers"],
                              baseline.detail["registers"])
    assert points[-1][2] < points[0][2]  # cores actually died at 1e-4
    assert points[-1][1].cycles > baseline.cycles  # fewer cores: slower
