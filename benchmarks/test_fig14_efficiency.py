"""Figure 14: DPU performance-per-watt gains across applications.

Regenerates the paper's headline chart: each co-designed application
runs on the simulated DPU and on the modelled Xeon, and the ratio of
performance per provisioned watt (6 W vs 145 W) is reported next to
the paper's bar. The paper's claim is a 3x-15x band; each entry
asserts its own neighbourhood.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.apps.disparity import dpu_disparity, xeon_disparity
from repro.apps.hll import dpu_hll, xeon_hll
from repro.apps.jsonparse import dpu_parse_json, xeon_parse_json
from repro.apps.simsearch import build_tiled_index, dpu_simsearch, xeon_simsearch
from repro.apps.sql import (
    AggSpec,
    Between,
    Table,
    dpu_filter,
    dpu_groupby,
    efficiency_gain,
    xeon_filter,
    xeon_groupby,
)
from repro.apps.svm import dpu_svm_train, xeon_svm_train
from repro.baseline import XeonModel
from repro.core import DPU, DPU_40NM
from repro.workloads import (
    generate_corpus,
    generate_higgs_like,
    generate_lineitem_json,
    generate_stereo_pair,
)

MODEL = XeonModel()


def _gain_row(report, benchmark, name, paper, gain):
    report(
        "Figure 14: perf/watt gain vs Xeon",
        f"{'application':<22} {'gain':>6}  paper",
        [f"{name:<22} {gain:6.2f}x  ~{paper}x"],
    )
    benchmark.extra_info["gain"] = gain
    benchmark.extra_info["paper_gain"] = paper


def test_fig14_svm(benchmark, report):
    def run():
        dataset = generate_higgs_like(num_samples=512, seed=7)
        dpu = DPU()
        dpu_result = dpu_svm_train(dpu, dataset, tolerance=1e-2)
        xeon_result = xeon_svm_train(MODEL, dataset, tolerance=1e-2)
        return efficiency_gain(dpu_result, xeon_result)

    gain = run_once(benchmark, run)
    _gain_row(report, benchmark, "SVM (parallel SMO)", 15, gain)
    assert 8.0 < gain < 25.0


def test_fig14_similarity_search(benchmark, report):
    def run():
        workload = generate_corpus(num_docs=8000, vocab=50000,
                                   num_queries=256, query_terms=6,
                                   avg_terms=80, seed=11)
        tiled = build_tiled_index(workload.index, tile_docs=256)
        dpu = DPU()
        address = dpu.store_array(tiled.postings)
        dynamic = dpu_simsearch(dpu, workload, tiled, address,
                                variant="dynamic")
        xeon = xeon_simsearch(MODEL, workload, tiled)
        return efficiency_gain(dynamic, xeon), dynamic.detail["effective_gbps"]

    gain, gbps = run_once(benchmark, run)
    _gain_row(report, benchmark, "Similarity search", 3.9, gain)
    benchmark.extra_info["dpu_effective_gbps"] = gbps  # paper: 5.24
    assert 2.0 < gain < 7.0


def test_fig14_filter(benchmark, report):
    def run():
        rng = np.random.default_rng(1)
        n = 512 * 1024
        table = Table("t", {"a": rng.integers(0, 10**6, n).astype(np.int32)})
        dpu = DPU()
        dpu_result = dpu_filter(dpu, table.to_dpu(dpu), Between("a", 0, 10**5))
        xeon_result = xeon_filter(MODEL, table, Between("a", 0, 10**5))
        return efficiency_gain(dpu_result, xeon_result)

    gain = run_once(benchmark, run)
    _gain_row(report, benchmark, "Filter", 6.7, gain)
    assert 4.5 < gain < 9.0  # bandwidth-bound on both platforms


def test_fig14_groupby_low_ndv(benchmark, report):
    def run():
        rng = np.random.default_rng(2)
        n = 512 * 1024
        table = Table("t", {
            "g": rng.integers(0, 64, n).astype(np.int32),
            "v": rng.integers(0, 1000, n).astype(np.int32),
        })
        dpu = DPU()
        aggs = [AggSpec("sum", "v")]
        dpu_result = dpu_groupby(dpu, table.to_dpu(dpu), "g", aggs)
        xeon_result = xeon_groupby(MODEL, table, "g", aggs)
        return efficiency_gain(dpu_result, xeon_result)

    gain = run_once(benchmark, run)
    _gain_row(report, benchmark, "Group-by (low NDV)", 6.7, gain)
    assert 4.5 < gain < 9.0


def test_fig14_groupby_high_ndv(benchmark, report):
    def run():
        rng = np.random.default_rng(3)
        n = 1_500_000
        ndv = 750_000  # ~12 MB of groups: 1 DPU round vs 2 x86 rounds
        table = Table("t", {
            "g": rng.integers(0, ndv, n).astype(np.int32),
            "v": rng.integers(0, 1000, n).astype(np.int32),
        })
        dpu = DPU(DPU_40NM.with_updates(ddr_capacity=256 * 1024 * 1024))
        aggs = [AggSpec("sum", "v")]
        dpu_result = dpu_groupby(dpu, table.to_dpu(dpu), "g", aggs)
        xeon_result = xeon_groupby(MODEL, table, "g", aggs)
        return efficiency_gain(dpu_result, xeon_result), dpu_result.detail

    gain, detail = run_once(benchmark, run)
    _gain_row(report, benchmark, "Group-by (high NDV)", 9.7, gain)
    benchmark.extra_info["sw_rounds"] = detail["sw_rounds"]
    assert detail["sw_rounds"] == 1
    assert 6.5 < gain < 13.0
    # The asymmetry itself: high-NDV gain exceeds the bandwidth ratio.


def test_fig14_hll_crc32(benchmark, report):
    def run():
        rng = np.random.default_rng(4)
        pool = rng.integers(0, 2**63, 50000, dtype=np.uint64)
        values = rng.choice(pool, 250_000)
        dpu = DPU()
        address = dpu.store_array(values)
        dpu_result = dpu_hll(dpu, address, len(values), hash_fn="crc32")
        xeon_result = xeon_hll(MODEL, values, hash_fn="murmur64")
        return efficiency_gain(dpu_result, xeon_result)

    gain = run_once(benchmark, run)
    _gain_row(report, benchmark, "HyperLogLog (CRC32)", 9, gain)
    assert 6.0 < gain < 12.0


def test_fig14_hll_murmur64(benchmark, report):
    def run():
        rng = np.random.default_rng(5)
        pool = rng.integers(0, 2**63, 50000, dtype=np.uint64)
        values = rng.choice(pool, 250_000)
        dpu = DPU()
        address = dpu.store_array(values)
        dpu_result = dpu_hll(dpu, address, len(values), hash_fn="murmur64")
        xeon_result = xeon_hll(MODEL, values, hash_fn="murmur64")
        return efficiency_gain(dpu_result, xeon_result)

    gain = run_once(benchmark, run)
    _gain_row(report, benchmark, "HyperLogLog (Murmur64)", 4, gain)
    assert gain < 6.0  # "does poorly on the DPU" (slow multiplier)


def test_fig14_json_parsing(benchmark, report):
    def run():
        data = generate_lineitem_json(2000, seed=13)
        dpu = DPU()
        address = dpu.store_array(np.frombuffer(data, dtype=np.uint8))
        dpu_result = dpu_parse_json(dpu, address, data, parser="table")
        xeon_result = xeon_parse_json(MODEL, data)
        return efficiency_gain(dpu_result, xeon_result), dpu_result.gbps

    gain, gbps = run_once(benchmark, run)
    _gain_row(report, benchmark, "JSON parsing", 8, gain)
    benchmark.extra_info["dpu_gbps"] = gbps  # paper: 1.73
    assert 6.0 < gain < 10.5


def test_fig14_disparity(benchmark, report):
    def run():
        pair = generate_stereo_pair(rows=192, cols=256, max_shift=8, seed=17)
        dpu = DPU()
        addresses = (dpu.store_array(pair.left), dpu.store_array(pair.right))
        dpu_result = dpu_disparity(dpu, pair, addresses, variant="fine")
        xeon_result = xeon_disparity(MODEL, pair)
        return efficiency_gain(dpu_result, xeon_result)

    gain = run_once(benchmark, run)
    _gain_row(report, benchmark, "Disparity (fine-grained)", 8.6, gain)
    assert 6.0 < gain < 12.0
