"""§5.4 details: HyperLogLog hash-function and zero-count choices.

Regenerates the section's microarchitectural claims:
* NTZ via POPC is ~4 instructions vs ~13+ for NLZ;
* CRC32 (single-cycle instruction) beats Murmur64 (two full-width
  multiplies on the iterative multiplier) by a wide margin;
* work stealing over ATE atomics balances the variable-latency load.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.apps.hll import dpu_hll, measure_hash_loop
from repro.core import DPU


@pytest.mark.parametrize("hash_fn", ["crc32", "murmur64"])
@pytest.mark.parametrize("zero_count", ["ntz", "nlz"])
def test_sec54_inner_loop_costs(benchmark, report, hash_fn, zero_count):
    cycles = run_once(
        benchmark, lambda: measure_hash_loop(hash_fn, zero_count, 256)
    )
    report(
        "§5.4: HLL inner loop cost (ISA interpreter)",
        f"{'hash':<10} {'count':<5} cycles/value",
        [f"{hash_fn:<10} {zero_count:<5} {cycles:6.2f}"],
    )
    benchmark.extra_info["cycles_per_value"] = cycles


def test_sec54_ntz_saves_the_paper_cycles(benchmark, report):
    def diff():
        ntz = measure_hash_loop("crc32", "ntz", 256)
        nlz = measure_hash_loop("crc32", "nlz", 256)
        return ntz, nlz

    ntz, nlz = run_once(benchmark, diff)
    report(
        "§5.4: NTZ (4 instr via POPC) vs NLZ (~13 instr)",
        "path cycles/value",
        [f"NTZ  {ntz:5.2f}", f"NLZ  {nlz:5.2f}",
         f"saved {nlz - ntz:5.2f} (paper: 13 - 4 = 9 instruction slots)"],
    )
    assert 8 <= nlz - ntz <= 14


def test_sec54_end_to_end_throughput(benchmark, report):
    def run():
        rng = np.random.default_rng(9)
        pool = rng.integers(0, 2**63, 40000, dtype=np.uint64)
        values = rng.choice(pool, 200_000)
        dpu = DPU()
        address = dpu.store_array(values)
        crc = dpu_hll(dpu, address, len(values), hash_fn="crc32")
        murmur = dpu_hll(dpu, address, len(values), hash_fn="murmur64")
        return crc, murmur

    crc, murmur = run_once(benchmark, run)
    report(
        "§5.4: HLL throughput by hash function",
        "hash      GB/s",
        [f"crc32     {crc.gbps:5.2f}", f"murmur64  {murmur.gbps:5.2f}"],
    )
    benchmark.extra_info["crc_gbps"] = crc.gbps
    benchmark.extra_info["murmur_gbps"] = murmur.gbps
    assert crc.gbps > 1.8 * murmur.gbps
