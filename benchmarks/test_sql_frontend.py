"""SQL-text frontend on TPC-H: compiled plans vs the DBMS baseline.

Compiles the shipped ``.sql`` query texts (docs/SQL.md) with the
cost-based planner and runs each on the simulated DPU and the DBMS
executor cost model, reporting per-query efficiency gains plus the
planner's offload and exchange decisions. The compiled plans must
land in the same gain regime as the hand-built plans of Figure 16 —
the frontend adds a parser and an optimizer, not a new executor.
"""

import math

from conftest import run_once

from repro.apps.sql import (
    compile_query,
    efficiency_gain,
    load_query,
    tpch_catalog,
)
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.tpch import generate_tpch

QUERIES = ["q1", "q3", "q5", "q6", "q10", "q12", "q14"]


# Scale chosen so every query's semijoin/lookup broadcasts fit the
# 30 KB DMEM streaming budget (Q5/Q10 exceed it above ~0.004 and the
# planner rejects them with a structured PlanError).
def run_compiled_queries(scale=0.004):
    data = generate_tpch(scale=scale)
    catalog = tpch_catalog(data)
    model = XeonModel()
    results = {}
    for name in QUERIES:
        compiled = compile_query(load_query(name), catalog, name)
        dpu_result = compiled.run_dpu(DPU(), data)
        xeon_result = compiled.run_xeon(model, data)
        assert dpu_result.value == xeon_result.value
        results[name] = (
            efficiency_gain(dpu_result, xeon_result),
            compiled.plan["offload"]["choice"],
            compiled.plan["exchange"]["choice"],
        )
    return results


def test_compiled_tpch_gains(benchmark, report):
    results = run_once(benchmark, run_compiled_queries)
    gains = {name: gain for name, (gain, _o, _e) in results.items()}
    geomean = math.exp(sum(math.log(g) for g in gains.values()) / len(gains))
    rows = [
        f"{name:<5} {gain:6.2f}x  {offload:<4}  {exchange}"
        for name, (gain, offload, exchange) in results.items()
    ]
    rows.append(f"{'geomean':<5} {geomean:6.2f}x   (hand plans: ~15x)")
    report("Compiled TPC-H: perf/watt gains + plan choices",
           "query  gain    side  exchange", rows)
    for name, gain in gains.items():
        benchmark.extra_info[name] = gain
    benchmark.extra_info["geomean"] = geomean
    assert all(gain > 1.0 for gain in gains.values())
    assert geomean > 3.0
