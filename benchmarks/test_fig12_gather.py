"""Figure 12: DMS gather bandwidth with dense and sparse bitvectors.

The paper's first silicon had an RTL bug: concurrent gathers overflow
a bit-vector count FIFO in the DMAC, so software serializes gathers
(one dpCore at a time), crippling throughput. This benchmark
reproduces both sides: the workaround's low bandwidth on buggy
silicon and the line-rate behaviour with the bug disabled.

Bit patterns follow the paper: dense = 0xF7 (7 of 8 bits), sparse =
0x13 (3 of 8 bits).
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core import DPU, DPU_40NM
from repro.dms import Descriptor, DescriptorType
from repro.runtime.parallel import AteMutex

DENSE, SPARSE = 0xF7, 0x13


def gather_benchmark(pattern, rtl_bug, rows_per_gather=2048, repeats=4):
    dpu = DPU(DPU_40NM.with_updates(rtl_gather_bug=rtl_bug))
    data = {
        core: dpu.store_array(np.arange(rows_per_gather, dtype=np.uint64))
        for core in range(32)
    }
    bv_bytes = rows_per_gather // 8
    bv = np.full(bv_bytes, pattern, dtype=np.uint8)
    selected_per_gather = int(np.unpackbits(bv).sum())
    mutex = AteMutex(dpu, owner=0, dmem_offset=256) if rtl_bug else None

    def kernel(ctx):
        ctx.dmem.write(16384, bv)
        ctx.push(Descriptor(dtype=DescriptorType.DMEM_TO_DMS,
                            rows=bv_bytes // 8, col_width=8, dmem_addr=16384,
                            internal_mem="bv"))
        for _ in range(repeats):
            if mutex is not None:
                # The paper's software workaround: one gather at a time.
                yield from mutex.acquire(ctx)
            ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMEM,
                                rows=rows_per_gather, col_width=8,
                                ddr_addr=data[ctx.core_id], dmem_addr=0,
                                gather_src=True, notify_event=0))
            yield from ctx.wfe(0)
            ctx.clear_event(0)
            if mutex is not None:
                yield from mutex.release(ctx)

    result = dpu.launch(kernel)
    useful = 32 * repeats * selected_per_gather * 8
    return result.gbps(useful)


@pytest.mark.parametrize(
    "label,pattern,rtl_bug",
    [
        ("dense 0xF7, workaround", DENSE, True),
        ("sparse 0x13, workaround", SPARSE, True),
        ("dense 0xF7, fixed silicon", DENSE, False),
        ("sparse 0x13, fixed silicon", SPARSE, False),
    ],
)
def test_fig12_gather_bandwidth(benchmark, report, label, pattern, rtl_bug):
    gbps = run_once(benchmark, lambda: gather_benchmark(pattern, rtl_bug))
    report(
        "Figure 12: DMS gather bandwidth",
        f"{'configuration':<28} GB/s",
        [f"{label:<28} {gbps:5.2f}"],
    )
    benchmark.extra_info["gbps"] = gbps
    benchmark.extra_info["config"] = label
    if rtl_bug:
        assert gbps < 2.0  # the paper's "low gather bandwidth"
    else:
        assert gbps > 1.0


def test_fig12_workaround_vs_fixed_shape(benchmark, report):
    """The figure's point: gather runs far below the ~9.4 GB/s stream
    rate. Serialization costs concurrency; per-row DRAM inefficiency
    costs the rest (random rows touch whole bursts)."""

    def both():
        return (
            gather_benchmark(DENSE, True, rows_per_gather=512, repeats=8),
            gather_benchmark(DENSE, False, rows_per_gather=512, repeats=8),
        )

    workaround, fixed = run_once(benchmark, both)
    report(
        "Figure 12 shape: serialization cost",
        "config GB/s  (stream rate ~9.4)",
        [f"workaround {workaround:5.2f}", f"fixed      {fixed:5.2f}"],
    )
    assert workaround < 3.0  # "the low gather bandwidth"
    assert fixed >= workaround
