"""Figure 11: DMS read and read+write bandwidth across 32 dpCores.

Sweeps the paper's axes — number of columns per row and DMEM tile
size — for 4 B columns, reading (R) and reading+writing (RW) a
column-major table. The headline: >9 GB/s at 8 KB buffers (75% of
DDR3 peak), dipping for smaller buffers and more columns.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.apps.streaming import stream_columns
from repro.core import DPU
from repro.runtime.task import static_partition


def sweep_point(num_columns, tile_rows, write_back, rows_per_core=16384):
    dpu = DPU()
    columns = {}
    for core in range(32):
        columns[core] = [
            dpu.store_array(np.zeros(rows_per_core, dtype=np.uint32))
            for _ in range(num_columns)
        ]
    out = dpu.alloc(rows_per_core * 4 * 32) if write_back else None

    def kernel(ctx):
        refs = [(addr, 4) for addr in columns[ctx.core_id]]
        writeback = (
            (out + ctx.core_id * rows_per_core * 4, 4) if write_back else None
        )
        yield from stream_columns(
            ctx, refs, rows_per_core, tile_rows,
            lambda *a: 8,  # consume cheaply
            writeback=writeback,
        )

    result = dpu.launch(kernel)
    read_bytes = 32 * rows_per_core * 4 * num_columns
    written = 32 * rows_per_core * 4 if write_back else 0
    return result.gbps(read_bytes + written)


@pytest.mark.parametrize("tile_bytes", [2048, 4096, 8192])
def test_fig11_read_bandwidth_vs_buffer_size(benchmark, report, tile_bytes):
    tile_rows = tile_bytes // 4
    gbps = run_once(benchmark, lambda: sweep_point(1, tile_rows, False))
    report(
        f"Figure 11 (R, 1 column, {tile_bytes} B buffers)",
        "buffer  GB/s",
        [f"{tile_bytes:>6}  {gbps:5.2f}"],
    )
    benchmark.extra_info["gbps"] = gbps
    if tile_bytes == 8192:
        assert gbps > 9.0  # the paper's ">9 GB/s for a buffer size of 8KB"
    assert gbps < 12.8


@pytest.mark.parametrize("num_columns", [1, 4, 8])
def test_fig11_read_bandwidth_vs_columns(benchmark, report, num_columns):
    gbps = run_once(
        benchmark,
        lambda: sweep_point(num_columns, 2048 // num_columns, False,
                            rows_per_core=8192),
    )
    report(
        f"Figure 11 (R, {num_columns} columns)",
        "columns  GB/s",
        [f"{num_columns:>7}  {gbps:5.2f}"],
    )
    benchmark.extra_info["gbps"] = gbps
    assert gbps > 6.0


def test_fig11_read_write_bandwidth(benchmark, report):
    read_only = sweep_point(1, 2048, False)
    read_write = run_once(benchmark, lambda: sweep_point(1, 2048, True))
    report(
        "Figure 11 (R vs RW, 8 KB buffers)",
        "mode  GB/s",
        [f"R     {read_only:5.2f}", f"RW    {read_write:5.2f}"],
    )
    benchmark.extra_info["read_gbps"] = read_only
    benchmark.extra_info["read_write_gbps"] = read_write
    # RW moves more total bytes but the shared channel serves both
    # directions: aggregate similar, read-side lower than pure R.
    assert read_write > 7.0


def test_fig11_columns_decrease_bandwidth_slightly(benchmark, report):
    """The paper's first observation: more columns -> slightly lower
    bandwidth (non-contiguous page fetches)."""
    def sweep():
        return sweep_point(1, 2048, False, 8192), sweep_point(
            8, 512, False, 8192
        )

    one, eight = run_once(benchmark, sweep)
    report(
        "Figure 11 trend: columns vs bandwidth",
        "columns GB/s",
        [f"1       {one:5.2f}", f"8       {eight:5.2f}"],
    )
    assert eight <= one
