"""Figure 15: filter primitive performance on one dpCore.

Sweeps the DMEM tile size for a single-column FILT scan on a single
dpCore. The paper's peak is 482 Mtuples/s (1.65 cycles/tuple); our
ISA-measured loop runs at 1.60 cycles/tuple (~500 Mtuples/s), and
small tiles pay fixed per-descriptor costs, exactly the figure's
shape. A 32-core run confirms the 9+ GB/s aggregate ceiling quoted
in the text.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.apps.sql import Between, Table, dpu_filter
from repro.core import DPU


def single_core_rate(tile_rows, n=256 * 1024):
    table = Table("t", {"a": np.arange(n, dtype=np.int32)})
    dpu = DPU()
    result = dpu_filter(
        dpu, table.to_dpu(dpu), Between("a", 100, 1000),
        cores=[0], tile_rows=tile_rows,
    )
    return n / result.seconds / 1e6  # Mtuples/s


@pytest.mark.parametrize("tile_bytes", [256, 1024, 4096, 8192])
def test_fig15_single_core_filter_rate(benchmark, report, tile_bytes):
    rate = run_once(benchmark, lambda: single_core_rate(tile_bytes // 4))
    report(
        "Figure 15: filter on one dpCore",
        f"{'tile size':>9}  Mtuples/s  (paper peaks at 482)",
        [f"{tile_bytes:>9}  {rate:8.1f}"],
    )
    benchmark.extra_info["mtuples_per_s"] = rate
    benchmark.extra_info["tile_bytes"] = tile_bytes
    if tile_bytes >= 8192:
        assert 430 < rate < 520  # compute-bound plateau near 482
    assert rate < 520


def test_fig15_small_tiles_slower(benchmark, report):
    def sweep():
        return single_core_rate(64), single_core_rate(2048)

    small, large = run_once(benchmark, sweep)
    report(
        "Figure 15 shape: tile size sensitivity",
        "tile  Mtuples/s",
        [f"256B  {small:8.1f}", f"8KB   {large:8.1f}"],
    )
    assert small < large  # fixed descriptor costs dominate small tiles


def test_fig15_32core_filter_hits_memory_bandwidth(benchmark, report):
    def run():
        n = 2 * 1024 * 1024
        table = Table("t", {"a": np.arange(n, dtype=np.int32)})
        dpu = DPU()
        result = dpu_filter(dpu, table.to_dpu(dpu), Between("a", 0, 100))
        return result.gbps

    gbps = run_once(benchmark, run)
    report(
        "Figure 15 text: 32-core filter",
        "metric value",
        [f"aggregate bandwidth: {gbps:.2f} GB/s (paper: 9.6)"],
    )
    benchmark.extra_info["gbps"] = gbps
    assert gbps > 8.5
