"""Shared benchmark plumbing.

Each benchmark module regenerates one table or figure of the paper.
The interesting output is *simulated* metrics (GB/s, cycles/tuple,
perf/watt gains), not host wall-clock, so every benchmark runs its
simulation once inside ``benchmark.pedantic`` and reports the paper's
quantities through ``extra_info`` and a printed table.
"""

import os
import re

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--emit-trace",
        metavar="DIR",
        default=None,
        help="enable sim-time tracing on every DPU a benchmark builds "
             "and write one Chrome-trace JSON per DPU into DIR",
    )
    parser.addoption(
        "--emit-metrics",
        metavar="DIR",
        default=None,
        help="enable continuous sim-time metrics sampling on every DPU "
             "a benchmark builds and write one metrics JSONL per DPU "
             "into DIR (validate/report with python -m repro.obs.metrics)",
    )


@pytest.fixture(autouse=True)
def _emit_trace(request):
    """With ``--emit-trace DIR``, every DPU constructed during the test
    records a trace, exported as ``DIR/<test>[-N].json`` at teardown.

    Tracing never schedules simulation events, so benchmark numbers
    are unchanged; only host memory for the ring buffer is spent.
    """
    out_dir = request.config.getoption("--emit-trace")
    if not out_dir:
        yield
        return
    from repro.core import dpu as dpu_mod

    created = []
    original_init = dpu_mod.DPU.__init__

    def traced_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.enable_tracing(capacity=1 << 18)
        created.append(self)

    dpu_mod.DPU.__init__ = traced_init
    try:
        yield
    finally:
        dpu_mod.DPU.__init__ = original_init
        os.makedirs(out_dir, exist_ok=True)
        safe = re.sub(r"[^\w.-]+", "_", request.node.name)
        for index, dpu in enumerate(created):
            suffix = f"-{index}" if len(created) > 1 else ""
            dpu.trace.export(os.path.join(out_dir, f"{safe}{suffix}.json"))


@pytest.fixture(autouse=True)
def _emit_metrics(request):
    """With ``--emit-metrics DIR``, every DPU constructed during the
    test samples its counters continuously, exported as
    ``DIR/<test>[-N].jsonl`` at teardown.

    Sampler ticks are pure host-side reads on the sim clock, so
    benchmark numbers are unchanged. A coarse cadence bounds the host
    cost of full-registry snapshots across a whole benchmark tier.
    """
    out_dir = request.config.getoption("--emit-metrics")
    if not out_dir:
        yield
        return
    from repro.core import dpu as dpu_mod

    created = []
    original_init = dpu_mod.DPU.__init__

    def metered_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.enable_metrics(cadence=50_000.0, capacity=4096)
        created.append(self)

    dpu_mod.DPU.__init__ = metered_init
    try:
        yield
    finally:
        dpu_mod.DPU.__init__ = original_init
        os.makedirs(out_dir, exist_ok=True)
        safe = re.sub(r"[^\w.-]+", "_", request.node.name)
        for index, dpu in enumerate(created):
            suffix = f"-{index}" if len(created) > 1 else ""
            dpu.metrics.export_jsonl(
                os.path.join(out_dir, f"{safe}{suffix}.jsonl")
            )


def run_once(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    box = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]


@pytest.fixture
def report(capsys):
    """Print a paper-style results table, bypassing capture."""

    def _print(title, header, rows):
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(header)
            for row in rows:
                print(row)

    return _print
