"""Shared benchmark plumbing.

Each benchmark module regenerates one table or figure of the paper.
The interesting output is *simulated* metrics (GB/s, cycles/tuple,
perf/watt gains), not host wall-clock, so every benchmark runs its
simulation once inside ``benchmark.pedantic`` and reports the paper's
quantities through ``extra_info`` and a printed table.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    box = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]


@pytest.fixture
def report(capsys):
    """Print a paper-style results table, bypassing capture."""

    def _print(title, header, rows):
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(header)
            for row in rows:
                print(row)

    return _print
