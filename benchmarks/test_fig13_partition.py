"""Figure 13: bandwidth of the DMS hardware partitioning engine.

32-way partition of a relation with four 4 B columns (column-major),
for each scheme: hash (CRC32 + radix of the hash), radix (5 key
bits), and range (32 programmed bounds). The paper reports ~9.3 GB/s
for all three, beating HARP's published 6 GB/s; the pipeline overlap
of load/hash/store is what gets partitioning to stream rate.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core import DPU, DPU_40NM
from repro.dms import (
    Descriptor,
    DescriptorType,
    PartitionLayout,
    PartitionMode,
    PartitionSpec,
)

HARP_GBPS = 6.0  # prior state of the art the paper compares against


def partition_bandwidth(mode, rows=48 * 1024, chunk=512, config=DPU_40NM):
    dpu = DPU(config)
    rng = np.random.default_rng(7)
    key = rng.integers(0, 2**31, rows, dtype=np.uint32)
    payload = [np.arange(rows, dtype=np.uint32) for _ in range(3)]
    key_addr = dpu.store_array(key)
    payload_addrs = [dpu.store_array(col) for col in payload]
    if mode is PartitionMode.RANGE:
        bounds = tuple(int(b) for b in np.quantile(
            key, np.linspace(1 / 32, 1.0, 32)
        ))
        spec = PartitionSpec(mode=mode, bounds=bounds, radix_bits=5)
    else:
        spec = PartitionSpec(mode=mode, radix_bits=5)
    layout = PartitionLayout(
        target_cores=tuple(range(32)), dmem_base=0, capacity=28 * 1024,
        count_offset=31 * 1024,
    )

    def driver(ctx):
        ctx.push(Descriptor(dtype=DescriptorType.HASH_CONFIG, partition=spec,
                            partition_layout=layout))
        for start in range(0, rows, chunk):
            count = min(chunk, rows - start)
            ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMS, rows=count,
                                col_width=4, ddr_addr=key_addr + start * 4,
                                is_key_column=True))
            for addr in payload_addrs:
                ctx.push(Descriptor(dtype=DescriptorType.DDR_TO_DMS,
                                    rows=count, col_width=4,
                                    ddr_addr=addr + start * 4))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                partition=spec))
            ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMEM,
                                partition=spec))
        while not ctx.dmad.idle():
            yield from ctx.compute(100)

    result = dpu.launch(driver, cores=[0])
    return result.gbps(rows * 16)


@pytest.mark.parametrize("mode", [PartitionMode.HASH, PartitionMode.RADIX,
                                  PartitionMode.RANGE])
def test_fig13_partition_bandwidth(benchmark, report, mode):
    gbps = run_once(benchmark, lambda: partition_bandwidth(mode))
    report(
        "Figure 13: DMS partitioning bandwidth (32-way, 4x4B columns)",
        f"{'scheme':<8} GB/s   (paper ~9.3; HARP 6.0)",
        [f"{mode.value:<8} {gbps:5.2f}"],
    )
    benchmark.extra_info["gbps"] = gbps
    benchmark.extra_info["scheme"] = mode.value
    assert gbps > HARP_GBPS  # beats the prior accelerator
    assert gbps < 12.8  # bounded by DDR3 peak
