"""Rack-scale resilience: recovery time and throughput vs kill rate.

The paper's applications ran across 500+ DPU clusters, where
whole-node failure is routine. This benchmark injects seeded
``dpu.dead`` chaos into a distributed group-by at 2/4/8 DPUs and
sweeps the number of killed nodes, reporting:

* **detection latency** — injected-kill instant to the coordinator's
  lease-expiry declaration (bounded by the lease, 250k cycles);
* **recovery time** — extra simulated cycles vs the fault-free run at
  the same cluster size (re-execution + resent exchange pairs);
* **throughput** — rows processed per simulated second, which should
  degrade smoothly with the kill count, never collapse.

Every point asserts the recovered result is byte-equal to the
fault-free single-DPU reference: recovery repairs, never
approximates.
"""

import numpy as np
from conftest import run_once

from repro.apps.sql import Table
from repro.apps.sql.aggregate import AggSpec, dpu_groupby
from repro.cluster import Cluster, RecoveryConfig, cluster_groupby
from repro.core import DPU
from repro.faults import ChaosSpec, FaultPlan

ROWS = 6000
AGGS = [AggSpec("sum", "v"), AggSpec("count")]


def _data():
    rng = np.random.default_rng(31)
    return {
        "k": rng.integers(0, 50, ROWS).astype(np.uint32),
        "v": rng.integers(0, 100, ROWS).astype(np.uint32),
    }


def _shard(columns, num_shards):
    total = len(next(iter(columns.values())))
    bounds = [round(total * i / num_shards) for i in range(num_shards + 1)]
    return [
        Table(
            f"shard{i}",
            {n: c[bounds[i]:bounds[i + 1]] for n, c in columns.items()},
        )
        for i in range(num_shards)
    ]


def kill_plan(kills: int) -> FaultPlan:
    """``kills`` seeded fail-stops on workers 1..kills, staggered so
    deaths land in different job phases. Zero kills = the fault-free
    baseline path (no recovery manager, no heartbeats)."""
    if kills == 0:
        return FaultPlan.none()
    specs = [
        ChaosSpec("dpu.dead", (1 + i,), at_cycle=15_000.0 * (i + 1))
        for i in range(kills)
    ]
    return FaultPlan.none().with_chaos(*specs)


def recovery_curve():
    data = _data()
    single = DPU()
    reference = dpu_groupby(
        single, Table("t", data).to_dpu(single), "k", AGGS
    ).value

    points = []
    for num_dpus in (2, 4, 8):
        shards = _shard(data, num_dpus)
        baseline_cycles = None
        for kills in range(0, min(3, num_dpus - 1) + 1):
            cluster = Cluster(num_dpus, fault_plan=kill_plan(kills))
            result = cluster_groupby(cluster, shards, "k", AGGS)
            assert result.value == reference, (num_dpus, kills)
            if kills == 0:
                baseline_cycles = result.cycles
            stats = result.recovery
            if stats is not None:
                assert stats.declared_dead == tuple(range(1, kills + 1))
            points.append({
                "num_dpus": num_dpus,
                "kills": kills,
                "cycles": result.cycles,
                "seconds": result.seconds,
                "recovery_cycles": result.cycles - baseline_cycles,
                "detection_latency": (
                    stats.detection_latency_cycles if stats else None
                ),
                "reexecuted": stats.reexecuted_shards if stats else 0,
                "resends": stats.resends if stats else 0,
                "rows_per_sec": ROWS / result.seconds,
            })
    return points


def test_resilience_cluster_recovery(benchmark, report):
    points = run_once(benchmark, recovery_curve)
    rows = []
    for p in points:
        latency = (f"{p['detection_latency']:.0f}"
                   if p["detection_latency"] is not None else "-")
        rows.append(
            f"  {p['num_dpus']:d} dpus  kills={p['kills']:d}"
            f"  {p['cycles']:>12.0f} cyc"
            f"  recovery={p['recovery_cycles']:>12.0f} cyc"
            f"  detect={latency:>8s} cyc"
            f"  reexec={p['reexecuted']:d}"
            f"  {p['rows_per_sec'] / 1e6:8.2f} Mrows/s"
        )
        benchmark.extra_info[
            f"cycles@{p['num_dpus']}dpus-{p['kills']}kills"
        ] = p["cycles"]
        if p["detection_latency"] is not None:
            benchmark.extra_info[
                f"detect@{p['num_dpus']}dpus-{p['kills']}kills"
            ] = p["detection_latency"]
    report("Rack-scale recovery: group-by vs kill count",
           "  size    kills        job time       recovery time"
           "   detection  work", rows)

    by_key = {(p["num_dpus"], p["kills"]): p for p in points}
    for num_dpus in (2, 4, 8):
        # Byte-equality was asserted inside the curve; here the cost
        # shape: every kill costs cycles, and detection is bounded by
        # the lease plus a few heartbeat/overhead granules.
        for kills in range(1, min(3, num_dpus - 1) + 1):
            p = by_key[(num_dpus, kills)]
            assert p["recovery_cycles"] > 0
            assert p["detection_latency"] is not None
            assert p["detection_latency"] < 600_000.0
            assert p["reexecuted"] >= 1


def coordinator_failover_curve():
    """Kill the coordinator mid-job at 2/4/8 DPUs and sweep the
    standby count, reporting leader-election latency and the journal
    replication overhead the standbys cost."""
    data = _data()
    single = DPU()
    reference = dpu_groupby(
        single, Table("t", data).to_dpu(single), "k", AGGS
    ).value
    plan = FaultPlan.none().with_chaos(
        ChaosSpec("dpu.dead", (0,), at_cycle=15_000.0)
    )

    points = []
    for num_dpus in (2, 4, 8):
        shards = _shard(data, num_dpus)
        baseline = cluster_groupby(
            Cluster(num_dpus), shards, "k", AGGS
        )
        assert baseline.value == reference
        for standbys in (1, 2):
            cluster = Cluster(
                num_dpus, fault_plan=plan,
                recovery_config=RecoveryConfig(standby_count=standbys),
            )
            result = cluster_groupby(cluster, shards, "k", AGGS)
            assert result.value == reference, (num_dpus, standbys)
            stats = cluster.recovery.stats
            assert stats.leader_changes == 1
            assert cluster.leader == 1
            points.append({
                "num_dpus": num_dpus,
                "standbys": standbys,
                "cycles": result.cycles,
                "failover_cycles": result.cycles - baseline.cycles,
                "election_latency": stats.leader_election_latency_cycles,
                "journal_records": stats.journal_records,
                "journal_bytes": stats.journal_bytes,
                "journal_overhead": (
                    stats.journal_bytes / max(result.network_bytes, 1)
                ),
            })
    return points


def test_resilience_coordinator_failover(benchmark, report):
    points = run_once(benchmark, coordinator_failover_curve)
    rows = []
    for p in points:
        rows.append(
            f"  {p['num_dpus']:d} dpus  standbys={p['standbys']:d}"
            f"  {p['cycles']:>12.0f} cyc"
            f"  elect={p['election_latency']:>8.0f} cyc"
            f"  journal={p['journal_bytes']:>8d} B"
            f"  ({p['journal_overhead'] * 100:5.2f}% of wire)"
        )
        benchmark.extra_info[
            f"elect@{p['num_dpus']}dpus-{p['standbys']}standbys"
        ] = p["election_latency"]
        benchmark.extra_info[
            f"journal@{p['num_dpus']}dpus-{p['standbys']}standbys"
        ] = p["journal_bytes"]
    report("Coordinator failover: election latency and journal cost",
           "  size    standbys       job time   election     journal",
           rows)

    by_key = {(p["num_dpus"], p["standbys"]): p for p in points}
    for num_dpus in (2, 4, 8):
        for standbys in (1, 2):
            p = by_key[(num_dpus, standbys)]
            # Election is lease-bounded, like worker-death detection.
            assert p["election_latency"] is not None
            assert 0 < p["election_latency"] < 600_000.0
            assert p["failover_cycles"] > 0
        # More standbys must cost at least as many journal bytes (the
        # degenerate 2-DPU cluster has one live peer either way).
        one, two = by_key[(num_dpus, 1)], by_key[(num_dpus, 2)]
        assert two["journal_bytes"] >= one["journal_bytes"]
        if num_dpus > 2:
            assert two["journal_records"] >= one["journal_records"]
