"""Serving tail latency under 1x-16x open-loop oversubscription.

The PR-10 headline experiment (docs/SERVING.md): a Zipfian
multi-tenant TPC-H mix is offered to the QoS serving front end at
multiples of the cluster's measured service rate. Reported per
offered-load factor: overall p50/p99/p999 (sim cycles), cache hit
share, and batch count — then the per-tier isolation curve at the
highest factor, where start-time fair queueing plus per-tenant token
buckets must hold the gold tail below the bronze tail.

Invariants asserted, not just printed:

* every request completes (open-loop queue drains);
* every response is byte-equal to a standalone
  ``cluster_compiled_query`` run of the same query — caching and
  shared-scan batching are pure latency optimizations;
* at 16x the gold tenant's p99 stays below the bronze tenant's.
"""

from conftest import run_once

from repro.apps.sql import Table, compile_query, load_query, tpch_catalog
from repro.cluster import Cluster, cluster_compiled_query
from repro.serve import OpenLoopWorkload, ServingFrontend
from repro.workloads.tpch import generate_tpch

QUERIES = ["q1", "q6", "q12", "q14"]
TENANTS = {
    "tenant-a": "gold",
    "tenant-b": "silver",
    "tenant-c": "silver",
    "tenant-d": "bronze",
    "tenant-e": "bronze",
    "tenant-f": "bronze",
}
NUM_DPUS = 4
FACTORS = [1, 2, 4, 8, 16]
REQUESTS_PER_FACTOR = 64
SEED = 42


def _dataset():
    data = generate_tpch(scale=0.002, seed=11)
    catalog = tpch_catalog(data)
    queries = {name: load_query(name) for name in QUERIES}
    fact = data.tables["lineitem"]
    columns = list(fact)
    total = len(fact[columns[0]])
    bounds = [total * i // NUM_DPUS for i in range(NUM_DPUS + 1)]
    shards = [
        Table(f"lineitem_shard{i}",
              {n: fact[n][bounds[i]:bounds[i + 1]] for n in columns})
        for i in range(NUM_DPUS)
    ]
    return data, catalog, queries, shards


def _reference_rows(queries, catalog, shards):
    rows = {}
    for name in QUERIES:
        compiled = compile_query(queries[name], catalog, name)
        projected = [
            Table(s.name,
                  {n: s.columns[n] for n in compiled.needed_columns})
            for s in shards
        ]
        rows[name] = cluster_compiled_query(
            Cluster(NUM_DPUS), compiled, projected).value
    return rows


def _mean_service_cycles(queries, catalog, shards):
    """One standalone pass over the mix: the service rate the sweep's
    offered load is a multiple of."""
    total = 0.0
    for name in QUERIES:
        compiled = compile_query(queries[name], catalog, name)
        projected = [
            Table(s.name,
                  {n: s.columns[n] for n in compiled.needed_columns})
            for s in shards
        ]
        total += cluster_compiled_query(
            Cluster(NUM_DPUS), compiled, projected).cycles
    return total / len(QUERIES)


def _serve(queries, catalog, shards, mean_interarrival, **kwargs):
    frontend = ServingFrontend(
        Cluster(NUM_DPUS), catalog, queries, {"lineitem": shards},
        tenants=TENANTS, **kwargs)
    workload = OpenLoopWorkload(TENANTS, QUERIES, seed=SEED)
    requests = workload.generate(REQUESTS_PER_FACTOR, mean_interarrival)
    return frontend.run(requests)


def test_tail_latency_vs_offered_load(benchmark, report):
    data, catalog, queries, shards = _dataset()
    reference = _reference_rows(queries, catalog, shards)
    service = _mean_service_cycles(queries, catalog, shards)

    def sweep():
        results = []
        for factor in FACTORS:
            serving = _serve(queries, catalog, shards, service / factor)
            results.append((factor, serving))
        return results

    results = run_once(benchmark, sweep)

    rows = []
    for factor, serving in results:
        assert len(serving.records) == REQUESTS_PER_FACTOR
        for name in QUERIES:
            assert serving.results[name] == reference[name]
        q = serving.quantiles()
        hits = serving.counters.get("cache_hits", 0)
        rows.append(
            f"{factor:3d}x  {q['p50']:>12.0f}  {q['p99']:>12.0f}  "
            f"{q['p999']:>12.0f}  {100.0 * hits / REQUESTS_PER_FACTOR:>5.1f}%"
            f"  {serving.counters.get('batches', 0):>7d}"
        )
    report(
        "Serving tail latency vs offered load "
        f"({NUM_DPUS} DPUs, {len(TENANTS)} tenants, cycles)",
        "load       p50           p99          p999   cache  batches",
        rows,
    )

    factor, worst = results[-1]
    assert factor == 16
    tier_rows = []
    for tier in ("gold", "silver", "bronze"):
        digest = worst.tier_digests[tier]
        q = worst.quantiles(digest)
        tier_rows.append(
            f"{tier:>6}  {digest.count:>4d}  {q['p50']:>12.0f}  "
            f"{q['p99']:>12.0f}  {q['p999']:>12.0f}"
        )
    report(
        "Per-tier isolation at 16x oversubscription (cycles)",
        "  tier     n           p50           p99          p999",
        tier_rows,
    )
    gold = worst.tier_digests["gold"]
    bronze = worst.tier_digests["bronze"]
    assert gold.quantile(0.99) < bronze.quantile(0.99)

    benchmark.extra_info["service_cycles"] = service
    benchmark.extra_info["p99_16x"] = results[-1][1].quantiles()["p99"]


def test_caching_and_batching_ablation(benchmark, report):
    """The optimizations must pay for themselves: serving the same 8x
    stream with caches and batching disabled takes strictly longer in
    sim time and runs every query as its own cluster job."""
    data, catalog, queries, shards = _dataset()
    reference = _reference_rows(queries, catalog, shards)
    service = _mean_service_cycles(queries, catalog, shards)
    interarrival = service / 8

    def sweep():
        full = _serve(queries, catalog, shards, interarrival)
        bare = _serve(queries, catalog, shards, interarrival,
                      caching=False, batching=False)
        return full, bare

    full, bare = run_once(benchmark, sweep)
    for serving in (full, bare):
        assert len(serving.records) == REQUESTS_PER_FACTOR
        for name in QUERIES:
            assert serving.results[name] == reference[name]
    assert bare.counters.get("direct", 0) == REQUESTS_PER_FACTOR
    full_done = max(r.completion for r in full.records)
    bare_done = max(r.completion for r in bare.records)
    assert full_done < bare_done
    rows = [
        f"serving layer on   {full.quantiles()['p99']:>12.0f}  "
        f"{full_done:>14.0f}",
        f"serving layer off  {bare.quantiles()['p99']:>12.0f}  "
        f"{bare_done:>14.0f}",
    ]
    report(
        "Caching + batching ablation at 8x oversubscription (cycles)",
        "configuration               p99        makespan",
        rows,
    )
    benchmark.extra_info["speedup"] = bare_done / full_done
