"""§1/§2 rack provisioning claims + cluster scale-out efficiency.

The introduction's design point: ~1000 memory channels per rack to
scan 10 TB in under a second, >10 TB/s aggregate bandwidth and >10 TB
capacity within a 20 kW budget. Plus a measured scale-out run: the
distributed FILT count's efficiency as DPUs are added.
"""

import numpy as np
from conftest import run_once

from repro.cluster import PAPER_RACK, Cluster, cluster_filter_count


def test_sec1_rack_provisioning(benchmark, report):
    rack = run_once(benchmark, lambda: PAPER_RACK)
    report(
        "§1: rack provisioning arithmetic (1440 DPUs)",
        "metric value",
        [f"aggregate bandwidth: {rack.aggregate_bandwidth_tbps:.1f} TB/s "
         "(claim: >10)",
         f"memory capacity: {rack.total_capacity_tb:.1f} TB (claim: >10)",
         f"provisioned power: {rack.total_watts / 1000:.1f} kW "
         f"(budget {rack.rack_budget_watts / 1000:.0f} kW)",
         f"10 TB scan: {rack.seconds_to_scan(10.0):.2f} s "
         "(goal: sub-second)"],
    )
    benchmark.extra_info["tbps"] = rack.aggregate_bandwidth_tbps
    assert rack.aggregate_bandwidth_tbps > 10.0
    assert rack.total_capacity_tb > 10.0
    assert rack.within_budget()
    assert rack.seconds_to_scan(10.0) < 1.0


def test_sec4_cluster_scaleout_efficiency(benchmark, report):
    """Distributed FILT count: near-linear scaling, since only tiny
    partials cross the fabric while shards scan locally."""

    def run():
        rng = np.random.default_rng(5)
        timings = {}
        for num_dpus in (1, 2, 4):
            shards = [rng.integers(0, 1000, 131072).astype(np.int32)
                      for _ in range(num_dpus)]
            cluster = Cluster(num_dpus=num_dpus)
            result = cluster_filter_count(cluster, shards, 100, 199)
            timings[num_dpus] = result.seconds
        return timings

    timings = run_once(benchmark, run)
    rows = [f"{n} DPU(s): {seconds * 1e3:7.3f} ms per shard set"
            for n, seconds in timings.items()]
    report("§4: scale-out efficiency (equal shard per DPU)",
           "cluster  time", rows)
    # Weak scaling: adding DPUs with equal shards should cost only the
    # exchange phase (each shard still scans in parallel locally...
    # the shards here scan serially on the shared clock, so compare
    # per-shard time instead).
    per_shard = {n: t / n for n, t in timings.items()}
    assert per_shard[4] < 1.6 * per_shard[1]
    benchmark.extra_info.update(
        {f"dpus_{n}": t for n, t in timings.items()}
    )
