"""Figure 16: TPC-H query efficiency gains over the commercial DBMS.

Runs the implemented TPC-H plans (Q1, Q3, Q5, Q6, Q12, Q14) on the
simulated DPU engine and on the DBMS executor cost model, reporting
per-query perf/watt gains and their geometric mean. The paper's
overall result is a 15x geomean.
"""

import math

from conftest import run_once

from repro.apps.sql import (
    TPCH_QUERIES,
    efficiency_gain,
    load_tpch_on_dpu,
    run_query,
)
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.tpch import generate_tpch


def run_all_queries(scale=0.01):
    data = generate_tpch(scale=scale)
    dpu = DPU()
    tables = load_tpch_on_dpu(dpu, data)
    model = XeonModel()
    gains = {}
    for name in TPCH_QUERIES:
        dpu_result, xeon_result = run_query(name, dpu, tables, data, model)
        gains[name] = efficiency_gain(dpu_result, xeon_result)
    return gains


def test_fig16_tpch_gains(benchmark, report):
    gains = run_once(benchmark, run_all_queries)
    geomean = math.exp(sum(math.log(g) for g in gains.values()) / len(gains))
    rows = [f"{name:<5} {gain:6.2f}x" for name, gain in gains.items()]
    rows.append(f"{'geomean':<5} {geomean:6.2f}x   (paper: ~15x)")
    report("Figure 16: TPC-H perf/watt gains", "query  gain", rows)
    for name, gain in gains.items():
        benchmark.extra_info[name] = gain
    benchmark.extra_info["geomean"] = geomean
    assert all(gain > 3.0 for gain in gains.values())
    assert 10.0 < geomean < 20.0  # paper: 15x
