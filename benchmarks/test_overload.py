"""Overload: throughput under 1x-8x job oversubscription.

Not a paper figure — the paper models the happy path — but the
experiment behind every admission-control knob this repo grew: offer
the coordinator more concurrent jobs than the DPU has execution slots
and check that (a) every admitted job's result stays byte-exact,
(b) throughput *plateaus* at the slot limit instead of collapsing as
oversubscription climbs to 8x, and (c) every queue in the chain stays
bounded (admission queue, DMAD rings, ATE inboxes).

Two policies are swept:

* ``queue`` — all offered jobs eventually run; the plateau shows up
  as flat goodput with queue wait absorbing the excess;
* ``shed`` — excess jobs fail fast with a typed ``OverloadError``;
  goodput stays at the plateau while the shed count grows.
"""

import numpy as np
from conftest import run_once

from repro.apps.streaming import stream_columns
from repro.core import DPU
from repro.runtime.admission import AdmissionController, OverloadError
from repro.sim import Store

SLOTS = 8          # coordinator's concurrency limit
ROWS_PER_JOB = 2048
FACTORS = [1, 2, 4, 8]


def _job_kernel(ctx, addr):
    total = [0]

    def process(tile, tlo, thi, arrays):
        total[0] += int(arrays[0].sum())
        return 8

    yield from stream_columns(
        ctx, [(addr, 8)], ROWS_PER_JOB, 512, process, dmem_base=64
    )
    return total[0]


def _offered_load(num_jobs, seed=9):
    rng = np.random.default_rng(seed)
    shards = [
        rng.integers(0, 1 << 20, ROWS_PER_JOB).astype(np.uint64)
        for _ in range(num_jobs)
    ]
    return shards, [int(shard.sum()) for shard in shards]


def _run_oversubscribed(factor, policy):
    """Offer ``factor * SLOTS`` concurrent jobs through the gate."""
    dpu = DPU()
    engine = dpu.engine
    controller = AdmissionController(
        engine, max_concurrent=SLOTS, policy=policy, max_queue_depth=256
    )
    num_jobs = factor * SLOTS
    shards, expected = _offered_load(num_jobs)
    addresses = [dpu.store_array(shard) for shard in shards]

    # The coordinator hands each admitted job a free core from a pool
    # sized to the slot limit, so admission control is exactly what
    # keeps per-core state (DMEM tiles, events) from being trampled.
    pool = Store(engine)
    for core in list(dpu.config.core_ids)[:SLOTS]:
        pool.put(core)

    results = {}
    shed = []

    def job(index):
        try:
            yield from controller.acquire(f"job{index}")
        except OverloadError as error:
            shed.append((index, error))
            return None
        try:
            core = yield pool.get()
            processes = dpu.spawn_kernels(
                _job_kernel, args=(addresses[index],), cores=[core]
            )
            values = yield engine.all_of(processes)
            pool.put(core)
            results[index] = values[0]
        finally:
            controller.release()
        return None

    jobs = [engine.process(job(index)) for index in range(num_jobs)]
    engine.run_until_complete(engine.all_of(jobs))

    for index, value in results.items():
        assert value == expected[index], f"job {index} result corrupted"
    for _index, error in shed:
        assert error.occupancy["limit"] == SLOTS  # typed, with context

    done_bytes = len(results) * ROWS_PER_JOB * 8
    cycles = engine.now
    return {
        "factor": factor,
        "offered": num_jobs,
        "completed": len(results),
        "shed": len(shed),
        "cycles": cycles,
        "gbps": dpu.gbps(done_bytes, cycles),
        "queue_peak": controller.stats.gauge("admission.queue_peak"),
        "running_peak": controller.stats.gauge("admission.running_peak"),
        "dmad_peak": dpu.stats.gauge("dmad.occupancy_peak"),
        "wait_cycles": controller.stats.counters.get(
            "admission.wait_cycles", 0.0
        ),
    }


def test_queue_policy_throughput_plateaus(benchmark, report):
    def sweep():
        return [_run_oversubscribed(factor, "queue") for factor in FACTORS]

    rows = run_once(benchmark, sweep)
    report(
        "Overload sweep (queue policy, 8 job slots)",
        f"{'offered':>8} {'done':>6} {'GB/s':>7} {'queue_pk':>9} "
        f"{'wait_cyc':>10}",
        [
            f"{r['offered']:>8} {r['completed']:>6} {r['gbps']:>7.2f} "
            f"{r['queue_peak']:>9.0f} {r['wait_cycles']:>10.0f}"
            for r in rows
        ],
    )
    base = rows[0]
    assert base["completed"] == base["offered"]  # 1x: nothing queued long
    for r in rows:
        # Every offered job completes (queue policy), byte-exact
        # (asserted inside the run), with bounded structures.
        assert r["completed"] == r["offered"] and r["shed"] == 0
        assert r["running_peak"] <= SLOTS
        assert r["queue_peak"] <= 256
        # Plateau, not collapse: goodput at 2x-8x stays within 30% of
        # the un-oversubscribed rate.
        assert r["gbps"] >= 0.7 * base["gbps"]
    # Backpressure is visible where it should be: queue wait grows
    # with oversubscription while throughput stays flat.
    assert rows[-1]["wait_cycles"] > rows[0]["wait_cycles"]


def test_shed_policy_keeps_goodput_and_sheds_excess(benchmark, report):
    def sweep():
        return [_run_oversubscribed(factor, "shed") for factor in FACTORS]

    rows = run_once(benchmark, sweep)
    report(
        "Overload sweep (shed policy, 8 job slots)",
        f"{'offered':>8} {'done':>6} {'shed':>6} {'GB/s':>7}",
        [
            f"{r['offered']:>8} {r['completed']:>6} {r['shed']:>6} "
            f"{r['gbps']:>7.2f}"
            for r in rows
        ],
    )
    base = rows[0]
    assert base["shed"] == 0
    for r in rows[1:]:
        # Excess arrivals shed fast with typed errors; admitted work
        # still finishes at the plateau rate.
        assert r["completed"] + r["shed"] == r["offered"]
        assert r["shed"] > 0
        assert r["completed"] >= SLOTS
        assert r["gbps"] >= 0.5 * base["gbps"]
