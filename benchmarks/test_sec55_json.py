"""§5.5: JSON parsing throughput — switch-case vs jump-table FSM.

The paper's numbers: SAJSON on x86 at 5.2 GB/s (IPC 3.05); the
branchy port on the dpCores at 13.2 cycles/byte of compute and
~645 MB/s end to end; the jump-table + DMS triple-buffer version at
1.73 GB/s (8x perf/watt over SAJSON).
"""

import numpy as np
from conftest import run_once

from repro.apps.jsonparse import (
    dpu_parse_json,
    measure_branchy_dispatch,
    measure_table_dispatch,
    xeon_parse_json,
)
from repro.apps.sql import efficiency_gain
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.jsondata import generate_lineitem_json


def test_sec55_dispatch_cycles_per_byte(benchmark, report):
    def measure():
        return measure_branchy_dispatch(2048), measure_table_dispatch(2048)

    branchy, table = run_once(benchmark, measure)
    report(
        "§5.5: parser dispatch cost (ISA interpreter)",
        "parser   cycles/byte",
        [f"branchy  {branchy:5.2f}   (paper: 13.2)",
         f"table    {table:5.2f}"],
    )
    benchmark.extra_info["branchy_cpb"] = branchy
    benchmark.extra_info["table_cpb"] = table
    assert 12.0 < branchy < 14.5


def test_sec55_end_to_end_throughputs(benchmark, report):
    def run():
        data = generate_lineitem_json(2500, seed=21)
        dpu = DPU()
        address = dpu.store_array(np.frombuffer(data, dtype=np.uint8))
        table = dpu_parse_json(dpu, address, data, parser="table")
        branchy = dpu_parse_json(dpu, address, data, parser="branchy")
        xeon = xeon_parse_json(XeonModel(), data)
        return table, branchy, xeon

    table, branchy, xeon = run_once(benchmark, run)
    gain = efficiency_gain(table, xeon)
    report(
        "§5.5: JSON parsing throughput",
        f"{'configuration':<26} GB/s",
        [f"{'x86 SAJSON (measured)':<26} {xeon.gbps:5.2f}  (paper: 5.2)",
         f"{'DPU branchy (cached)':<26} {branchy.gbps:5.3f}  (paper: 0.645)",
         f"{'DPU jump-table + DMS':<26} {table.gbps:5.2f}  (paper: 1.73)",
         f"{'perf/watt gain':<26} {gain:5.2f}x (paper: ~8x)"],
    )
    benchmark.extra_info["table_gbps"] = table.gbps
    benchmark.extra_info["branchy_gbps"] = branchy.gbps
    benchmark.extra_info["gain"] = gain
    assert 0.45 < branchy.gbps < 0.85
    assert 1.3 < table.gbps < 2.2
    assert table.value == branchy.value  # identical parse results
