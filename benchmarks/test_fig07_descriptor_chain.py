"""Figure 7 / Listing 1: the descriptor chain that streams 16 MB
through a 32 KB DMEM with just three DMS descriptors.

Reproduces the paper's programming example end to end — two
auto-incrementing DDR->DMEM descriptors ping-ponging between DMEM
buffers plus one loop descriptor — and reports achieved bandwidth.
(Scaled to 4 MB by default so the benchmark is quick; the chain shape
is identical.)
"""

import numpy as np
from conftest import run_once

from repro.core import DPU
from repro.dms import ddr_to_dmem, loop


def stream_with_three_descriptors(total_bytes=4 * 1024 * 1024):
    dpu = DPU()
    data = np.arange(total_bytes // 4, dtype=np.uint32)
    source = dpu.store_array(data)
    iterations = total_bytes // 2048

    def kernel(ctx):
        ctx.push(ddr_to_dmem(256, 4, source, 0, notify_event=0,
                             src_addr_inc=True))
        ctx.push(ddr_to_dmem(256, 4, source, 1024, notify_event=1,
                             src_addr_inc=True))
        ctx.push(loop(2, iterations - 1))
        checksum = 0
        buf = 0
        for _ in range(2 * iterations):
            yield from ctx.wfe(buf)
            checksum += int(ctx.dmem.view(buf * 1024, 1024, np.uint32)[0])
            yield from ctx.compute(20)
            ctx.clear_event(buf)
            buf = 1 - buf
        return checksum

    result = dpu.launch(kernel, cores=[0])
    return result, total_bytes, int(data[::256].sum())


def test_fig07_listing1_chain(benchmark, report):
    result, total_bytes, expected_checksum = run_once(
        benchmark, stream_with_three_descriptors
    )
    gbps = result.gbps(total_bytes)
    report(
        "Figure 7 / Listing 1: 3-descriptor streaming chain",
        "metric value",
        [f"descriptors issued: 3 (2 data + 1 loop)",
         f"bytes streamed: {total_bytes}",
         f"single-core bandwidth: {gbps:.2f} GB/s"],
    )
    benchmark.extra_info["gbps"] = gbps
    assert result.values[0] == expected_checksum  # every buffer consumed
    assert gbps > 5.0  # a single core keeps the DMS busy
