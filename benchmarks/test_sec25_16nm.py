"""§2.5: the 16 nm process shrink — 5x compute and bandwidth at 2x
power, i.e. 2.5x better performance per watt.

Runs the filter primitive on both configurations. The 16 nm part has
five 32-core complexes, each with its own DDR4 share; we simulate one
complex and scale linearly (complexes are fully replicated and share
nothing but the package, per the paper).
"""

import numpy as np
from conftest import run_once

from repro.apps.sql import Between, Table, dpu_filter
from repro.core import DPU, DPU_16NM, DPU_40NM


def filter_perf_per_watt(config):
    n = 512 * 1024
    table = Table("t", {"a": np.arange(n, dtype=np.int32)})
    dpu = DPU(config)
    result = dpu_filter(dpu, table.to_dpu(dpu), Between("a", 0, 1000))
    # One complex simulated; the chip has `num_complexes` of them.
    chip_tuples_per_s = (n / result.seconds) * config.num_complexes
    return chip_tuples_per_s / config.tdp_watts


def test_sec25_16nm_perf_per_watt(benchmark, report):
    def both():
        return (
            filter_perf_per_watt(DPU_40NM),
            filter_perf_per_watt(DPU_16NM),
        )

    old, new = run_once(benchmark, both)
    ratio = new / old
    report(
        "§2.5: 16 nm shrink efficiency",
        "config             Mtuples/s/W",
        [f"40 nm (32c, 6 W)   {old / 1e6:8.1f}",
         f"16 nm (160c, 12 W) {new / 1e6:8.1f}",
         f"ratio              {ratio:8.2f}x   (paper: 2.5x)"],
    )
    benchmark.extra_info["ratio"] = ratio
    assert 2.0 < ratio < 3.0  # paper: 2.5x


def test_sec25_16nm_bandwidth(benchmark, report):
    def totals():
        return (
            DPU_40NM.ddr_peak_gbps * DPU_40NM.num_complexes,
            DPU_16NM.ddr_peak_gbps * DPU_16NM.num_complexes,
        )

    old, new = run_once(benchmark, totals)
    report(
        "§2.5: memory bandwidth per DPU",
        "config GB/s",
        [f"40 nm  {old:5.1f} (DDR3-1600)",
         f"16 nm  {new:5.1f} (DDR4-3200, paper: 76)"],
    )
    assert abs(new - 76.0) < 1.0
