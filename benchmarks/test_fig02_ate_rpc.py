"""Figure 2: response times of ATE remote procedure calls.

Regenerates the paper's bar chart: round-trip cycles for hardware
loads/stores/atomics and software RPCs, intra-macro vs inter-macro.
The paper's qualitative claims — hardware RPCs take tens of cycles,
atomics slightly more, software RPCs an order of magnitude more, and
crossing macros adds two extra crossbar hops — are asserted.
"""

from conftest import run_once

from repro.core import DPU


def measure_rpc_latencies():
    dpu = DPU()
    dpu.ate.install_handler(1, "nop", lambda args: None)
    dpu.ate.install_handler(9, "nop", lambda args: None)

    def kernel(ctx):
        timings = {}
        cases = [
            ("hw load (intra-macro)", 1, "load"),
            ("hw load (inter-macro)", 9, "load"),
            ("hw store (intra-macro)", 1, "store"),
            ("hw store (inter-macro)", 9, "store"),
            ("fetch-add (intra-macro)", 1, "faa"),
            ("fetch-add (inter-macro)", 9, "faa"),
            ("cas (intra-macro)", 1, "cas"),
            ("cas (inter-macro)", 9, "cas"),
            ("sw rpc (intra-macro)", 1, "sw"),
            ("sw rpc (inter-macro)", 9, "sw"),
        ]
        for name, owner, action in cases:
            address = dpu.address_map.dmem_address(owner, 512)
            start = dpu.engine.now
            if action == "load":
                yield from ctx.remote_load(owner, address)
            elif action == "store":
                yield from ctx.remote_store(owner, address, 1)
            elif action == "faa":
                yield from ctx.fetch_add(owner, address, 1)
            elif action == "cas":
                yield from ctx.compare_swap(owner, address, 0, 1)
            else:
                yield from ctx.software_rpc(owner, "nop")
            timings[name] = dpu.engine.now - start
        return timings

    return dpu.launch(kernel, cores=[0]).values[0]


def test_fig02_ate_rpc_response_times(benchmark, report):
    timings = run_once(benchmark, measure_rpc_latencies)
    rows = [f"{name:<28} {cycles:7.0f} cycles"
            for name, cycles in timings.items()]
    report("Figure 2: ATE RPC response times", f"{'rpc type':<28} latency",
           rows)
    benchmark.extra_info.update({k: v for k, v in timings.items()})
    # Shape assertions from the paper's figure.
    assert timings["hw load (intra-macro)"] < timings["hw load (inter-macro)"]
    assert timings["hw load (intra-macro)"] <= timings["fetch-add (intra-macro)"]
    assert timings["sw rpc (intra-macro)"] > 4 * timings["fetch-add (intra-macro)"]
    assert timings["hw load (intra-macro)"] < 100  # tens of cycles
