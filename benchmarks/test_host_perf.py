"""Host-performance tier: how fast the simulator itself runs.

Every other benchmark in this directory reports *simulated* quantities
(GB/s, cycles/tuple) that are pinned bit-exactly by the equivalence
goldens. This module instead guards the *host* cost of producing them:
the event-engine fast paths, the vectorized DMS data plane, and the
descriptor/cost-table caches must not quietly rot back to the
pre-fast-path speeds.

Two kinds of check:

* throughput microbenchmarks (pytest-benchmark, one round each) that
  show up in ``--benchmark-*`` output and the CI artifact, and
* hard budget assertions with *generous* pinned ceilings — generous
  because CI runners vary, so a budget only trips on an order-of-
  magnitude regression (e.g. an O(n^2) queue sneaking back into the
  event loop), not on runner jitter.

``tools/perfcmp.py`` does the precise before/after accounting against
``benchmarks/host_perf_baseline.json``; see docs/PERFORMANCE.md.
"""

import json
import os
import sys
import time

import pytest

TOOLS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "tools")
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)

import perfcmp  # noqa: E402

# Pinned host-time ceilings, in seconds. Reference hardware does the
# 1M-event run in ~1.1s and the DMS stream in ~0.1s; the ceilings
# leave >10x headroom for slow CI runners while still catching a
# complexity-class regression (the pre-deque O(n^2) drain paths blow
# straight through them).
ENGINE_1M_BUDGET_S = 20.0
DMS_STREAM_BUDGET_S = 10.0


class TestEngineThroughput:
    def test_engine_1m_events_within_budget(self):
        """Satellite of the event-loop audit: one million timer events
        through eight interleaved processes must complete in bounded
        host time (linear in events, not quadratic)."""
        elapsed = perfcmp.run_engine_events(1_000_000)
        assert elapsed < ENGINE_1M_BUDGET_S, (
            f"1M engine events took {elapsed:.1f}s "
            f"(budget {ENGINE_1M_BUDGET_S}s) — event loop has regressed"
        )

    def test_engine_clock_is_exact_after_1m_events(self):
        """The same workload, checked for correctness: eight processes
        each advancing 125k unit timeouts land the clock exactly."""
        from repro.sim import Engine

        engine = Engine()

        def ticker(count):
            for _ in range(count):
                yield engine.timeout(1.0)

        for _ in range(8):
            engine.process(ticker(125_000))
        engine.run()
        assert engine.now == 125_000.0

    def test_engine_event_rate(self, benchmark, report):
        events = 200_000

        def run():
            return events / perfcmp.run_engine_events(events)

        rate = run_rate = None
        began = time.perf_counter()
        rate = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
        run_rate = rate
        benchmark.extra_info["events_per_s"] = round(run_rate)
        report(
            "engine event throughput",
            f"{'events':>10}  {'events/s':>12}  {'wall':>8}",
            [f"{events:>10}  {run_rate:>12,.0f}  "
             f"{time.perf_counter() - began:>7.2f}s"],
        )
        assert run_rate > events / ENGINE_1M_BUDGET_S * 0.2


class TestDmsThroughput:
    def test_dms_stream_within_budget(self):
        """One fig-11 sweep point (the 8 KB single-column stream over
        32 cores) as a host-time canary for the DMS data plane."""
        import test_fig11_dms_bandwidth as fig11

        began = time.perf_counter()
        gbps = fig11.sweep_point(1, 2048, False)
        elapsed = time.perf_counter() - began
        assert gbps > 9.0  # the modelled number still holds
        assert elapsed < DMS_STREAM_BUDGET_S, (
            f"DMS stream sweep point took {elapsed:.1f}s "
            f"(budget {DMS_STREAM_BUDGET_S}s)"
        )

    def test_fig_pair_bodies(self, benchmark, report):
        """The fig11+fig16 workload pair perfcmp tracks, run once so
        the CI benchmark artifact carries its host seconds."""

        def run():
            fig11 = perfcmp.measure_fig11_body()
            fig16 = perfcmp.measure_fig16_body()
            return fig11, fig16

        fig11_s, fig16_s = benchmark.pedantic(
            run, rounds=1, iterations=1, warmup_rounds=0
        )
        benchmark.extra_info["fig11_body_s"] = round(fig11_s, 3)
        benchmark.extra_info["fig16_body_s"] = round(fig16_s, 3)
        report(
            "figure-pair host cost",
            f"{'workload':<12}  {'wall':>8}",
            [f"{'fig11 body':<12}  {fig11_s:>7.2f}s",
             f"{'fig16 body':<12}  {fig16_s:>7.2f}s"],
        )


class TestPerfcmpTool:
    def test_measure_subset_writes_report(self, tmp_path):
        out = tmp_path / "current.json"
        code = perfcmp.main(
            ["measure", "--only", "engine_1m_events_s", "-o", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["workloads"]["engine_1m_events_s"] > 0
        assert data["workloads"]["engine_events_per_s"] > 0
        assert data["host"]["python"]

    def test_measure_rejects_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workloads"):
            perfcmp.main(["measure", "--only", "nope"])

    def _report(self, tmp_path, name, tier1):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps({
            "host": {},
            "workloads": {"tier1_wall_s": tier1, "fig16_body_s": 0.5},
        }))
        return str(path)

    def test_compare_passes_within_limit(self, tmp_path, capsys):
        base = self._report(tmp_path, "base", 10.0)
        curr = self._report(tmp_path, "curr", 12.0)  # +20% < 25%
        merged = tmp_path / "merged.json"
        code = perfcmp.main(["compare", base, curr, "-o", str(merged)])
        assert code == 0
        out = capsys.readouterr().out
        assert "REGRESSION" not in out
        report = json.loads(merged.read_text())
        assert report["gate"]["passed"] is True
        assert report["speedups"]["tier1_wall_s"] == pytest.approx(10 / 12,
                                                                   abs=1e-3)

    def test_compare_fails_beyond_limit(self, tmp_path, capsys):
        base = self._report(tmp_path, "base", 10.0)
        curr = self._report(tmp_path, "curr", 13.0)  # +30% > 25%
        merged = tmp_path / "merged.json"
        code = perfcmp.main(["compare", base, curr, "-o", str(merged)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert json.loads(merged.read_text())["gate"]["passed"] is False

    def test_committed_baseline_is_wellformed(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "host_perf_baseline.json")
        data = json.loads(open(path).read())
        for key in perfcmp.WORKLOADS:
            assert data["workloads"][key] > 0, key
        assert perfcmp.GATE_KEY in data["workloads"]
