"""Tables 1 and 2: DMS descriptor types and the 16-byte layout.

Table 1 is regenerated as the capability matrix the model enforces;
Table 2 as an encode/decode round-trip (with throughput measured,
since descriptor construction is on the software fast path — the
paper stresses descriptors are "macro instructions" built in DMEM).
"""

import numpy as np
from conftest import run_once

from repro.dms import (
    DESCRIPTOR_CAPABILITIES,
    Descriptor,
    DescriptorType,
    ddr_to_dmem,
)

_OPS = ("scatter", "gather", "stride", "partition", "key", "last_col")


def test_tab01_descriptor_capability_matrix(benchmark, report):
    def build():
        rows = []
        for dtype, caps in DESCRIPTOR_CAPABILITIES.items():
            marks = "  ".join(
                "X" if op in caps else "." for op in _OPS
            )
            rows.append(f"{dtype.name:<14} {marks}")
        return rows

    rows = run_once(benchmark, build)
    header = f"{'direction':<14} " + "  ".join(o[0].upper() for o in _OPS)
    report("Table 1: DMS data descriptor types", header + "   (S G St P K L)",
           rows)
    assert len(DESCRIPTOR_CAPABILITIES) == 7  # all six directions + DMS->DMS


def test_tab02_encode_decode_roundtrip_rate(benchmark, report):
    descriptors = [
        ddr_to_dmem(256 + i % 100, 4, 0x1000 + i * 1024, (i * 64) % 32768,
                    notify_event=i % 30)
        for i in range(1000)
    ]

    def roundtrip():
        for descriptor in descriptors:
            raw = descriptor.encode()
            assert len(raw) == 16
            decoded = Descriptor.decode(raw)
            assert decoded.rows == descriptor.rows
        return len(descriptors)

    count = benchmark(roundtrip)
    report(
        "Table 2: 16 B descriptor encode/decode",
        "metric value",
        [f"descriptors round-tripped per call: {count}",
         "layout: Type[31:28] Notify[25:21] Wait[20:16] Link[15:0] | "
         "ColW[30:28] G[25] S[24] RLE[23] SInc[17] DInc[16] DDR[3:0] | "
         "Rows[31:16] DMEM[15:0] | DDR[35:4]"],
    )
