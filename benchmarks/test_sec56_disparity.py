"""§5.6 / Figure 17: disparity parallelization strategies.

Fine-grained (row tiles + system-wide ATE barriers per vision kernel)
vs coarse-grained (one shift per core, image pair refetched per
shift, SAD maps round-tripping DRAM). The paper: fine-grained wins,
8.6x perf/watt over the OpenMP x86 baseline, because the low-latency
ATE barrier makes lockstep tiling affordable.
"""

from conftest import run_once

from repro.apps.disparity import dpu_disparity, xeon_disparity
from repro.apps.sql import efficiency_gain
from repro.baseline import XeonModel
from repro.core import DPU
from repro.workloads.stereo import generate_stereo_pair


def test_sec56_fine_vs_coarse(benchmark, report):
    def run():
        pair = generate_stereo_pair(rows=192, cols=256, max_shift=8, seed=17)
        dpu = DPU()
        addresses = (dpu.store_array(pair.left), dpu.store_array(pair.right))
        fine = dpu_disparity(dpu, pair, addresses, variant="fine")
        coarse = dpu_disparity(dpu, pair, addresses, variant="coarse")
        xeon = xeon_disparity(XeonModel(), pair)
        return fine, coarse, xeon

    fine, coarse, xeon = run_once(benchmark, run)
    fine_gain = efficiency_gain(fine, xeon)
    coarse_gain = efficiency_gain(coarse, xeon)
    report(
        "§5.6: disparity parallelization strategies (192x256, 9 shifts)",
        f"{'variant':<16} {'time':>10} {'DDR bytes':>11} {'gain':>7}",
        [
            f"{'fine-grained':<16} {fine.seconds * 1e3:8.3f}ms "
            f"{fine.bytes_streamed:>11} {fine_gain:6.2f}x (paper: 8.6x)",
            f"{'coarse-grained':<16} {coarse.seconds * 1e3:8.3f}ms "
            f"{coarse.bytes_streamed:>11} {coarse_gain:6.2f}x",
        ],
    )
    benchmark.extra_info["fine_gain"] = fine_gain
    benchmark.extra_info["coarse_gain"] = coarse_gain
    assert fine.seconds < coarse.seconds
    assert 6.0 < fine_gain < 12.0
    # Identical functional output regardless of strategy.
    assert (fine.value == coarse.value).all()
