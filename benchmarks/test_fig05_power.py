"""Figure 5: DPU power breakdown (total 5.8 W).

Regenerates the pie chart as a table, anchored by the text's exact
numbers: >37% leakage and 51 mW dynamic per dpCore.
"""

from conftest import run_once

from repro.core import DPU_16NM, DPU_40NM, PowerModel


def test_fig05_power_breakdown(benchmark, report):
    breakdown = run_once(benchmark, lambda: PowerModel(DPU_40NM).breakdown())
    fractions = breakdown.fractions()
    rows = [
        f"{name:<18} {watts:5.2f} W  ({fractions[name] * 100:4.1f}%)"
        for name, watts in breakdown.as_dict().items()
    ]
    rows.append(f"{'total':<18} {breakdown.total:5.2f} W")
    report("Figure 5: DPU power breakdown", f"{'component':<18} watts", rows)
    benchmark.extra_info["total_watts"] = breakdown.total
    benchmark.extra_info["leakage_fraction"] = fractions["leakage"]
    assert abs(breakdown.total - 5.8) < 0.05
    assert fractions["leakage"] > 0.37


def test_fig05_16nm_scaling(benchmark, report):
    breakdown = run_once(benchmark, lambda: PowerModel(DPU_16NM).breakdown())
    report(
        "16 nm variant power",
        "component watts",
        [f"dpCores (160): {breakdown.dpcores:.2f} W",
         f"total: {breakdown.total:.2f} W (TDP {DPU_16NM.tdp_watts} W)"],
    )
    assert breakdown.dpcores == 160 * 0.051
