"""Ablations of the DPU's design choices (DESIGN.md's ablation index).

Each ablation disables one mechanism the paper argues for and
measures what it costs, closing the loop on the architecture story:

* **DMS vs cached path** — stream a scan through the DMS double
  buffer vs through the L1/L2 hierarchy (the §2.1 motivation for
  software-managed DMEM).
* **dual issue** — the dpCore's second pipe, on the Figure 15 filter
  loop (§2.2).
* **hardware partitioner** — the free 32-way round vs forcing a
  software round for a mid-NDV group-by (§5.3's "no extra round-trip
  through DRAM").
* **DDR bank parallelism** — 8 open rows vs 1 under the partition
  engine's four interleaved column streams.
* **posted-write coalescing** — the write buffer's row-miss hiding
  under 1024-way software partitioning traffic.
* **ATE vs mailbox barrier** — the §5.6 synchronization primitive.
"""

import numpy as np
from conftest import run_once

from repro.apps.sql import (
    AggSpec,
    Between,
    DmemBudget,
    Table,
    dpu_filter,
    dpu_groupby,
)
from repro.apps.sql.costs import measure_filter_loop
from repro.core import DPU, DPU_40NM, DpCoreInterpreter, assemble
from repro.memory.dmem import Scratchpad
from repro.runtime.parallel import AteBarrier


def test_ablation_dms_vs_cached_path(benchmark, report):
    """Scan 1 MB per core: DMS streaming vs cached loads."""

    def run():
        n = 256 * 1024
        table = Table("t", {"a": np.arange(n, dtype=np.int32)})
        dpu = DPU()
        dms = dpu_filter(dpu, table.to_dpu(dpu), Between("a", 0, 100),
                         cores=[0])

        # Cached path: same scan, but every 64 B line comes through
        # L1 -> L2 -> DDR with no prefetch (the dpCore has none).
        dpu2 = DPU()
        dtable2 = table.to_dpu(dpu2)
        address = dtable2.addresses["a"]

        def cached_kernel(ctx):
            lines = n * 4 // 64
            cycles = 0.0
            hierarchy = dpu2.caches[0]
            for line in range(lines):
                cycles += hierarchy.access(0, address + line * 64)
            cycles += n * 1.6  # same FILT compute
            yield from ctx.compute(cycles)

        cached = dpu2.launch(cached_kernel, cores=[0])
        return n / dms.seconds / 1e6, n / (cached.cycles / 800e6) / 1e6

    dms_rate, cached_rate = run_once(benchmark, run)
    report(
        "Ablation: DMS vs cached path (1-core filter)",
        "path    Mtuples/s",
        [f"DMS     {dms_rate:8.1f}", f"cached  {cached_rate:8.1f}",
         f"speedup {dms_rate / cached_rate:.1f}x"],
    )
    benchmark.extra_info["speedup"] = dms_rate / cached_rate
    assert dms_rate > 2.5 * cached_rate


def test_ablation_dual_issue(benchmark, report):
    """A paired LW+ADDI loop with the second pipe fused off."""

    def run2():
        loop_source = """
            li   r3, 0
            li   r4, 4096
        loop:
            lw   r10, 0(r3)
            addi r11, r11, 1
            lw   r12, 4(r3)
            addi r13, r13, 1
            addi r3, r3, 8
            bne  r3, r4, loop
            halt
        """
        results = {}
        for mode in (True, False):
            interpreter = DpCoreInterpreter(
                assemble(loop_source), Scratchpad(0), dual_issue=mode
            )
            results[mode] = interpreter.run().cycles
        return results[True], results[False]

    dual_cycles, single_cycles = run_once(benchmark, run2)
    report(
        "Ablation: dual issue (paired LW+ADDI loop)",
        "mode         cycles",
        [f"dual issue   {dual_cycles}",
         f"single issue {single_cycles}",
         f"saved        {(1 - dual_cycles / single_cycles) * 100:.0f}%"],
    )
    benchmark.extra_info["dual"] = dual_cycles
    benchmark.extra_info["single"] = single_cycles
    assert dual_cycles < single_cycles


def test_ablation_hardware_partitioner(benchmark, report):
    """Mid-NDV group-by: hardware path vs forced software round."""

    def run():
        rng = np.random.default_rng(6)
        n = 128 * 1024
        ndv = 20000  # ~320 KB of groups: hardware path suffices
        table = Table("t", {
            "g": rng.integers(0, ndv, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
        })
        aggs = [AggSpec("sum", "v")]
        dpu_hw = DPU()
        hw = dpu_groupby(dpu_hw, table.to_dpu(dpu_hw), "g", aggs)
        # Shrink the DMEM hash budget so the planner must take the
        # software round — the machine an engine without the DMS
        # partitioner would effectively be.
        dpu_sw = DPU()
        budget = DmemBudget(total=32 * 1024, io_buffers=29 * 1024,
                            metadata=1536)
        sw = dpu_groupby(dpu_sw, table.to_dpu(dpu_sw), "g", aggs,
                         budget=budget)
        assert hw.detail["sw_rounds"] == 0
        assert sw.detail["sw_rounds"] == 1
        assert hw.value == sw.value
        return hw.seconds, sw.seconds

    hw_seconds, sw_seconds = run_once(benchmark, run)
    report(
        "Ablation: hardware partitioner (mid-NDV group-by)",
        "path               time",
        [f"hardware 32-way    {hw_seconds * 1e3:7.3f} ms",
         f"forced sw round    {sw_seconds * 1e3:7.3f} ms",
         f"DMS advantage      {sw_seconds / hw_seconds:.2f}x"],
    )
    benchmark.extra_info["advantage"] = sw_seconds / hw_seconds
    assert sw_seconds > 1.4 * hw_seconds


def test_ablation_ddr_banks(benchmark, report):
    """Partition-engine column streams with 8 vs 1 open rows."""
    from test_fig13_partition import partition_bandwidth
    from repro.dms import PartitionMode

    def run():
        banked = partition_bandwidth(PartitionMode.HASH, rows=24 * 1024)
        single = partition_bandwidth(
            PartitionMode.HASH, rows=24 * 1024,
            config=DPU_40NM.with_updates(ddr_num_banks=1),
        )
        return banked, single

    banked, single = run_once(benchmark, run)
    report(
        "Ablation: DDR bank open-row parallelism (partitioning)",
        "banks GB/s",
        [f"8     {banked:5.2f}", f"1     {single:5.2f}"],
    )
    benchmark.extra_info["banked"] = banked
    benchmark.extra_info["single"] = single
    assert banked > single


def test_ablation_write_coalescing(benchmark, report):
    """High-NDV software partitioning with posted writes on/off."""

    def run():
        rng = np.random.default_rng(8)
        n = 256 * 1024
        ndv = 60000
        table = Table("t", {
            "g": rng.integers(0, ndv, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
        })
        aggs = [AggSpec("sum", "v")]
        budget = DmemBudget(total=32 * 1024, io_buffers=29 * 1024,
                            metadata=1536)
        dpu_on = DPU()
        on = dpu_groupby(dpu_on, table.to_dpu(dpu_on), "g", aggs,
                         budget=budget)
        dpu_off = DPU(DPU_40NM.with_updates(ddr_write_row_miss_factor=1.0))
        off = dpu_groupby(dpu_off, table.to_dpu(dpu_off), "g", aggs,
                          budget=budget)
        assert on.value == off.value
        return on.seconds, off.seconds

    on_seconds, off_seconds = run_once(benchmark, run)
    report(
        "Ablation: posted-write coalescing (sw partition round)",
        "write buffer  time",
        [f"on            {on_seconds * 1e3:7.3f} ms",
         f"off           {off_seconds * 1e3:7.3f} ms"],
    )
    assert off_seconds >= on_seconds


def test_ablation_ate_vs_mailbox_barrier(benchmark, report):
    """§5.6's barrier: ATE sense-reversing vs a mailbox collective."""

    def run():
        rounds = 16
        dpu_ate = DPU()
        barrier = AteBarrier(dpu_ate, range(32), counter_offset=0,
                             flag_offset=16)

        def ate_kernel(ctx):
            for _ in range(rounds):
                yield from barrier.wait(ctx)

        ate_time = dpu_ate.launch(ate_kernel).cycles / rounds

        dpu_mbox = DPU()

        def mbox_kernel(ctx):
            for _ in range(rounds):
                if ctx.core_id == 0:
                    for _ in range(31):
                        yield from ctx.mbox_receive()
                    for core in range(1, 32):
                        yield from ctx.mbox_send(core, "go")
                else:
                    yield from ctx.mbox_send(0, "here")
                    yield from ctx.mbox_receive()

        mbox_time = dpu_mbox.launch(mbox_kernel).cycles / rounds
        return ate_time, mbox_time

    ate_cycles, mbox_cycles = run_once(benchmark, run)
    report(
        "Ablation: barrier implementation (32 cores)",
        "primitive        cycles/barrier",
        [f"ATE (hw atomics) {ate_cycles:9.0f}",
         f"mailbox          {mbox_cycles:9.0f}"],
    )
    benchmark.extra_info["ate"] = ate_cycles
    benchmark.extra_info["mailbox"] = mbox_cycles
    assert ate_cycles < mbox_cycles
