"""The ATE's two-level crossbar (paper §2.3).

One crossbar connects the 8 dpCores within a macro; a second connects
the 4 macros. Messages between cores in the same macro traverse only
the local crossbar; messages between macros traverse local -> global
-> local. The ATE guarantees point-to-point FIFO ordering, which the
model preserves by charging a deterministic latency per hop and
serializing delivery at the destination's ATE engine.
"""

from __future__ import annotations

from ..core.config import DPUConfig

__all__ = ["CrossbarTopology"]


class CrossbarTopology:
    """Latency oracle for the two-level interconnect."""

    def __init__(self, config: DPUConfig) -> None:
        self.config = config

    def same_macro(self, src: int, dst: int) -> bool:
        return self.config.macro_of(src) == self.config.macro_of(dst)

    def one_way_cycles(self, src: int, dst: int) -> int:
        """Transit latency for one message, one direction."""
        if src == dst:
            # Self-sends still round through the local crossbar.
            return self.config.ate_local_crossbar_cycles
        if self.same_macro(src, dst):
            return self.config.ate_local_crossbar_cycles
        return (
            2 * self.config.ate_local_crossbar_cycles
            + self.config.ate_global_crossbar_cycles
        )

    def hops(self, src: int, dst: int) -> int:
        """Crossbar stages traversed (1 intra-macro, 3 inter-macro)."""
        return 1 if self.same_macro(src, dst) else 3
