"""The ATE's two-level crossbar (paper §2.3).

One crossbar connects the 8 dpCores within a macro; a second connects
the 4 macros. Messages between cores in the same macro traverse only
the local crossbar; messages between macros traverse local -> global
-> local. The ATE guarantees point-to-point FIFO ordering, which the
model preserves by charging a deterministic latency per hop and
serializing delivery at the destination's ATE engine.
"""

from __future__ import annotations

from ..core.config import DPUConfig

__all__ = ["CrossbarTopology"]


class CrossbarTopology:
    """Latency oracle for the two-level interconnect."""

    __slots__ = ("config", "_macro_of", "_local_cycles", "_remote_cycles")

    def __init__(self, config: DPUConfig) -> None:
        self.config = config
        # The config is immutable per DPU, so the per-core macro id and
        # the two possible transit latencies can be tabled once.
        self._macro_of = tuple(
            config.macro_of(core) for core in range(config.num_cores)
        )
        self._local_cycles = config.ate_local_crossbar_cycles
        self._remote_cycles = (
            2 * config.ate_local_crossbar_cycles
            + config.ate_global_crossbar_cycles
        )

    def same_macro(self, src: int, dst: int) -> bool:
        macro_of = self._macro_of
        return macro_of[src] == macro_of[dst]

    def one_way_cycles(self, src: int, dst: int) -> int:
        """Transit latency for one message, one direction.

        Self-sends still round through the local crossbar.
        """
        macro_of = self._macro_of
        if macro_of[src] == macro_of[dst]:
            return self._local_cycles
        return self._remote_cycles

    def hops(self, src: int, dst: int) -> int:
        """Crossbar stages traversed (1 intra-macro, 3 inter-macro)."""
        macro_of = self._macro_of
        return 1 if macro_of[src] == macro_of[dst] else 3
