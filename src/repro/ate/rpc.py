"""ATE remote procedure calls (paper §2.3).

The ATE interprets messages as RPCs executed by hardware on the
receiving dpCore:

* **hardware RPCs** — load, store, atomic fetch-and-add and atomic
  compare-and-swap on any DDR or DMEM address owned by the remote
  core. The receiving ATE engine injects the operation into the
  remote pipeline (a few stall cycles there, no interrupt) and the
  requesting core stalls until the value returns.
* **software RPCs** — the receiving ATE interrupts the remote core
  and jumps to a pre-installed handler which runs to completion.

The requester may have **one outstanding ATE request** at a time; it
can issue, run independent instructions, and block for the reply
later (:meth:`Ate.issue` / waiting the returned event) — the paper's
recommended throughput trick under Figure 2.

Atomicity is by ownership: every operation on addresses owned by core
*C* executes serially in *C*'s ATE engine, so fetch-and-add and CAS
are linearizable per owner, exactly the guarantee the hardware gives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.config import DPUConfig
from ..memory.address import AddressMap
from ..memory.ddr import DDRMemory
from ..memory.dmem import Scratchpad
from ..sim import Engine, Resource, SimEvent, StatsRecorder, Store
from .crossbar import CrossbarTopology

__all__ = ["Ate", "RpcKind", "AteError"]


class AteError(Exception):
    """Protocol misuse (unknown handler, bad address, double issue)."""


class RpcKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    FETCH_ADD = "faa"
    COMPARE_SWAP = "cas"
    SOFTWARE = "sw"

    @property
    def is_atomic(self) -> bool:
        return self in (RpcKind.FETCH_ADD, RpcKind.COMPARE_SWAP)


@dataclass
class _Message:
    kind: RpcKind
    src: int
    dst: int
    address: int = 0
    operand: int = 0
    operand2: int = 0
    handler: Optional[str] = None
    args: Any = None
    reply: SimEvent = None  # type: ignore[assignment]
    issued_at: float = 0.0


class Ate:
    """The Atomic Transaction Engine across all dpCores."""

    def __init__(
        self,
        engine: Engine,
        config: DPUConfig,
        address_map: AddressMap,
        ddr_memory: DDRMemory,
        scratchpads: Dict[int, Scratchpad],
        stats: Optional[StatsRecorder] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.address_map = address_map
        self.ddr_memory = ddr_memory
        self.scratchpads = scratchpads
        self.stats = stats if stats is not None else StatsRecorder()
        self.topology = CrossbarTopology(config)
        self._inboxes: Dict[int, Store] = {
            core: Store(engine) for core in config.core_ids
        }
        self._issue_slots: Dict[int, Resource] = {
            core: Resource(engine, 1) for core in config.core_ids
        }
        # SW RPC handlers installed per core: name -> callable(args).
        # A handler may be a plain function or a generator (to charge
        # additional cycles); its return value travels back.
        self._handlers: Dict[int, Dict[str, Callable]] = {
            core: {} for core in config.core_ids
        }
        # Cycles of interrupt work each core owes (drained by the
        # runtime into that core's next compute charge).
        self.interrupt_debt: Dict[int, float] = {
            core: 0.0 for core in config.core_ids
        }
        for core in config.core_ids:
            engine.process(self._engine_loop(core), name=f"ate[{core}]")

    # -- software interface -------------------------------------------------

    def install_handler(self, core_id: int, name: str, handler: Callable) -> None:
        """Pre-install a software RPC handler on ``core_id``."""
        self._handlers[core_id][name] = handler

    def issue(
        self,
        src: int,
        dst: int,
        kind: RpcKind,
        address: int = 0,
        operand: int = 0,
        operand2: int = 0,
        handler: Optional[str] = None,
        args: Any = None,
    ):
        """Issue one request; generator returns a reply event.

        ``yield from ate.issue(...)`` gives back a :class:`SimEvent`
        that succeeds (with the RPC's return value) when the response
        arrives; the caller may compute before yielding it. The
        one-outstanding-request rule is enforced per source core.
        """
        slot = self._issue_slots[src]
        yield slot.acquire()
        reply = self.engine.event()
        message = _Message(
            kind=kind,
            src=src,
            dst=dst,
            address=address,
            operand=operand,
            operand2=operand2,
            handler=handler,
            args=args,
            reply=reply,
            issued_at=self.engine.now,
        )
        yield self.engine.timeout(self.topology.one_way_cycles(src, dst))
        yield self._inboxes[dst].put(message)
        completion = self.engine.event()
        reply.add_callback(lambda ev: self._finish(slot, completion, ev))
        return completion

    def _finish(self, slot: Resource, completion: SimEvent, reply: SimEvent) -> None:
        slot.release()
        if reply.exception is not None:
            completion.fail(reply.exception)
        else:
            completion.succeed(reply.value)

    def call(self, src: int, dst: int, kind: RpcKind, **kwargs):
        """Blocking request: issue and stall for the value."""
        completion = yield from self.issue(src, dst, kind, **kwargs)
        value = yield completion
        return value

    def posted_store(self, src: int, dst: int, address: int, value: int):
        """Fire-and-forget remote store.

        The paper stalls the requester only for RPCs "which expect
        return values (such as fetch-and-add)"; a plain store needs no
        reply, so the issue slot frees as soon as the message is in
        the interconnect — the fast path for barrier release fan-out.
        """
        slot = self._issue_slots[src]
        yield slot.acquire()
        message = _Message(
            kind=RpcKind.STORE,
            src=src,
            dst=dst,
            address=address,
            operand=value,
            reply=None,
            issued_at=self.engine.now,
        )
        yield self.engine.timeout(self.topology.one_way_cycles(src, dst))
        yield self._inboxes[dst].put(message)
        slot.release()

    # Convenience wrappers used throughout the runtime and apps.

    def remote_load(self, src: int, dst: int, address: int):
        return self.call(src, dst, RpcKind.LOAD, address=address)

    def remote_store(self, src: int, dst: int, address: int, value: int):
        return self.call(src, dst, RpcKind.STORE, address=address, operand=value)

    def fetch_add(self, src: int, dst: int, address: int, delta: int):
        return self.call(src, dst, RpcKind.FETCH_ADD, address=address, operand=delta)

    def compare_swap(
        self, src: int, dst: int, address: int, expected: int, desired: int
    ):
        return self.call(
            src,
            dst,
            RpcKind.COMPARE_SWAP,
            address=address,
            operand=expected,
            operand2=desired,
        )

    def software_rpc(self, src: int, dst: int, handler: str, args: Any = None):
        return self.call(src, dst, RpcKind.SOFTWARE, handler=handler, args=args)

    # -- receiving engine -------------------------------------------------------

    def _engine_loop(self, core_id: int):
        inbox = self._inboxes[core_id]
        while True:
            message: _Message = yield inbox.get()
            execute = self.config.ate_hw_execute_cycles
            if message.kind.is_atomic:
                execute += self.config.ate_amo_extra_cycles
            if message.kind is RpcKind.SOFTWARE:
                execute = self.config.ate_sw_handler_overhead_cycles
            yield self.engine.timeout(execute)
            try:
                if message.kind is RpcKind.SOFTWARE:
                    value = yield from self._run_handler(core_id, message)
                else:
                    value = self._perform(core_id, message)
            except AteError as error:
                if message.reply is not None:
                    self._send_reply(message, error=error)
                continue
            # The injected operation appears as stalls in the remote
            # instruction stream; account it as interrupt debt.
            self.interrupt_debt[core_id] += execute
            if message.reply is not None:
                self._send_reply(message, value=value)
                rtt_key = (
                    f"ate.rtt.{message.kind.value}."
                    + ("local" if self.topology.same_macro(message.src, core_id)
                       else "remote")
                )
                return_latency = self.topology.one_way_cycles(
                    core_id, message.src
                )
                self.stats.sample(
                    rtt_key,
                    self.engine.now - message.issued_at + return_latency,
                )
            self.stats.count("ate.messages", 1)

    def _send_reply(self, message: _Message, value: Any = None, error=None) -> None:
        latency = self.topology.one_way_cycles(message.dst, message.src)

        def deliver(_event) -> None:
            if error is not None:
                message.reply.fail(error)
            else:
                message.reply.succeed(value)

        self.engine.timeout(latency).add_callback(deliver)

    def _run_handler(self, core_id: int, message: _Message):
        handlers = self._handlers[core_id]
        handler = handlers.get(message.handler or "")
        if handler is None:
            raise AteError(
                f"core {core_id} has no software RPC handler "
                f"{message.handler!r} installed"
            )
        result = handler(message.args)
        if hasattr(result, "send") and hasattr(result, "throw"):
            value = yield from result
            return value
        yield self.engine.timeout(0)
        return result

    # -- hardware operation semantics ---------------------------------------------

    def _perform(self, owner: int, message: _Message) -> int:
        address = message.address
        if message.kind is RpcKind.LOAD:
            return self._read64(owner, address)
        if message.kind is RpcKind.STORE:
            self._write64(owner, address, message.operand)
            return 0
        if message.kind is RpcKind.FETCH_ADD:
            old = self._read64(owner, address)
            self._write64(owner, address, (old + message.operand) & (2**64 - 1))
            return old
        if message.kind is RpcKind.COMPARE_SWAP:
            current = self._read64(owner, address)
            if current == message.operand & (2**64 - 1):
                self._write64(owner, address, message.operand2)
            return current
        raise AteError(f"cannot perform {message.kind}")  # pragma: no cover

    def _read64(self, owner: int, address: int) -> int:
        if self.address_map.is_dmem(address):
            core, offset = self.address_map.split_dmem(address)
            return self.scratchpads[core].read_u64(offset)
        if self.address_map.is_ddr(address):
            return self.ddr_memory.read_u64(address)
        raise AteError(f"ATE address {address:#x} is neither DDR nor DMEM")

    def _write64(self, owner: int, address: int, value: int) -> None:
        if self.address_map.is_dmem(address):
            core, offset = self.address_map.split_dmem(address)
            self.scratchpads[core].write_u64(offset, value)
            return
        if self.address_map.is_ddr(address):
            self.ddr_memory.write_u64(address, value)
            return
        raise AteError(f"ATE address {address:#x} is neither DDR nor DMEM")
