"""ATE remote procedure calls (paper §2.3).

The ATE interprets messages as RPCs executed by hardware on the
receiving dpCore:

* **hardware RPCs** — load, store, atomic fetch-and-add and atomic
  compare-and-swap on any DDR or DMEM address owned by the remote
  core. The receiving ATE engine injects the operation into the
  remote pipeline (a few stall cycles there, no interrupt) and the
  requesting core stalls until the value returns.
* **software RPCs** — the receiving ATE interrupts the remote core
  and jumps to a pre-installed handler which runs to completion.

The requester may have **one outstanding ATE request** at a time; it
can issue, run independent instructions, and block for the reply
later (:meth:`Ate.issue` / waiting the returned event) — the paper's
recommended throughput trick under Figure 2.

**Resilience.** When the fault plan enables the ``ate.drop`` or
``ate.delay`` sites, every request carries a per-source sequence
number and the requester arms a timeout: a lost or late message is
retransmitted with exponential backoff, and the receiving engine
deduplicates by sequence number — it replays the cached reply instead
of re-executing, so load/store/FAA/CAS stay exactly-once (idempotent
under retry) and results remain byte-correct. The one-outstanding-
request rule is preserved: the issue slot is held across retries.
Retry exhaustion fails the completion event with :class:`AteError`.

Atomicity is by ownership: every operation on addresses owned by core
*C* executes serially in *C*'s ATE engine, so fetch-and-add and CAS
are linearizable per owner, exactly the guarantee the hardware gives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.config import DPUConfig
from ..faults import FaultInjector
from ..memory.address import AddressMap
from ..memory.ddr import DDRMemory
from ..memory.dmem import Scratchpad
from ..obs import NULL_TRACER
from ..sim import Engine, Resource, SimEvent, StatsRecorder, Store, Timeout
from .crossbar import CrossbarTopology

__all__ = ["Ate", "RpcKind", "AteError"]


class AteError(Exception):
    """Protocol misuse or failure (unknown handler, bad address,
    retry exhaustion under fault injection).

    Carries structured context — the failing ``site``, simulation
    ``sim_time``, ``retry_count`` already burned, and an ``occupancy``
    snapshot of the relevant queues — so recovery code can branch on
    fields instead of message text.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        sim_time: Optional[float] = None,
        retry_count: int = 0,
        occupancy: Optional[Dict] = None,
    ) -> None:
        self.site = site
        self.sim_time = sim_time
        self.retry_count = retry_count
        self.occupancy = dict(occupancy) if occupancy else {}
        detail = []
        if site:
            detail.append(f"site={site}")
        if sim_time is not None:
            detail.append(f"t={sim_time:.0f}")
        if retry_count:
            detail.append(f"retries={retry_count}")
        if detail:
            message = f"{message} [{' '.join(detail)}]"
        super().__init__(message)


class RpcKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    FETCH_ADD = "faa"
    COMPARE_SWAP = "cas"
    SOFTWARE = "sw"

    @property
    def is_atomic(self) -> bool:
        return self in (RpcKind.FETCH_ADD, RpcKind.COMPARE_SWAP)


@dataclass(slots=True)
class _Message:
    kind: RpcKind
    src: int
    dst: int
    address: int = 0
    operand: int = 0
    operand2: int = 0
    handler: Optional[str] = None
    args: Any = None
    reply: SimEvent = None  # type: ignore[assignment]
    issued_at: float = 0.0
    seq: int = 0
    # Span id of the requester's in-flight trace span; the receiving
    # engine stamps it on its execution span so cross-core RPCs nest.
    trace_id: int = 0


class Ate:
    """The Atomic Transaction Engine across all dpCores."""

    def __init__(
        self,
        engine: Engine,
        config: DPUConfig,
        address_map: AddressMap,
        ddr_memory: DDRMemory,
        scratchpads: Dict[int, Scratchpad],
        stats: Optional[StatsRecorder] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.address_map = address_map
        self.ddr_memory = ddr_memory
        self.scratchpads = scratchpads
        self.stats = stats if stats is not None else StatsRecorder()
        self.faults = faults if faults is not None else FaultInjector()
        # The injector's plan is frozen, so whether the retry protocol
        # is needed at all can be decided once instead of per issue.
        self._faulty = (
            self.faults.active("ate.drop") or self.faults.active("ate.delay")
        )
        # Observability hook; DPU.enable_tracing swaps in a live tracer.
        self.trace = NULL_TRACER
        self.topology = CrossbarTopology(config)
        # Receiving request FIFOs, bounded to the hardware SRAM depth:
        # a put into a full inbox blocks in the crossbar until the
        # engine drains an entry, backpressuring fan-in senders.
        self._inboxes: Dict[int, Store] = {
            core: Store(engine, capacity=config.ate_inbox_depth or None)
            for core in config.core_ids
        }
        self._issue_slots: Dict[int, Resource] = {
            core: Resource(engine, 1) for core in config.core_ids
        }
        # SW RPC handlers installed per core: name -> callable(args).
        # A handler may be a plain function or a generator (to charge
        # additional cycles); its return value travels back.
        self._handlers: Dict[int, Dict[str, Callable]] = {
            core: {} for core in config.core_ids
        }
        # Cycles of interrupt work each core owes (drained by the
        # runtime into that core's next compute charge).
        self.interrupt_debt: Dict[int, float] = {
            core: 0.0 for core in config.core_ids
        }
        # Retry protocol state (consulted only under fault injection):
        # per-source sequence counter, and per-destination cache of the
        # last executed (seq, value) per source for dedup on resend.
        self._seq: Dict[int, int] = {core: 0 for core in config.core_ids}
        self._reply_cache: Dict[int, Dict[int, tuple]] = {
            core: {} for core in config.core_ids
        }
        for core in config.core_ids:
            engine.process(
                self._engine_loop(core), name=f"ate[{core}]", daemon=True
            )

    # -- software interface -------------------------------------------------

    def install_handler(self, core_id: int, name: str, handler: Callable) -> None:
        """Pre-install a software RPC handler on ``core_id``."""
        self._handlers[core_id][name] = handler

    def issue(
        self,
        src: int,
        dst: int,
        kind: RpcKind,
        address: int = 0,
        operand: int = 0,
        operand2: int = 0,
        handler: Optional[str] = None,
        args: Any = None,
        trace_id: int = 0,
    ):
        """Issue one request; generator returns a reply event.

        ``yield from ate.issue(...)`` gives back a :class:`SimEvent`
        that succeeds (with the RPC's return value) when the response
        arrives; the caller may compute before yielding it. The
        one-outstanding-request rule is enforced per source core.
        """
        engine = self.engine
        slot = self._issue_slots[src]
        yield slot.acquire()
        reply = SimEvent(engine)
        seq = self._seq[src] + 1
        self._seq[src] = seq
        message = _Message(
            kind=kind,
            src=src,
            dst=dst,
            address=address,
            operand=operand,
            operand2=operand2,
            handler=handler,
            args=args,
            reply=reply,
            issued_at=engine.now,
            seq=seq,
            trace_id=trace_id,
        )
        yield Timeout(engine, self.topology.one_way_cycles(src, dst))
        completion = SimEvent(engine)
        if self._faulty:
            yield from self._transmit(message, "request")
            self.engine.process(
                self._await_with_retry(slot, message, completion),
                name=f"ate.retry[{src}->{dst}]",
            )
        else:
            yield from self._inbox_put(dst, message)
            reply.add_callback(lambda ev: self._finish(slot, completion, ev))
        return completion

    def _inbox_put(self, dst: int, message: _Message):
        """Deliver into a bounded inbox, accounting backpressure.

        Stall counters are emitted only when the sender actually
        blocked, so the uncontended stats snapshot is unchanged."""
        inbox = self._inboxes[dst]
        if inbox.capacity is not None and len(inbox.items) >= inbox.capacity:
            began = self.engine.now
            yield inbox.put(message)
            waited = self.engine.now - began
            if waited > 0:
                self.stats.count("ate.inbox_stall_cycles", waited)
                self.stats.count("ate.inbox_stalls", 1)
        else:
            yield inbox.put(message)
        self.stats.peak("ate.inbox_occupancy_peak", inbox.peak_occupancy)

    def inbox_occupancy(self) -> Dict[int, int]:
        """Cores with queued requests -> queue depth (diagnostics)."""
        return {
            core: len(store) for core, store in self._inboxes.items() if len(store)
        }

    def _finish(self, slot: Resource, completion: SimEvent, reply: SimEvent) -> None:
        slot.release()
        if reply.exception is not None:
            completion.fail(reply.exception)
        else:
            completion.succeed(reply.value)

    # -- retry protocol (active only when faults target the ATE) -----------

    def _fault_mode(self) -> bool:
        return self._faulty

    def _transmit(self, message: _Message, leg: str):
        """One crossbar traversal that may be delayed or lost."""
        label = (
            f"{leg} {message.kind.value} {message.src}->{message.dst} "
            f"seq={message.seq}"
        )
        if self.faults.roll("ate.delay", detail=label):
            yield self.engine.timeout(self.faults.delay_cycles("ate.delay"))
        if self.faults.roll("ate.drop", detail=label):
            self.stats.count("ate.dropped", 1)
            return
        yield from self._inbox_put(message.dst, message)

    def _await_with_retry(self, slot: Resource, message: _Message,
                          completion: SimEvent):
        """Requester-side driver: timeout, exponential backoff, resend.

        Holds the issue slot for the whole exchange so the paper's
        one-outstanding-request rule survives retransmission.
        """
        reply = message.reply
        timeout_cycles = self.config.ate_rpc_timeout_cycles
        attempt = 0
        try:
            while True:
                deadline = self.engine.timeout(timeout_cycles << attempt)
                index, value = yield self.engine.any_of([reply, deadline])
                if index == 0:
                    slot.release()
                    completion.succeed(value)
                    return
                attempt += 1
                if attempt > self.config.ate_rpc_max_retries:
                    slot.release()
                    completion.fail(
                        AteError(
                            f"ATE {message.kind.value} {message.src}->"
                            f"{message.dst} seq={message.seq} gave up after "
                            f"{attempt - 1} retries",
                            site=f"ate.issue[{message.src}->{message.dst}]",
                            sim_time=self.engine.now,
                            retry_count=attempt - 1,
                            occupancy={
                                "dst_inbox": len(self._inboxes[message.dst]),
                                "dst_blocked_putters": self._inboxes[
                                    message.dst
                                ].blocked_putters,
                            },
                        )
                    )
                    return
                self.stats.count("ate.retries", 1)
                yield from self._transmit(message, "retry")
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:
            # A failed reply (e.g. AteError from the remote handler)
            # propagates through the AnyOf; forward it to the caller.
            slot.release()
            completion.fail(error)

    def call(self, src: int, dst: int, kind: RpcKind, **kwargs):
        """Blocking request: issue and stall for the value."""
        trace = self.trace
        if not trace.enabled:
            completion = yield from self.issue(src, dst, kind, **kwargs)
            value = yield completion
            return value
        with trace.span(f"ate.{kind.value}", unit=f"core{src}",
                        src=src, dst=dst) as span:
            trace.flow_start(span.id, f"ate.{kind.value}", f"core{src}")
            completion = yield from self.issue(
                src, dst, kind, trace_id=span.id, **kwargs
            )
            value = yield completion
        return value

    def posted_store(self, src: int, dst: int, address: int, value: int):
        """Fire-and-forget remote store.

        The paper stalls the requester only for RPCs "which expect
        return values (such as fetch-and-add)"; a plain store needs no
        reply, so the issue slot frees as soon as the message is in
        the interconnect — the fast path for barrier release fan-out.
        """
        slot = self._issue_slots[src]
        yield slot.acquire()
        message = _Message(
            kind=RpcKind.STORE,
            src=src,
            dst=dst,
            address=address,
            operand=value,
            reply=None,
            issued_at=self.engine.now,
        )
        yield self.engine.timeout(self.topology.one_way_cycles(src, dst))
        yield from self._inbox_put(dst, message)
        slot.release()
        if self.trace.enabled:
            self.trace.instant("ate.posted_store", unit=f"core{src}",
                               dst=dst, address=address)

    # Convenience wrappers used throughout the runtime and apps.

    def remote_load(self, src: int, dst: int, address: int):
        return self.call(src, dst, RpcKind.LOAD, address=address)

    def remote_store(self, src: int, dst: int, address: int, value: int):
        return self.call(src, dst, RpcKind.STORE, address=address, operand=value)

    def fetch_add(self, src: int, dst: int, address: int, delta: int):
        return self.call(src, dst, RpcKind.FETCH_ADD, address=address, operand=delta)

    def compare_swap(
        self, src: int, dst: int, address: int, expected: int, desired: int
    ):
        return self.call(
            src,
            dst,
            RpcKind.COMPARE_SWAP,
            address=address,
            operand=expected,
            operand2=desired,
        )

    def software_rpc(self, src: int, dst: int, handler: str, args: Any = None):
        return self.call(src, dst, RpcKind.SOFTWARE, handler=handler, args=args)

    # -- receiving engine -------------------------------------------------------

    def _engine_loop(self, core_id: int):
        engine = self.engine
        inbox = self._inboxes[core_id]
        cache = self._reply_cache[core_id]
        stats = self.stats
        hw_execute = self.config.ate_hw_execute_cycles
        amo_extra = self.config.ate_amo_extra_cycles
        sw_overhead = self.config.ate_sw_handler_overhead_cycles
        software = RpcKind.SOFTWARE
        faa = RpcKind.FETCH_ADD
        cas = RpcKind.COMPARE_SWAP
        while True:
            message: _Message = yield inbox.get()
            if message.seq and cache.get(message.src, (0,))[0] == message.seq:
                # Duplicate of an already-executed request (its reply
                # was lost or late): replay the cached reply without
                # re-executing, keeping atomics exactly-once.
                yield Timeout(engine, hw_execute)
                stats.count("ate.duplicates", 1)
                if message.reply is not None:
                    self._send_reply(message, value=cache[message.src][1])
                continue
            began = engine.now
            kind = message.kind
            if kind is software:
                execute = sw_overhead
            elif kind is faa or kind is cas:
                execute = hw_execute + amo_extra
            else:
                execute = hw_execute
            yield Timeout(engine, execute)
            try:
                if kind is software:
                    value = yield from self._run_handler(core_id, message)
                else:
                    value = self._perform(core_id, message)
            except AteError as error:
                if self.trace.enabled:
                    self.trace.complete(
                        f"ate.exec.{message.kind.value}", f"ate{core_id}",
                        began, self.engine.now - began, src=message.src,
                        parent=message.trace_id, error=type(error).__name__,
                    )
                if message.reply is not None:
                    self._send_reply(message, error=error)
                continue
            if message.seq:
                cache[message.src] = (message.seq, value)
            if self.trace.enabled:
                self.trace.complete(
                    f"ate.exec.{message.kind.value}", f"ate{core_id}",
                    began, self.engine.now - began,
                    src=message.src, parent=message.trace_id,
                )
                if message.trace_id:
                    # Arrow head anchored at the execution slice start;
                    # the tail sits in the requester's ate.* span.
                    self.trace.flow_end(
                        message.trace_id, f"ate.{message.kind.value}",
                        f"ate{core_id}", ts=began,
                    )
            # The injected operation appears as stalls in the remote
            # instruction stream; account it as interrupt debt.
            self.interrupt_debt[core_id] += execute
            if message.reply is not None:
                self._send_reply(message, value=value)
                rtt_key = (
                    f"ate.rtt.{message.kind.value}."
                    + ("local" if self.topology.same_macro(message.src, core_id)
                       else "remote")
                )
                return_latency = self.topology.one_way_cycles(
                    core_id, message.src
                )
                stats.sample(
                    rtt_key,
                    engine.now - message.issued_at + return_latency,
                )
            stats.count("ate.messages", 1)

    def _send_reply(self, message: _Message, value: Any = None, error=None) -> None:
        latency = self.topology.one_way_cycles(message.dst, message.src)
        if error is None and self._fault_mode():
            # The reply leg is also lossy; a dropped reply triggers the
            # requester's timeout and a (deduplicated) resend.
            def reply_leg():
                yield self.engine.timeout(latency)
                yield from self._transmit_reply(message, value)

            self.engine.process(reply_leg(), name="ate.reply")
            return

        def deliver(_event) -> None:
            if message.reply.triggered:
                return  # a duplicate already satisfied the requester
            if error is not None:
                message.reply.fail(error)
            else:
                message.reply.succeed(value)

        self.engine.timeout(latency).add_callback(deliver)

    def _transmit_reply(self, message: _Message, value: Any):
        label = (
            f"reply {message.kind.value} {message.dst}->{message.src} "
            f"seq={message.seq}"
        )
        if self.faults.roll("ate.delay", detail=label):
            yield self.engine.timeout(self.faults.delay_cycles("ate.delay"))
        if self.faults.roll("ate.drop", detail=label):
            self.stats.count("ate.dropped", 1)
            return
        if not message.reply.triggered:
            message.reply.succeed(value)

    def _run_handler(self, core_id: int, message: _Message):
        handlers = self._handlers[core_id]
        handler = handlers.get(message.handler or "")
        if handler is None:
            raise AteError(
                f"core {core_id} has no software RPC handler "
                f"{message.handler!r} installed",
                site=f"ate.handler[{core_id}]",
                sim_time=self.engine.now,
            )
        result = handler(message.args)
        if hasattr(result, "send") and hasattr(result, "throw"):
            value = yield from result
            return value
        yield self.engine.timeout(0)
        return result

    # -- hardware operation semantics ---------------------------------------------

    def _perform(self, owner: int, message: _Message) -> int:
        address = message.address
        if message.kind is RpcKind.LOAD:
            return self._read64(owner, address)
        if message.kind is RpcKind.STORE:
            self._write64(owner, address, message.operand)
            return 0
        if message.kind is RpcKind.FETCH_ADD:
            old = self._read64(owner, address)
            self._write64(owner, address, (old + message.operand) & (2**64 - 1))
            return old
        if message.kind is RpcKind.COMPARE_SWAP:
            current = self._read64(owner, address)
            if current == message.operand & (2**64 - 1):
                self._write64(owner, address, message.operand2)
            return current
        raise AteError(f"cannot perform {message.kind}")  # pragma: no cover

    def _read64(self, owner: int, address: int) -> int:
        if self.address_map.is_dmem(address):
            core, offset = self.address_map.split_dmem(address)
            return self.scratchpads[core].read_u64(offset)
        if self.address_map.is_ddr(address):
            return self.ddr_memory.read_u64(address)
        raise AteError(
            f"ATE address {address:#x} is neither DDR nor DMEM",
            site=f"ate.read[{owner}]",
            sim_time=self.engine.now,
        )

    def _write64(self, owner: int, address: int, value: int) -> None:
        if self.address_map.is_dmem(address):
            core, offset = self.address_map.split_dmem(address)
            self.scratchpads[core].write_u64(offset, value)
            return
        if self.address_map.is_ddr(address):
            self.ddr_memory.write_u64(address, value)
            return
        raise AteError(
            f"ATE address {address:#x} is neither DDR nor DMEM",
            site=f"ate.write[{owner}]",
            sim_time=self.engine.now,
        )
