"""Atomic Transaction Engine (paper §2.3)."""

from .crossbar import CrossbarTopology
from .rpc import Ate, AteError, RpcKind

__all__ = ["Ate", "AteError", "CrossbarTopology", "RpcKind"]
