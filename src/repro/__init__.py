"""repro — a reproduction of "A Many-core Architecture for In-Memory
Data Processing" (Agrawal et al., MICRO-50, 2017).

The package models the DPU SoC — 32 low-power dpCores, the
descriptor-programmed Data Movement System (DMS), the Atomic
Transaction Engine (ATE) and the mailbox controller — as a
cycle-approximate discrete-event simulation with a *functional* data
path, plus a calibrated Xeon baseline and the paper's six co-designed
applications (SVM, similarity search, SQL, HyperLogLog, JSON parsing,
stereo disparity).

Quickstart::

    from repro import DPU, DPU_40NM
    dpu = DPU(DPU_40NM)

See ``examples/quickstart.py`` for the paper's Listing 1 stream
reproduced end to end.
"""

from .core import (
    DPU,
    DPU_16NM,
    DPU_40NM,
    XEON_TDP_WATTS,
    CoreContext,
    DPUConfig,
    DpCoreInterpreter,
    LaunchResult,
    PowerModel,
    assemble,
)
from .dms import (
    Descriptor,
    DescriptorType,
    PartitionLayout,
    PartitionMode,
    PartitionSpec,
)
from .faults import FaultInjector, FaultPlan
from .sim import Engine, SimulationError

__version__ = "1.0.0"

__all__ = [
    "DPU",
    "DPU_16NM",
    "DPU_40NM",
    "CoreContext",
    "DPUConfig",
    "Descriptor",
    "DescriptorType",
    "DpCoreInterpreter",
    "Engine",
    "FaultInjector",
    "FaultPlan",
    "LaunchResult",
    "PartitionLayout",
    "PartitionMode",
    "PartitionSpec",
    "PowerModel",
    "SimulationError",
    "XEON_TDP_WATTS",
    "assemble",
    "__version__",
]
