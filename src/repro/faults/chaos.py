"""Seeded chaos schedules: kill / partition / straggler timelines.

MuchiSim-style rack simulations need failure *schedules*, not just
per-event coin flips: a whole DPU dies at a drawn time, a switch
partition isolates a drawn subset for a window, a node stragglers at
a drawn dilation. :func:`chaos_schedule` draws such a timeline from a
seed so every chaos run is exactly reproducible, and
:func:`chaos_plan` packages it straight into a
:class:`~repro.faults.FaultPlan` for ``Cluster(fault_plan=...)``.

By default victims are drawn from DPUs 1..N-1, which keeps every
pre-existing seed reproducing its exact historical schedule. Pass
``include_coordinator=True`` to widen the draw to all N DPUs — the
recovery layer elects a new leader when DPU 0 dies (see
docs/RESILIENCE.md, "Coordinator failover"). The only hard invariant
is that at least one DPU survives the kill schedule.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Tuple

import numpy as np

from .plan import ChaosSpec, FaultError, FaultPlan

__all__ = ["chaos_schedule", "chaos_plan", "describe"]


def _stream(seed: int, label: str) -> np.random.Generator:
    """Same derivation as FaultInjector's per-site streams, so one
    chaos site's draws never perturb another's."""
    mix = zlib.crc32(label.encode("ascii"))
    return np.random.Generator(np.random.PCG64((int(seed) << 32) ^ mix))


def chaos_schedule(
    seed: int,
    num_dpus: int,
    horizon_cycles: float,
    kills: int = 0,
    partitions: int = 0,
    stragglers: int = 0,
    partition_cycles: float = 500_000.0,
    slow_cycles: float = 2_000_000.0,
    slow_factor: float = 4.0,
    include_coordinator: bool = False,
) -> Tuple[ChaosSpec, ...]:
    """Draw a deterministic chaos timeline.

    ``kills`` whole-node deaths, ``partitions`` transient fabric cuts
    (each isolating one victim DPU for ``partition_cycles``), and
    ``stragglers`` slow spells (dilation ``slow_factor`` for
    ``slow_cycles``) are placed uniformly in ``[0, horizon_cycles)``.
    Victims are drawn without replacement per site over the sorted DPU
    ids — DPUs 1..N-1 by default (bit-identical to every historical
    seed), or all of 0..N-1 with ``include_coordinator=True``, which
    puts the coordinator itself in the blast radius. The one hard
    invariant, either way: at least one DPU survives the kills.
    """
    if num_dpus < 2:
        raise FaultError(f"chaos needs >= 2 DPUs: {num_dpus}")
    if horizon_cycles <= 0:
        raise FaultError(f"horizon must be positive: {horizon_cycles}")
    candidates = num_dpus if include_coordinator else num_dpus - 1
    for count, what in ((kills, "kills"), (partitions, "partitions"),
                        (stragglers, "stragglers")):
        if count < 0:
            raise FaultError(f"negative {what}: {count}")
    if kills > candidates or kills >= num_dpus:
        raise FaultError(
            f"{kills} kills drawn from {candidates} candidate DPUs of "
            f"{num_dpus} would not leave at least one DPU alive"
        )
    if max(partitions, stragglers) > candidates:
        raise FaultError(
            f"at most {candidates} partition/straggler victims exist"
        )
    specs = []
    for site, count in (("dpu.dead", kills),
                        ("fabric.partition", partitions),
                        ("dpu.slow", stragglers)):
        if count == 0:
            continue
        stream = _stream(seed, site)
        if include_coordinator:
            victims = stream.choice(num_dpus, size=count, replace=False)
        else:
            victims = 1 + stream.choice(num_dpus - 1, size=count,
                                        replace=False)
        times = np.sort(stream.uniform(0.0, horizon_cycles, size=count))
        for victim, at_cycle in zip(victims, times):
            if site == "dpu.dead":
                spec = ChaosSpec(site, (int(victim),), float(at_cycle))
            elif site == "fabric.partition":
                spec = ChaosSpec(site, (int(victim),), float(at_cycle),
                                 duration=float(partition_cycles))
            else:
                spec = ChaosSpec(site, (int(victim),), float(at_cycle),
                                 duration=float(slow_cycles),
                                 factor=float(slow_factor))
            specs.append(spec)
    specs.sort(key=lambda spec: (spec.at_cycle, spec.site))
    return tuple(specs)


def chaos_plan(
    seed: int,
    num_dpus: int,
    horizon_cycles: float,
    kills: int = 0,
    partitions: int = 0,
    stragglers: int = 0,
    rates: Optional[dict] = None,
    **schedule_kwargs,
) -> FaultPlan:
    """A :class:`FaultPlan` carrying a drawn chaos timeline (plus any
    per-event ``rates``, e.g. ``{"net.drop": 1e-3}``)."""
    return FaultPlan(
        seed=seed,
        rates=dict(rates) if rates else {},
        chaos=chaos_schedule(
            seed, num_dpus, horizon_cycles,
            kills=kills, partitions=partitions, stragglers=stragglers,
            **schedule_kwargs,
        ),
    )


def describe(specs: Sequence[ChaosSpec]) -> str:
    """Human-readable one-line-per-event timeline (for reports)."""
    lines = []
    for spec in specs:
        targets = ",".join(f"dpu{t}" for t in spec.targets)
        if spec.site == "dpu.dead":
            lines.append(f"t={spec.at_cycle:.0f}: kill {targets}")
        elif spec.site == "fabric.partition":
            lines.append(
                f"t={spec.at_cycle:.0f}: partition {targets} for "
                f"{spec.duration:.0f} cycles"
            )
        else:
            lines.append(
                f"t={spec.at_cycle:.0f}: slow {targets} x{spec.factor:g} "
                f"for {spec.duration:.0f} cycles"
            )
    return "\n".join(lines)
