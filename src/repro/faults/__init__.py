"""Deterministic fault injection and the resilience machinery's knobs."""

from .chaos import chaos_plan, chaos_schedule
from .plan import (
    CHAOS_SITES,
    FAULT_SITES,
    ChaosSpec,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRecord,
)

__all__ = [
    "CHAOS_SITES",
    "FAULT_SITES",
    "ChaosSpec",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "chaos_plan",
    "chaos_schedule",
]
