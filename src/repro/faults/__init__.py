"""Deterministic fault injection and the resilience machinery's knobs."""

from .plan import (
    FAULT_SITES,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRecord,
)

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
]
