"""Seeded, deterministic fault injection for the DPU reproduction.

Real PIM hardware ships with the reliability machinery this module
exercises: SECDED ECC on the DDR interface, CRC32 units guarding the
DMS descriptor path, retry protocols on the ATE and the inter-DPU
fabric. The reproduction models the *happy path* bit-exactly; this
module adds the unhappy one — without giving up determinism.

Two pieces:

* :class:`FaultPlan` — an immutable description of *what* to inject:
  a seed plus a per-site fault rate. ``FaultPlan.none()`` is the
  zero-overhead default: every injection point collapses to a single
  ``False`` check and no RNG is ever constructed, so simulations with
  injection disabled reproduce seed timings exactly.
* :class:`FaultInjector` — the runtime object units consult at their
  injection points. Each site draws from its own seeded PCG64 stream
  (derived from ``seed`` and the site name), so the fault pattern at
  one site is independent of how often another site rolls — the same
  plan produces the same fault trace even as unrelated subsystems are
  reconfigured.

All nondeterminism in the simulator must flow through this module;
CI greps the tree to enforce that no other module reaches for
``random.random()`` or ``time.time()``.

Injection-site catalogue (see docs/RESILIENCE.md):

======================  ================================================
site                    meaning of one "event"
======================  ================================================
``ddr.bitflip``         per-*bit* transient flip on a DDR transfer
``dms.descriptor``      per-descriptor corruption on the DMAD fetch path
``ate.drop``            per-leg loss of an ATE request or reply message
``ate.delay``           per-leg stall of an ATE message in the crossbar
``net.drop``            per-message loss on an inter-DPU fabric link
``core.dead``           per-core hard failure, drawn once at launch
======================  ================================================

Rack-scale chaos events (:class:`ChaosSpec`, consumed by
:mod:`repro.cluster.recovery`) are *scheduled* rather than rolled
per event — each spec names a site, a target DPU set, and a seeded
sim-time window:

======================  ================================================
site                    meaning
======================  ================================================
``dpu.dead``            whole-node kill: the DPU's A9 stops sending and
                        receiving at ``at_cycle`` (fail-stop). Any DPU
                        may be targeted, the coordinator included —
                        the recovery layer elects a new leader
``fabric.partition``    the named DPU set is severed from the rest of
                        the fabric for ``[at_cycle, at_cycle+duration)``
``dpu.slow``            straggler: the DPU's job-side sends are dilated
                        by ``factor`` inside the window
======================  ================================================
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "CHAOS_SITES",
    "FAULT_SITES",
    "ChaosSpec",
    "FaultError",
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
]

FAULT_SITES: Tuple[str, ...] = (
    "ddr.bitflip",
    "dms.descriptor",
    "ate.drop",
    "ate.delay",
    "net.drop",
    "core.dead",
)

# Scheduled rack-scale events (whole-node kill, fabric partition,
# straggler dilation). Unlike FAULT_SITES these are not Bernoulli
# rolls: each occurrence is a ChaosSpec pinned to a sim time.
CHAOS_SITES: Tuple[str, ...] = (
    "dpu.dead",
    "fabric.partition",
    "dpu.slow",
)


class FaultError(Exception):
    """Misuse of the fault framework (unknown site, bad rate)."""


_FAULT_SITE_SET = frozenset(FAULT_SITES)


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as it appears in the trace."""

    site: str
    cycle: float
    detail: str = ""


_CHAOS_SITE_SET = frozenset(CHAOS_SITES)


@dataclass(frozen=True)
class ChaosSpec:
    """One scheduled rack-scale event.

    ``targets`` names the affected DPU indices — the killed/slowed
    node, or (for ``fabric.partition``) the group severed from every
    DPU outside it. ``duration`` is the window length for partitions
    and slow spells (ignored for ``dpu.dead``, which is fail-stop).
    ``factor`` is the cycle-dilation multiplier for ``dpu.slow``.
    """

    site: str
    targets: Tuple[int, ...]
    at_cycle: float
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in _CHAOS_SITE_SET:
            raise FaultError(
                f"unknown chaos site {self.site!r}; known sites: "
                f"{', '.join(CHAOS_SITES)}"
            )
        if not self.targets:
            raise FaultError(f"{self.site} spec needs at least one target DPU")
        if any(target < 0 for target in self.targets):
            raise FaultError(f"negative DPU index in {self.targets}")
        if self.at_cycle < 0:
            raise FaultError(f"negative chaos time {self.at_cycle}")
        if self.duration < 0:
            raise FaultError(f"negative chaos duration {self.duration}")
        if self.site == "dpu.slow" and self.factor < 1.0:
            raise FaultError(
                f"dpu.slow factor must be >= 1.0: {self.factor}"
            )

    @property
    def end_cycle(self) -> float:
        """Window end (``inf`` for the fail-stop ``dpu.dead``)."""
        if self.site == "dpu.dead":
            return float("inf")
        return self.at_cycle + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """What to inject: a seed and per-site rates.

    Rates are probabilities per *event* — per bit for ``ddr.bitflip``,
    per descriptor / message / core for the other sites. Sites absent
    from ``rates`` (or at rate 0) are never consulted beyond a single
    boolean check, which is how the zero-overhead-off guarantee holds.
    """

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)
    ate_delay_mean_cycles: float = 2000.0  # mean stall of an ate.delay hit
    # Scheduled rack-scale events (dpu.dead / fabric.partition /
    # dpu.slow). An empty tuple keeps every cluster on the exact
    # pre-recovery code path: no heartbeats, no epochs, no detector.
    chaos: Tuple[ChaosSpec, ...] = ()

    def __post_init__(self) -> None:
        for site, rate in self.rates.items():
            if site not in FAULT_SITES:
                raise FaultError(
                    f"unknown fault site {site!r}; known sites: "
                    f"{', '.join(FAULT_SITES)}"
                )
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"rate for {site!r} must be in [0, 1]: {rate}")
        for spec in self.chaos:
            if not isinstance(spec, ChaosSpec):
                raise FaultError(f"chaos entries must be ChaosSpec: {spec!r}")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The disabled plan: no site ever fires."""
        return cls()

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, sites=FAULT_SITES) -> "FaultPlan":
        """One rate across ``sites`` (default: every site)."""
        return cls(seed=seed, rates={site: rate for site in sites})

    def rate(self, site: str) -> float:
        if site not in _FAULT_SITE_SET:
            raise FaultError(f"unknown fault site {site!r}")
        return float(self.rates.get(site, 0.0))

    @property
    def enabled(self) -> bool:
        return bool(self.chaos) or any(
            rate > 0.0 for rate in self.rates.values()
        )

    def with_rates(self, **rates: float) -> "FaultPlan":
        """A copy with ``rates`` merged in (dots spelled as ``__``)."""
        merged = dict(self.rates)
        merged.update({site.replace("__", "."): r for site, r in rates.items()})
        return FaultPlan(
            seed=self.seed,
            rates=merged,
            ate_delay_mean_cycles=self.ate_delay_mean_cycles,
            chaos=self.chaos,
        )

    def with_chaos(self, *specs: ChaosSpec) -> "FaultPlan":
        """A copy with ``specs`` appended to the chaos timeline."""
        return FaultPlan(
            seed=self.seed,
            rates=self.rates,
            ate_delay_mean_cycles=self.ate_delay_mean_cycles,
            chaos=tuple(self.chaos) + tuple(specs),
        )

    def chaos_for(self, site: str) -> Tuple[ChaosSpec, ...]:
        """The scheduled events of one chaos site, in time order."""
        if site not in _CHAOS_SITE_SET:
            raise FaultError(f"unknown chaos site {site!r}")
        return tuple(sorted(
            (spec for spec in self.chaos if spec.site == site),
            key=lambda spec: spec.at_cycle,
        ))


class FaultInjector:
    """The seeded oracle units consult at their injection points.

    ``engine`` is optional and only used to timestamp the trace; an
    injector without an engine records faults at cycle 0.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        engine=None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan.none()
        self.engine = engine
        self.trace: List[FaultRecord] = []
        self._streams: Dict[str, np.random.Generator] = {}
        # Hot-path gate table: sites with a nonzero rate. The plan is a
        # frozen dataclass, so this never goes stale.
        self._active_sites = frozenset(
            site for site, rate in self.plan.rates.items() if rate > 0.0
        )

    # -- stream management -------------------------------------------------

    def _stream(self, site: str) -> np.random.Generator:
        """Per-site PCG64 stream so sites cannot perturb one another."""
        stream = self._streams.get(site)
        if stream is None:
            mix = zlib.crc32(site.encode("ascii"))
            stream = np.random.Generator(
                np.random.PCG64((int(self.plan.seed) << 32) ^ mix)
            )
            self._streams[site] = stream
        return stream

    @property
    def enabled(self) -> bool:
        return self.plan.enabled

    def active(self, site: str) -> bool:
        """Fast gate: is this site worth consulting at all?"""
        if site in self._active_sites:
            return True
        if site not in _FAULT_SITE_SET:
            raise FaultError(f"unknown fault site {site!r}")
        return False

    # -- draws --------------------------------------------------------------

    def roll(self, site: str, detail: str = "") -> bool:
        """One Bernoulli trial at the site's rate; records hits."""
        rate = self.plan.rate(site)
        if rate <= 0.0:
            return False
        if self._stream(site).random() >= rate:
            return False
        self.record(site, detail)
        return True

    def count(self, site: str, trials: int, detail: str = "") -> int:
        """Number of faulting events among ``trials`` (binomial draw)."""
        rate = self.plan.rate(site)
        if rate <= 0.0 or trials <= 0:
            return 0
        hits = int(self._stream(site).binomial(trials, rate))
        if hits:
            self.record(site, detail or f"{hits}/{trials} events")
        return hits

    def choose(self, site: str, population: int, k: int) -> np.ndarray:
        """``k`` distinct positions in ``[0, population)``, sorted."""
        positions = self._stream(site).choice(population, size=k, replace=False)
        return np.sort(positions)

    def delay_cycles(self, site: str) -> int:
        """Extra cycles for a delay-type fault (exponential, mean from
        the plan); always at least one cycle."""
        draw = self._stream(site).exponential(self.plan.ate_delay_mean_cycles)
        return max(1, int(draw))

    # -- trace ---------------------------------------------------------------

    def record(self, site: str, detail: str = "") -> None:
        now = float(self.engine.now) if self.engine is not None else 0.0
        self.trace.append(FaultRecord(site=site, cycle=now, detail=detail))

    def fault_count(self, site: Optional[str] = None) -> int:
        if site is None:
            return len(self.trace)
        return sum(1 for record in self.trace if record.site == site)
