"""The Data Movement System (paper §3)."""

from .descriptor import (
    DESCRIPTOR_CAPABILITIES,
    DESCRIPTOR_SIZE,
    EVENT_NONE,
    Descriptor,
    DescriptorError,
    DescriptorType,
    PartitionMode,
    PartitionSpec,
    ddr_to_dmem,
    dmem_to_ddr,
    loop,
)
from .dmac import Dmac, DmsHardwareError, PartitionChunk
from .dmad import Dmad, DmadChannel
from .dmax import Dmax
from .events import EVENTS_PER_CORE, EventFile
from .partition import PartitionLayout, compute_cids, partition_record_width

__all__ = [
    "DESCRIPTOR_CAPABILITIES",
    "DESCRIPTOR_SIZE",
    "EVENTS_PER_CORE",
    "EVENT_NONE",
    "Descriptor",
    "DescriptorError",
    "DescriptorType",
    "Dmac",
    "Dmad",
    "DmadChannel",
    "Dmax",
    "DmsHardwareError",
    "EventFile",
    "PartitionChunk",
    "PartitionLayout",
    "PartitionMode",
    "PartitionSpec",
    "compute_cids",
    "ddr_to_dmem",
    "dmem_to_ddr",
    "loop",
    "partition_record_width",
]
