"""DMAX: the per-macro crossbar between the DMAC and DMEMs.

Each of the 4 dpCore macros has one DMAX complex (paper §3.2) that
arbitrates its 8 dpCores' descriptor traffic into the central DMAC
and carries transferred data into/out of their DMEMs. We model it as
a bandwidth server at the AXI data-path rate (128-bit = 16 B/cycle)
plus a small arbitration latency. Because there are four DMAXes but
one DDR channel, the crossbars are never the system bottleneck for
streaming — exactly the paper's design point — but they do bound how
fast the partition store engine can fan rows out to one macro.
"""

from __future__ import annotations

from ..sim import BandwidthServer, Engine, SimEvent

__all__ = ["Dmax"]


class Dmax:
    """One macro's crossbar."""

    def __init__(
        self,
        engine: Engine,
        macro_id: int,
        bytes_per_cycle: float = 16.0,
        arbitration_cycles: float = 4.0,
    ) -> None:
        self.engine = engine
        self.macro_id = macro_id
        self.server = BandwidthServer(
            engine,
            bytes_per_cycle,
            overhead_cycles=arbitration_cycles,
            name=f"dmax{macro_id}",
        )

    def transfer(self, nbytes: int) -> SimEvent:
        """Move ``nbytes`` across the crossbar; completes when done."""
        if nbytes <= 0:
            return self.engine.timeout(0)
        return self.server.transfer(nbytes)

    def utilization(self) -> float:
        return self.server.utilization()

    @property
    def bytes_served(self) -> int:
        return self.server.bytes_served
