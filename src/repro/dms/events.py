"""Per-dpCore DMS event files.

The DMS associates 32 binary events with each dpCore (paper §3.1).
Descriptors name events to wait on (precondition) and to set or clear
on completion (notification); software blocks on an event with the
``wfe`` instruction and clears it after consuming the buffer it
guards. This is the entire flow-control vocabulary between a dpCore
and the data movement hardware.
"""

from __future__ import annotations

from typing import List

from ..sim import BinaryEvent, Engine, SimEvent

__all__ = ["EventFile", "EVENTS_PER_CORE"]

EVENTS_PER_CORE = 32


class EventFile:
    """The 32 binary events belonging to one dpCore."""

    def __init__(self, engine: Engine, core_id: int) -> None:
        self.engine = engine
        self.core_id = core_id
        self.events: List[BinaryEvent] = [
            BinaryEvent(engine, event_id) for event_id in range(EVENTS_PER_CORE)
        ]

    def _check(self, event_id: int) -> None:
        if not 0 <= event_id < EVENTS_PER_CORE:
            raise ValueError(
                f"event id {event_id} outside 0..{EVENTS_PER_CORE - 1}"
            )

    def set(self, event_id: int) -> None:
        self._check(event_id)
        self.events[event_id].set()

    def clear(self, event_id: int) -> None:
        self._check(event_id)
        self.events[event_id].clear()

    def is_set(self, event_id: int) -> bool:
        self._check(event_id)
        return self.events[event_id].is_set

    def wait(self, event_id: int) -> SimEvent:
        """Event that succeeds when ``event_id`` is (or becomes) set.

        This is the hardware side of the ``wfe`` instruction.
        """
        self._check(event_id)
        return self.events[event_id].wait()
