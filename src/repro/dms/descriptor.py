"""DMS descriptors: the software interface to the data movement system.

Descriptors are 16-byte "macro instructions" (paper §3.3) built by
software in DMEM and pushed to the DMS. There are two classes:

* **data descriptors** — encode a movement between DDR, DMEM and the
  DMS's internal memories, with optional scatter/gather, striding and
  partitioning (paper Table 1);
* **control descriptors** — program loops over previous descriptors,
  configure the hash/range engine, and set/clear/wait events.

Table 1 (supported operations per direction) is encoded in
:data:`DESCRIPTOR_CAPABILITIES` and enforced at construction time.
Table 2 (the bit layout of the DDR->DMEM data descriptor) is
implemented by :meth:`Descriptor.encode` / :meth:`Descriptor.decode`
so the written-to-DMEM format is bit-exact with the paper.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "DescriptorType",
    "PartitionMode",
    "PartitionSpec",
    "Descriptor",
    "DescriptorError",
    "DESCRIPTOR_CAPABILITIES",
    "DESCRIPTOR_SIZE",
    "EVENT_NONE",
]

DESCRIPTOR_SIZE = 16  # bytes (paper §2.1: "16B DMS descriptors")
EVENT_NONE = 31  # event slot 31 reserved as the "no event" encoding


class DescriptorError(Exception):
    """Descriptor violates Table 1 capabilities or field ranges."""


class DescriptorType(enum.Enum):
    """Descriptor types: the six data directions of Table 1 plus
    control descriptors (§3.3)."""

    # Data descriptors (source -> destination).
    DDR_TO_DMEM = 0x1
    DMEM_TO_DDR = 0x2
    DMS_TO_DMS = 0x3
    DMS_TO_DMEM = 0x4
    DMEM_TO_DMS = 0x5
    DDR_TO_DMS = 0x6
    DMS_TO_DDR = 0x7
    # Control descriptors.
    LOOP = 0x8
    EVENT = 0x9
    HASH_CONFIG = 0xA
    RANGE_CONFIG = 0xB

    @property
    def is_data(self) -> bool:
        return self.value <= 0x7

    @property
    def is_control(self) -> bool:
        return not self.is_data


class PartitionMode(enum.Enum):
    """Partitioning schemes of the DMAC hash/range engine (§3.1)."""

    NONE = "none"
    HASH = "hash"  # CRC32 of key, then radix bits of the hash
    RADIX = "radix"  # radix bits of the raw key
    RANGE = "range"  # match against <= 32 programmed ranges


@dataclass(frozen=True)
class PartitionSpec:
    """Configuration for a partitioning operation.

    ``radix_bits`` selects how many bits index the output partition
    (32-way = 5 bits) and ``radix_shift`` which bit position they are
    taken from (the engine can inspect any aligned bit window of the
    CRC/key, which lets nested partitioning stages — e.g. an
    inter-DPU shuffle above an intra-DPU 32-way split — use
    uncorrelated bits of the same hash). ``bounds`` holds the RANGE
    mode's up-to-32 ascending upper bounds. ``key_from_crc``
    distinguishes hash-radix (inspect bits of the CRC) from raw radix
    (§3.1).
    """

    mode: PartitionMode
    radix_bits: int = 5
    bounds: Tuple[int, ...] = ()
    key_from_crc: bool = True
    radix_shift: int = 0

    def __post_init__(self) -> None:
        if self.mode is PartitionMode.RANGE:
            if not 1 <= len(self.bounds) <= 32:
                raise DescriptorError(
                    f"range partitioning takes 1..32 bounds, got {len(self.bounds)}"
                )
            if list(self.bounds) != sorted(self.bounds):
                raise DescriptorError("range bounds must be ascending")
        elif self.mode in (PartitionMode.HASH, PartitionMode.RADIX):
            if not 1 <= self.radix_bits <= 10:
                raise DescriptorError(
                    f"radix_bits must be 1..10, got {self.radix_bits}"
                )
            if not 0 <= self.radix_shift <= 32 - self.radix_bits:
                raise DescriptorError(
                    f"radix_shift must be 0..{32 - self.radix_bits} for "
                    f"{self.radix_bits} radix bits, got {self.radix_shift}"
                )

    @property
    def fanout(self) -> int:
        if self.mode is PartitionMode.RANGE:
            return len(self.bounds)
        if self.mode is PartitionMode.NONE:
            return 1
        return 1 << self.radix_bits


# Data descriptor types (Table 1's six directions + DMS->DDR); a
# module-level set because enum ``.value`` access goes through a slow
# descriptor protocol on the hot path.
_DATA_TYPES = frozenset({
    DescriptorType.DDR_TO_DMEM,
    DescriptorType.DMEM_TO_DDR,
    DescriptorType.DMS_TO_DMS,
    DescriptorType.DMS_TO_DMEM,
    DescriptorType.DMEM_TO_DMS,
    DescriptorType.DDR_TO_DMS,
    DescriptorType.DMS_TO_DDR,
})


# Table 1: which operations each data direction supports.
_CAP = {
    DescriptorType.DDR_TO_DMEM: frozenset({"scatter", "gather", "stride"}),
    DescriptorType.DMEM_TO_DDR: frozenset({"scatter", "gather", "stride"}),
    # Table 1 lists DMS->DMS as pure internal movement; the hash/range
    # engine pass is programmed through it, so it carries the spec.
    DescriptorType.DMS_TO_DMS: frozenset({"partition"}),
    DescriptorType.DMS_TO_DMEM: frozenset({"partition", "last_col"}),
    DescriptorType.DMEM_TO_DMS: frozenset({"rid_bv"}),
    DescriptorType.DDR_TO_DMS: frozenset({"stride", "key", "last_col"}),
    DescriptorType.DMS_TO_DDR: frozenset({"stride"}),
}
DESCRIPTOR_CAPABILITIES: Dict[DescriptorType, FrozenSet[str]] = _CAP


@dataclass(slots=True)
class Descriptor:
    """One 16-byte DMS command.

    Data descriptor fields mirror Table 2; control descriptors reuse
    the same container with their own fields populated. ``rows`` and
    ``col_width`` size the transfer; addresses are byte addresses
    (DMEM addresses are offsets into the issuing core's scratchpad
    unless ``dmem_core`` overrides the target core, as partition-store
    descriptors do).
    """

    dtype: DescriptorType
    # -- data fields (Table 2) ----------------------------------------
    rows: int = 0
    col_width: int = 4
    ddr_addr: int = 0
    dmem_addr: int = 0
    gather_src: bool = False
    scatter_dst: bool = False
    rle: bool = False
    src_addr_inc: bool = False
    dst_addr_inc: bool = False
    wait_event: Optional[int] = None
    notify_event: Optional[int] = None
    link_addr: int = 0
    # -- extended data fields (non-Table-2 directions) -----------------
    dmem_core: Optional[int] = None
    cmem_bank: int = 0
    is_key_column: bool = False
    last_column: bool = False
    partition: Optional[PartitionSpec] = None
    partition_layout: Optional["PartitionLayout"] = None  # set on config
    internal_mem: str = "cmem"  # DMS-internal memory: cmem|crc|cid|bv
    ddr_stride: Optional[int] = None  # bytes between elements (stride op)
    # -- control fields -------------------------------------------------
    loop_back: int = 0  # how many descriptors to jump back over
    loop_count: int = 0  # additional iterations
    set_events: Tuple[int, ...] = ()
    clear_events: Tuple[int, ...] = ()
    wait_events: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self._validate()

    # -- validation -----------------------------------------------------

    def _validate(self) -> None:
        if self.internal_mem not in ("cmem", "crc", "cid", "bv"):
            raise DescriptorError(f"unknown internal memory {self.internal_mem!r}")
        if self.dtype in _DATA_TYPES:
            caps = DESCRIPTOR_CAPABILITIES[self.dtype]
            if self.ddr_stride is not None and "stride" not in caps:
                raise DescriptorError(f"{self.dtype.name} does not support stride")
            if self.gather_src and "gather" not in caps:
                raise DescriptorError(f"{self.dtype.name} does not support gather")
            if self.scatter_dst and "scatter" not in caps:
                raise DescriptorError(f"{self.dtype.name} does not support scatter")
            if self.partition is not None and "partition" not in caps:
                raise DescriptorError(
                    f"{self.dtype.name} does not support partitioning"
                )
            if self.is_key_column and "key" not in caps:
                raise DescriptorError(f"{self.dtype.name} has no key column role")
            needs_rows = self.dtype in (
                DescriptorType.DDR_TO_DMEM,
                DescriptorType.DMEM_TO_DDR,
                DescriptorType.DDR_TO_DMS,
                DescriptorType.DMEM_TO_DMS,
            )
            if needs_rows and self.rows <= 0:
                raise DescriptorError(f"data descriptor needs rows > 0: {self.rows}")
            if self.col_width not in (1, 2, 4, 8):
                raise DescriptorError(
                    f"column width must be 1/2/4/8 bytes: {self.col_width}"
                )
            if not 0 <= self.rows < (1 << 16):
                raise DescriptorError(f"rows field is 16 bits: {self.rows}")
            if not 0 <= self.dmem_addr < (1 << 16):
                raise DescriptorError(
                    f"DMEM address field is 16 bits: {self.dmem_addr:#x}"
                )
            if not 0 <= self.ddr_addr < (1 << 36):
                raise DescriptorError(
                    f"DDR address field is 36 bits: {self.ddr_addr:#x}"
                )
        elif self.dtype is DescriptorType.LOOP:
            if self.loop_back <= 0:
                raise DescriptorError("loop descriptor must jump back >= 1")
            if self.loop_count < 0:
                raise DescriptorError(f"negative loop count {self.loop_count}")
        for event in (self.wait_event, self.notify_event):
            if event is not None and not 0 <= event < EVENT_NONE:
                raise DescriptorError(
                    f"event id must be 0..{EVENT_NONE - 1}: {event}"
                )
        for event in (*self.set_events, *self.clear_events, *self.wait_events):
            if not 0 <= event < EVENT_NONE:
                raise DescriptorError(f"event id must be 0..{EVENT_NONE - 1}: {event}")

    # -- sizing ----------------------------------------------------------

    @property
    def transfer_bytes(self) -> int:
        """Payload size of a data descriptor."""
        if self.dtype not in _DATA_TYPES:
            return 0
        return self.rows * self.col_width

    # -- Table 2 encoding -------------------------------------------------

    def encode(self) -> bytes:
        """Encode to the 16-byte layout of Table 2 (DDR<->DMEM forms).

        Word 0: Type[31:28] Notify[25:21] Wait[20:16] LinkAddr[15:0]
        Word 1: ColWidth[30:28] GatherSrc[25] ScatterDst[24] RLE[23]
                SrcAddrInc[17] DstAddrInc[16] DDRAddr[3:0]
        Word 2: Rows[31:16] DMEMAddr[15:0]
        Word 3: DDRAddr[35:4]
        """
        if self.dtype not in (DescriptorType.DDR_TO_DMEM, DescriptorType.DMEM_TO_DDR):
            raise DescriptorError(
                f"Table 2 encoding defined for DDR<->DMEM, not {self.dtype.name}"
            )
        notify = EVENT_NONE if self.notify_event is None else self.notify_event
        wait = EVENT_NONE if self.wait_event is None else self.wait_event
        word0 = (
            (self.dtype.value & 0xF) << 28
            | (notify & 0x1F) << 21
            | (wait & 0x1F) << 16
            | (self.link_addr & 0xFFFF)
        )
        col_width_code = {1: 0, 2: 1, 4: 2, 8: 3}[self.col_width]
        word1 = (
            (col_width_code & 0x7) << 28
            | (1 << 25 if self.gather_src else 0)
            | (1 << 24 if self.scatter_dst else 0)
            | (1 << 23 if self.rle else 0)
            | (1 << 17 if self.src_addr_inc else 0)
            | (1 << 16 if self.dst_addr_inc else 0)
            | (self.ddr_addr & 0xF)
        )
        word2 = (self.rows & 0xFFFF) << 16 | (self.dmem_addr & 0xFFFF)
        word3 = (self.ddr_addr >> 4) & 0xFFFFFFFF
        return struct.pack("<4I", word0, word1, word2, word3)

    @classmethod
    def decode(cls, raw: bytes) -> "Descriptor":
        """Decode a Table 2 encoded descriptor."""
        if len(raw) != DESCRIPTOR_SIZE:
            raise DescriptorError(f"descriptor must be 16 bytes, got {len(raw)}")
        word0, word1, word2, word3 = struct.unpack("<4I", raw)
        dtype = DescriptorType((word0 >> 28) & 0xF)
        notify = (word0 >> 21) & 0x1F
        wait = (word0 >> 16) & 0x1F
        col_width = {0: 1, 1: 2, 2: 4, 3: 8}[(word1 >> 28) & 0x7]
        ddr_addr = ((word3 & 0xFFFFFFFF) << 4) | (word1 & 0xF)
        return cls(
            dtype=dtype,
            rows=(word2 >> 16) & 0xFFFF,
            col_width=col_width,
            ddr_addr=ddr_addr,
            dmem_addr=word2 & 0xFFFF,
            gather_src=bool(word1 & (1 << 25)),
            scatter_dst=bool(word1 & (1 << 24)),
            rle=bool(word1 & (1 << 23)),
            src_addr_inc=bool(word1 & (1 << 17)),
            dst_addr_inc=bool(word1 & (1 << 16)),
            wait_event=None if wait == EVENT_NONE else wait,
            notify_event=None if notify == EVENT_NONE else notify,
            link_addr=word0 & 0xFFFF,
        )

    def with_updates(self, **changes) -> "Descriptor":
        """A modified copy (descriptors are reusable templates)."""
        return replace(self, **changes)


# -- convenience constructors (the dms_setup_* calls of Listing 1) -----


def ddr_to_dmem(
    rows: int,
    col_width: int,
    ddr_addr: int,
    dmem_addr: int,
    notify_event: Optional[int] = None,
    **kwargs,
) -> Descriptor:
    """Build the workhorse DDR->DMEM streaming descriptor."""
    return Descriptor(
        dtype=DescriptorType.DDR_TO_DMEM,
        rows=rows,
        col_width=col_width,
        ddr_addr=ddr_addr,
        dmem_addr=dmem_addr,
        notify_event=notify_event,
        **kwargs,
    )


def dmem_to_ddr(
    rows: int,
    col_width: int,
    ddr_addr: int,
    dmem_addr: int,
    notify_event: Optional[int] = None,
    **kwargs,
) -> Descriptor:
    """Build the DMEM->DDR write-back descriptor."""
    return Descriptor(
        dtype=DescriptorType.DMEM_TO_DDR,
        rows=rows,
        col_width=col_width,
        ddr_addr=ddr_addr,
        dmem_addr=dmem_addr,
        notify_event=notify_event,
        **kwargs,
    )


def loop(back: int, count: int) -> Descriptor:
    """Loop control descriptor: re-execute the previous ``back``
    descriptors ``count`` more times (Listing 1's ``dms_setup_loop``)."""
    return Descriptor(dtype=DescriptorType.LOOP, loop_back=back, loop_count=count)
