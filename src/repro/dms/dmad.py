"""DMAD: the per-dpCore descriptor list manager.

Each dpCore has a private DMAD unit (paper §3.1). Software builds a
descriptor in DMEM and issues a ``push`` naming one of two channels
(conventionally segregating reads and writes); the DMAD chains pushed
descriptors into an active list per channel and walks it without any
further dpCore involvement:

* **data descriptors** are dispatched to the DMAC (at most
  ``dms_max_outstanding`` in flight), honouring wait events and the
  buffer flow-control rule — a descriptor whose notify event is still
  *set* (its previous buffer not yet consumed) blocks until software
  clears it, which is how "back pressure" reaches the DDR stream;
* **loop descriptors** rewind the list a fixed number of iterations,
  with source/destination auto-increment registers so a two-buffer
  chain can stream megabytes (Listing 1 / Figure 7);
* **event descriptors** set/clear/wait events locally;
* **config descriptors** program the DMAC's hash/range engine.

**Resilience.** Descriptors live in DMEM and cross an SRAM/bus path
the real hardware guards with its CRC32 units. When the fault plan
enables the ``dms.descriptor`` site, each data descriptor is
CRC-validated at dispatch: a corrupted fetch is detected (a single
bit flip always perturbs CRC32) and the DMAD re-fetches and replays
the descriptor, up to ``config.dms_crc_retries`` times, before
failing the transfer with :class:`~repro.dms.dmac.DmsHardwareError`.
The data path runs only on a clean fetch, so results stay byte-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import DPUConfig
from ..core.crc32 import crc32_bytes
from ..faults import FaultInjector
from ..obs import NULL_TRACER
from ..sim import Engine, Resource, StatsRecorder, Store, Timeout
from .descriptor import Descriptor, DescriptorError, DescriptorType
from .dmac import Dmac, DmsHardwareError
from .events import EventFile

__all__ = ["Dmad", "DmadChannel"]


@dataclass
class DmadChannel:
    """One active list: a growing program plus a program counter."""

    index: int
    program: List[Descriptor] = field(default_factory=list)
    pc: int = 0
    loop_remaining: Dict[int, int] = field(default_factory=dict)
    ddr_auto: Optional[int] = None
    dmem_auto: Optional[int] = None


class Dmad:
    """Descriptor front-end for one dpCore."""

    NUM_CHANNELS = 2

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        dmac: Dmac,
        event_file: EventFile,
        config: DPUConfig,
        stats: Optional[StatsRecorder] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.engine = engine
        self.core_id = core_id
        self.dmac = dmac
        self.event_file = event_file
        self.config = config
        self.stats = stats if stats is not None else StatsRecorder()
        self.faults = faults if faults is not None else FaultInjector()
        # Observability hook; DPU.enable_tracing swaps in a live tracer.
        self.trace = NULL_TRACER
        self._unit = f"dmad{core_id}"
        self._desc_name = f"dmad{core_id}.desc"
        # The injector's plan is frozen; whether descriptor CRC checks
        # run is fixed for the DMAD's lifetime.
        self._crc_faulty = self.faults.active("dms.descriptor")
        self.channels = [DmadChannel(i) for i in range(self.NUM_CHANNELS)]
        self._wakeups = [Store(engine) for _ in range(self.NUM_CHANNELS)]
        self.outstanding = Resource(engine, config.dms_max_outstanding)
        self._drained = engine.event()
        self._inflight = 0
        # Credit-based backpressure: cycles of stall the issuing dpCore
        # owes for pushes beyond the channel ring's occupancy limit.
        # The core's next compute/wfe boundary drains this debt, the
        # same mechanism ATE interrupts use (see CoreContext.compute).
        self.push_stall_debt = 0.0
        # Completion of the most recent in-flight descriptor notifying
        # each event (the buffer-refill flow-control chain).
        self._notify_tail: Dict[int, object] = {}
        for channel in self.channels:
            engine.process(
                self._channel_loop(channel),
                name=f"dmad{core_id}.ch{channel.index}",
                daemon=True,
            )

    # -- software interface ----------------------------------------------

    def push(self, descriptor: Descriptor, channel: int = 0) -> None:
        """The dpCore ``push`` instruction: append to an active list.

        The active list lives in a fixed DMEM ring
        (``config.dmad_queue_depth`` slots). A push beyond the ring's
        occupancy charges the issuing core stall cycles — the hardware
        holds the push until the DMAD retires an entry — accumulated
        as ``push_stall_debt`` and paid at the core's next
        compute/wfe boundary."""
        if not 0 <= channel < self.NUM_CHANNELS:
            raise DescriptorError(f"DMS channel must be 0 or 1: {channel}")
        chan = self.channels[channel]
        if chan.program and chan.pc >= len(chan.program) and not chan.loop_remaining:
            # The ring is fully drained: retired slots are reusable, so
            # recycle them (keeps the modelled list bounded; safe only
            # with no pending LOOP, which could rewind over them).
            chan.program.clear()
            chan.pc = 0
        chan.program.append(descriptor)
        pending = len(chan.program) - chan.pc
        self.stats.peak("dmad.occupancy_peak", pending)
        depth = self.config.dmad_queue_depth
        if depth and pending > depth:
            # The push blocks until the DMAD retires one entry and a
            # ring slot frees: one descriptor-retire time of stall.
            # (The walker drains concurrently, so a burst of N pushes
            # into a full ring costs ~(N - depth) retire times total,
            # not a quadratic pile-up.)
            stall = self.config.dms_descriptor_setup_cycles
            self.push_stall_debt += stall
            self.stats.count("dmad.push_stall_cycles", stall)
            self.stats.count("dmad.push_stalls", 1)
            if self.trace.enabled:
                self.trace.instant("dmad.push_stall", unit=self._unit,
                                   pending=pending, stall_cycles=stall)
        if self.trace.enabled:
            self.trace.instant("dmad.push", unit=self._unit,
                               dtype=descriptor.dtype.name, channel=channel)
            self.trace.counter(f"{self._unit}.ring", unit=self._unit,
                               occupancy=pending)
        self._wakeups[channel].put(object())

    def occupancy(self, channel: int = 0) -> int:
        """Entries in the channel ring not yet walked past."""
        chan = self.channels[channel]
        return len(chan.program) - chan.pc

    def idle(self) -> bool:
        """True when all channels have drained and nothing is in flight."""
        return self._inflight == 0 and all(
            channel.pc >= len(channel.program) for channel in self.channels
        )

    # -- channel engine ------------------------------------------------------

    def _channel_loop(self, channel: DmadChannel):
        wakeup = self._wakeups[channel.index]
        engine = self.engine
        event_file = self.event_file
        dmac = self.dmac
        outstanding = self.outstanding
        notify_tail = self._notify_tail
        setup_cycles = self.config.dms_descriptor_setup_cycles
        loop_type = DescriptorType.LOOP
        event_type = DescriptorType.EVENT
        hash_config = DescriptorType.HASH_CONFIG
        range_config = DescriptorType.RANGE_CONFIG
        while True:
            while channel.pc >= len(channel.program):
                yield wakeup.get()
            descriptor = channel.program[channel.pc]
            dtype = descriptor.dtype
            if dtype is loop_type:
                self._handle_loop(channel, descriptor)
                continue
            if dtype is event_type:
                yield from self._handle_event(descriptor)
                channel.pc += 1
                continue
            if dtype is hash_config or dtype is range_config:
                dmac.configure_partition(descriptor)
                channel.pc += 1
                continue
            # -- data descriptor ------------------------------------------
            if descriptor.wait_event is not None:
                yield event_file.wait(descriptor.wait_event)
            notify_event = descriptor.notify_event
            if notify_event is not None:
                # Flow control: do not refill a buffer whose previous
                # fill has not completed and been consumed (event must
                # have been set by the prior notifier, then cleared).
                tail = notify_tail.get(notify_event)
                if tail is not None and tail.callbacks is not None:
                    yield tail
                yield event_file.events[notify_event].wait_clear()
            yield Timeout(engine, setup_cycles)
            effective = self._resolve_addresses(channel, descriptor)
            prep = dmac.prepare(effective, self.core_id)
            yield outstanding.acquire()
            self._inflight += 1
            runner = engine.process(
                self._run_descriptor(effective, prep),
                name=self._desc_name,
            )
            if notify_event is not None:
                notify_tail[notify_event] = runner
            channel.pc += 1

    def _run_descriptor(self, descriptor: Descriptor, prep):
        began = self.engine.now
        try:
            if self._crc_faulty:
                yield from self._validate_descriptor(descriptor)
            yield from self.dmac.execute(descriptor, self.core_id, prep)
        finally:
            self.outstanding.release()
            self._inflight -= 1
            if self.trace.enabled:
                self.trace.complete_async(
                    "dmad.descriptor", self._unit, began,
                    dtype=descriptor.dtype.name,
                )
                self.trace.counter(f"{self._unit}.ring", unit=self._unit,
                                   occupancy=max(
                                       self.occupancy(c)
                                       for c in range(self.NUM_CHANNELS)
                                   ))
        if descriptor.notify_event is not None:
            self.event_file.set(descriptor.notify_event)
        self.stats.count("dmad.completed", 1)

    def _validate_descriptor(self, descriptor: Descriptor):
        """CRC-check the descriptor fetch; replay corrupted fetches.

        A hit at the ``dms.descriptor`` site corrupts one fetch. For
        Table-2-encodable descriptors the detection is modelled for
        real: a bit of the 16-byte image is flipped and the CRC32
        mismatch asserted. Each replay charges another descriptor
        setup plus a CRC SRAM lookup; after ``dms_crc_retries``
        consecutive corrupted fetches the transfer fails.
        """
        label = f"core {self.core_id} {descriptor.dtype.name}"
        replays = 0
        while self.faults.roll("dms.descriptor", detail=label):
            try:
                image = descriptor.encode()
            except DescriptorError:
                image = None
            if image is not None:
                bit = int(self.faults.choose("dms.descriptor", len(image) * 8, 1)[0])
                corrupted = bytearray(image)
                corrupted[bit // 8] ^= 1 << (bit % 8)
                assert crc32_bytes(bytes(corrupted)) != crc32_bytes(image)
            replays += 1
            self.stats.count("dmad.crc_replays", 1)
            if replays > self.config.dms_crc_retries:
                raise DmsHardwareError(
                    f"descriptor CRC mismatch persisted through "
                    f"{self.config.dms_crc_retries} replays ({label}); "
                    f"failing the completion event",
                    site=f"dmad[{self.core_id}].crc",
                    sim_time=self.engine.now,
                    retry_count=replays,
                    occupancy={
                        "inflight": self._inflight,
                        "channel_pending": [
                            self.occupancy(c) for c in range(self.NUM_CHANNELS)
                        ],
                    },
                )
            yield self.engine.timeout(
                self.config.dms_descriptor_setup_cycles
                + self.config.dms_crc_check_cycles
            )

    def _handle_loop(self, channel: DmadChannel, descriptor: Descriptor) -> None:
        position = channel.pc
        if descriptor.loop_back > position:
            raise DescriptorError(
                f"loop jumps back {descriptor.loop_back} over only "
                f"{position} descriptors"
            )
        remaining = channel.loop_remaining.get(position)
        if remaining is None:
            remaining = descriptor.loop_count
        if remaining > 0:
            channel.loop_remaining[position] = remaining - 1
            channel.pc = position - descriptor.loop_back
        else:
            channel.loop_remaining.pop(position, None)
            channel.pc = position + 1

    def _handle_event(self, descriptor: Descriptor):
        for event_id in descriptor.wait_events:
            yield self.event_file.wait(event_id)
        for event_id in descriptor.set_events:
            self.event_file.set(event_id)
        for event_id in descriptor.clear_events:
            self.event_file.clear(event_id)

    def _resolve_addresses(
        self, channel: DmadChannel, descriptor: Descriptor
    ) -> Descriptor:
        """Apply the channel's auto-increment registers (Listing 1).

        The "source"/"destination" increment flags map onto the DDR or
        DMEM side according to the descriptor's direction; after each
        transfer the register advances by the payload size so loop
        iterations walk forward through memory.
        """
        dtype = descriptor.dtype
        ddr_is_source = dtype in (
            DescriptorType.DDR_TO_DMEM,
            DescriptorType.DDR_TO_DMS,
        )
        ddr_flag = (
            descriptor.src_addr_inc if ddr_is_source else descriptor.dst_addr_inc
        )
        dmem_flag = (
            descriptor.dst_addr_inc if ddr_is_source else descriptor.src_addr_inc
        )
        changes = {}
        nbytes = descriptor.transfer_bytes
        if ddr_flag:
            if channel.ddr_auto is None:
                channel.ddr_auto = descriptor.ddr_addr
            changes["ddr_addr"] = channel.ddr_auto
            channel.ddr_auto += nbytes
        if dmem_flag:
            if channel.dmem_auto is None:
                channel.dmem_auto = descriptor.dmem_addr
            changes["dmem_addr"] = channel.dmem_auto
            channel.dmem_auto += nbytes
        if not changes:
            return descriptor
        return descriptor.with_updates(**changes)
