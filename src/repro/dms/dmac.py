"""DMAC: the central DMA controller of the Data Movement System.

The DMAC (paper §3.1-3.2) owns the DDR interface and the internal
SRAMs — three 8 KB column memories (CMEM), double-buffered 1 KB CRC
and 256 B CID memories, and four 4 KB bit-vector banks — and runs the
three-stage partition pipeline:

1. **load**: DDR -> CMEM (a chunk's key and payload columns),
2. **hash**: CRC32/radix/range over the key column -> CID memory,
3. **store**: scatter the chunk's rows into target dpCores' DMEMs
   through the per-macro DMAX crossbars.

Chunks flow through the pipeline concurrently: the CMEM banks admit
up to three chunks in flight and the CRC/CID double-buffers two, so
loading chunk *k+1* overlaps hashing chunk *k* and storing chunk
*k-1* (Figure 10). The DDR load stage is the designed bottleneck,
which is how the engine sustains ~9.3 GB/s 32-way partitioning
(Figure 13).

The first-silicon RTL bug in the gather path (§3.4) is modelled: if
more than one dpCore has a gather in flight and the config enables
``rtl_gather_bug``, the bit-vector count FIFO overflows and the DMAD
units stall — surfaced here as a :class:`DmsHardwareError` so
software must apply the paper's serialize-gathers workaround.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import DPUConfig
from ..core.crc32 import crc32_column
from ..memory.ddr import DDRChannel, DDRMemory
from ..memory.dmem import Scratchpad
from ..obs import NULL_TRACER
from ..sim import Engine, Resource, SimEvent, StatsRecorder
from .descriptor import (
    Descriptor,
    DescriptorError,
    DescriptorType,
    PartitionMode,
    PartitionSpec,
)
from .dmax import Dmax
from .events import EventFile
from .partition import PartitionLayout, compute_cids

__all__ = ["Dmac", "DmsHardwareError", "PartitionChunk"]

_WIDTH_DTYPE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


class DmsHardwareError(Exception):
    """A modelled hardware failure (e.g. the gather FIFO overflow).

    Carries structured context — the failing ``site``, simulation
    ``sim_time``, ``retry_count`` of replays already burned, and an
    ``occupancy`` snapshot of the relevant queues — so handlers can
    decide to retry, shed, or serialize without parsing messages.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        sim_time: Optional[float] = None,
        retry_count: int = 0,
        occupancy: Optional[Dict] = None,
    ) -> None:
        self.site = site
        self.sim_time = sim_time
        self.retry_count = retry_count
        self.occupancy = dict(occupancy) if occupancy else {}
        detail = []
        if site:
            detail.append(f"site={site}")
        if sim_time is not None:
            detail.append(f"t={sim_time:.0f}")
        if retry_count:
            detail.append(f"retries={retry_count}")
        if detail:
            message = f"{message} [{' '.join(detail)}]"
        super().__init__(message)


class PartitionChunk:
    """One chunk of rows moving through the partition pipeline."""

    __slots__ = ("key", "key_width", "columns", "load_events", "hashes",
                 "cids", "hash_done", "bank_acquired", "crc_acquired", "rows")

    def __init__(self, engine: Engine) -> None:
        self.key: Optional[np.ndarray] = None
        self.key_width: int = 0
        self.columns: List[Tuple[np.ndarray, int]] = []  # (values, width)
        self.load_events: List = []
        self.hashes: Optional[np.ndarray] = None
        self.cids: Optional[np.ndarray] = None
        self.hash_done = SimEvent(engine)
        self.bank_acquired = False
        self.crc_acquired = False
        self.rows: int = 0

    @property
    def record_width(self) -> int:
        width = self.key_width if self.key is not None else 0
        return width + sum(col_width for _values, col_width in self.columns)

    def total_bytes(self) -> int:
        return self.rows * self.record_width


class Dmac:
    """The central DMA controller."""

    def __init__(
        self,
        engine: Engine,
        config: DPUConfig,
        ddr_memory: DDRMemory,
        ddr_channel: DDRChannel,
        scratchpads: Dict[int, Scratchpad],
        event_files: Dict[int, EventFile],
        dmaxes: List[Dmax],
        stats: Optional[StatsRecorder] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.ddr_memory = ddr_memory
        self.ddr_channel = ddr_channel
        self.scratchpads = scratchpads
        self.event_files = event_files
        self.dmaxes = dmaxes
        self.stats = stats if stats is not None else StatsRecorder()
        # Observability hook; DPU.enable_tracing swaps in a live tracer.
        self.trace = NULL_TRACER
        # Internal SRAM occupancy: one CMEM bank per chunk in flight,
        # one CRC/CID double-buffer slot from hash until store retires.
        self.cmem_slots = Resource(engine, config.cmem_banks)
        self.crc_slots = Resource(engine, config.crc_banks)
        # Partition engine configuration (HASH_CONFIG/RANGE_CONFIG).
        self.partition_spec: Optional[PartitionSpec] = None
        self.partition_layout: Optional[PartitionLayout] = None
        self._open_chunk: Optional[PartitionChunk] = None
        self._last_hashed: Optional[PartitionChunk] = None
        # Per-core gather bit-vector registers (loaded via DMEM->DMS).
        self._bv_registers: Dict[int, np.ndarray] = {}
        self._active_gathers = 0
        # Config-derived constants hoisted off the per-descriptor path.
        self._decode_cycles = config.dms_dmac_decode_cycles
        self._macro_of = tuple(
            config.macro_of(core) for core in range(config.num_cores)
        )

    # -- configuration ---------------------------------------------------

    def configure_partition(self, descriptor: Descriptor) -> None:
        """Apply a HASH_CONFIG / RANGE_CONFIG control descriptor."""
        if descriptor.partition is None:
            raise DescriptorError("partition config descriptor needs a spec")
        self.partition_spec = descriptor.partition
        if descriptor.partition_layout is not None:
            self.partition_layout = descriptor.partition_layout
            self.partition_layout.reset()

    # -- dispatch-time bookkeeping (called in DMAD program order) --------

    def prepare(self, descriptor: Descriptor, core_id: int):
        """Attach the descriptor to pipeline state; returns a context
        object consumed by :meth:`execute`. Must be called in DMAD
        dispatch order so chunk membership matches program order."""
        dtype = descriptor.dtype
        if dtype is DescriptorType.DDR_TO_DMS:
            if descriptor.is_key_column or self._open_chunk is None:
                self._open_chunk = PartitionChunk(self.engine)
            chunk = self._open_chunk
            load_event = SimEvent(self.engine)
            chunk.load_events.append(load_event)
            return ("load", chunk, load_event)
        if dtype is DescriptorType.DMS_TO_DMS:
            if self._open_chunk is None:
                raise DescriptorError("hash descriptor with no loaded chunk")
            chunk = self._open_chunk
            self._last_hashed = chunk
            return ("hash", chunk, list(chunk.load_events))
        if dtype is DescriptorType.DMS_TO_DMEM:
            if self._open_chunk is None:
                raise DescriptorError("store descriptor with no chunk in flight")
            chunk = self._open_chunk
            self._open_chunk = None
            return ("store", chunk, list(chunk.load_events))
        if dtype is DescriptorType.DMS_TO_DDR:
            return ("drain", self._last_hashed, None)
        if dtype is DescriptorType.DMEM_TO_DMS:
            # The BV register must be visible to any gather dispatched
            # later on the same channel: snapshot it in program order.
            if descriptor.internal_mem != "bv":
                raise DescriptorError("DMEM->DMS carries RID/BV data (Table 1)")
            nbytes = descriptor.transfer_bytes
            if nbytes > self.config.bv_bank_bytes:
                raise DescriptorError(
                    f"bit-vector of {nbytes} B exceeds BV bank "
                    f"({self.config.bv_bank_bytes} B)"
                )
            payload = self.scratchpads[core_id].read(
                descriptor.dmem_addr, nbytes
            )
            self._bv_registers[core_id] = payload.copy()
            return ("bv", None, None)
        return (None, None, None)

    # -- execution ---------------------------------------------------------

    def execute(self, descriptor: Descriptor, core_id: int, prep=None):
        """Process generator performing one data descriptor."""
        trace = self.trace
        if not trace.enabled:
            yield from self._execute(descriptor, core_id, prep)
            return
        began = self.engine.now
        name = f"dms.{descriptor.dtype.name.lower()}"
        try:
            yield from self._execute(descriptor, core_id, prep)
        except BaseException as error:
            trace.complete_async(name, "dmac", began, core=core_id,
                                 error=type(error).__name__)
            raise
        trace.complete_async(name, "dmac", began, core=core_id,
                             bytes=int(descriptor.transfer_bytes))

    def _execute(self, descriptor: Descriptor, core_id: int, prep=None):
        dtype = descriptor.dtype
        if dtype is DescriptorType.DDR_TO_DMEM:
            yield from self._exec_ddr_to_dmem(descriptor, core_id)
        elif dtype is DescriptorType.DMEM_TO_DDR:
            yield from self._exec_dmem_to_ddr(descriptor, core_id)
        elif dtype is DescriptorType.DDR_TO_DMS:
            yield from self._exec_ddr_to_dms(descriptor, core_id, prep)
        elif dtype is DescriptorType.DMS_TO_DMS:
            yield from self._exec_hash(descriptor, core_id, prep)
        elif dtype is DescriptorType.DMS_TO_DMEM:
            yield from self._exec_partition_store(descriptor, core_id, prep)
        elif dtype is DescriptorType.DMEM_TO_DMS:
            yield from self._exec_dmem_to_dms(descriptor, core_id)
        elif dtype is DescriptorType.DMS_TO_DDR:
            yield from self._exec_dms_to_ddr(descriptor, core_id, prep)
        else:
            raise DescriptorError(f"{dtype.name} is not a data descriptor")

    # -- DDR <-> DMEM streaming -------------------------------------------

    def _dmax_for(self, core_id: int) -> Dmax:
        return self.dmaxes[self._macro_of[core_id]]

    def _target_dmem(self, descriptor: Descriptor, core_id: int) -> Scratchpad:
        target = descriptor.dmem_core if descriptor.dmem_core is not None else core_id
        return self.scratchpads[target]

    def _exec_ddr_to_dmem(self, descriptor: Descriptor, core_id: int):
        if descriptor.rle:
            raise DescriptorError("RLE decode is not modelled")
        dmem = self._target_dmem(descriptor, core_id)
        width = descriptor.col_width
        decode = self._decode_cycles
        if descriptor.gather_src:
            gather_began = self.engine.now
            yield from self._guarded_gather_begin()
            try:
                indices = self._gather_indices(descriptor, core_id)
                touched = len(indices) * width + len(indices) * int(
                    self.config.dms_gather_row_penalty_bytes
                )
                yield self.ddr_channel.request(
                    descriptor.ddr_addr, touched, extra_overhead_cycles=decode
                )
                source = self.ddr_memory.view(
                    descriptor.ddr_addr, descriptor.rows * width, _WIDTH_DTYPE[width]
                )
                gathered = source[indices]
                yield self._dmax_for(core_id).transfer(
                    min(len(indices) * width, 256)
                )
                dmem.write(descriptor.dmem_addr, gathered)
                moved = len(indices) * width
            finally:
                self._active_gathers -= 1
            if self.trace.enabled:
                self.trace.complete_async(
                    "dms.gather", "dmac", gather_began, core=core_id,
                    rows=int(len(indices)), bytes=int(moved),
                    cycles=self.engine.now - gather_began,
                )
        elif descriptor.ddr_stride is not None and descriptor.ddr_stride != width:
            stride = descriptor.ddr_stride
            span = (descriptor.rows - 1) * stride + width
            # Strided reads touch a DRAM burst per element.
            touched = descriptor.rows * max(width, 16)
            yield self.ddr_channel.request(
                descriptor.ddr_addr, touched, extra_overhead_cycles=decode
            )
            raw = self.ddr_memory.view(descriptor.ddr_addr, span)
            offsets = np.arange(descriptor.rows) * stride
            element = np.arange(width)
            strided = raw[offsets[:, None] + element[None, :]].ravel()
            yield self._dmax_for(core_id).transfer(min(len(strided), 256))
            dmem.write(descriptor.dmem_addr, strided)
            moved = descriptor.rows * width
        else:
            nbytes = descriptor.transfer_bytes
            yield self.ddr_channel.request(
                descriptor.ddr_addr, nbytes, extra_overhead_cycles=decode
            )
            payload = self.ddr_memory.read(descriptor.ddr_addr, nbytes)
            yield self._dmax_for(core_id).transfer(min(nbytes, 256))
            dmem.write(descriptor.dmem_addr, payload)
            moved = nbytes
        self.stats.count("dms.bytes_read", moved)
        self.stats.count("dms.descriptors", 1)

    def _exec_dmem_to_ddr(self, descriptor: Descriptor, core_id: int):
        if descriptor.rle:
            raise DescriptorError("RLE encode is not modelled")
        dmem = self._target_dmem(descriptor, core_id)
        width = descriptor.col_width
        decode = self._decode_cycles
        if descriptor.scatter_dst:
            indices = self._gather_indices(descriptor, core_id)
            rows = dmem.view(
                descriptor.dmem_addr, len(indices) * width, _WIDTH_DTYPE[width]
            )
            yield self._dmax_for(core_id).transfer(min(len(indices) * width, 256))
            touched = len(indices) * width + len(indices) * int(
                self.config.dms_gather_row_penalty_bytes
            )
            yield self.ddr_channel.request(
                descriptor.ddr_addr, touched, extra_overhead_cycles=decode,
                is_write=True,
            )
            target = self.ddr_memory.view(
                descriptor.ddr_addr, descriptor.rows * width, _WIDTH_DTYPE[width]
            )
            target[indices] = rows
            moved = len(indices) * width
        else:
            nbytes = descriptor.transfer_bytes
            payload = dmem.read(descriptor.dmem_addr, nbytes)
            yield self._dmax_for(core_id).transfer(min(nbytes, 256))
            yield self.ddr_channel.request(
                descriptor.ddr_addr, nbytes, extra_overhead_cycles=decode,
                is_write=True,
            )
            self.ddr_memory.write(descriptor.ddr_addr, payload)
            moved = nbytes
        self.stats.count("dms.bytes_written", moved)
        self.stats.count("dms.descriptors", 1)

    def _guarded_gather_begin(self):
        self._active_gathers += 1
        if self._active_gathers > 1 and self.config.rtl_gather_bug:
            active = self._active_gathers
            self._active_gathers -= 1
            raise DmsHardwareError(
                "gather bit-vector count FIFO overflow: more than one dpCore "
                "has a gather in flight on first-silicon hardware; apply the "
                "software workaround (serialize gathers) or disable "
                "rtl_gather_bug (paper §3.4, Figure 12)",
                site="dmac.gather",
                sim_time=self.engine.now,
                occupancy={"active_gathers": active},
            )
        yield self.engine.timeout(0)

    def _gather_indices(self, descriptor: Descriptor, core_id: int) -> np.ndarray:
        register = self._bv_registers.get(core_id)
        if register is None:
            raise DescriptorError(
                f"core {core_id} gathered without loading a bit-vector "
                "(issue a DMEM->DMS descriptor first)"
            )
        bits = np.unpackbits(register.view(np.uint8), bitorder="little")
        bits = bits[: descriptor.rows]
        return np.nonzero(bits)[0]

    # -- internal-memory descriptors -----------------------------------------

    def _acquire_slot(self, slots: Resource, name: str):
        """Acquire an SRAM slot, recording stall cycles and occupancy.

        Counters are emitted only when the acquirer actually waited, so
        uncontended runs keep an unchanged stats snapshot."""
        began = self.engine.now
        self.stats.peak(f"{name}.occupancy_peak", min(slots.in_use + 1, slots.capacity))
        if slots.in_use >= slots.capacity:
            self.stats.peak(f"{name}.queue_peak", slots.queue_depth + 1)
        yield slots.acquire()
        waited = self.engine.now - began
        if waited > 0:
            self.stats.count(f"{name}.stall_cycles", waited)
            self.stats.count(f"{name}.stalls", 1)

    def _exec_dmem_to_dms(self, descriptor: Descriptor, core_id: int):
        """Charge the crossbar time for a RID/BV load (the register
        contents were snapshotted at dispatch, in program order)."""
        yield self._dmax_for(core_id).transfer(descriptor.transfer_bytes)
        self.stats.count("dms.descriptors", 1)

    def _exec_ddr_to_dms(self, descriptor: Descriptor, core_id: int, prep):
        """Load one column of a partition chunk into a CMEM bank."""
        _kind, chunk, load_event = prep
        if not chunk.bank_acquired:
            chunk.bank_acquired = True
            yield from self._acquire_slot(self.cmem_slots, "dmac.cmem")
        width = descriptor.col_width
        nbytes = descriptor.rows * width
        if chunk.total_bytes() + nbytes > self.config.cmem_bank_bytes:
            raise DescriptorError(
                f"chunk exceeds CMEM bank: {chunk.total_bytes() + nbytes} B "
                f"> {self.config.cmem_bank_bytes} B; use smaller chunks"
            )
        yield self.ddr_channel.request(
            descriptor.ddr_addr,
            nbytes,
            extra_overhead_cycles=self._decode_cycles,
        )
        values = self.ddr_memory.view(
            descriptor.ddr_addr, nbytes, _WIDTH_DTYPE[width]
        ).copy()
        if descriptor.is_key_column:
            chunk.key = values
            chunk.key_width = width
            chunk.rows = descriptor.rows
        else:
            chunk.columns.append((values, width))
            chunk.rows = max(chunk.rows, descriptor.rows)
        self.stats.count("dms.bytes_read", nbytes)
        self.stats.count("dms.descriptors", 1)
        load_event.succeed()

    def _exec_hash(self, descriptor: Descriptor, core_id: int, prep):
        """Hash/range stage: key column -> CRC memory -> CID memory."""
        _kind, chunk, load_events = prep
        spec = descriptor.partition or self.partition_spec
        if spec is None:
            raise DescriptorError("hash descriptor without a partition spec")
        if not chunk.crc_acquired:
            chunk.crc_acquired = True
            yield from self._acquire_slot(self.crc_slots, "dmac.crc")
        yield self.engine.all_of(load_events)
        if chunk.key is None:
            raise DescriptorError("partition chunk has no key column")
        hash_bytes = chunk.rows * chunk.key_width
        yield self.engine.timeout(
            -(-hash_bytes // self.config.dms_hash_bytes_per_cycle)
        )
        if spec.mode is PartitionMode.HASH:
            chunk.hashes = crc32_column(chunk.key)
            window = chunk.hashes
            if spec.radix_shift:
                window = window >> np.uint32(spec.radix_shift)
            chunk.cids = (window & np.uint32(spec.fanout - 1)).astype(
                np.uint16
            )
        else:
            chunk.cids = compute_cids(chunk.key, spec)
        self.stats.count("dms.descriptors", 1)
        chunk.hash_done.succeed()

    def _exec_partition_store(self, descriptor: Descriptor, core_id: int, prep):
        """Store stage: scatter chunk rows into target DMEMs by CID."""
        _kind, chunk, load_events = prep
        layout = descriptor.partition_layout or self.partition_layout
        if layout is None:
            raise DescriptorError("partition store without an output layout")
        yield self.engine.all_of(load_events)
        yield chunk.hash_done
        assert chunk.cids is not None
        records = self._build_records(chunk)
        record_width = chunk.record_width
        # Scatter rows grouped by target core; DMAX transfers to the
        # four macros proceed in parallel.
        macro_bytes: Dict[int, int] = {}
        order = np.argsort(chunk.cids, kind="stable")
        sorted_cids = chunk.cids[order]
        boundaries = np.searchsorted(
            sorted_cids, np.arange(len(layout.target_cores) + 1)
        )
        writes = []
        for slot, target in enumerate(layout.target_cores):
            start, stop = boundaries[slot], boundaries[slot + 1]
            if start == stop:
                continue
            rows = records[order[start:stop]]
            nbytes = rows.size
            offset = layout.advance(target, nbytes)
            writes.append((target, offset, rows))
            macro = self._macro_of[target]
            macro_bytes[macro] = macro_bytes.get(macro, 0) + nbytes
        transfers = [
            self.dmaxes[macro].transfer(nbytes)
            for macro, nbytes in sorted(macro_bytes.items())
        ]
        if transfers:
            yield self.engine.all_of(transfers)
        touched_cores = set()
        for target, offset, rows in writes:
            self.scratchpads[target].write(offset, rows.ravel())
            touched_cores.add(target)
        # Publish running row counts and notify consumers.
        for target in layout.target_cores:
            count = layout.rows_written(target, record_width)
            self.scratchpads[target].view(layout.count_offset, 4, np.uint32)[0] = (
                count
            )
            if layout.target_notify_event is not None and target in touched_cores:
                self.event_files[target].set(layout.target_notify_event)
        self.stats.count("dms.bytes_partitioned", chunk.total_bytes())
        self.stats.count("dms.descriptors", 1)
        # Retire the chunk: free its CMEM bank and CRC/CID buffers.
        if chunk.bank_acquired:
            self.cmem_slots.release()
        if chunk.crc_acquired:
            self.crc_slots.release()

    def _build_records(self, chunk: PartitionChunk) -> np.ndarray:
        """Row-major (rows x record_width) byte matrix of the chunk."""
        parts = []
        if chunk.key is not None:
            parts.append(chunk.key.view(np.uint8).reshape(chunk.rows, -1))
        for values, _width in chunk.columns:
            parts.append(values.view(np.uint8).reshape(chunk.rows, -1))
        return np.hstack(parts)

    def _exec_dms_to_ddr(self, descriptor: Descriptor, core_id: int, prep):
        """Drain CRC or CID memory to DDR (Table 1's last row)."""
        _kind, chunk, _unused = prep
        if chunk is None:
            raise DescriptorError("no hashed chunk to drain to DDR")
        yield chunk.hash_done
        if descriptor.internal_mem == "crc":
            if chunk.hashes is None:
                raise DescriptorError("chunk has no CRC column (non-hash mode)")
            payload = chunk.hashes.astype("<u4")
        elif descriptor.internal_mem == "cid":
            payload = chunk.cids.astype(np.uint8)
        else:
            raise DescriptorError(
                f"DMS->DDR drains crc or cid memory, not {descriptor.internal_mem}"
            )
        raw = payload.view(np.uint8).ravel()
        yield self.ddr_channel.request(
            descriptor.ddr_addr,
            len(raw),
            extra_overhead_cycles=self.config.dms_dmac_decode_cycles,
            is_write=True,
        )
        self.ddr_memory.write(descriptor.ddr_addr, raw)
        self.stats.count("dms.bytes_written", len(raw))
        self.stats.count("dms.descriptors", 1)
