"""The DMAC hash/range partitioning engine (paper §3.1-3.2).

Given a key column staged in column memory, the engine produces a
dpCore ID (CID) per row by one of three schemes:

* **hash-radix** — CRC32 each key, inspect ``radix_bits`` of the hash;
* **radix** — inspect ``radix_bits`` of the raw key;
* **range** — match each key against up to 32 pre-programmed ranges.

This module is the *functional* half (pure numpy on columns); the
timing half lives in :mod:`repro.dms.dmac`. Keeping the math separate
lets the SQL engine's software partitioner reuse exactly the same CID
computation, which is what makes mixed hardware/software partitioning
rounds compose correctly (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.crc32 import crc32_column
from .descriptor import DescriptorError, PartitionMode, PartitionSpec

__all__ = ["compute_cids", "PartitionLayout", "partition_record_width"]


def compute_cids(keys: np.ndarray, spec: PartitionSpec) -> np.ndarray:
    """dpCore ID per key, per the engine's partitioning scheme."""
    if spec.mode is PartitionMode.NONE:
        return np.zeros(len(keys), dtype=np.uint16)
    if spec.mode is PartitionMode.HASH:
        hashes = crc32_column(keys)
        if spec.key_from_crc is False:
            raise DescriptorError("hash mode always inspects the CRC column")
        if spec.radix_shift:
            hashes = hashes >> np.uint32(spec.radix_shift)
        return (hashes & np.uint32(spec.fanout - 1)).astype(np.uint16)
    if spec.mode is PartitionMode.RADIX:
        raw = keys.astype(np.uint64, copy=False)
        if spec.radix_shift:
            raw = raw >> np.uint64(spec.radix_shift)
        return (raw & np.uint64(spec.fanout - 1)).astype(np.uint16)
    # RANGE: bounds are ascending upper bounds; keys above the last
    # bound clamp into the final partition.
    bounds = np.asarray(spec.bounds, dtype=np.int64)
    signed = keys.astype(np.int64, copy=False)
    cids = np.searchsorted(bounds, signed, side="left")
    return np.minimum(cids, len(bounds) - 1).astype(np.uint16)


def partition_record_width(column_widths: Tuple[int, ...]) -> int:
    """Bytes per row-major record emitted by the store engine."""
    return int(sum(column_widths))


@dataclass
class PartitionLayout:
    """Where the store engine puts partitioned rows (per target core).

    The DMAC keeps a write cursor per target core starting at
    ``dmem_base``; each stored row advances it by the record width.
    Row counts are written as a little-endian u32 at ``count_offset``
    in each target core's DMEM, and ``target_notify_event`` (if any)
    is set on every target core when a store descriptor completes so
    consumers can start draining.
    """

    target_cores: Tuple[int, ...]
    dmem_base: int
    capacity: int
    count_offset: int
    target_notify_event: Optional[int] = None
    cursors: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.target_cores:
            raise DescriptorError("partition layout needs target cores")
        if self.capacity <= 0:
            raise DescriptorError(f"capacity must be positive: {self.capacity}")
        self.reset()

    def reset(self) -> None:
        """Rewind all write cursors (start of a new partition round)."""
        self.cursors = {core: self.dmem_base for core in self.target_cores}

    def advance(self, core: int, nbytes: int) -> int:
        """Reserve ``nbytes`` at ``core``'s cursor; returns the offset."""
        offset = self.cursors[core]
        if offset + nbytes > self.dmem_base + self.capacity:
            raise DescriptorError(
                f"partition output overflow on core {core}: "
                f"{offset + nbytes - self.dmem_base} > {self.capacity} "
                "(hardware would apply back pressure; size buffers up)"
            )
        self.cursors[core] = offset + nbytes
        return offset

    def rows_written(self, core: int, record_width: int) -> int:
        return (self.cursors[core] - self.dmem_base) // record_width
