"""x86 (Xeon) baseline machine model."""

from .xeon import XEON_E5_2699V3, XeonConfig, XeonModel

__all__ = ["XEON_E5_2699V3", "XeonConfig", "XeonModel"]
