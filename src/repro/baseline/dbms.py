"""Cost model of the commercial in-memory columnar DBMS (paper §5.3).

Figure 16 does not compare the DPU against hand-tuned kernels: the
paper connects its SQL engine "to a widely used commercial database
with in-memory columnar query execution" and offloads query plans.
Commercial engines pay interpretive vectorized-executor overheads the
paper's co-designed DPU engine does not, which is why the TPC-H gains
(geomean ~15x) exceed the raw bandwidth-per-watt ratio (~6.7x).

The per-row cycle costs below are calibrated against published TPC-H
throughputs of commercial in-memory column stores on comparable
Haswell servers (Q6-class scans ~40-80 cycles/row-core; Q1-class
aggregations ~150-400; hash joins ~60-120 per probe) — the same
ballpark the paper's x86 measurements must have been in for its
reported ratios to hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .xeon import XeonModel

__all__ = ["DbmsCostModel", "ScanShape"]


@dataclass(frozen=True)
class ScanShape:
    """One table scan in a query plan, as the DBMS executes it."""

    rows: int
    nbytes: int  # column bytes the scan touches
    filter_terms: int = 0
    aggregates: int = 0
    groupby: bool = False
    join_probes: int = 0  # hash-table probes per row
    memory_passes: float = 1.0


class DbmsCostModel:
    """Per-row executor costs of the commercial columnar engine."""

    BASE_CYCLES_PER_ROW = 30.0  # vectorized scan driver + materialization
    FILTER_TERM_CYCLES = 10.0  # SIMD compare + selection-vector update
    AGGREGATE_CYCLES = 12.0  # expression eval + accumulator update
    GROUPBY_CYCLES = 30.0  # hash + group locate per row
    JOIN_PROBE_CYCLES = 60.0  # hash-table probe (build amortized)

    def __init__(self, machine: XeonModel) -> None:
        self.machine = machine

    def scan_cycles_per_row(self, shape: ScanShape) -> float:
        return (
            self.BASE_CYCLES_PER_ROW
            + shape.filter_terms * self.FILTER_TERM_CYCLES
            + shape.aggregates * self.AGGREGATE_CYCLES
            + (self.GROUPBY_CYCLES if shape.groupby else 0.0)
            + shape.join_probes * self.JOIN_PROBE_CYCLES
        )

    def scan_seconds(self, shape: ScanShape) -> float:
        config = self.machine.config
        compute = (
            shape.rows
            * self.scan_cycles_per_row(shape)
            / (config.clock_hz * config.cores)
        )
        memory = self.machine.memory_seconds(shape.nbytes, shape.memory_passes)
        return max(compute, memory)

    def plan_seconds(self, shapes: List[ScanShape]) -> float:
        """Operator-at-a-time execution: scans run one after another."""
        return sum(self.scan_seconds(shape) for shape in shapes)
