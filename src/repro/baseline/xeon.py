"""Analytic model of the paper's x86 comparison machine.

The baseline is a server with two Intel Xeon E5-2699 v3 (18C/36T
each, Haswell) and 256 GB DDR4-1600 (paper §5). The paper's perf/watt
numbers divide throughput by *provisioned SoC power*: 145 W for the
Xeon (one socket TDP) and 6 W for the DPU.

We model the Xeon as a roofline: a kernel's runtime is the maximum of
its compute time (instructions / (IPC x clock x cores)) and its
memory time (bytes / effective bandwidth). The two anchors the paper
reports pin the model's constants:

* SAJSON parses at 5.2 GB/s with an IPC of 3.05 (§5.5) — fixing the
  per-core scalar pipeline model;
* the tuned SpMM reaches 34.5 GB/s effective bandwidth across 36
  cores (§5.2) — fixing the effective memory bandwidth.

Baseline kernels in :mod:`repro.apps` compute functionally with numpy
(identical results to the DPU path) and report instruction/byte
counts derived from their inner loops; this module turns those counts
into seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["XeonConfig", "XeonModel", "XEON_E5_2699V3"]


@dataclass(frozen=True)
class XeonConfig:
    """Machine parameters for the x86 baseline."""

    name: str = "xeon-e5-2699v3"
    cores: int = 36  # both sockets, as the SpMM measurement uses
    threads_per_core: int = 2
    clock_hz: float = 2.3e9
    scalar_ipc: float = 3.0  # sustained micro-ops/cycle (SAJSON: 3.05)
    simd_lanes_32b: int = 8  # AVX2: 8 x 32-bit lanes
    effective_bandwidth_gbps: float = 34.5  # measured by the paper's SpMM
    llc_bytes: int = 2 * 45 * 1024 * 1024
    tdp_watts: float = 145.0  # comparison wattage used in §5
    # Software radix partitioning fanout per pass before TLB/cache
    # thrashing makes another round cheaper (Polychroniou & Ross).
    partition_fanout_per_round: int = 256


XEON_E5_2699V3 = XeonConfig()


class XeonModel:
    """Roofline timing for baseline kernels."""

    def __init__(self, config: XeonConfig = XEON_E5_2699V3) -> None:
        self.config = config

    # -- building blocks --------------------------------------------------

    def compute_seconds(
        self,
        instructions: float,
        cores: int = 0,
        ipc: float = 0.0,
    ) -> float:
        """Time to retire ``instructions`` across ``cores``."""
        cores = cores or self.config.cores
        ipc = ipc or self.config.scalar_ipc
        rate = ipc * self.config.clock_hz * cores
        return instructions / rate

    def memory_seconds(self, nbytes: float, passes: float = 1.0) -> float:
        """Time to stream ``nbytes`` ``passes`` times through DRAM."""
        return nbytes * passes / (self.config.effective_bandwidth_gbps * 1e9)

    def roofline_seconds(
        self,
        instructions: float,
        nbytes: float,
        cores: int = 0,
        ipc: float = 0.0,
        memory_passes: float = 1.0,
    ) -> float:
        """max(compute, memory) — the roofline."""
        return max(
            self.compute_seconds(instructions, cores, ipc),
            self.memory_seconds(nbytes, memory_passes),
        )

    # -- derived quantities ----------------------------------------------------

    def partition_rounds(self, num_partitions: int) -> int:
        """Software partitioning rounds to reach ``num_partitions``.

        Each pass achieves at most ``partition_fanout_per_round``-way
        fanout near memory bandwidth (§5.3: the high-NDV group-by
        needs two rounds on x86, one on the DPU).
        """
        if num_partitions <= 1:
            return 0
        rounds = 0
        reach = 1
        while reach < num_partitions:
            reach *= self.config.partition_fanout_per_round
            rounds += 1
        return rounds

    def perf_per_watt(self, throughput: float) -> float:
        return throughput / self.config.tdp_watts
