"""Two-pass assembler for dpCore assembly text.

Syntax, one instruction or label per line::

    # comments run to end of line
    li    r1, 4096        ; alternative comment marker
    loop:
    lw    r2, 0(r3)
    filt  r4, r2
    addi  r3, r3, 4
    bne   r3, r1, loop
    halt

Registers are ``r0``..``r31`` (``r0`` is hardwired to zero, MIPS
style). Immediates may be decimal (optionally negative) or ``0x`` hex.
Pass 1 collects labels, pass 2 resolves them to instruction indices.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .isa import OPCODES, Instruction, IsaError, Program

__all__ = ["assemble"]

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_MEMREF_RE = re.compile(r"^(-?(?:0x[0-9A-Fa-f]+|\d+))\(r(\d+)\)$")
_REG_RE = re.compile(r"^r(\d+)$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";", "//"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise IsaError(f"line {line_number}: bad immediate {token!r}") from None


def _parse_register(token: str, line_number: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise IsaError(f"line {line_number}: expected register, got {token!r}")
    number = int(match.group(1))
    if not 0 <= number < 32:
        raise IsaError(f"line {line_number}: register r{number} out of range")
    return number


def _split_operands(text: str) -> List[str]:
    if not text:
        return []
    return [token.strip() for token in text.split(",")]


def _parse_instruction(
    mnemonic: str, operand_text: str, line_number: int
) -> Instruction:
    spec = OPCODES.get(mnemonic)
    if spec is None:
        raise IsaError(f"line {line_number}: unknown opcode {mnemonic!r}")
    tokens = _split_operands(operand_text)
    kinds = spec.operand_kinds
    if len(tokens) != len(kinds):
        raise IsaError(
            f"line {line_number}: {mnemonic} expects operands "
            f"'{spec.operands}', got {operand_text!r}"
        )
    instruction = Instruction(opcode=mnemonic, source_line=line_number)
    for kind, token in zip(kinds, tokens):
        if kind == "rd":
            instruction.rd = _parse_register(token, line_number)
        elif kind == "rs":
            instruction.rs = _parse_register(token, line_number)
        elif kind == "rt":
            instruction.rt = _parse_register(token, line_number)
        elif kind == "imm":
            instruction.imm = _parse_int(token, line_number)
        elif kind == "imm(rs)":
            match = _MEMREF_RE.match(token.replace(" ", ""))
            if not match:
                raise IsaError(
                    f"line {line_number}: expected imm(reg), got {token!r}"
                )
            instruction.imm = int(match.group(1), 0)
            register = int(match.group(2))
            if not 0 <= register < 32:
                raise IsaError(f"line {line_number}: register r{register} bad")
            instruction.rs = register
        elif kind == "label":
            instruction.label = token
        else:  # pragma: no cover - spec table is static
            raise IsaError(f"line {line_number}: bad operand kind {kind}")
    return instruction


def assemble(source: str) -> Program:
    """Assemble source text into a :class:`Program`."""
    program = Program()
    pending_labels: List[Tuple[str, int]] = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        # Allow "label: instr" on one line.
        label_match: Optional[re.Match] = None
        if ":" in line:
            head, _colon, tail = line.partition(":")
            if _LABEL_RE.match(head.strip() + ":"):
                label_match = _LABEL_RE.match(head.strip() + ":")
                line = tail.strip()
        if label_match:
            label = label_match.group(1)
            if label in program.labels:
                raise IsaError(f"line {line_number}: duplicate label {label!r}")
            program.labels[label] = len(program.instructions)
            if not line:
                continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        program.instructions.append(
            _parse_instruction(mnemonic, operand_text, line_number)
        )
    del pending_labels
    # Pass 2: resolve branch targets.
    for instruction in program.instructions:
        if instruction.label is not None:
            target = program.labels.get(instruction.label)
            if target is None:
                raise IsaError(
                    f"line {instruction.source_line}: undefined label "
                    f"{instruction.label!r}"
                )
            instruction.target = target
    return program
