"""The DPU core: ISA, dpCore interpreter, SoC assembly, power."""

from .assembler import assemble
from .bitvector import (
    bitvector_words,
    nlz64,
    ntz64,
    pack_bits,
    popcount64,
    selected_indices,
    unpack_bits,
)
from .config import DPU_16NM, DPU_40NM, XEON_TDP_WATTS, DPUConfig
from .crc32 import crc32_bytes, crc32_column, crc32_u32, crc32_u64, murmur64
from .dpcore import (
    MISPREDICT_PENALTY,
    DpCoreInterpreter,
    ExecutionResult,
    mul_latency,
)
from .dpu import DPU, CoreContext, LaunchResult
from .isa import OPCODES, Instruction, IsaError, OpSpec, Program, Unit
from .mailbox import A9_ID, M0_ID, NUM_MAILBOXES, Mailbox, MailboxController
from .pmu import PowerManagementUnit, PowerState
from .power import PowerBreakdown, PowerModel
from .profiling import HotLoop, ProfileReport, profile_program

__all__ = [
    "A9_ID",
    "DPU",
    "DPU_16NM",
    "DPU_40NM",
    "CoreContext",
    "DPUConfig",
    "DpCoreInterpreter",
    "ExecutionResult",
    "Instruction",
    "IsaError",
    "LaunchResult",
    "M0_ID",
    "MISPREDICT_PENALTY",
    "Mailbox",
    "MailboxController",
    "NUM_MAILBOXES",
    "OPCODES",
    "OpSpec",
    "HotLoop",
    "PowerBreakdown",
    "ProfileReport",
    "PowerManagementUnit",
    "PowerModel",
    "PowerState",
    "Program",
    "Unit",
    "XEON_TDP_WATTS",
    "assemble",
    "profile_program",
    "bitvector_words",
    "crc32_bytes",
    "crc32_column",
    "crc32_u32",
    "crc32_u64",
    "mul_latency",
    "murmur64",
    "nlz64",
    "ntz64",
    "pack_bits",
    "popcount64",
    "selected_indices",
    "unpack_bits",
]
