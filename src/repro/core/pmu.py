"""M0 power-management unit (paper §2.4).

The Cortex-M0 manages dpCore power modes — four states per the paper
— and can power-gate whole dpCore macros. We model the four states
with per-state dynamic/leakage scale factors and track per-macro
state so the power model can report effective wattage for partially
gated configurations (used by the §2.5 provisioning analysis and the
power ablation bench).

State changes are observable: each transition stamps a trace instant
(when a tracer is attached) and accrues per-macro, per-state
*residency cycles* against the simulation clock, surfaced by
:meth:`residency_counters` as ``macro<N>.active_cycles`` /
``idle_cycles`` / ... — so the power ablation bench can attribute
wattage to how long each macro actually sat in each state instead of
only seeing the final configuration.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..obs import NULL_TRACER
from .config import DPUConfig

__all__ = ["PowerState", "PowerManagementUnit"]


class PowerState(enum.Enum):
    """The four dpCore power states, most to least power-hungry."""

    ACTIVE = "active"  # full clock
    IDLE = "idle"  # clock-gated, state retained
    RETENTION = "retention"  # voltage dropped to retention level
    OFF = "off"  # macro power-gated

    @property
    def dynamic_factor(self) -> float:
        return {"active": 1.0, "idle": 0.08, "retention": 0.0, "off": 0.0}[
            self.value
        ]

    @property
    def leakage_factor(self) -> float:
        return {"active": 1.0, "idle": 1.0, "retention": 0.25, "off": 0.0}[
            self.value
        ]


class PowerManagementUnit:
    """Per-macro power state registry (the M0's job).

    Without an ``engine`` the unit is purely a state registry (all
    residency reads as time zero); with one, every transition is
    stamped against the simulation clock.
    """

    def __init__(self, config: DPUConfig, engine=None,
                 stats=None) -> None:
        self.config = config
        self.engine = engine
        self.stats = stats
        # Observability hook; DPU.enable_tracing swaps in a live tracer.
        self.trace = NULL_TRACER
        self.macro_states: Dict[int, PowerState] = {
            macro: PowerState.ACTIVE for macro in range(config.num_macros)
        }
        now = self._now()
        self._state_since: Dict[int, float] = {
            macro: now for macro in self.macro_states
        }
        self._residency: Dict[int, Dict[str, float]] = {
            macro: {} for macro in self.macro_states
        }
        self.transitions = 0

    def _now(self) -> float:
        return self.engine.now if self.engine is not None else 0.0

    def set_macro_state(self, macro: int, state: PowerState) -> None:
        if macro not in self.macro_states:
            raise ValueError(
                f"macro {macro} outside 0..{self.config.num_macros - 1}"
            )
        previous = self.macro_states[macro]
        if state is previous:
            return
        now = self._now()
        elapsed = now - self._state_since[macro]
        if elapsed > 0:
            bucket = self._residency[macro]
            bucket[previous.value] = bucket.get(previous.value, 0.0) + elapsed
        self._state_since[macro] = now
        self.macro_states[macro] = state
        self.transitions += 1
        if self.trace.enabled:
            self.trace.instant(
                "pmu.transition", unit="pmu", macro=macro,
                from_state=previous.value, to_state=state.value,
            )
            self.trace.counter("pmu.active_cores", unit="pmu",
                               cores=float(self.active_cores()))

    def state_of_core(self, core_id: int) -> PowerState:
        return self.macro_states[self.config.macro_of(core_id)]

    def residency_counters(self, upto: Optional[float] = None) -> Dict[str, float]:
        """Per-macro cycles spent in each state, including the open
        interval of the current state up to ``upto`` (default: now).

        Keys are ``macro<N>.<state>_cycles``; ``active_cycles`` is
        always present so power benches can divide by it safely.
        """
        now = self._now() if upto is None else upto
        out: Dict[str, float] = {}
        for macro in sorted(self._residency):
            merged = dict(self._residency[macro])
            current = self.macro_states[macro]
            elapsed = now - self._state_since[macro]
            if elapsed > 0:
                merged[current.value] = merged.get(current.value, 0.0) + elapsed
            merged.setdefault(PowerState.ACTIVE.value, 0.0)
            for state_name in sorted(merged):
                out[f"macro{macro}.{state_name}_cycles"] = merged[state_name]
        return out

    def effective_core_watts(self) -> float:
        """Dynamic dpCore power with the current gating applied."""
        per_core = self.config.dpcore_dynamic_watts
        total = 0.0
        for macro, state in self.macro_states.items():
            total += (
                per_core * self.config.cores_per_macro * state.dynamic_factor
            )
        return total

    def active_cores(self) -> int:
        return sum(
            self.config.cores_per_macro
            for state in self.macro_states.values()
            if state is PowerState.ACTIVE
        )
