"""M0 power-management unit (paper §2.4).

The Cortex-M0 manages dpCore power modes — four states per the paper
— and can power-gate whole dpCore macros. We model the four states
with per-state dynamic/leakage scale factors and track per-macro
state so the power model can report effective wattage for partially
gated configurations (used by the §2.5 provisioning analysis and the
power ablation bench).
"""

from __future__ import annotations

import enum
from typing import Dict

from .config import DPUConfig

__all__ = ["PowerState", "PowerManagementUnit"]


class PowerState(enum.Enum):
    """The four dpCore power states, most to least power-hungry."""

    ACTIVE = "active"  # full clock
    IDLE = "idle"  # clock-gated, state retained
    RETENTION = "retention"  # voltage dropped to retention level
    OFF = "off"  # macro power-gated

    @property
    def dynamic_factor(self) -> float:
        return {"active": 1.0, "idle": 0.08, "retention": 0.0, "off": 0.0}[
            self.value
        ]

    @property
    def leakage_factor(self) -> float:
        return {"active": 1.0, "idle": 1.0, "retention": 0.25, "off": 0.0}[
            self.value
        ]


class PowerManagementUnit:
    """Per-macro power state registry (the M0's job)."""

    def __init__(self, config: DPUConfig) -> None:
        self.config = config
        self.macro_states: Dict[int, PowerState] = {
            macro: PowerState.ACTIVE for macro in range(config.num_macros)
        }

    def set_macro_state(self, macro: int, state: PowerState) -> None:
        if macro not in self.macro_states:
            raise ValueError(
                f"macro {macro} outside 0..{self.config.num_macros - 1}"
            )
        self.macro_states[macro] = state

    def state_of_core(self, core_id: int) -> PowerState:
        return self.macro_states[self.config.macro_of(core_id)]

    def effective_core_watts(self) -> float:
        """Dynamic dpCore power with the current gating applied."""
        per_core = self.config.dpcore_dynamic_watts
        total = 0.0
        for macro, state in self.macro_states.items():
            total += (
                per_core * self.config.cores_per_macro * state.dynamic_factor
            )
        return total

    def active_cores(self) -> int:
        return sum(
            self.config.cores_per_macro
            for state in self.macro_states.values()
            if state is PowerState.ACTIVE
        )
