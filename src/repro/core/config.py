"""SoC configurations for the DPU (40 nm chip and 16 nm shrink).

All timing constants live here so DESIGN.md's calibration story is in
one auditable place. One simulated time unit = one dpCore cycle
(800 MHz), so DDR3-1600's 12.8 GB/s peak is 16 bytes/cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["DPUConfig", "DPU_40NM", "DPU_16NM", "XEON_TDP_WATTS"]

XEON_TDP_WATTS = 145.0  # Intel Xeon E5-2699 v3, per socket (paper §5)


@dataclass(frozen=True)
class DPUConfig:
    """Parameters of one DPU SoC.

    The defaults describe the fabricated 40 nm part (paper §2): 32
    dpCores in 4 macros at 800 MHz, one DDR3-1600 channel, 32 KB DMEM
    per core, 6 W provisioned power. :data:`DPU_16NM` describes the
    §2.5 process shrink.
    """

    name: str = "dpu-40nm"
    # -- cores ----------------------------------------------------------
    num_cores: int = 32
    cores_per_macro: int = 8
    clock_hz: float = 800e6
    # -- memory system ----------------------------------------------------
    ddr_capacity: int = 128 * 1024 * 1024  # modelled DRAM (chip had 8 GB)
    ddr_peak_bytes_per_cycle: float = 16.0  # 12.8 GB/s DDR3-1600
    ddr_transaction_overhead_cycles: float = 4.0  # per <=256 B AXI txn
    ddr_row_miss_cycles: float = 25.0
    ddr_row_size: int = 4096
    ddr_num_banks: int = 8
    ddr_write_row_miss_factor: float = 0.25  # posted-write coalescing
    ddr_latency_cycles: int = 110  # cached-path fill latency
    ecc_scrub_cycles: float = 6.0  # SECDED read-correct-writeback
    dmem_size: int = 32 * 1024
    l1d_size: int = 16 * 1024
    l1i_size: int = 8 * 1024
    l2_size: int = 256 * 1024
    # -- DMS ----------------------------------------------------------------
    dms_descriptor_setup_cycles: int = 8  # DMAD dequeue/decode
    dms_dmac_decode_cycles: float = 5.0  # controller work per descriptor
    dms_max_outstanding: int = 4  # descriptors in flight per DMAD
    dmax_bytes_per_cycle: float = 16.0  # per-macro crossbar
    dmax_arbitration_cycles: float = 4.0
    dms_hash_bytes_per_cycle: float = 16.0  # hash engine keeps line rate
    dms_gather_row_penalty_bytes: int = 32  # DRAM inefficiency per row
    cmem_banks: int = 3
    cmem_bank_bytes: int = 8 * 1024
    crc_banks: int = 2
    crc_bank_bytes: int = 1024
    cid_banks: int = 2
    cid_bank_bytes: int = 256
    bv_banks: int = 4
    bv_bank_bytes: int = 4 * 1024
    rtl_gather_bug: bool = True  # first silicon's gather FIFO overflow
    dms_crc_retries: int = 3  # descriptor replays before giving up
    dms_crc_check_cycles: int = 4  # CRC SRAM lookup per validation
    # Descriptor active lists live in a 1 KB DMEM ring per channel
    # (64 x 16 B Table-2 images). A push beyond this occupancy stalls
    # the issuing dpCore until the DMAD drains below the limit
    # (credit-based backpressure); 0 disables the bound.
    dmad_queue_depth: int = 64
    # -- ATE ----------------------------------------------------------------
    ate_local_crossbar_cycles: int = 12  # within a macro, one way
    ate_global_crossbar_cycles: int = 22  # macro-to-macro hop, one way
    ate_hw_execute_cycles: int = 6  # remote pipeline injection
    ate_amo_extra_cycles: int = 4  # fetch-add / CAS ALU pass
    ate_sw_handler_overhead_cycles: int = 320  # interrupt+dispatch+return
    ate_rpc_timeout_cycles: int = 4000  # requester reply timeout (fault mode)
    ate_rpc_max_retries: int = 6  # resends before AteError
    # Receiving ATE engine's request FIFO (two entries per peer core).
    # A put into a full inbox blocks in the crossbar — the sender's
    # message occupies its issue path until a slot frees, which is how
    # fan-in overload backpressures the sources; 0 disables the bound.
    ate_inbox_depth: int = 64
    # -- mailbox --------------------------------------------------------------
    mbc_send_cycles: int = 20
    mbc_interrupt_cycles: int = 60
    # -- power (watts; Figure 5 breakdown sums to provisioned total) ------
    provisioned_watts: float = 5.8
    tdp_watts: float = 6.0  # number used for perf/watt in §5
    dpcore_dynamic_watts: float = 0.051  # 51 mW per core at 800 MHz
    # -- scale-out -------------------------------------------------------------
    num_complexes: int = 1  # 16 nm part replicates the 32-core complex

    @property
    def num_macros(self) -> int:
        return self.num_cores // self.cores_per_macro

    @property
    def total_cores(self) -> int:
        return self.num_cores * self.num_complexes

    @property
    def ddr_peak_gbps(self) -> float:
        return self.ddr_peak_bytes_per_cycle * self.clock_hz / 1e9

    @property
    def core_ids(self) -> Tuple[int, ...]:
        return tuple(range(self.num_cores))

    def macro_of(self, core_id: int) -> int:
        return core_id // self.cores_per_macro

    def with_updates(self, **changes) -> "DPUConfig":
        return replace(self, **changes)


DPU_40NM = DPUConfig()

# §2.5: the 16 nm shrink packs 5 copies of the 32-dpCore complex,
# upgrades to DDR4-3200 (76 GB/s per DPU => 15.2 GB/s = 19 B/cycle per
# complex), and raises TDP to 12 W. Compute and bandwidth both scale
# ~5x for ~2x power: 2.5x better perf/watt.
DPU_16NM = DPUConfig(
    name="dpu-16nm",
    num_complexes=5,
    ddr_peak_bytes_per_cycle=19.0,
    provisioned_watts=12.0,
    tdp_watts=12.0,
    rtl_gather_bug=False,
)
