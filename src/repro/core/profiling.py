"""Instruction-level execution monitoring (paper §4).

The DPU team "developed debugging tools ... ranging from simulator
extensions that monitor code execution at instruction level to a
static binary instrumentation tool that monitors code execution on
the DPU at runtime". This module is that simulator extension: run a
program with profiling on and get per-PC execution counts, the
opcode mix, detected hot loops (backward-branch regions weighted by
trip count), and pipeline diagnostics (dual-issue rate, mispredict
rate) — the data that drove optimizations like the §5.5 jump-table
rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..memory.dmem import Scratchpad
from .dpcore import DpCoreInterpreter, ExecutionResult
from .isa import Program, Unit

__all__ = ["ProfileReport", "HotLoop", "profile_program"]


@dataclass(frozen=True)
class HotLoop:
    """A backward-branch region and how much time it absorbed."""

    start: int  # branch target (loop head)
    end: int  # the backward branch's own pc
    iterations: int
    body_instructions: int

    @property
    def dynamic_instructions(self) -> int:
        return self.iterations * self.body_instructions


@dataclass
class ProfileReport:
    """Everything the instruction-level monitor observed."""

    result: ExecutionResult
    pc_counts: Dict[int, int]
    opcode_counts: Dict[str, int]
    hot_loops: List[HotLoop]
    program: Program

    @property
    def dual_issue_rate(self) -> float:
        if self.result.instructions == 0:
            return 0.0
        return 2 * self.result.dual_issues / self.result.instructions

    @property
    def mispredict_rate(self) -> float:
        if self.result.branches == 0:
            return 0.0
        return self.result.mispredicts / self.result.branches

    def hottest(self, count: int = 5) -> List[Tuple[int, int, str]]:
        """Top ``count`` PCs by execution count, with disassembly."""
        ranked = sorted(
            self.pc_counts.items(), key=lambda item: -item[1]
        )[:count]
        return [
            (pc, executions, str(self.program[pc]))
            for pc, executions in ranked
        ]

    def render(self, top: int = 5) -> str:
        """Human-readable report."""
        lines = [
            f"cycles={self.result.cycles} instructions="
            f"{self.result.instructions} ipc={self.result.ipc:.2f}",
            f"dual-issue rate: {self.dual_issue_rate * 100:.1f}%  "
            f"branch mispredict rate: {self.mispredict_rate * 100:.1f}%",
            "opcode mix: "
            + ", ".join(
                f"{op}:{n}"
                for op, n in sorted(
                    self.opcode_counts.items(), key=lambda kv: -kv[1]
                )[:8]
            ),
            "hottest instructions:",
        ]
        lines.extend(
            f"  pc={pc:<4} x{executions:<8} {text}"
            for pc, executions, text in self.hottest(top)
        )
        for loop in self.hot_loops[:3]:
            lines.append(
                f"  loop [{loop.start}..{loop.end}] x{loop.iterations} "
                f"({loop.dynamic_instructions} dynamic instructions)"
            )
        return "\n".join(lines)


def profile_program(
    program: Program,
    dmem: Optional[Scratchpad] = None,
    max_cycles: int = 10**8,
    dual_issue: bool = True,
) -> ProfileReport:
    """Run ``program`` under the instruction-level monitor."""
    interpreter = DpCoreInterpreter(
        program, dmem, dual_issue=dual_issue, profile=True
    )
    result = interpreter.run(max_cycles)

    opcode_counts: Dict[str, int] = {}
    for pc, executions in interpreter.pc_counts.items():
        opcode = program[pc].opcode
        opcode_counts[opcode] = opcode_counts.get(opcode, 0) + executions
        # The profiler samples issue groups; the dual-issued partner
        # shares the group's count.
    hot_loops = _find_hot_loops(program, interpreter.pc_counts)
    return ProfileReport(
        result=result,
        pc_counts=dict(interpreter.pc_counts),
        opcode_counts=opcode_counts,
        hot_loops=hot_loops,
        program=program,
    )


def _find_hot_loops(
    program: Program, pc_counts: Dict[int, int]
) -> List[HotLoop]:
    loops: List[HotLoop] = []
    for pc, instruction in enumerate(program.instructions):
        if (
            instruction.spec.unit is Unit.BRANCH
            and instruction.target is not None
            and instruction.target <= pc
            and pc_counts.get(pc, 0) > 1
        ):
            loops.append(
                HotLoop(
                    start=instruction.target,
                    end=pc,
                    iterations=pc_counts[pc],
                    body_instructions=pc - instruction.target + 1,
                )
            )
    loops.sort(key=lambda loop: -loop.dynamic_instructions)
    return loops
