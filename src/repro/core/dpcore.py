"""Cycle-approximate dpCore interpreter.

Executes assembled dpCore programs against a DMEM scratchpad with the
paper's timing rules (§2.2):

* dual issue — one ALU-pipe and one LSU-pipe instruction may retire in
  the same cycle when adjacent and dependence-free;
* single-cycle DMEM loads/stores and single-cycle analytics
  instructions (FILT, CRC32, POPC, BVLD);
* a low-power multiplier that stalls the pipeline for an
  operand-dependent number of cycles (the reason Murmur64 hashing is
  slow, §5.4);
* a static conditional branch predictor: backward taken, forward not
  taken, with a short mispredict penalty.

The interpreter is the *ground truth* for kernel-level cost constants
used by the task-level application models — e.g. the ~1.65
cycles/tuple filter loop of Figure 15 runs here as real code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..memory.dmem import Scratchpad
from .bitvector import popcount64
from .crc32 import crc32_u32, crc32_u64
from .isa import Instruction, IsaError, Program, Unit

__all__ = ["DpCoreInterpreter", "ExecutionResult", "MISPREDICT_PENALTY", "mul_latency"]

_MASK64 = 2**64 - 1
MISPREDICT_PENALTY = 2  # short in-order pipeline (paper: "simple" predictor)


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - 2**64 if value >= 2**63 else value


def mul_latency(a: int, b: int) -> int:
    """Operand-dependent multiplier latency.

    The dpCore multiplier is iterative: cost grows with the magnitude
    of the smaller operand (early-out on exhausted bits). A 64-bit
    constant multiply (Murmur64) costs ~11 cycles; a small loop index
    multiply costs ~4.
    """
    bits = min(
        max(1, abs(_to_signed(a)).bit_length()),
        max(1, abs(_to_signed(b)).bit_length()),
    )
    return 3 + -(-bits // 8)


@dataclass
class ExecutionResult:
    """Statistics from one interpreter run."""

    cycles: int = 0
    instructions: int = 0
    dual_issues: int = 0
    branches: int = 0
    mispredicts: int = 0
    mem_ops: int = 0
    halted: bool = False
    unit_mix: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cycles_per_instruction(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class DpCoreInterpreter:
    """One dpCore executing a program against its DMEM."""

    def __init__(
        self,
        program: Program,
        dmem: Optional[Scratchpad] = None,
        core_id: int = 0,
        dual_issue: bool = True,
        profile: bool = False,
    ) -> None:
        self.program = program
        self.dmem = dmem if dmem is not None else Scratchpad(core_id)
        self.core_id = core_id
        self.dual_issue = dual_issue  # ablation hook: single-issue mode
        self.profile = profile
        self.pc_counts: Dict[int, int] = {}
        self.regs = [0] * 32
        self.pc = 0
        # Analytics state: filter bounds and the bit-vector accumulator.
        self.filt_lo = 0
        self.filt_hi = 0
        self.bvacc = 0
        self.bvcnt = 0
        self.halted = False
        self.result = ExecutionResult()

    # -- register helpers ---------------------------------------------

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: Optional[int], value: int) -> None:
        if index is None or index == 0:
            return
        self.regs[index] = value & _MASK64

    # -- execution ------------------------------------------------------

    def run(self, max_cycles: int = 10**9) -> ExecutionResult:
        """Execute until HALT, falling off the end, or ``max_cycles``."""
        while not self.halted and self.pc < len(self.program):
            if self.result.cycles >= max_cycles:
                break
            self._step()
        return self.result

    def _step(self) -> None:
        if self.profile:
            self.pc_counts[self.pc] = self.pc_counts.get(self.pc, 0) + 1
        first = self.program[self.pc]
        second = self._dual_issue_partner(first)
        cycles = self._latency(first)
        taken_branch = self._execute(first)
        if second is not None and taken_branch is None:
            cycles = max(cycles, self._latency(second))
            self.result.dual_issues += 1
            self.pc += 1  # consume the partner slot
            branch_from_second = self._execute(second)
            assert branch_from_second is None  # partners are never branches
        if first.spec.unit is Unit.BRANCH:
            self.result.branches += 1
            cycles += self._branch_penalty(first, taken_branch)
        self.result.cycles += cycles
        self.result.instructions += 1 + (1 if second is not None else 0)
        self._count_unit(first)
        if second is not None:
            self._count_unit(second)
        if taken_branch is not None:
            self.pc = taken_branch
        else:
            self.pc += 1

    def _count_unit(self, instruction: Instruction) -> None:
        name = instruction.spec.unit.value
        mix = self.result.unit_mix
        mix[name] = mix.get(name, 0) + 1
        if instruction.spec.unit is Unit.LSU:
            self.result.mem_ops += 1

    def _latency(self, instruction: Instruction) -> int:
        if instruction.opcode == "mul":
            return mul_latency(
                self.read_reg(instruction.rs), self.read_reg(instruction.rt)
            )
        return instruction.spec.latency

    def _dual_issue_partner(self, first: Instruction) -> Optional[Instruction]:
        """The next instruction, if it may retire this same cycle."""
        if not self.dual_issue:
            return None
        if first.spec.serializing or first.spec.unit not in (Unit.ALU, Unit.LSU):
            return None
        next_pc = self.pc + 1
        if next_pc >= len(self.program):
            return None
        second = self.program[next_pc]
        if second.spec.serializing or second.spec.unit not in (Unit.ALU, Unit.LSU):
            return None
        if second.spec.unit is first.spec.unit:
            return None  # need one ALU + one LSU
        written = set(first.writes())
        if written & set(second.reads()):
            return None  # RAW
        if written & set(second.writes()):
            return None  # WAW
        # Branch targets must not land between the pair.
        if next_pc in self._branch_target_set():
            return None
        return second

    def _branch_target_set(self):
        return self.program.branch_targets()

    def _branch_penalty(self, instruction: Instruction, taken: Optional[int]) -> int:
        """Static predictor: backward taken, forward not taken."""
        if instruction.opcode in ("j", "jal", "jr"):
            return 0  # unconditional: resolved in decode
        assert instruction.target is not None
        predicted_taken = instruction.target <= self.pc
        actually_taken = taken is not None
        if predicted_taken != actually_taken:
            self.result.mispredicts += 1
            return MISPREDICT_PENALTY
        return 0

    # -- semantics ------------------------------------------------------

    def _execute(self, ins: Instruction) -> Optional[int]:
        """Execute one instruction; returns branch target if taken."""
        op = ins.opcode
        rs = self.read_reg(ins.rs) if ins.rs is not None else 0
        rt = self.read_reg(ins.rt) if ins.rt is not None else 0
        imm = ins.imm if ins.imm is not None else 0

        if op in ("add", "addi"):
            other = rt if op == "add" else imm
            self.write_reg(ins.rd, rs + other)
        elif op == "sub":
            self.write_reg(ins.rd, rs - rt)
        elif op in ("and", "andi"):
            self.write_reg(ins.rd, rs & (rt if op == "and" else imm))
        elif op in ("or", "ori"):
            self.write_reg(ins.rd, rs | (rt if op == "or" else imm))
        elif op in ("xor", "xori"):
            self.write_reg(ins.rd, rs ^ (rt if op == "xor" else imm))
        elif op in ("sll", "slli"):
            shift = (rt if op == "sll" else imm) & 63
            self.write_reg(ins.rd, rs << shift)
        elif op in ("srl", "srli"):
            shift = (rt if op == "srl" else imm) & 63
            self.write_reg(ins.rd, (rs & _MASK64) >> shift)
        elif op in ("sra", "srai"):
            shift = (rt if op == "sra" else imm) & 63
            self.write_reg(ins.rd, _to_signed(rs) >> shift)
        elif op in ("slt", "slti"):
            other = _to_signed(rt) if op == "slt" else imm
            self.write_reg(ins.rd, 1 if _to_signed(rs) < other else 0)
        elif op == "sltu":
            self.write_reg(ins.rd, 1 if (rs & _MASK64) < (rt & _MASK64) else 0)
        elif op == "li":
            self.write_reg(ins.rd, imm)
        elif op == "lui":
            self.write_reg(ins.rd, imm << 16)
        elif op == "mov":
            self.write_reg(ins.rd, rs)
        elif op == "mul":
            self.write_reg(ins.rd, _to_signed(rs) * _to_signed(rt))
        elif op == "div":
            if rt == 0:
                self.write_reg(ins.rd, _MASK64)
            else:
                a, b = _to_signed(rs), _to_signed(rt)
                quotient = abs(a) // abs(b)
                self.write_reg(ins.rd, -quotient if (a < 0) != (b < 0) else quotient)
        elif op == "rem":
            if rt == 0:
                self.write_reg(ins.rd, rs)
            else:
                a, b = _to_signed(rs), _to_signed(rt)
                remainder = abs(a) % abs(b)
                self.write_reg(ins.rd, -remainder if a < 0 else remainder)
        elif op == "nop":
            pass
        elif op == "crc32w":
            seed = self.read_reg(ins.rd)
            self.write_reg(ins.rd, crc32_u32(rs, seed & 0xFFFFFFFF))
        elif op == "crc32d":
            seed = self.read_reg(ins.rd)
            self.write_reg(ins.rd, crc32_u64(rs, seed & 0xFFFFFFFF))
        elif op == "popc":
            self.write_reg(ins.rd, popcount64(rs))
        elif op == "filt":
            bit = 1 if self.filt_lo <= _to_signed(rs) <= self.filt_hi else 0
            self.write_reg(ins.rd, bit)
            self.bvacc = ((self.bvacc >> 1) | (bit << 63)) & _MASK64
            self.bvcnt += 1
        elif op == "setfl":
            self.filt_lo = _to_signed(rs)
        elif op == "setfh":
            self.filt_hi = _to_signed(rs)
        elif op == "rdbv":
            self.write_reg(ins.rd, self.bvacc)
        elif op == "clrbv":
            self.bvacc = 0
            self.bvcnt = 0
        elif op == "bvext":
            if self.bvacc == 0:
                self.write_reg(ins.rd, _MASK64)  # -1: empty
            else:
                isolated = self.bvacc & (-self.bvacc & _MASK64)
                index = popcount64(isolated - 1)
                self.bvacc &= self.bvacc - 1
                self.write_reg(ins.rd, index)
        elif op in ("ld", "lw", "lwu", "lh", "lhu", "lb", "lbu"):
            address = (rs + imm) & _MASK64
            self.write_reg(ins.rd, self._load(op, address))
        elif op in ("sd", "sw", "sh", "sb"):
            address = (rs + imm) & _MASK64
            self._store(op, address, rt)
        elif op == "bvld":
            address = (rs + imm) & _MASK64
            self.bvacc = self.dmem.read_u64(int(address))
            self.bvcnt = 0
        elif op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = self._branch_condition(op, rs, rt)
            return ins.target if taken else None
        elif op == "j":
            return ins.target
        elif op == "jal":
            self.write_reg(ins.rd, self.pc + 1)
            return ins.target
        elif op == "jr":
            return rs & _MASK64
        elif op in ("fence", "cflush", "cinval"):
            pass  # timing handled at task level; semantics are no-ops here
        elif op == "wfe":
            pass  # event integration lives in the task-level runtime
        elif op == "halt":
            self.halted = True
            self.result.halted = True
        else:  # pragma: no cover - spec table is closed
            raise IsaError(f"unimplemented opcode {op!r}")
        return None

    def _branch_condition(self, op: str, rs: int, rt: int) -> bool:
        if op == "beq":
            return rs == rt
        if op == "bne":
            return rs != rt
        if op == "blt":
            return _to_signed(rs) < _to_signed(rt)
        if op == "bge":
            return _to_signed(rs) >= _to_signed(rt)
        if op == "bltu":
            return (rs & _MASK64) < (rt & _MASK64)
        return (rs & _MASK64) >= (rt & _MASK64)  # bgeu

    def _load(self, op: str, address: int) -> int:
        address = int(address)
        if op == "ld":
            return self.dmem.read_u64(address)
        if op in ("lw", "lwu"):
            raw = int(self.dmem.view(address, 4, dtype="<u4")[0])
            if op == "lw" and raw >= 2**31:
                raw -= 2**32
            return raw & _MASK64
        if op in ("lh", "lhu"):
            raw = int(self.dmem.view(address, 2, dtype="<u2")[0])
            if op == "lh" and raw >= 2**15:
                raw -= 2**16
            return raw & _MASK64
        raw = int(self.dmem.view(address, 1, dtype="u1")[0])
        if op == "lb" and raw >= 2**7:
            raw -= 2**8
        return raw & _MASK64

    def _store(self, op: str, address: int, value: int) -> None:
        address = int(address)
        if op == "sd":
            self.dmem.write_u64(address, value)
        elif op == "sw":
            self.dmem.view(address, 4, dtype="<u4")[0] = value & 0xFFFFFFFF
        elif op == "sh":
            self.dmem.view(address, 2, dtype="<u2")[0] = value & 0xFFFF
        else:
            self.dmem.view(address, 1, dtype="u1")[0] = value & 0xFF
