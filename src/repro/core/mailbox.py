"""MBC: the MailBox Controller (paper §2.4).

A hardware queue connecting the 32 dpCores, the ARM A9 pair and the
M0 power-management core — 34 mailboxes in all. Its purpose is quick
exchange of lightweight messages (typically a pointer into DRAM)
while bulk data moves through main memory. Each mailbox has
memory-mapped send/receive registers and an interrupt line to its
owner; we expose that as blocking ``send``/``receive`` with the
paper's register-access and interrupt costs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.config import DPUConfig
from ..sim import Engine, StatsRecorder, Store, Timeout

__all__ = ["Mailbox", "MailboxController", "A9_ID", "M0_ID", "NUM_MAILBOXES"]

A9_ID = 32
M0_ID = 33
NUM_MAILBOXES = 34


class Mailbox:
    """One endpoint's receive queue."""

    def __init__(self, engine: Engine, owner: int, capacity: int = 64) -> None:
        self.engine = engine
        self.owner = owner
        self.queue = Store(engine, capacity=capacity)

    def __len__(self) -> int:
        return len(self.queue)


class MailboxController:
    """All 34 mailboxes plus their interrupt delivery costs."""

    def __init__(
        self,
        engine: Engine,
        config: DPUConfig,
        stats: Optional[StatsRecorder] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.stats = stats if stats is not None else StatsRecorder()
        self.mailboxes: Dict[int, Mailbox] = {
            endpoint: Mailbox(engine, endpoint) for endpoint in range(NUM_MAILBOXES)
        }
        self._send_cycles = config.mbc_send_cycles
        self._interrupt_cycles = config.mbc_interrupt_cycles

    def _check(self, endpoint: int) -> None:
        if endpoint not in self.mailboxes:
            raise ValueError(
                f"mailbox id {endpoint} outside 0..{NUM_MAILBOXES - 1} "
                f"(dpCores 0-31, A9={A9_ID}, M0={M0_ID})"
            )

    def send(self, src: int, dst: int, payload: Any):
        """Write to ``dst``'s data register; blocks if the queue is
        full (hardware back pressure). Process generator."""
        self._check(src)
        self._check(dst)
        yield Timeout(self.engine, self._send_cycles)
        yield self.mailboxes[dst].queue.put((src, payload))
        self.stats.count("mbc.sent", 1)

    def receive(self, endpoint: int):
        """Block until a message arrives; returns ``(src, payload)``.

        The arrival interrupt plus register reads cost
        ``mbc_interrupt_cycles`` on the receiving core.
        """
        self._check(endpoint)
        message = yield self.mailboxes[endpoint].queue.get()
        yield Timeout(self.engine, self._interrupt_cycles)
        self.stats.count("mbc.received", 1)
        return message

    def try_receive(self, endpoint: int):
        """Non-blocking poll of the mailbox's status register."""
        self._check(endpoint)
        return self.mailboxes[endpoint].queue.try_get()
