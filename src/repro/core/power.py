"""DPU power model (paper §2.5, Figure 5).

The paper designs for *provisioned* power — what a rack operator must
budget — rather than measured dynamic power, and reports 5.8 W for
the 40 nm part with >37% going to leakage (high-leakage cells were
needed to close timing) and 51 mW of dynamic power per dpCore at
800 MHz. Figure 5 is a breakdown of that 5.8 W; the exact slice sizes
are read off the pie chart, constrained by the two numbers the text
states exactly (leakage fraction and per-core dynamic power).

Perf/watt comparisons in §5 use provisioned SoC power for both sides:
6 W for the DPU and 145 W TDP for the Xeon socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import DPUConfig

__all__ = ["PowerModel", "PowerBreakdown"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Watts by SoC component; sums to the provisioned total."""

    leakage: float
    dpcores: float
    dms: float
    ddr_controller: float
    ate_interconnect: float
    caches: float
    arm_a9: float
    peripherals: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "leakage": self.leakage,
            "dpcores": self.dpcores,
            "dms": self.dms,
            "ddr_controller": self.ddr_controller,
            "ate_interconnect": self.ate_interconnect,
            "caches": self.caches,
            "arm_a9": self.arm_a9,
            "peripherals": self.peripherals,
        }

    @property
    def total(self) -> float:
        return sum(self.as_dict().values())

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {name: watts / total for name, watts in self.as_dict().items()}


class PowerModel:
    """Provisioned-power accounting for one DPU configuration."""

    def __init__(self, config: DPUConfig) -> None:
        self.config = config

    def breakdown(self) -> PowerBreakdown:
        """Figure 5's component breakdown, scaled to the config.

        Anchored by the text: leakage is >37% of 5.8 W (2.15 W) and
        each dpCore burns 51 mW dynamic (1.63 W for 32). The remaining
        2.02 W is apportioned across DMS, DDR controller+PHY,
        ATE/interconnect, caches, the A9 macro and peripherals in
        Figure 5's visual proportions.
        """
        dpcores = (
            self.config.dpcore_dynamic_watts
            * self.config.num_cores
            * self.config.num_complexes
        )
        # Non-core components scale to fill the provisioned budget
        # (the 16 nm shrink spends proportionally less on leakage and
        # uncore for its 12 W TDP).
        base_rest = 5.8 - 32 * 0.051
        scale = (self.config.provisioned_watts - dpcores) / base_rest
        return PowerBreakdown(
            leakage=2.15 * scale,
            dpcores=dpcores,
            dms=0.45 * scale,
            ddr_controller=0.55 * scale,
            ate_interconnect=0.25 * scale,
            caches=0.35 * scale,
            arm_a9=0.30 * scale,
            peripherals=0.12 * scale,
        )

    @property
    def provisioned_watts(self) -> float:
        return self.config.provisioned_watts

    @property
    def comparison_watts(self) -> float:
        """Wattage used for perf/watt comparisons (6 W in §5)."""
        return self.config.tdp_watts

    def perf_per_watt(self, throughput: float) -> float:
        """Throughput (any unit) divided by comparison wattage."""
        return throughput / self.comparison_watts

    def energy_joules(self, cycles: float) -> float:
        """Energy at provisioned power over a cycle count."""
        return self.provisioned_watts * cycles / self.config.clock_hz
