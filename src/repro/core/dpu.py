"""The DPU SoC: dpCore complex + DMS + ATE + MBC + ARM/M0 blocks.

:class:`DPU` wires every modelled unit of the chip together (paper
Figure 3) and provides the software entry point: ``launch`` runs a
kernel — a Python generator taking a :class:`CoreContext` — on a set
of dpCores to completion, mirroring the runtime's cooperative
run-to-completion scheduling (§4).

The :class:`CoreContext` is the per-core "system utilities" layer a
dpCore program links against: cycle charging for compute, DMS
descriptor pushes and ``wfe``, ATE RPCs, mailbox access, cache
maintenance and heap allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..ate import Ate
from ..dms import Descriptor, Dmac, Dmad, Dmax, EventFile
from ..faults import FaultInjector, FaultPlan
from ..memory import (
    AddressMap,
    CacheConfig,
    DDRChannel,
    DDRMemory,
    HeapAllocator,
    MacroCacheHierarchy,
    Scratchpad,
)
from ..obs import (
    NULL_HUB,
    NULL_TRACER,
    CounterRegistry,
    MetricsHub,
    PerfReport,
    Tracer,
)
from ..sim import Engine, SimulationError, StatsRecorder
from .config import DPU_40NM, DPUConfig
from .mailbox import MailboxController
from .pmu import PowerManagementUnit
from .power import PowerModel

__all__ = ["DPU", "CoreContext", "LaunchResult"]

_HEAP_BASE = 4096  # keep address 0 unmapped-ish for easier debugging


@dataclass
class LaunchResult:
    """Outcome of one kernel launch across dpCores."""

    values: List[Any]
    start_cycle: float
    end_cycle: float
    config: DPUConfig

    @property
    def cycles(self) -> float:
        return self.end_cycle - self.start_cycle

    @property
    def seconds(self) -> float:
        return self.cycles / self.config.clock_hz

    def gbps(self, nbytes: float) -> float:
        """Throughput in GB/s for ``nbytes`` moved during the launch."""
        if self.cycles <= 0:
            return 0.0
        return nbytes / self.seconds / 1e9

    def rate_per_second(self, count: float) -> float:
        """Events per second (tuples, rows, queries...)."""
        if self.cycles <= 0:
            return 0.0
        return count / self.seconds


class DPU:
    """One Data Processing Unit SoC instance."""

    def __init__(
        self,
        config: DPUConfig = DPU_40NM,
        engine: Optional[Engine] = None,
        fault_plan: Optional[FaultPlan] = None,
        faults: Optional[FaultInjector] = None,
        name: str = "dpu0",
    ) -> None:
        self.config = config
        self.name = name
        self.engine = engine if engine is not None else Engine()
        self.stats = StatsRecorder()
        # Observability: NULL_TRACER until enable_tracing() swaps in a
        # live tracer (also mirrored onto every unit's .trace), and the
        # no-op metrics hub until enable_metrics() attaches a sampler.
        self.trace = NULL_TRACER
        self.metrics = NULL_HUB
        # One injector per DPU unless the caller shares one (clusters
        # pass a single injector so the fault trace is global).
        self.faults = (
            faults
            if faults is not None
            else FaultInjector(fault_plan, self.engine)
        )
        self.address_map = AddressMap(
            ddr_capacity=config.ddr_capacity, num_cores=config.num_cores
        )
        self.ddr = DDRMemory(self.address_map)
        self.ddr_channel = DDRChannel(
            self.engine,
            peak_bytes_per_cycle=config.ddr_peak_bytes_per_cycle,
            transaction_overhead_cycles=config.ddr_transaction_overhead_cycles,
            row_miss_cycles=config.ddr_row_miss_cycles,
            row_size=config.ddr_row_size,
            num_banks=config.ddr_num_banks,
            write_row_miss_factor=config.ddr_write_row_miss_factor,
            faults=self.faults,
            ecc_scrub_cycles=config.ecc_scrub_cycles,
        )
        self.scratchpads: Dict[int, Scratchpad] = {
            core: Scratchpad(core, config.dmem_size) for core in config.core_ids
        }
        self.event_files: Dict[int, EventFile] = {
            core: EventFile(self.engine, core) for core in config.core_ids
        }
        self.dmaxes = [
            Dmax(
                self.engine,
                macro,
                bytes_per_cycle=config.dmax_bytes_per_cycle,
                arbitration_cycles=config.dmax_arbitration_cycles,
            )
            for macro in range(config.num_macros)
        ]
        self.dmac = Dmac(
            self.engine,
            config,
            self.ddr,
            self.ddr_channel,
            self.scratchpads,
            self.event_files,
            self.dmaxes,
            stats=self.stats,
        )
        self.dmads: Dict[int, Dmad] = {
            core: Dmad(
                self.engine, core, self.dmac, self.event_files[core], config,
                stats=self.stats, faults=self.faults,
            )
            for core in config.core_ids
        }
        self.ate = Ate(
            self.engine,
            config,
            self.address_map,
            self.ddr,
            self.scratchpads,
            stats=self.stats,
            faults=self.faults,
        )
        self.mailbox = MailboxController(self.engine, config, stats=self.stats)
        self.heap = HeapAllocator(
            base=_HEAP_BASE,
            capacity=config.ddr_capacity - _HEAP_BASE,
            num_cores=config.num_cores,
            engine=self.engine,
        )
        # Optional admission gate for launches (see set_admission).
        self.admission = None
        self.caches: List[MacroCacheHierarchy] = [
            MacroCacheHierarchy(
                core_ids=range(
                    macro * config.cores_per_macro,
                    (macro + 1) * config.cores_per_macro,
                ),
                l1d_config=CacheConfig(size=config.l1d_size),
                l2_config=CacheConfig(
                    size=config.l2_size, associativity=8, hit_cycles=12
                ),
                ddr_latency_cycles=config.ddr_latency_cycles,
                l1i_config=CacheConfig(size=config.l1i_size, associativity=2),
            )
            for macro in range(config.num_macros)
        ]
        self.pmu = PowerManagementUnit(config, engine=self.engine)
        self.power = PowerModel(config)

    # -- memory helpers ------------------------------------------------------

    def store_array(self, array: np.ndarray, core_id: int = 0) -> int:
        """Allocate DDR for ``array``, copy it in, return the address."""
        raw = np.ascontiguousarray(array).view(np.uint8).ravel()
        address = self.heap.malloc(max(len(raw), 1), core_id)
        self.ddr.write(address, raw)
        return address

    def load_array(self, address: int, count: int, dtype) -> np.ndarray:
        """Typed copy of DDR contents (e.g. to check kernel output)."""
        itemsize = np.dtype(dtype).itemsize
        return self.ddr.read(address, count * itemsize).view(dtype).copy()

    def alloc(self, nbytes: int, core_id: int = 0) -> int:
        return self.heap.malloc(nbytes, core_id)

    def free(self, address: int) -> None:
        self.heap.free(address)

    # -- kernel launch ----------------------------------------------------------

    def context(self, core_id: int) -> "CoreContext":
        return CoreContext(self, core_id)

    def set_admission(self, controller) -> None:
        """Attach an :class:`~repro.runtime.admission.AdmissionController`.

        With a controller attached, every ``launch`` first passes the
        admission gate: the job queues (simulated wait), is shed with
        an ``OverloadError``, or runs at reduced fanout, per the
        controller's policy. With none attached (the default) launch
        takes exactly the ungated code path.
        """
        self.admission = controller
        if controller is not None:
            controller.trace = self.trace
            controller.metrics = self.metrics

    def launch(
        self,
        kernel: Callable,
        args: Sequence[Any] = (),
        cores: Optional[Iterable[int]] = None,
        per_core_args: Optional[Dict[int, Sequence[Any]]] = None,
        limit_cycles: float = 10**13,
    ) -> LaunchResult:
        """Run ``kernel(ctx, *args)`` on each core; collect returns.

        ``per_core_args`` overrides ``args`` for specific cores. The
        launch is complete when every core's kernel generator returns
        (cooperative run-to-completion, no preemption — §4).
        """
        core_list = list(cores) if cores is not None else list(self.config.core_ids)
        if self.admission is not None:
            site = f"dpu.launch:{getattr(kernel, '__name__', 'kernel')}"
            ticket = self.run_process(
                self.admission.acquire(site), limit_cycles=limit_cycles
            )
            try:
                core_list = ticket.fanout(core_list)
                return self._launch_cores(
                    kernel, args, core_list, per_core_args, limit_cycles
                )
            finally:
                self.admission.release()
        return self._launch_cores(
            kernel, args, core_list, per_core_args, limit_cycles
        )

    def _launch_cores(
        self,
        kernel: Callable,
        args: Sequence[Any],
        core_list: List[int],
        per_core_args: Optional[Dict[int, Sequence[Any]]],
        limit_cycles: float,
    ) -> LaunchResult:
        start = self.engine.now
        metrics = self.metrics
        if metrics.enabled:
            # Re-arm the periodic sampler (it goes dormant when the
            # engine queue holds nothing but sampler ticks).
            metrics.touch()
        processes = []
        for core_id in core_list:
            context = self.context(core_id)
            kernel_args = (
                per_core_args[core_id]
                if per_core_args is not None and core_id in per_core_args
                else args
            )
            processes.append(
                self.engine.process(
                    kernel(context, *kernel_args), name=f"core{core_id}"
                )
            )
        gate = self.engine.all_of(processes)
        values = self.engine.run_until_complete(gate, limit=limit_cycles)
        if metrics.enabled:
            # Final sample lands exactly on the completion cycle, so
            # interval integration reproduces LaunchResult totals.
            metrics.flush()
            metrics.observe("dpu.launch.cycles", self.engine.now - start)
        if self.trace.enabled:
            self.trace.complete_async(
                "dpu.launch", "sched", start,
                kernel=getattr(kernel, "__name__", "kernel"),
                cores=len(core_list),
            )
        return LaunchResult(
            values=values,
            start_cycle=start,
            end_cycle=self.engine.now,
            config=self.config,
        )

    def spawn_job(
        self,
        kernel: Callable,
        args: Sequence[Any] = (),
        cores: Optional[Iterable[int]] = None,
        per_core_args: Optional[Dict[int, Sequence[Any]]] = None,
        site: Optional[str] = None,
    ):
        """Start one admission-gated multi-core job WITHOUT driving
        the engine; returns a single process yielding the per-core
        values. For coordinators running many concurrent jobs on a
        shared engine — the admission gate (if attached) queues,
        sheds, or degrades each job inside the simulation."""
        core_list = list(cores) if cores is not None else list(self.config.core_ids)
        label = site or f"dpu.job:{getattr(kernel, '__name__', 'kernel')}"

        def job():
            began = self.engine.now
            if self.metrics.enabled:
                self.metrics.touch()
            ticket = None
            job_cores = core_list
            if self.admission is not None:
                ticket = yield from self.admission.acquire(label)
                job_cores = ticket.fanout(job_cores)
            try:
                processes = self.spawn_kernels(
                    kernel, args, job_cores, per_core_args
                )
                values = yield self.engine.all_of(processes)
            finally:
                if ticket is not None:
                    self.admission.release()
                if self.metrics.enabled:
                    self.metrics.observe(
                        "dpu.job.cycles", self.engine.now - began
                    )
                if self.trace.enabled:
                    self.trace.complete_async(
                        "dpu.job", "sched", began, site=label,
                        cores=len(job_cores),
                    )
            return values

        return self.engine.process(job(), name=label)

    def spawn_kernels(
        self,
        kernel: Callable,
        args: Sequence[Any] = (),
        cores: Optional[Iterable[int]] = None,
        per_core_args: Optional[Dict[int, Sequence[Any]]] = None,
    ) -> List[Any]:
        """Start kernels WITHOUT driving the engine.

        For multi-DPU simulations sharing one engine: spawn kernels on
        every DPU first, then run the engine once (e.g. via
        ``engine.run_until_complete(engine.all_of(processes))``).
        """
        core_list = list(cores) if cores is not None else list(self.config.core_ids)
        processes = []
        for core_id in core_list:
            context = self.context(core_id)
            kernel_args = (
                per_core_args[core_id]
                if per_core_args is not None and core_id in per_core_args
                else args
            )
            processes.append(
                self.engine.process(
                    kernel(context, *kernel_args), name=f"core{core_id}"
                )
            )
        return processes

    def run_process(self, generator, limit_cycles: float = 10**13) -> Any:
        """Run one bare process to completion (e.g. an A9-side driver)."""
        process = self.engine.process(generator)
        return self.engine.run_until_complete(process, limit=limit_cycles)

    # -- observability ------------------------------------------------------------

    def _traced_units(self) -> List[Any]:
        units: List[Any] = [self.dmac, self.ate, self.ddr_channel, self.pmu]
        units.extend(self.dmads.values())
        if self.admission is not None:
            units.append(self.admission)
        return units

    def enable_tracing(
        self,
        tracer: Optional[Tracer] = None,
        capacity: int = 1 << 16,
    ) -> Tracer:
        """Attach a live tracer to every unit of the chip.

        Pass an existing :class:`~repro.obs.Tracer` (or a ``view`` of
        one) to aggregate several DPUs into one cluster trace;
        otherwise a fresh tracer/ring buffer is created. Tracing never
        schedules simulation events, so enabling it does not perturb
        timing — and :meth:`disable_tracing` restores the strictly
        zero-overhead null tracer.
        """
        if tracer is None:
            tracer = Tracer(self.engine, process_name=self.name,
                            capacity=capacity)
        self.trace = tracer
        self.engine.tracer = tracer
        for unit in self._traced_units():
            unit.trace = tracer
        if self.metrics.enabled:
            # Counter-track samples merge into the same Chrome trace.
            self.metrics.trace = tracer
        return tracer

    def disable_tracing(self) -> None:
        """Swap the no-op tracer back in everywhere."""
        self.trace = NULL_TRACER
        self.engine.tracer = None
        for unit in self._traced_units():
            unit.trace = NULL_TRACER
        if self.metrics.enabled:
            self.metrics.trace = NULL_TRACER

    def enable_metrics(
        self,
        hub: Optional[MetricsHub] = None,
        cadence: float = 10_000.0,
        capacity: int = 4096,
    ) -> MetricsHub:
        """Attach a continuous-metrics hub sampling this DPU.

        The hub registers a periodic sampler on the engine clock that
        snapshots the full counter registry (plus live DMAD channel
        occupancy and admission gate depth) into ring-buffered time
        series. Sampler ticks are pure host-side reads — they never
        mutate modelled state or wake a process — so cycle counts are
        identical to a metrics-off run (pinned, like the tracer). Pass
        an existing cluster hub to aggregate several DPUs.
        """
        if hub is None:
            hub = MetricsHub(
                self.engine, cadence=cadence, capacity=capacity,
                clock_hz=self.config.clock_hz, trace=self.trace,
            )
        self.metrics = hub
        hub.add_sampler(self._metrics_sample)
        if self.admission is not None:
            self.admission.metrics = hub
        return hub

    def disable_metrics(self) -> None:
        """Swap the no-op hub back in (strictly zero overhead)."""
        self.metrics = NULL_HUB
        if self.admission is not None:
            self.admission.metrics = NULL_HUB

    def _metrics_sample(self) -> Dict[str, float]:
        """One sampler tick: the registry, plus gauges the registry
        does not carry (live DMAD occupancy, admission gate depth)."""
        sample = self.counter_registry().snapshot()
        prefix = self.name
        for core_id, dmad in self.dmads.items():
            sample[f"{prefix}.dmad{core_id}.occupancy"] = float(
                sum(dmad.occupancy(channel)
                    for channel in range(dmad.NUM_CHANNELS))
            )
        admission = self.admission
        if admission is not None:
            occupancy = admission.occupancy()
            scope = f"{prefix}.{admission.name}"
            sample[f"{scope}.running"] = float(occupancy["running"])
            sample[f"{scope}.queued"] = float(occupancy["queued"])
            sample[f"{scope}.shed"] = float(admission.shed)
            sample[f"{scope}.degraded"] = float(admission.degraded)
        return sample

    def counter_registry(self) -> CounterRegistry:
        """Harvest every hardware counter into one dot-path registry.

        Pull-model: the units keep accounting through their existing
        :class:`StatsRecorder` and internal state; this collects it
        all under ``<name>.<unit>.<counter>`` paths with
        snapshot/delta/merge semantics, without touching the pinned
        stats snapshots.
        """
        registry = CounterRegistry()
        registry.adopt_stats(self.stats, prefix=self.name)
        scope = registry.scope(self.name)
        scope.set("engine.now", self.engine.now)
        scope.set("ddr.bytes_served", self.ddr_channel.bytes_served)
        scope.set("ddr.busy_cycles", self.ddr_channel.server.busy_cycles)
        scope.set("ddr.row_misses", self.ddr_channel.row_misses)
        for index, dmax in enumerate(self.dmaxes):
            scope.set(f"dmax{index}.bytes_served", dmax.server.bytes_served)
            scope.set(f"dmax{index}.busy_cycles", dmax.server.busy_cycles)
        for path, cycles in self.pmu.residency_counters().items():
            scope.set(f"pmu.{path}", cycles)
        heap_stats = getattr(self.heap, "stats", None)
        if callable(heap_stats):
            for key, value in heap_stats().items():
                if isinstance(value, (int, float)):
                    scope.set(f"heap.{key}", value)
        return registry

    def perf_report(self, elapsed_cycles: Optional[float] = None) -> PerfReport:
        """Utilization + throughput + latency histograms, derived
        purely from the counter registry and recorder series.

        ``elapsed_cycles`` defaults to the whole run (``engine.now``),
        which for a single launch from t=0 makes the report's DMS GB/s
        equal ``LaunchResult.gbps`` exactly (same arithmetic).
        """
        elapsed = self.engine.now if elapsed_cycles is None else elapsed_cycles
        utilization = {"ddr": self.ddr_channel.utilization()}
        for index, dmax in enumerate(self.dmaxes):
            utilization[f"dmax{index}"] = dmax.server.utilization()
        return PerfReport(
            self.counter_registry(),
            elapsed_cycles=elapsed,
            clock_hz=self.config.clock_hz,
            name=self.name,
            utilization=utilization,
            series=dict(self.stats.series),
        )

    # -- reporting ----------------------------------------------------------------

    def seconds(self, cycles: float) -> float:
        return cycles / self.config.clock_hz

    def gbps(self, nbytes: float, cycles: float) -> float:
        if cycles <= 0:
            return 0.0
        return nbytes / self.seconds(cycles) / 1e9

    def perf_per_watt(self, throughput: float) -> float:
        return self.power.perf_per_watt(throughput)


class CoreContext:
    """Software's view of one dpCore (the runtime utility layer)."""

    def __init__(self, dpu: DPU, core_id: int) -> None:
        if core_id not in dpu.scratchpads:
            raise SimulationError(f"no such core {core_id}")
        self.dpu = dpu
        self.core_id = core_id
        self.engine = dpu.engine
        self.config = dpu.config
        self._unit = f"core{core_id}"
        self.dmem = dpu.scratchpads[core_id]
        self.events = dpu.event_files[core_id]
        self.dmad = dpu.dmads[core_id]
        self.ate = dpu.ate
        self.macro = dpu.config.macro_of(core_id)

    # -- compute ------------------------------------------------------------

    def compute(self, cycles: float):
        """Charge ``cycles`` of dpCore execution time.

        Software-RPC interrupt work that arrived since the last charge
        (ATE "interrupt debt") is drained into this charge, modelling
        handler execution stealing cycles from the application thread.
        DMAD push backpressure (stall debt from pushes into a full
        descriptor ring) is drained the same way.
        """
        debt = self.ate.interrupt_debt.get(self.core_id, 0.0)
        if debt:
            self.ate.interrupt_debt[self.core_id] = 0.0
            cycles += debt
        stall = self.dmad.push_stall_debt
        if stall:
            self.dmad.push_stall_debt = 0.0
            cycles += stall
        if cycles > 0:
            trace = self.dpu.trace
            if trace.enabled:
                with trace.span("core.compute", unit=self._unit,
                                cycles=cycles, interrupt_debt=debt,
                                stall_debt=stall):
                    yield self.engine.timeout(cycles)
            else:
                yield self.engine.timeout(cycles)

    # -- DMS ---------------------------------------------------------------------

    def push(self, descriptor: Descriptor, channel: int = 0) -> None:
        """Issue a descriptor to this core's DMAD (the push instr)."""
        self.dmad.push(descriptor, channel)

    def wfe(self, event_id: int):
        """Wait-For-Event: block until DMS event ``event_id`` is set.

        Any outstanding DMAD push stall (backpressure from a full
        descriptor ring) is paid before the wait begins — the core
        cannot reach the wfe until its stalled pushes retired.
        """
        trace = self.dpu.trace
        if not trace.enabled:
            stall = self.dmad.push_stall_debt
            if stall:
                self.dmad.push_stall_debt = 0.0
                yield self.engine.timeout(stall)
            yield self.events.wait(event_id)
            return
        with trace.span("core.wfe", unit=self._unit, event=event_id):
            stall = self.dmad.push_stall_debt
            if stall:
                self.dmad.push_stall_debt = 0.0
                yield self.engine.timeout(stall)
            yield self.events.wait(event_id)

    def clear_event(self, event_id: int) -> None:
        self.events.clear(event_id)

    def set_event(self, event_id: int) -> None:
        self.events.set(event_id)

    # -- ATE -----------------------------------------------------------------------

    def remote_load(self, owner: int, address: int):
        return self.ate.remote_load(self.core_id, owner, address)

    def remote_store(self, owner: int, address: int, value: int):
        return self.ate.remote_store(self.core_id, owner, address, value)

    def posted_store(self, owner: int, address: int, value: int):
        """Fire-and-forget remote store (no reply stall)."""
        return self.ate.posted_store(self.core_id, owner, address, value)

    def fetch_add(self, owner: int, address: int, delta: int):
        return self.ate.fetch_add(self.core_id, owner, address, delta)

    def compare_swap(self, owner: int, address: int, expected: int, desired: int):
        return self.ate.compare_swap(self.core_id, owner, address, expected, desired)

    def software_rpc(self, owner: int, handler: str, args: Any = None):
        return self.ate.software_rpc(self.core_id, owner, handler, args)

    def install_handler(self, name: str, handler: Callable) -> None:
        self.ate.install_handler(self.core_id, name, handler)

    def dmem_address(self, offset: int) -> int:
        """Physical address of a DMEM offset (for remote ATE access)."""
        return self.dpu.address_map.dmem_address(self.core_id, offset)

    # -- mailbox --------------------------------------------------------------------

    def mbox_send(self, dst: int, payload: Any):
        return self.dpu.mailbox.send(self.core_id, dst, payload)

    def mbox_receive(self):
        return self.dpu.mailbox.receive(self.core_id)

    # -- cached path ------------------------------------------------------------------

    def cached_access(self, address: int, write: bool = False):
        """Access DDR through the L1/L2 hierarchy; charges latency."""
        hierarchy = self.dpu.caches[self.macro]
        cycles = hierarchy.access(self.core_id, address, write)
        yield self.engine.timeout(cycles)

    def cache_flush(self, address: int, length: int):
        hierarchy = self.dpu.caches[self.macro]
        yield self.engine.timeout(hierarchy.flush(self.core_id, address, length))

    def cache_invalidate(self, address: int, length: int):
        hierarchy = self.dpu.caches[self.macro]
        yield self.engine.timeout(
            hierarchy.invalidate(self.core_id, address, length)
        )

    # -- heap -------------------------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        return self.dpu.heap.malloc(nbytes, self.core_id)

    def free(self, address: int) -> None:
        self.dpu.heap.free(address)
