"""Bit-vector utilities shared by the ISA, DMS and SQL engine.

Filters produce dense bitvectors (one bit per row, little-endian bit
order within each 64-bit word); scatter/gather descriptors and the
BVLD instruction consume them. These helpers are the single
definition of that format so hardware and software agree.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "popcount64",
    "ntz64",
    "nlz64",
    "selected_indices",
    "bitvector_words",
]


def bitvector_words(num_rows: int) -> int:
    """Number of 64-bit words needed for ``num_rows`` bits."""
    return -(-num_rows // 64)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array into uint64 words, bit i of word w being
    row ``w*64 + i`` (little-endian bit order)."""
    bools = np.asarray(bits, dtype=bool)
    padded = np.zeros(bitvector_words(len(bools)) * 64, dtype=bool)
    padded[: len(bools)] = bools
    # np.packbits is big-endian within bytes; ask for little explicitly.
    packed_bytes = np.packbits(padded, bitorder="little")
    return packed_bytes.view(np.uint64)


def unpack_bits(words: np.ndarray, num_rows: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` (truncated to ``num_rows``)."""
    raw = np.asarray(words, dtype=np.uint64).view(np.uint8)
    bits = np.unpackbits(raw, bitorder="little")
    return bits[:num_rows].astype(bool)


def selected_indices(words: np.ndarray, num_rows: int) -> np.ndarray:
    """Row ids (RIDs) of set bits — what a gather descriptor consumes."""
    return np.nonzero(unpack_bits(words, num_rows))[0]


def popcount64(value: int) -> int:
    """Population count of a 64-bit word (the dpCore POPC instruction)."""
    return bin(value & (2**64 - 1)).count("1")


def ntz64(value: int) -> int:
    """Number of trailing zeros, via the POPC idiom the paper exploits:
    ``popc((x & -x) - 1)`` — 4 dpCore instructions (§5.4)."""
    value &= 2**64 - 1
    if value == 0:
        return 64
    isolated = value & (-value & (2**64 - 1))
    return popcount64(isolated - 1)


def nlz64(value: int) -> int:
    """Number of leading zeros — the slow (~13 cycle) path without a
    CLZ instruction: smear bits right then popcount the complement."""
    value &= 2**64 - 1
    value |= value >> 1
    value |= value >> 2
    value |= value >> 4
    value |= value >> 8
    value |= value >> 16
    value |= value >> 32
    return 64 - popcount64(value)
