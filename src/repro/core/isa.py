"""The dpCore instruction set.

The dpCore is a 64-bit MIPS-like dual-issue in-order core (paper
§2.2): one ALU pipe and one LSU pipe, a low-power multi-cycle
multiplier, no floating point, no MMU, and single-cycle analytics
instructions — bit-vector load (BVLD), filter (FILT), CRC32 hashcode
generation and popcount. This module defines the instruction
vocabulary; :mod:`repro.core.assembler` parses text into it and
:mod:`repro.core.dpcore` executes it with cycle accounting.

Since the real encoding is proprietary, we specify the ISA at the
assembly level (mnemonic + operands); the paper's evaluation depends
on instruction *timing*, not binary encodings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Unit", "OpSpec", "Instruction", "Program", "OPCODES", "IsaError"]


class IsaError(Exception):
    """Malformed instruction or assembly input."""


class Unit(enum.Enum):
    """Issue pipe an instruction occupies (paper: dual-issue, one ALU
    and one LSU pipe)."""

    ALU = "alu"
    LSU = "lsu"
    BRANCH = "branch"
    SYSTEM = "system"


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one mnemonic."""

    name: str
    unit: Unit
    operands: str  # e.g. "rd,rs,rt" | "rd,rs,imm" | "rd,imm(rs)" | ...
    latency: int = 1
    serializing: bool = False  # cannot dual-issue with a partner

    @property
    def operand_kinds(self) -> Tuple[str, ...]:
        if not self.operands:
            return ()
        return tuple(self.operands.split(","))


def _spec_table() -> Dict[str, OpSpec]:
    specs = [
        # -- ALU register-register ------------------------------------
        OpSpec("add", Unit.ALU, "rd,rs,rt"),
        OpSpec("sub", Unit.ALU, "rd,rs,rt"),
        OpSpec("and", Unit.ALU, "rd,rs,rt"),
        OpSpec("or", Unit.ALU, "rd,rs,rt"),
        OpSpec("xor", Unit.ALU, "rd,rs,rt"),
        OpSpec("sll", Unit.ALU, "rd,rs,rt"),
        OpSpec("srl", Unit.ALU, "rd,rs,rt"),
        OpSpec("sra", Unit.ALU, "rd,rs,rt"),
        OpSpec("slt", Unit.ALU, "rd,rs,rt"),
        OpSpec("sltu", Unit.ALU, "rd,rs,rt"),
        # Multiplier/divider: stalls the pipeline for multiple cycles;
        # actual latency is operand-dependent (see dpcore.mul_latency).
        OpSpec("mul", Unit.ALU, "rd,rs,rt", latency=5, serializing=True),
        OpSpec("div", Unit.ALU, "rd,rs,rt", latency=30, serializing=True),
        OpSpec("rem", Unit.ALU, "rd,rs,rt", latency=30, serializing=True),
        # -- ALU register-immediate -----------------------------------
        OpSpec("addi", Unit.ALU, "rd,rs,imm"),
        OpSpec("andi", Unit.ALU, "rd,rs,imm"),
        OpSpec("ori", Unit.ALU, "rd,rs,imm"),
        OpSpec("xori", Unit.ALU, "rd,rs,imm"),
        OpSpec("slli", Unit.ALU, "rd,rs,imm"),
        OpSpec("srli", Unit.ALU, "rd,rs,imm"),
        OpSpec("srai", Unit.ALU, "rd,rs,imm"),
        OpSpec("slti", Unit.ALU, "rd,rs,imm"),
        OpSpec("li", Unit.ALU, "rd,imm"),
        OpSpec("lui", Unit.ALU, "rd,imm"),
        OpSpec("mov", Unit.ALU, "rd,rs"),
        OpSpec("nop", Unit.ALU, ""),
        # -- analytics acceleration (single cycle, paper §2.2) --------
        OpSpec("crc32w", Unit.ALU, "rd,rs"),  # rd = crc32(lo32(rs), seed=rd)
        OpSpec("crc32d", Unit.ALU, "rd,rs"),  # rd = crc32(rs, seed=rd)
        OpSpec("popc", Unit.ALU, "rd,rs"),
        OpSpec("filt", Unit.ALU, "rd,rs"),  # rd = in-range(rs); shift into BVACC
        OpSpec("setfl", Unit.ALU, "rs"),  # filter lower bound
        OpSpec("setfh", Unit.ALU, "rs"),  # filter upper bound
        OpSpec("rdbv", Unit.ALU, "rd"),  # rd = BVACC
        OpSpec("clrbv", Unit.ALU, ""),  # BVACC = 0
        OpSpec("bvext", Unit.ALU, "rd"),  # rd = lowest set bit of BVACC (pop)
        # -- loads/stores (DMEM-direct, single cycle §2.1) ------------
        OpSpec("ld", Unit.LSU, "rd,imm(rs)"),
        OpSpec("lw", Unit.LSU, "rd,imm(rs)"),
        OpSpec("lwu", Unit.LSU, "rd,imm(rs)"),
        OpSpec("lh", Unit.LSU, "rd,imm(rs)"),
        OpSpec("lhu", Unit.LSU, "rd,imm(rs)"),
        OpSpec("lb", Unit.LSU, "rd,imm(rs)"),
        OpSpec("lbu", Unit.LSU, "rd,imm(rs)"),
        OpSpec("sd", Unit.LSU, "rt,imm(rs)"),
        OpSpec("sw", Unit.LSU, "rt,imm(rs)"),
        OpSpec("sh", Unit.LSU, "rt,imm(rs)"),
        OpSpec("sb", Unit.LSU, "rt,imm(rs)"),
        OpSpec("bvld", Unit.LSU, "imm(rs)"),  # BVACC = dmem64[rs+imm]
        # -- control flow ---------------------------------------------
        OpSpec("beq", Unit.BRANCH, "rs,rt,label", serializing=True),
        OpSpec("bne", Unit.BRANCH, "rs,rt,label", serializing=True),
        OpSpec("blt", Unit.BRANCH, "rs,rt,label", serializing=True),
        OpSpec("bge", Unit.BRANCH, "rs,rt,label", serializing=True),
        OpSpec("bltu", Unit.BRANCH, "rs,rt,label", serializing=True),
        OpSpec("bgeu", Unit.BRANCH, "rs,rt,label", serializing=True),
        OpSpec("j", Unit.BRANCH, "label", serializing=True),
        OpSpec("jal", Unit.BRANCH, "rd,label", serializing=True),
        OpSpec("jr", Unit.BRANCH, "rs", serializing=True),
        # -- system ----------------------------------------------------
        OpSpec("fence", Unit.SYSTEM, "", serializing=True),
        OpSpec("wfe", Unit.SYSTEM, "imm", serializing=True),
        OpSpec("cflush", Unit.SYSTEM, "rs,rt", serializing=True, latency=4),
        OpSpec("cinval", Unit.SYSTEM, "rs,rt", serializing=True, latency=4),
        OpSpec("halt", Unit.SYSTEM, "", serializing=True),
    ]
    return {spec.name: spec for spec in specs}


OPCODES: Dict[str, OpSpec] = _spec_table()


@dataclass
class Instruction:
    """One decoded instruction."""

    opcode: str
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    label: Optional[str] = None
    target: Optional[int] = None  # resolved label -> instruction index
    source_line: int = 0

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.opcode]

    def reads(self) -> Tuple[int, ...]:
        """Architectural registers this instruction reads."""
        regs = []
        kinds = self.spec.operand_kinds
        if "rs" in kinds or "imm(rs)" in kinds:
            regs.append(self.rs)
        if "rt" in kinds:
            regs.append(self.rt)
        # Stores read rt as the data operand; seeds read rd.
        if self.opcode in ("sd", "sw", "sh", "sb"):
            regs.append(self.rt)
        if self.opcode in ("crc32w", "crc32d"):
            regs.append(self.rd)
        return tuple(r for r in regs if r is not None)

    def writes(self) -> Tuple[int, ...]:
        """Architectural registers this instruction writes."""
        if self.opcode in ("sd", "sw", "sh", "sb", "setfl", "setfh", "bvld"):
            return ()
        if self.rd is not None and "rd" in self.spec.operand_kinds:
            return (self.rd,)
        return ()

    def __str__(self) -> str:
        parts = []
        for kind in self.spec.operand_kinds:
            if kind == "rd":
                parts.append(f"r{self.rd}")
            elif kind == "rs":
                parts.append(f"r{self.rs}")
            elif kind == "rt":
                parts.append(f"r{self.rt}")
            elif kind == "imm":
                parts.append(str(self.imm))
            elif kind == "imm(rs)":
                parts.append(f"{self.imm}(r{self.rs})")
            elif kind == "label":
                parts.append(self.label or f"@{self.target}")
        return f"{self.opcode} " + ", ".join(parts) if parts else self.opcode


@dataclass
class Program:
    """An assembled program: instructions plus the label map."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def branch_targets(self) -> set:
        """Indices that are branch/jump targets, cached per program.

        Shared by every interpreter over this program, so repeated
        kernel measurements skip the scan. Programs are treated as
        immutable once assembled."""
        cached = self.__dict__.get("_branch_targets")
        if cached is None:
            cached = {
                ins.target
                for ins in self.instructions
                if ins.target is not None
            }
            self.__dict__["_branch_targets"] = cached
        return cached

    def listing(self) -> str:
        """Human-readable disassembly with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for index, instruction in enumerate(self.instructions):
            for label in by_index.get(index, ()):
                lines.append(f"{label}:")
            lines.append(f"    {instruction}")
        return "\n".join(lines)
