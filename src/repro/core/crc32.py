"""CRC32 hashcode generation.

The dpCore ISA accelerates CRC32 (paper §2.2) and the DMS hash engine
"can apply a CRC32 checksum to the elements of the column memories"
(§3.1). Both use the standard reflected CRC-32 polynomial 0xEDB88320
(the IEEE 802.3 CRC, same as zlib), so hash partitions computed by the
DMS agree with ones computed in software on a dpCore — the property
the paper's query engine relies on when mixing hardware and software
partitioning rounds.

Scalar and vectorized (numpy) versions are provided; the vectorized
version processes whole key columns for the DMS pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32_u32", "crc32_u64", "crc32_bytes", "crc32_column", "murmur64"]

_POLY = 0xEDB88320


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
        table[byte] = crc
    return table


_TABLE = _build_table()


def crc32_bytes(data: bytes, seed: int = 0) -> int:
    """CRC32 of a byte string (zlib-compatible)."""
    crc = (~seed) & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ int(_TABLE[(crc ^ byte) & 0xFF])
    return (~crc) & 0xFFFFFFFF


def crc32_u32(value: int, seed: int = 0) -> int:
    """CRC32 of a 32-bit little-endian value (one CRC32W instruction)."""
    return crc32_bytes(int(value & 0xFFFFFFFF).to_bytes(4, "little"), seed)


def crc32_u64(value: int, seed: int = 0) -> int:
    """CRC32 of a 64-bit little-endian value (one CRC32D instruction)."""
    return crc32_bytes(int(value & 2**64 - 1).to_bytes(8, "little"), seed)


def crc32_column(column: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized CRC32 of each element of a 1/2/4/8-byte key column.

    This is the DMS hash engine's operation: one 32-bit hash per key,
    written to CRC memory. Matches :func:`crc32_u32`/:func:`crc32_u64`
    element-for-element.
    """
    if column.dtype.itemsize not in (1, 2, 4, 8):
        raise ValueError(f"unsupported key width {column.dtype.itemsize}")
    raw = np.ascontiguousarray(column).view(np.uint8).reshape(
        len(column), column.dtype.itemsize
    )
    crc = np.full(len(column), 0xFFFFFFFF, dtype=np.uint32)
    for byte_index in range(raw.shape[1]):
        crc = (crc >> np.uint32(8)) ^ _TABLE[
            (crc ^ raw[:, byte_index].astype(np.uint32)) & np.uint32(0xFF)
        ]
    return ~crc


def murmur64(value: int, seed: int = 0) -> int:
    """MurmurHash3 finalizer-style 64-bit hash (fmix64).

    Used by the HyperLogLog comparison (§5.4): Murmur needs full-width
    64x64 multiplies, which are slow on the dpCore's low-power
    multiplier — exactly why the paper's CRC32 variant wins there.
    """
    mask = 2**64 - 1
    h = (value ^ seed) & mask
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & mask
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & mask
    h ^= h >> 33
    return h
