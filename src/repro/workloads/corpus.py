"""Synthetic document corpus for similarity search (paper §5.2).

The paper searches 4 M English Wikipedia pages, tf-idf indexed, using
page titles as queries. We generate a Zipf-distributed corpus with
matching structural statistics — term frequencies follow a power law,
document lengths are log-normal-ish — and build the same artifacts
the application consumes: a CSR inverted index (documents x terms,
tf-idf weighted, L2-normalized rows) and a set of short sparse
queries drawn from each target document (so every query has a known
best match, giving the tests ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CsrMatrix", "SimilarityWorkload", "generate_corpus"]


@dataclass(frozen=True)
class CsrMatrix:
    """Minimal compressed-sparse-row matrix (values/indices/indptr)."""

    values: np.ndarray  # float32 weights
    indices: np.ndarray  # int32 column ids
    indptr: np.ndarray  # int64, len = rows + 1
    num_cols: int

    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        return len(self.values)

    def row(self, index: int):
        start, stop = self.indptr[index], self.indptr[index + 1]
        return self.indices[start:stop], self.values[start:stop]

    def nbytes(self) -> int:
        return self.values.nbytes + self.indices.nbytes + self.indptr.nbytes


@dataclass(frozen=True)
class SimilarityWorkload:
    index: CsrMatrix  # documents x terms, tf-idf, row-normalized
    queries: CsrMatrix  # queries x terms, row-normalized
    query_truth: np.ndarray  # document id each query was drawn from


def _normalize_rows(values, indptr) -> None:
    for row in range(len(indptr) - 1):
        start, stop = indptr[row], indptr[row + 1]
        norm = np.sqrt((values[start:stop] ** 2).sum())
        if norm > 0:
            values[start:stop] /= norm


def generate_corpus(
    num_docs: int = 2000,
    vocab: int = 5000,
    avg_terms: int = 60,
    num_queries: int = 64,
    query_terms: int = 6,
    seed: int = 11,
) -> SimilarityWorkload:
    """Build a Zipfian tf-idf index and queries with known answers."""
    if num_docs < 1 or vocab < query_terms:
        raise ValueError("corpus too small")
    rng = np.random.default_rng(seed)
    # Zipf term popularity over the vocabulary.
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    popularity = 1.0 / ranks
    popularity /= popularity.sum()

    doc_lengths = np.maximum(
        4, rng.poisson(avg_terms, size=num_docs)
    ).astype(np.int64)
    indptr = np.zeros(num_docs + 1, dtype=np.int64)
    all_indices = []
    all_counts = []
    for doc in range(num_docs):
        terms = rng.choice(vocab, size=doc_lengths[doc], p=popularity)
        unique, counts = np.unique(terms, return_counts=True)
        all_indices.append(unique.astype(np.int32))
        all_counts.append(counts.astype(np.float32))
        indptr[doc + 1] = indptr[doc] + len(unique)
    indices = np.concatenate(all_indices)
    counts = np.concatenate(all_counts)

    # tf-idf: tf = 1 + log(count); idf = log(N / df).
    document_frequency = np.bincount(indices, minlength=vocab).astype(np.float64)
    document_frequency[document_frequency == 0] = 1.0
    idf = np.log(num_docs / document_frequency)
    values = (1.0 + np.log(counts)) * idf[indices].astype(np.float32)
    values = values.astype(np.float32)
    _normalize_rows(values, indptr)
    index = CsrMatrix(values=values, indices=indices, indptr=indptr, num_cols=vocab)

    # Queries: terms of a chosen document (a "title"), so that
    # document is the expected top hit. Half the terms are the doc's
    # strongest (rare, high idf), half are drawn by frequency — real
    # titles mix rare and common words, and the common ones are what
    # make posting traffic heavy.
    truth = rng.choice(num_docs, size=num_queries, replace=False)
    q_indices = []
    q_values = []
    q_indptr = np.zeros(num_queries + 1, dtype=np.int64)
    for position, doc in enumerate(truth):
        cols, weights = index.row(doc)
        take = min(query_terms, len(cols))
        rare = take // 2 if take >= 2 else take
        best = np.argsort(weights)[::-1][:rare]
        remaining = np.setdiff1d(np.arange(len(cols)), best)
        common = rng.choice(
            remaining, size=min(take - rare, len(remaining)), replace=False
        ) if take > rare and len(remaining) else np.array([], dtype=np.int64)
        chosen = np.concatenate([best, common]).astype(np.int64)
        q_indices.append(cols[chosen].astype(np.int32))
        q_values.append(weights[chosen] + np.float32(0.5))
        q_indptr[position + 1] = q_indptr[position] + len(chosen)
    q_vals = np.concatenate(q_values)
    q_idx = np.concatenate(q_indices)
    _normalize_rows(q_vals, q_indptr)
    queries = CsrMatrix(
        values=q_vals, indices=q_idx, indptr=q_indptr, num_cols=vocab
    )
    return SimilarityWorkload(index=index, queries=queries, query_truth=truth)
