"""JSON record generator for the parsing experiment (paper §5.5).

The paper populates JSON records "with keys corresponding to the TPCH
lineitems table" — a mix of integers, strings and dates — totalling
~1 GB. We emit the same record shape (scaled down by default) as a
single newline-free byte stream of concatenated objects, matching how
an ingest pipeline would hold it in memory.
"""

from __future__ import annotations

import numpy as np

from .tpch import LINE_STATUSES, RETURN_FLAGS, SHIP_MODES

__all__ = ["generate_lineitem_json", "LINEITEM_KEYS"]

LINEITEM_KEYS = [
    "l_orderkey",
    "l_partkey",
    "l_suppkey",
    "l_linenumber",
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_tax",
    "l_returnflag",
    "l_linestatus",
    "l_shipdate",
    "l_commitdate",
    "l_receiptdate",
    "l_shipinstruct",
    "l_shipmode",
    "l_comment",
]

_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "packages", "requests", "accounts", "instructions", "theodolites",
    "pinto", "beans", "foxes", "ideas",
]


def _date_string(rng: np.random.Generator) -> str:
    year = int(rng.integers(1992, 1999))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_lineitem_json(num_records: int = 2000, seed: int = 13) -> bytes:
    """Concatenated lineitem-shaped JSON objects as bytes."""
    if num_records < 1:
        raise ValueError(f"need at least one record: {num_records}")
    rng = np.random.default_rng(seed)
    records = []
    for row in range(num_records):
        comment = " ".join(
            rng.choice(_COMMENT_WORDS, size=int(rng.integers(3, 9)))
        )
        record = (
            "{"
            f'"l_orderkey":{row // 4},'
            f'"l_partkey":{int(rng.integers(0, 200000))},'
            f'"l_suppkey":{int(rng.integers(0, 10000))},'
            f'"l_linenumber":{row % 7 + 1},'
            f'"l_quantity":{int(rng.integers(1, 51))},'
            f'"l_extendedprice":{int(rng.integers(90000, 9000000)) / 100.0},'
            f'"l_discount":{int(rng.integers(0, 11)) / 100.0},'
            f'"l_tax":{int(rng.integers(0, 9)) / 100.0},'
            f'"l_returnflag":"{RETURN_FLAGS[int(rng.integers(0, 3))]}",'
            f'"l_linestatus":"{LINE_STATUSES[int(rng.integers(0, 2))]}",'
            f'"l_shipdate":"{_date_string(rng)}",'
            f'"l_commitdate":"{_date_string(rng)}",'
            f'"l_receiptdate":"{_date_string(rng)}",'
            f'"l_shipinstruct":"{_INSTRUCTIONS[int(rng.integers(0, 4))]}",'
            f'"l_shipmode":"{SHIP_MODES[int(rng.integers(0, 7))]}",'
            f'"l_comment":"{comment}"'
            "}"
        )
        records.append(record)
    return "".join(records).encode("ascii")
