"""Synthetic HIGGS-like dataset for the SVM experiment (paper §5.1).

The paper trains on 128 K samples of the UCI HIGGS dataset (28
kinematic features, two classes). The dataset itself is not
redistributable here, so we generate a statistically similar
surrogate: two overlapping multivariate Gaussians with a controlled
margin, features normalized into [-1, 1] — the normalization step is
what makes the paper's 10.22 fixed-point representation lossless
enough ("negligible loss in accuracy").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HiggsLike", "generate_higgs_like", "NUM_FEATURES"]

NUM_FEATURES = 28


@dataclass(frozen=True)
class HiggsLike:
    """Feature matrix (n x 28, float64 in [-1, 1]) and labels (+-1)."""

    features: np.ndarray
    labels: np.ndarray

    @property
    def num_samples(self) -> int:
        return len(self.labels)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]


def generate_higgs_like(
    num_samples: int = 2048,
    seed: int = 7,
    separation: float = 1.2,
    num_features: int = NUM_FEATURES,
) -> HiggsLike:
    """Two overlapping Gaussian classes with unit-ish covariance.

    ``separation`` controls class-mean distance (in feature-space
    sigma); 1.2 gives the ~0.7-0.8 linear separability typical of
    HIGGS-derived benchmarks — hard enough that SMO iterates
    meaningfully, easy enough to converge.
    """
    if num_samples < 2:
        raise ValueError(f"need at least 2 samples: {num_samples}")
    rng = np.random.default_rng(seed)
    half = num_samples // 2
    direction = rng.standard_normal(num_features)
    direction /= np.linalg.norm(direction)
    positive = rng.standard_normal((num_samples - half, num_features))
    positive += separation * direction / 2
    negative = rng.standard_normal((half, num_features))
    negative -= separation * direction / 2
    features = np.vstack([positive, negative])
    labels = np.concatenate(
        [np.ones(num_samples - half), -np.ones(half)]
    )
    order = rng.permutation(num_samples)
    features = features[order]
    labels = labels[order]
    # Normalize each feature into [-1, 1], as the paper's pipeline does
    # before fixed-point conversion.
    span = np.abs(features).max(axis=0)
    span[span == 0] = 1.0
    features = features / span
    return HiggsLike(features=features, labels=labels.astype(np.float64))
