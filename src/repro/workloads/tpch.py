"""A dbgen-style TPC-H data generator (paper §5.3).

The paper offloads TPC-H queries from a commercial in-memory columnar
database to the DPU. We generate the TPC-H tables with dbgen's
cardinality ratios and value distributions, already in the columnar,
dictionary-encoded form an in-memory engine would hold:

* dates are int32 days since 1992-01-01 (the TPC-H epoch),
* money is int64 cents (fixed point — the DPU has no FPU),
* low-cardinality strings (return flags, ship modes, segments,
  priorities, nations, regions, part types) are dictionary codes.

``scale`` follows the TPC-H scale factor: ``scale=1.0`` would be 6 M
lineitems; the default 0.01 keeps simulations laptop-sized. The
generated distributions preserve what the queries select on (date
ranges, discount bands, segment skew), so operator selectivities
match the official workload closely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = [
    "TpchData",
    "generate_tpch",
    "RETURN_FLAGS",
    "LINE_STATUSES",
    "SHIP_MODES",
    "SEGMENTS",
    "PRIORITIES",
    "NATIONS",
    "REGIONS",
    "DATE_EPOCH_DAYS",
    "date_code",
]

RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
# nation -> region mapping (dbgen's).
_NATION_REGION = [0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                  4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1]

# Days from 1992-01-01 to 1998-12-31, the dbgen date window.
DATE_EPOCH_DAYS = 2556
_PART_TYPE_COUNT = 150  # 6 x 5 x 5 syllable combinations
_PROMO_TYPES = 25  # first syllable "PROMO": 25 of the 150


def date_code(year: int, month: int = 1, day: int = 1) -> int:
    """Days since 1992-01-01 for a calendar date (dbgen's encoding)."""
    import datetime

    return (datetime.date(year, month, day) - datetime.date(1992, 1, 1)).days


@dataclass
class TpchData:
    """Columnar TPC-H tables: table name -> column name -> ndarray."""

    scale: float
    tables: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)

    def table(self, name: str) -> Dict[str, np.ndarray]:
        return self.tables[name]

    def num_rows(self, name: str) -> int:
        columns = self.tables[name]
        return len(next(iter(columns.values())))

    def total_bytes(self) -> int:
        return sum(
            column.nbytes
            for table in self.tables.values()
            for column in table.values()
        )


def generate_tpch(scale: float = 0.01, seed: int = 42) -> TpchData:
    """Generate all tables the implemented queries need."""
    if scale <= 0:
        raise ValueError(f"scale must be positive: {scale}")
    rng = np.random.default_rng(seed)
    num_orders = max(64, int(1_500_000 * scale))
    num_customers = max(32, int(150_000 * scale))
    num_parts = max(32, int(200_000 * scale))
    num_suppliers = max(8, int(10_000 * scale))

    data = TpchData(scale=scale)

    # -- region / nation ---------------------------------------------------
    data.tables["region"] = {
        "r_regionkey": np.arange(len(REGIONS), dtype=np.int32),
    }
    data.tables["nation"] = {
        "n_nationkey": np.arange(len(NATIONS), dtype=np.int32),
        "n_regionkey": np.asarray(_NATION_REGION, dtype=np.int32),
    }

    # -- customer ------------------------------------------------------------
    data.tables["customer"] = {
        "c_custkey": np.arange(num_customers, dtype=np.int32),
        "c_nationkey": rng.integers(
            0, len(NATIONS), num_customers, dtype=np.int32
        ),
        "c_mktsegment": rng.integers(
            0, len(SEGMENTS), num_customers, dtype=np.int8
        ),
    }

    # -- supplier ----------------------------------------------------------------
    data.tables["supplier"] = {
        "s_suppkey": np.arange(num_suppliers, dtype=np.int32),
        "s_nationkey": rng.integers(
            0, len(NATIONS), num_suppliers, dtype=np.int32
        ),
    }

    # -- part ------------------------------------------------------------------------
    data.tables["part"] = {
        "p_partkey": np.arange(num_parts, dtype=np.int32),
        "p_type": rng.integers(0, _PART_TYPE_COUNT, num_parts, dtype=np.int16),
    }

    # -- orders ----------------------------------------------------------------------
    order_date = rng.integers(
        0, DATE_EPOCH_DAYS - 121, num_orders, dtype=np.int32
    )
    data.tables["orders"] = {
        "o_orderkey": np.arange(num_orders, dtype=np.int32),
        "o_custkey": rng.integers(0, num_customers, num_orders, dtype=np.int32),
        "o_orderdate": order_date,
        "o_orderpriority": rng.integers(
            0, len(PRIORITIES), num_orders, dtype=np.int8
        ),
        "o_shippriority": np.zeros(num_orders, dtype=np.int8),
    }

    # -- lineitem ------------------------------------------------------------------------
    lines_per_order = rng.integers(1, 8, num_orders)
    num_lineitems = int(lines_per_order.sum())
    l_orderkey = np.repeat(
        np.arange(num_orders, dtype=np.int32), lines_per_order
    )
    l_orderdate = np.repeat(order_date, lines_per_order)
    ship_lag = rng.integers(1, 122, num_lineitems, dtype=np.int32)
    l_shipdate = l_orderdate + ship_lag
    commit_lag = rng.integers(15, 91, num_lineitems, dtype=np.int32)
    l_commitdate = l_orderdate + commit_lag
    receipt_lag = rng.integers(1, 31, num_lineitems, dtype=np.int32)
    l_receiptdate = l_shipdate + receipt_lag
    quantity = rng.integers(1, 51, num_lineitems, dtype=np.int32)
    # extendedprice in cents: quantity x unit price (dbgen's ~900-100k).
    unit_price_cents = rng.integers(90_000, 200_001, num_lineitems)
    extended = (quantity.astype(np.int64) * unit_price_cents).astype(np.int64)
    data.tables["lineitem"] = {
        "l_orderkey": l_orderkey,
        "l_partkey": rng.integers(0, num_parts, num_lineitems, dtype=np.int32),
        "l_suppkey": rng.integers(
            0, num_suppliers, num_lineitems, dtype=np.int32
        ),
        "l_quantity": quantity,
        "l_extendedprice": extended,
        # discount 0.00-0.10 and tax 0.00-0.08 in basis points of 100
        # (i.e. integer percent), as dbgen generates.
        "l_discount": rng.integers(0, 11, num_lineitems, dtype=np.int32),
        "l_tax": rng.integers(0, 9, num_lineitems, dtype=np.int32),
        "l_returnflag": rng.integers(
            0, len(RETURN_FLAGS), num_lineitems, dtype=np.int8
        ),
        "l_linestatus": (l_shipdate > date_code(1995, 6, 17)).astype(np.int8),
        "l_shipdate": l_shipdate,
        "l_commitdate": l_commitdate,
        "l_receiptdate": l_receiptdate,
        "l_shipmode": rng.integers(
            0, len(SHIP_MODES), num_lineitems, dtype=np.int8
        ),
    }
    return data


def part_type_is_promo(type_codes: np.ndarray) -> np.ndarray:
    """Q14's ``p_type like 'PROMO%'`` on the dictionary encoding."""
    return type_codes < _PROMO_TYPES
