"""Synthetic workload generators standing in for the paper's datasets."""

from .corpus import CsrMatrix, SimilarityWorkload, generate_corpus
from .higgs import NUM_FEATURES, HiggsLike, generate_higgs_like
from .jsondata import LINEITEM_KEYS, generate_lineitem_json
from .stereo import StereoPair, generate_stereo_pair
from .tpch import (
    DATE_EPOCH_DAYS,
    LINE_STATUSES,
    NATIONS,
    PRIORITIES,
    REGIONS,
    RETURN_FLAGS,
    SEGMENTS,
    SHIP_MODES,
    TpchData,
    date_code,
    generate_tpch,
    part_type_is_promo,
)

__all__ = [
    "CsrMatrix",
    "DATE_EPOCH_DAYS",
    "HiggsLike",
    "LINEITEM_KEYS",
    "LINE_STATUSES",
    "NATIONS",
    "NUM_FEATURES",
    "PRIORITIES",
    "REGIONS",
    "RETURN_FLAGS",
    "SEGMENTS",
    "SHIP_MODES",
    "SimilarityWorkload",
    "StereoPair",
    "TpchData",
    "date_code",
    "generate_corpus",
    "generate_higgs_like",
    "generate_lineitem_json",
    "generate_stereo_pair",
    "generate_tpch",
    "part_type_is_promo",
]
