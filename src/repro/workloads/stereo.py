"""Synthetic stereo pairs for the disparity experiment (paper §5.6).

Disparity computes pixel-wise differences between two images taken at
slightly different camera angles. We synthesize a textured left image
and build the right image by shifting regions horizontally by a known
per-region disparity (plus sensor noise), so the computed disparity
map has ground truth to validate against — the shape of the kernels'
data access (row, column, and pixelated patterns of Figure 17) only
depends on image geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StereoPair", "generate_stereo_pair"]


@dataclass(frozen=True)
class StereoPair:
    left: np.ndarray  # (rows, cols) uint8 luminance
    right: np.ndarray  # (rows, cols) uint8
    true_disparity: np.ndarray  # (rows, cols) int16, pixels of shift
    max_shift: int


def generate_stereo_pair(
    rows: int = 96,
    cols: int = 128,
    max_shift: int = 8,
    num_bands: int = 4,
    noise: float = 1.0,
    seed: int = 17,
) -> StereoPair:
    """Left image + right image shifted by banded disparities.

    The scene is split into ``num_bands`` horizontal bands, each with
    its own disparity in [1, max_shift) — a coarse stand-in for depth
    layers. Texture is smoothed noise so block matching is
    well-conditioned.
    """
    if max_shift < 1 or max_shift >= cols // 2:
        raise ValueError(f"max_shift {max_shift} unreasonable for {cols} cols")
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, size=(rows, cols + max_shift)).astype(np.float64)
    # Box-blur for local correlation (texture, not white noise).
    kernel = 5
    smoothed = base.copy()
    for axis in (0, 1):
        csum = np.cumsum(smoothed, axis=axis)
        if axis == 0:
            smoothed[kernel:, :] = (csum[kernel:, :] - csum[:-kernel, :]) / kernel
        else:
            smoothed[:, kernel:] = (csum[:, kernel:] - csum[:, :-kernel]) / kernel
    wide = np.clip(smoothed, 0, 255)

    left = wide[:, :cols]
    right = np.empty_like(left)
    truth = np.zeros((rows, cols), dtype=np.int16)
    band_height = -(-rows // num_bands)
    for band in range(num_bands):
        shift = int(rng.integers(1, max_shift))
        top = band * band_height
        bottom = min(rows, top + band_height)
        right[top:bottom] = wide[top:bottom, shift : shift + cols]
        truth[top:bottom] = shift
    right = right + rng.normal(0, noise, size=right.shape)
    return StereoPair(
        left=np.clip(left, 0, 255).astype(np.uint8),
        right=np.clip(right, 0, 255).astype(np.uint8),
        true_disparity=truth,
        max_shift=max_shift,
    )
