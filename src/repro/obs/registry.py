"""Hierarchical hardware-counter registry.

The paper's evaluation is counter-driven — DMS GB/s, ATE round-trip
cycles, per-core throughput, perf/watt — and the numbers only mean
something with *attribution*: which unit, which DPU, which phase.
:class:`CounterRegistry` names every counter with a dot-path
(``dpu0.dmac.bytes_gathered``, ``rack.ib.bytes_sent``) and supports
the three operations perf tooling needs:

* ``snapshot()`` — a deterministic (sorted) flat dict;
* ``delta(before)`` — counters accumulated since a snapshot, so a
  benchmark can attribute work to one phase of a longer run;
* ``merge(other)`` — fold another registry in (cluster roll-ups),
  prefix-aware so per-DPU registries land under distinct subtrees.

:meth:`CounterRegistry.scope` returns a :class:`UnitCounters` view
bound to one prefix, which is what a hardware model holds: the DMAC
adds to ``bytes_gathered`` and the registry files it under
``dpu0.dmac.bytes_gathered``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

__all__ = ["CounterRegistry", "UnitCounters"]


def _join(prefix: str, name: str) -> str:
    return f"{prefix}.{name}" if prefix else name


class UnitCounters:
    """One unit's view of the registry, bound to a dot-path prefix."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: "CounterRegistry", prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def add(self, name: str, amount: float = 1.0) -> None:
        self.registry.add(_join(self.prefix, name), amount)

    def set(self, name: str, value: float) -> None:
        self.registry.set(_join(self.prefix, name), value)

    def peak(self, name: str, value: float) -> None:
        self.registry.peak(_join(self.prefix, name), value)

    def get(self, name: str) -> float:
        return self.registry.get(_join(self.prefix, name))

    def scope(self, prefix: str) -> "UnitCounters":
        return UnitCounters(self.registry, _join(self.prefix, prefix))


class CounterRegistry:
    """Dot-path named counters with snapshot/delta/merge semantics."""

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._values: Dict[str, float] = {}

    # -- registration and update ---------------------------------------

    def scope(self, prefix: str) -> UnitCounters:
        """A unit-bound view; ``registry.scope("dmac").add("bytes")``
        files under ``<registry prefix>.dmac.bytes``."""
        return UnitCounters(self, _join(self.prefix, prefix))

    def register(self, path: str, initial: float = 0.0) -> str:
        """Declare a counter up front (it appears in snapshots even if
        never incremented); returns the full path."""
        path = _join(self.prefix, path)
        self._values.setdefault(path, float(initial))
        return path

    def add(self, path: str, amount: float = 1.0) -> None:
        path = _join(self.prefix, path)
        self._values[path] = self._values.get(path, 0.0) + amount

    def set(self, path: str, value: float) -> None:
        self._values[_join(self.prefix, path)] = float(value)

    def peak(self, path: str, value: float) -> None:
        """Fold in a high-water mark (gauge max semantics)."""
        path = _join(self.prefix, path)
        current = self._values.get(path)
        if current is None or value > current:
            self._values[path] = float(value)

    def get(self, path: str) -> float:
        return self._values.get(_join(self.prefix, path), 0.0)

    def __contains__(self, path: str) -> bool:
        return _join(self.prefix, path) in self._values

    def __len__(self) -> int:
        return len(self._values)

    # -- reporting operations ------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Deterministic flat dict: keys sorted, stable across runs."""
        return {path: self._values[path] for path in sorted(self._values)}

    def delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """Counters accumulated since ``before`` (a prior snapshot).

        Unchanged counters are omitted; counters that appeared after
        the snapshot report their full value. Sorted like snapshot().
        """
        changed = {}
        for path in sorted(self._values):
            diff = self._values[path] - before.get(path, 0.0)
            if diff != 0.0:
                changed[path] = diff
        return changed

    def merge(self, other: "CounterRegistry",
              gauges: Iterable[str] = ()) -> None:
        """Fold ``other`` in: counters sum; paths whose leaf name is
        in ``gauges`` (or ends with ``_peak``) max-fold instead."""
        gauge_leaves = set(gauges)
        for path, value in other._values.items():
            leaf = path.rsplit(".", 1)[-1]
            if leaf in gauge_leaves or leaf.endswith("_peak"):
                current = self._values.get(path)
                if current is None or value > current:
                    self._values[path] = value
            else:
                self._values[path] = self._values.get(path, 0.0) + value

    def subtree(self, prefix: str) -> Dict[str, float]:
        """All counters under one dot-path prefix (sorted)."""
        prefix = _join(self.prefix, prefix)
        needle = prefix + "."
        return {
            path: self._values[path]
            for path in sorted(self._values)
            if path == prefix or path.startswith(needle)
        }

    # -- bridges -------------------------------------------------------

    def adopt_stats(self, stats, prefix: str = "") -> None:
        """Import a :class:`~repro.sim.trace.StatsRecorder`'s counters
        and gauges under ``prefix`` (gauges keep max semantics via
        their ``_peak`` naming convention)."""
        scope_prefix = _join(self.prefix, prefix)
        for name, value in stats.counters.items():
            path = _join(scope_prefix, name)
            self._values[path] = self._values.get(path, 0.0) + value
        for name, value in stats.gauges.items():
            path = _join(scope_prefix, name)
            current = self._values.get(path)
            if current is None or value > current:
                self._values[path] = float(value)

    def rows(self) -> Iterable[Tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def render(self, title: Optional[str] = None) -> str:
        lines = [f"=== {title} ==="] if title else []
        width = max((len(path) for path in self._values), default=0)
        for path, value in self.rows():
            text = f"{value:.0f}" if value == int(value) else f"{value:.3f}"
            lines.append(f"{path:<{width}}  {text}")
        return "\n".join(lines)
