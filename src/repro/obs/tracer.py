"""Sim-time span/event tracer with Chrome-trace export.

Every unit of the modelled SoC can stamp *spans* (named intervals of
simulated time), *instants* (point events), *counter tracks* (sampled
values like queue occupancy or DDR backlog) and *flows* (arrows
linking a requester's span to work executed elsewhere, e.g. an ATE
RPC running on the callee's engine). Events land in a bounded ring
buffer and export as Chrome trace-event JSON that opens directly in
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_:

* ``pid`` is the DPU (one process per chip in a cluster trace),
* ``tid`` is the hardware unit — ``core3``, ``dmad3``, ``dmac``,
  ``ate3``, ``ddr``, ``ib.tx[0]`` — named via metadata events,
* ``ts`` is simulated time in dpCore cycles (the exporter declares
  microseconds, so "1 us" on screen reads as one cycle).

Two span flavours map onto the trace-event ``ph`` phases:

* :meth:`Tracer.span` emits a *complete* (``X``) event on exit. Use
  it inside a single generator frame where strict nesting is
  structural (compute/wfe on one core, the ATE engine loop, a SQL
  operator driving the chip).
* :meth:`Tracer.async_span` emits ``b``/``e`` *async* events keyed by
  a fresh id. Use it for work that may overlap on one track (DMS
  descriptors in flight, admission-gated jobs, IB messages).

The module-level :data:`NULL_TRACER` is the disabled tracer: every
method is a no-op returning shared singletons, it never touches the
engine, never allocates, and never schedules events — simulations
with tracing off are bit-identical to a build with no tracer at all.
"""

from __future__ import annotations

import functools
import io
import json
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceBuffer",
    "Tracer",
    "traced_op",
]


class Span:
    """An open interval of simulated time; context manager.

    ``end()`` (or leaving the ``with`` block) stamps the closing time
    and appends one complete (``X``) event. ``attrs`` become the
    event's ``args``; :meth:`set` adds more after opening. Ending a
    span twice is a no-op, so spans may be closed from callbacks.
    """

    __slots__ = ("tracer", "name", "unit", "begin", "attrs", "id", "_done")

    def __init__(self, tracer: "Tracer", name: str, unit: str,
                 attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.unit = unit
        self.begin = tracer.now()
        self.attrs = attrs
        self.id = tracer.next_id()
        self._done = False

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        if self._done:
            return
        self._done = True
        self.tracer.complete(
            self.name, self.unit, self.begin,
            self.tracer.now() - self.begin, span_id=self.id, **self.attrs
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False


class _AsyncSpan(Span):
    """A span emitted as ``b``/``e`` async events (overlap-safe)."""

    __slots__ = ()

    def __init__(self, tracer: "Tracer", name: str, unit: str,
                 attrs: Dict[str, Any]) -> None:
        super().__init__(tracer, name, unit, attrs)
        tracer.emit(
            name=name, ph="b", ts=self.begin, tid=unit,
            cat=attrs.pop("cat", "async"), id=self.id, args=dict(attrs)
        )
        self.attrs = attrs

    def end(self) -> None:
        if self._done:
            return
        self._done = True
        self.tracer.emit(
            name=self.name, ph="e", ts=self.tracer.now(), tid=self.unit,
            cat="async", id=self.id, args=dict(self.attrs)
        )


class _NullSpan:
    """Shared do-nothing span returned by the disabled tracer."""

    __slots__ = ()
    id = 0
    begin = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op.

    Guards the hot path — ``ctx.compute`` and descriptor dispatch call
    into whatever sits on ``unit.trace``, and with this object there
    the cost is one attribute load plus one call returning a shared
    singleton. Nothing is recorded, no sim events are created, and
    counters/stats are untouched, so disabled-tracing runs are
    bit-identical (the pinned cycle regressions assert this).
    """

    __slots__ = ()
    enabled = False
    events: tuple = ()

    def now(self) -> float:
        return 0.0

    def next_id(self) -> int:
        return 0

    def span(self, name: str, unit: str = "core", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def async_span(self, name: str, unit: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name: str, unit: str, begin: float, dur: float,
                 **attrs: Any) -> None:
        pass

    def complete_async(self, name: str, unit: str, begin: float,
                       **attrs: Any) -> None:
        pass

    def instant(self, name: str, unit: str = "core", **attrs: Any) -> None:
        pass

    def counter(self, name: str, unit: str = "counters",
                **values: float) -> None:
        pass

    def flow_start(self, flow_id: int, name: str, unit: str,
                   ts: Optional[float] = None) -> None:
        pass

    def flow_end(self, flow_id: int, name: str, unit: str,
                 ts: Optional[float] = None) -> None:
        pass

    def process_started(self, process: Any) -> None:
        pass

    def process_finished(self, process: Any) -> None:
        pass

    def emit(self, **event: Any) -> None:
        pass

    def view(self, pid: int, process_name: str) -> "NullTracer":
        return self


NULL_TRACER = NullTracer()


def traced_op(name: str, unit: str = "sql"):
    """Decorator for host-side operators whose first argument is a DPU
    (or anything with a ``.trace``): wraps the call in a span on the
    given track, and feeds the op's simulated duration into the DPU's
    metrics hub latency digest (``<name>.cycles``) when one is
    attached. With tracing and metrics disabled the only cost is two
    attribute loads and truthiness tests."""

    def wrap(fn):
        @functools.wraps(fn)
        def inner(dpu, *args: Any, **kwargs: Any):
            trace = getattr(dpu, "trace", NULL_TRACER)
            metrics = getattr(dpu, "metrics", None)
            engine = getattr(dpu, "engine", None)
            sampling = (metrics is not None and metrics.enabled
                        and engine is not None)
            if not trace.enabled and not sampling:
                return fn(dpu, *args, **kwargs)
            begin = engine.now if sampling else 0.0
            if trace.enabled:
                with trace.span(name, unit=unit):
                    result = fn(dpu, *args, **kwargs)
            else:
                result = fn(dpu, *args, **kwargs)
            if sampling:
                metrics.observe(f"{name}.cycles", engine.now - begin)
            return result

        return inner

    return wrap


class TraceBuffer:
    """Bounded event store shared by every tracer view of one run."""

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.dropped = 0
        self._next_id = 0

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def append(self, event: Dict[str, Any]) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)


class Tracer:
    """Records sim-time events for one ``pid`` into a shared buffer.

    A cluster shares one :class:`TraceBuffer` across DPUs: call
    :meth:`view` to get a tracer bound to another pid (another chip)
    writing into the same ring. Thread ids are interned per pid from
    unit names and announced with metadata events so Perfetto shows
    ``dmac``/``ate7``/``ib.tx[0]`` instead of numbers.
    """

    enabled = True

    def __init__(
        self,
        engine,
        pid: int = 0,
        process_name: str = "dpu0",
        buffer: Optional[TraceBuffer] = None,
        capacity: int = 1 << 16,
    ) -> None:
        self.engine = engine
        self.pid = pid
        self.process_name = process_name
        self.buffer = buffer if buffer is not None else TraceBuffer(capacity)
        views = getattr(self.buffer, "_views", None)
        if views is None:
            views = self.buffer._views = []
        views.append(self)
        self._tids: Dict[str, int] = {}
        self._proc_begin: Dict[int, tuple] = {}
        self._meta: List[Dict[str, Any]] = []
        self._meta.append({
            "name": "process_name", "ph": "M", "ts": 0, "pid": pid, "tid": 0,
            "args": {"name": process_name},
        })

    # -- plumbing ------------------------------------------------------

    def now(self) -> float:
        return self.engine.now

    def next_id(self) -> int:
        return self.buffer.next_id()

    @property
    def events(self):
        return self.buffer.events

    @property
    def dropped(self) -> int:
        return self.buffer.dropped

    def _tid(self, unit: str) -> int:
        tid = self._tids.get(unit)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[unit] = tid
            self._meta.append({
                "name": "thread_name", "ph": "M", "ts": 0, "pid": self.pid,
                "tid": tid, "args": {"name": unit},
            })
        return tid

    def emit(self, name: str, ph: str, ts: float, tid: str,
             args: Optional[Dict[str, Any]] = None, **extra: Any) -> None:
        event: Dict[str, Any] = {
            "name": name, "ph": ph, "ts": float(ts), "pid": self.pid,
            "tid": self._tid(tid),
        }
        if args:
            event["args"] = args
        event.update(extra)
        self.buffer.append(event)

    def view(self, pid: int, process_name: str) -> "Tracer":
        """A tracer for another chip sharing this buffer and id space."""
        return Tracer(self.engine, pid=pid, process_name=process_name,
                      buffer=self.buffer)

    # -- recording API -------------------------------------------------

    def span(self, name: str, unit: str = "core", **attrs: Any) -> Span:
        """Open a strictly-nested span (complete ``X`` event on exit)."""
        return Span(self, name, unit, attrs)

    def async_span(self, name: str, unit: str, **attrs: Any) -> _AsyncSpan:
        """Open an overlap-safe span (async ``b``/``e`` event pair)."""
        return _AsyncSpan(self, name, unit, attrs)

    def complete(self, name: str, unit: str, begin: float, dur: float,
                 **attrs: Any) -> None:
        """Emit a finished interval in one shot (``X`` event)."""
        self.emit(name=name, ph="X", ts=begin, tid=unit,
                  dur=float(max(dur, 0.0)), args=attrs or None)

    def complete_async(self, name: str, unit: str, begin: float,
                       **attrs: Any) -> None:
        """Emit a finished overlap-safe interval post-hoc: a ``b``/``e``
        pair stamped [begin, now). For intervals measured with a plain
        ``engine.now`` delta where overlap on the track is possible, so
        a complete (``X``) event would break strict nesting."""
        span_id = self.next_id()
        cat = attrs.pop("cat", "async")
        self.emit(name=name, ph="b", ts=begin, tid=unit, cat=cat,
                  id=span_id, args=attrs or None)
        self.emit(name=name, ph="e", ts=self.now(), tid=unit, cat=cat,
                  id=span_id)

    def instant(self, name: str, unit: str = "core", **attrs: Any) -> None:
        self.emit(name=name, ph="i", ts=self.now(), tid=unit, s="t",
                  args=attrs or None)

    def counter(self, name: str, unit: str = "counters",
                **values: float) -> None:
        """Sample a counter track (``C`` event; one series per key)."""
        self.emit(name=name, ph="C", ts=self.now(), tid=unit,
                  args={key: float(value) for key, value in values.items()})

    def flow_start(self, flow_id: int, name: str, unit: str,
                   ts: Optional[float] = None) -> None:
        """Arrow tail: binds to the enclosing slice at this timestamp."""
        self.emit(name=name, ph="s", ts=self.now() if ts is None else ts,
                  tid=unit, cat="flow", id=flow_id)

    def flow_end(self, flow_id: int, name: str, unit: str,
                 ts: Optional[float] = None) -> None:
        """Arrow head: same cat/name/id as the matching ``s`` event."""
        self.emit(name=name, ph="f", ts=self.now() if ts is None else ts,
                  tid=unit, cat="flow", id=flow_id, bp="e")

    # -- engine process hooks (see Engine.tracer) ----------------------

    def process_started(self, process: Any) -> None:
        self._proc_begin[id(process)] = (process.name, self.now())

    def process_finished(self, process: Any) -> None:
        begun = self._proc_begin.pop(id(process), None)
        if begun is None:
            return
        name, begin = begun
        span_id = self.next_id()
        args = None
        if process.exception is not None:
            args = {"error": type(process.exception).__name__}
        self.emit(name=f"proc.{name}", ph="b", ts=begin, tid="sched",
                  cat="async", id=span_id)
        self.emit(name=f"proc.{name}", ph="e", ts=self.now(), tid="sched",
                  cat="async", id=span_id, args=args)

    # -- export --------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object.

        Metadata from every view sharing the buffer is included, so
        exporting any one view exports the cluster.
        """
        meta: List[Dict[str, Any]] = []
        seen = set()
        for view in getattr(self.buffer, "_views", [self]):
            for event in view._meta:
                key = (event["pid"], event["tid"], event["name"])
                if key not in seen:
                    seen.add(key)
                    meta.append(event)
        return {
            "traceEvents": meta + list(self.buffer.events),
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "dpCore cycles (1 trace us = 1 cycle)",
                "dropped_events": self.buffer.dropped,
            },
        }

    def export(self, path: str) -> int:
        """Write Chrome-trace JSON to ``path``; returns event count."""
        payload = self.to_chrome()
        with io.open(path, "w", encoding="utf-8") as sink:
            json.dump(payload, sink)
        return len(payload["traceEvents"])
