"""Chrome trace-event JSON validation.

CI runs this over ``examples/trace_tpch.py`` output so a refactor
cannot silently emit malformed traces.  Checks are structural:

* every event carries the required ``ph``/``ts``/``pid``/``tid``
  fields (``name`` too, except counter samples);
* complete (``X``) events carry a non-negative ``dur``;
* async (``b``/``e``) events carry ``id`` and ``cat``, and every
  ``b`` has a matching ``e`` at a later-or-equal timestamp;
* flow events (``s``/``f``) pair up by ``(cat, name, id)``;
* per ``(pid, tid)`` track, complete events are properly nested —
  a span either contains or is disjoint from every other span on
  its track (partial overlap means someone used ``span()`` where
  ``async_span()`` was required);
* counter (``C``) samples carry finite numeric values and
  non-decreasing timestamps per ``(pid, tid, name)`` series (the
  metrics hub samples on a monotone sim clock — out-of-order samples
  mean a broken exporter);
* SLO alert instants (``cat == "alert"``) carry the structured args
  the alert engine promises (rule/state/value/threshold/since);
  timeline annotations (``cat == "annotation"``) carry their kind.

Usable as a library (:func:`validate_chrome_trace` returns a list of
problem strings, empty when valid) or a CLI::

    python -m repro.obs.validate trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Tuple

__all__ = ["validate_chrome_trace", "validate_file"]

_REQUIRED = ("ph", "ts", "pid", "tid")
_KNOWN_PHASES = {"X", "B", "E", "b", "e", "n", "i", "I", "C", "M", "s", "t",
                 "f", "P", "N", "O", "D"}
_ALERT_ARGS = ("rule", "state", "value", "threshold", "since")
_ALERT_STATES = ("firing", "resolved")


def _check_counter(index: int, event: Dict[str, Any],
                   last_ts: Dict[Tuple[Any, Any, Any], float],
                   problems: List[str]) -> None:
    """Counter samples: numeric finite values, monotone per series."""
    args = event.get("args")
    if not isinstance(args, dict):
        problems.append(f"event {index}: counter event needs an "
                        f"args object ({event.get('name')})")
        return
    for key, value in args.items():
        if not isinstance(value, (int, float)) or value != value \
                or value in (float("inf"), float("-inf")):
            problems.append(
                f"event {index}: counter {event.get('name')!r} sample "
                f"{key!r} is not finite numeric: {value!r}"
            )
    series = (event["pid"], event["tid"], event.get("name"))
    previous = last_ts.get(series)
    if previous is not None and event["ts"] < previous:
        problems.append(
            f"event {index}: counter series {series} timestamp "
            f"{event['ts']} precedes previous sample at {previous}"
        )
    last_ts[series] = event["ts"]


def _check_instant(index: int, event: Dict[str, Any],
                   problems: List[str]) -> None:
    """Alert/annotation instants carry their structured args."""
    cat = event.get("cat")
    if cat == "alert":
        args = event.get("args")
        if not isinstance(args, dict):
            problems.append(f"event {index}: alert instant "
                            f"{event.get('name')!r} has no args")
            return
        for field in _ALERT_ARGS:
            if field not in args:
                problems.append(
                    f"event {index}: alert {event.get('name')!r} args "
                    f"missing {field!r}"
                )
        if "state" in args and args["state"] not in _ALERT_STATES:
            problems.append(
                f"event {index}: alert {event.get('name')!r} has unknown "
                f"state {args['state']!r}"
            )
    elif cat == "annotation":
        args = event.get("args")
        if not isinstance(args, dict) or "kind" not in args:
            problems.append(
                f"event {index}: annotation instant {event.get('name')!r} "
                f"needs args with a 'kind'"
            )


def _check_required(index: int, event: Dict[str, Any],
                    problems: List[str]) -> bool:
    ok = True
    for field in _REQUIRED:
        if field not in event:
            problems.append(f"event {index}: missing required field "
                            f"{field!r}: {event}")
            ok = False
    if event.get("ph") not in ("C",) and "name" not in event:
        problems.append(f"event {index}: missing 'name': {event}")
        ok = False
    return ok


def _check_nesting(track: Tuple[Any, Any], spans: List[Dict[str, Any]],
                   problems: List[str]) -> None:
    """Complete events on one track must strictly nest."""
    intervals = sorted(
        ((event["ts"], event["ts"] + event.get("dur", 0.0), event)
         for event in spans),
        key=lambda item: (item[0], -item[1]),
    )
    stack: List[Tuple[float, float, Dict[str, Any]]] = []
    for begin, end, event in intervals:
        while stack and stack[-1][1] <= begin:
            stack.pop()
        if stack and end > stack[-1][1]:
            outer = stack[-1][2]
            problems.append(
                f"track {track}: span {event.get('name')!r} "
                f"[{begin}, {end}) partially overlaps "
                f"{outer.get('name')!r} [{stack[-1][0]}, {stack[-1][1]})"
            )
            continue
        stack.append((begin, end, event))


def validate_chrome_trace(payload: Any) -> List[str]:
    """Validate a parsed Chrome trace; returns problems (empty = ok)."""
    problems: List[str] = []
    if isinstance(payload, list):
        events = payload
    elif isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' array"]
    else:
        return [f"trace must be a JSON array or object, got "
                f"{type(payload).__name__}"]
    if not events:
        return ["trace contains no events"]

    open_async: Dict[Tuple[Any, Any, Any], List[float]] = {}
    flows: Dict[Tuple[Any, Any, Any], List[str]] = {}
    tracks: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    counter_ts: Dict[Tuple[Any, Any, Any], float] = {}
    span_count = 0

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object: {event!r}")
            continue
        if not _check_required(index, event, problems):
            continue
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        if not isinstance(event["ts"], (int, float)):
            problems.append(f"event {index}: non-numeric ts "
                            f"{event['ts']!r}")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: X event needs dur >= 0, "
                                f"got {dur!r} ({event.get('name')})")
                continue
            span_count += 1
            tracks.setdefault((event["pid"], event["tid"]),
                              []).append(event)
        elif phase in ("b", "e"):
            if "id" not in event or "cat" not in event:
                problems.append(f"event {index}: async {phase!r} event "
                                f"needs id and cat ({event.get('name')})")
                continue
            key = (event["cat"], event.get("name"), event["id"])
            if phase == "b":
                open_async.setdefault(key, []).append(event["ts"])
                span_count += 1
            else:
                begun = open_async.get(key)
                if not begun:
                    problems.append(f"event {index}: async end without "
                                    f"begin: {key}")
                elif event["ts"] < begun[-1]:
                    problems.append(f"event {index}: async end at "
                                    f"{event['ts']} before begin at "
                                    f"{begun[-1]}: {key}")
                else:
                    begun.pop()
        elif phase in ("s", "f"):
            if "id" not in event or "cat" not in event:
                problems.append(f"event {index}: flow {phase!r} event "
                                f"needs id and cat")
                continue
            key = (event["cat"], event.get("name"), event["id"])
            flows.setdefault(key, []).append(phase)
        elif phase == "C":
            _check_counter(index, event, counter_ts, problems)
        elif phase in ("i", "I"):
            _check_instant(index, event, problems)

    for key, begun in open_async.items():
        if begun:
            problems.append(f"async span never closed: {key} "
                            f"({len(begun)} open)")
    for key, phases in flows.items():
        if "s" not in phases:
            problems.append(f"flow end without start: {key}")
        if "f" not in phases:
            problems.append(f"flow start without end: {key}")
    for track, spans in sorted(tracks.items(), key=lambda i: str(i[0])):
        _check_nesting(track, spans, problems)
    if span_count == 0:
        problems.append("trace contains no spans (X or b/e events)")
    return problems


def validate_file(path: str) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as source:
            payload = json.load(source)
    except (OSError, ValueError) as error:
        return [f"cannot read {path}: {error}"]
    return validate_chrome_trace(payload)


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python -m repro.obs.validate trace.json [more.json ...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        problems = validate_file(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"INVALID: {path}: {problem}")
        else:
            print(f"{path}: valid Chrome trace")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
