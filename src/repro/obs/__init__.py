"""Sim-time observability: tracing, hardware counters, perf reports.

The paper's evaluation is counter-driven; this package provides the
attribution layer — a Chrome-trace span/event tracer stamped with
``engine.now``, a hierarchical dot-path counter registry, perf-report
rendering, and a trace-schema validator used by CI.  See
``docs/OBSERVABILITY.md``.
"""

from .metrics import (
    NULL_HUB,
    Alert,
    Annotation,
    LatencyDigest,
    MetricsHub,
    NullMetricsHub,
    SloRule,
    TimeSeries,
    render_report,
    validate_metrics_jsonl,
)
from .registry import CounterRegistry, UnitCounters
from .report import PerfReport, render_histogram
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceBuffer,
    Tracer,
    traced_op,
)
from .validate import validate_chrome_trace, validate_file

__all__ = [
    "Alert",
    "Annotation",
    "CounterRegistry",
    "LatencyDigest",
    "MetricsHub",
    "NULL_HUB",
    "NULL_TRACER",
    "NullMetricsHub",
    "NullTracer",
    "PerfReport",
    "SloRule",
    "Span",
    "TimeSeries",
    "TraceBuffer",
    "Tracer",
    "UnitCounters",
    "render_histogram",
    "render_report",
    "traced_op",
    "validate_chrome_trace",
    "validate_file",
    "validate_metrics_jsonl",
]
