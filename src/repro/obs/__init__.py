"""Sim-time observability: tracing, hardware counters, perf reports.

The paper's evaluation is counter-driven; this package provides the
attribution layer — a Chrome-trace span/event tracer stamped with
``engine.now``, a hierarchical dot-path counter registry, perf-report
rendering, and a trace-schema validator used by CI.  See
``docs/OBSERVABILITY.md``.
"""

from .registry import CounterRegistry, UnitCounters
from .report import PerfReport, render_histogram
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceBuffer,
    Tracer,
    traced_op,
)
from .validate import validate_chrome_trace, validate_file

__all__ = [
    "CounterRegistry",
    "UnitCounters",
    "NULL_TRACER",
    "NullTracer",
    "PerfReport",
    "Span",
    "TraceBuffer",
    "Tracer",
    "render_histogram",
    "traced_op",
    "validate_chrome_trace",
    "validate_file",
]
