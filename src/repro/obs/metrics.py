"""Continuous sim-time metrics: sampling, SLOs, and health reports.

PR 3's tracer and counter registry answer *how much* work happened;
this module answers *when*. A :class:`MetricsHub` registers periodic
samplers on the simulation clock (configurable cadence in cycles) that
snapshot :class:`~repro.obs.registry.CounterRegistry` counters and
gauges into bounded ring-buffered :class:`TimeSeries`, from which
per-interval rates (DMS GB/s, fabric bytes/s, shed rate) are derived.
On top of the series sit:

* :class:`LatencyDigest` — streaming log-bucketed percentile digests
  (p50/p99/p999) for per-op latency, O(1) add, mergeable;
* :class:`SloRule` — a threshold + ``sustained-for`` alert engine that
  fires structured :class:`Alert` instants into the tracer;
* :class:`Annotation` — timeline markers for chaos/recovery events
  (kills, partition windows, leader elections, journal replays) so a
  run's health story reads end to end.

Exporters: live Perfetto counter tracks merged into the existing
Chrome-trace ring buffer, Prometheus-style text, and JSONL, plus a CLI
health report::

    python -m repro.obs.metrics report metrics.jsonl
    python -m repro.obs.metrics validate metrics.jsonl

Two guarantees mirror the tracer's (both pinned by tests):

1. **Zero overhead when disabled.** The default ``DPU``/``Cluster``
   carry the shared :data:`NULL_HUB`; hot paths pay one attribute test.
2. **Zero timing perturbation when enabled.** Sampler ticks are pure
   host-side reads scheduled as plain engine callbacks: they never
   mutate modelled state, never wake a process, and tie-breaking
   sequence numbers preserve the relative order of all other events,
   so every cycle count is identical to a metrics-off run. The one
   caveat: a drain-style ``engine.run()`` (no target process) may stop
   up to one cadence *after* the last real event, because the final
   dormant-going tick itself advances the clock; every ``launch`` /
   ``run_until_complete`` flow is exact.

A sampler tick re-arms only while the engine queue holds non-metrics
work, and goes dormant otherwise; ``touch()`` (called by the launch /
cluster-run choke points) re-arms it, so an idle engine always drains.
"""

from __future__ import annotations

import io
import json
import math
import sys
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, List, Optional, Tuple

from .tracer import NULL_TRACER

__all__ = [
    "Alert",
    "Annotation",
    "LatencyDigest",
    "MetricsHub",
    "NULL_HUB",
    "NullMetricsHub",
    "SloRule",
    "TimeSeries",
    "render_report",
    "validate_metrics_jsonl",
]


# Registry paths sampled into Perfetto counter tracks by default (the
# full snapshot always lands in the ring-buffered series; this only
# bounds what is mirrored into the trace, which is shared with spans).
DEFAULT_TRACE_PATTERNS = (
    "*.dms.bytes_read",
    "*.dms.bytes_written",
    "*.dms.bytes_partitioned",
    "*.ddr.bytes_served",
    "*.ate.messages",
    "*.admission.*",
    "*.heap.live_bytes",
    "*.dmad*.occupancy",
    "fabric.bytes_sent",
    "fabric.bytes_retransmitted",
    "fabric.messages_sent",
    "fabric.inbox*.occupancy",
    "recovery.*",
)

# Leaf-name markers that make a sampled path a *gauge* (exported and
# trace-mirrored as its instantaneous value) instead of a cumulative
# counter (mirrored as a per-interval rate). ``_peak`` matches the
# registry's merge convention.
_GAUGE_MARKERS = (
    "utilization",
    "occupancy",
    "running",
    "queued",
    "in_use",
    "live_bytes",
    "free_bytes",
    "largest_free",
    "fragments",
    "tokens",
    "capacity",
    "now",
    "leader",
    "epoch",
)


def is_gauge_path(path: str) -> bool:
    """Gauge (sample = value) vs counter (sample = cumulative total)."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith("_peak"):
        return True
    return any(marker in leaf for marker in _GAUGE_MARKERS)


class TimeSeries:
    """A bounded ring of ``(t, value)`` samples for one metric path.

    Overflow evicts oldest-first and is counted in ``dropped``, so the
    newest window always survives (mirrors :class:`TraceBuffer`).
    """

    __slots__ = ("name", "capacity", "points", "dropped", "gauge")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2: {capacity}")
        self.name = name
        self.capacity = capacity
        self.points: deque = deque(maxlen=capacity)
        self.dropped = 0
        self.gauge = is_gauge_path(name)

    def append(self, t: float, value: float) -> None:
        points = self.points
        if points and points[-1][0] == t:
            # A flush at the same instant as a cadence tick re-reads
            # the counters: replace, so the series stays a function of
            # time and integration sees the final value.
            points[-1] = (t, value)
            return
        if len(points) == self.capacity:
            self.dropped += 1
        points.append((t, value))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def deltas(self) -> List[Tuple[float, float]]:
        """Per-interval accumulation: ``[(t_i, v_i - v_{i-1}), ...]``."""
        points = list(self.points)
        return [
            (points[i][0], points[i][1] - points[i - 1][1])
            for i in range(1, len(points))
        ]

    def integrate(self) -> float:
        """Total accumulated over the retained window (sum of interval
        deltas — telescopes exactly for integer-valued counters)."""
        total = 0.0
        for _t, delta in self.deltas():
            total += delta
        return total


class LatencyDigest:
    """Streaming percentile digest with bounded relative error.

    Values land in log2 buckets split into ``SUBBUCKETS`` linear
    sub-buckets (HdrHistogram-style), giving ~1/SUBBUCKETS relative
    error on quantiles with O(1) insertion and O(buckets) queries.
    Exact count/sum/min/max are kept alongside. Mergeable, so per-DPU
    digests roll up into cluster digests.
    """

    SUBBUCKETS = 32

    __slots__ = ("name", "buckets", "count", "total", "_min", "_max", "zeros")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.zeros = 0  # non-positive samples, kept out of the log buckets

    def _index(self, value: float) -> int:
        mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
        sub = int((mantissa - 0.5) * 2 * self.SUBBUCKETS)
        return exponent * self.SUBBUCKETS + min(sub, self.SUBBUCKETS - 1)

    def _value_of(self, index: int) -> float:
        exponent, sub = divmod(index, self.SUBBUCKETS)
        mantissa = 0.5 + (sub + 0.5) / (2 * self.SUBBUCKETS)
        return math.ldexp(mantissa, exponent)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "LatencyDigest") -> None:
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Approximate nearest-rank quantile; exact at the extremes."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        if rank <= self.zeros:
            return min(self.minimum, 0.0)
        if rank >= self.count:
            return self.maximum
        seen = self.zeros
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return self._value_of(index)
        return self.maximum

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
        }


_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, limit: value > limit,
    ">=": lambda value, limit: value >= limit,
    "<": lambda value, limit: value < limit,
    "<=": lambda value, limit: value <= limit,
}


@dataclass(frozen=True)
class SloRule:
    """``<metric>(<series>) <op> <threshold> [for <cycles>]``.

    ``kind`` selects the evaluated quantity:

    * ``value`` — the latest sample of a series (gauges);
    * ``rate`` — the last inter-sample rate, in units *per second* via
      the hub's ``clock_hz`` (counters);
    * ``quantile`` — ``quantile`` of the named latency digest
      (``p50``/``p99``/``p999`` spellings parse to this kind).

    The rule breaches when ``op(quantity, threshold)`` holds; the alert
    fires only once the breach has been sustained for
    ``sustained_for`` simulated cycles, and resolves (with a paired
    alert record) when the quantity recovers.
    """

    name: str
    series: str
    op: str
    threshold: float
    kind: str = "value"
    quantile: float = 0.99
    sustained_for: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}: {self.op}")
        if self.kind not in ("value", "rate", "quantile"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.sustained_for < 0:
            raise ValueError(f"negative sustained_for {self.sustained_for}")

    @classmethod
    def parse(cls, text: str, name: Optional[str] = None) -> "SloRule":
        """Parse ``"p99(ate.rtt.faa.remote) > 5000 for 100000"``.

        Metric spellings: ``value(path)``, ``rate(path)``,
        ``p50/p90/p99/p999/p<float>(digest)``. The ``for`` clause is
        optional and given in simulated cycles.
        """
        import re

        pattern = (
            r"^\s*(value|rate|p[0-9]+(?:\.[0-9]+)?)\(([^)]+)\)\s*"
            r"(>=|<=|>|<)\s*([-+0-9.eE]+)"
            r"(?:\s+for\s+([0-9.eE+]+))?\s*$"
        )
        match = re.match(pattern, text)
        if match is None:
            raise ValueError(f"cannot parse SLO rule: {text!r}")
        metric, series, op, threshold, sustained = match.groups()
        kind, quantile = "value", 0.99
        if metric == "rate":
            kind = "rate"
        elif metric.startswith("p") and metric != "value":
            kind = "quantile"
            digits = metric[1:]
            # p50 -> 0.50, p99 -> 0.99, p999 -> 0.999, p99.9 -> 0.999
            quantile = float(digits) / (10 ** len(digits.replace(".", "")))
            if "." in digits:
                quantile = float(digits) / 100.0
        return cls(
            name=name or text.strip(),
            series=series.strip(),
            op=op,
            threshold=float(threshold),
            kind=kind,
            quantile=quantile,
            sustained_for=float(sustained) if sustained else 0.0,
        )


@dataclass(frozen=True)
class Alert:
    """One SLO state transition, stamped in simulated time."""

    t: float
    rule: str
    state: str  # "firing" | "resolved"
    value: float
    threshold: float
    since: float  # when the breach began (== t for instant rules)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "alert",
            "t": self.t,
            "rule": self.rule,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "since": self.since,
        }


@dataclass(frozen=True)
class Annotation:
    """A timeline marker: chaos kill, partition window, election..."""

    t: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "annotation", "t": self.t, "kind": self.kind,
                "attrs": dict(self.attrs)}


class NullMetricsHub:
    """The disabled hub: every operation is a cheap no-op.

    Mirrors :class:`~repro.obs.tracer.NullTracer` — sits on
    ``DPU.metrics`` / ``Cluster.metrics`` by default so hot paths pay
    one attribute load and a truthiness test, and runs stay
    bit-identical to a build with no metrics at all (pinned).
    """

    __slots__ = ()
    enabled = False

    def touch(self) -> None:
        pass

    def flush(self) -> None:
        pass

    def sample(self) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def annotate(self, kind: str, t: Optional[float] = None,
                 **attrs: Any) -> None:
        pass

    def add_sampler(self, sampler: Callable[[], Dict[str, float]]) -> None:
        pass

    def add_rule(self, rule: Any, name: Optional[str] = None) -> None:
        pass


NULL_HUB = NullMetricsHub()


class MetricsHub:
    """Periodic registry sampling + digests + SLO rules + exporters.

    One hub serves one engine (a DPU, or a whole cluster sharing its
    engine). ``cadence`` is the sampling period in simulated cycles;
    ``capacity`` bounds every ring (series points, annotations,
    alerts); ``clock_hz`` converts per-cycle rates to per-second.
    """

    enabled = True

    def __init__(
        self,
        engine,
        cadence: float = 10_000.0,
        capacity: int = 4096,
        clock_hz: float = 800e6,
        trace=NULL_TRACER,
        trace_patterns: Tuple[str, ...] = DEFAULT_TRACE_PATTERNS,
    ) -> None:
        if cadence <= 0:
            raise ValueError(f"cadence must be positive cycles: {cadence}")
        self.engine = engine
        self.cadence = float(cadence)
        self.capacity = int(capacity)
        self.clock_hz = float(clock_hz)
        self.trace = trace
        self.trace_patterns = tuple(trace_patterns)
        self.samplers: List[Callable[[], Dict[str, float]]] = []
        self.series: Dict[str, TimeSeries] = {}
        self.digests: Dict[str, LatencyDigest] = {}
        self.rules: List[SloRule] = []
        self.alerts: List[Alert] = []
        self.annotations: List[Annotation] = []
        self.annotations_dropped = 0
        self.ticks = 0
        self._pending = False
        self._next_due = float(engine.now)
        self._last_sample_t: Optional[float] = None
        self._trace_match: Dict[str, bool] = {}
        self._breach_since: Dict[str, float] = {}
        self._firing: Dict[str, bool] = {}
        if not hasattr(engine, "_metric_ticks"):
            engine._metric_ticks = 0

    # -- registration --------------------------------------------------

    def add_sampler(self, sampler: Callable[[], Dict[str, float]]) -> None:
        """Register a callable returning ``{path: value}`` per tick.

        Samplers must be pure host-side reads: they run inside the
        engine's dispatch loop and must never mutate modelled state.
        """
        self.samplers.append(sampler)

    def add_rule(self, rule, name: Optional[str] = None) -> SloRule:
        """Attach an :class:`SloRule` (or its text form)."""
        if isinstance(rule, str):
            rule = SloRule.parse(rule, name=name)
        self.rules.append(rule)
        return rule

    def digest(self, name: str) -> LatencyDigest:
        digest = self.digests.get(name)
        if digest is None:
            digest = self.digests[name] = LatencyDigest(name)
        return digest

    def observe(self, name: str, value: float) -> None:
        """Feed one latency/size sample into the named digest."""
        self.digest(name).add(value)

    def digest_table(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Summaries of every digest under ``prefix``, sorted by name.

        The serving layer files per-tenant latency under
        ``serve.tenant.<name>`` and per-tier under
        ``serve.tier.<name>``, so ``digest_table("serve.tier.")``
        is the per-tier p50/p99/p999 isolation table."""
        return {
            name: digest.to_dict()
            for name, digest in sorted(self.digests.items())
            if name.startswith(prefix)
        }

    def annotate(self, kind: str, t: Optional[float] = None,
                 **attrs: Any) -> None:
        """Mark the timeline (chaos kill, election, replay...).

        ``t`` defaults to now; chaos schedules annotate their drawn
        fire times up front, so explicit timestamps are allowed.
        """
        when = self.engine.now if t is None else float(t)
        if len(self.annotations) >= self.capacity:
            self.annotations_dropped += 1
            del self.annotations[0]
        self.annotations.append(Annotation(when, kind, dict(attrs)))
        if self.trace.enabled:
            self.trace.emit(name=f"note.{kind}", ph="i", ts=when,
                            tid="metrics", s="t", cat="annotation",
                            args={"kind": kind, **attrs})

    # -- the sampling clock --------------------------------------------

    def touch(self) -> None:
        """Re-arm the sampler (called at launch/job/run starts).

        Takes an immediate boundary sample so every phase's series
        starts with a baseline point at the phase-start instant —
        without it the first interval's delta (work done before the
        first cadence tick) would be lost and integration could not
        reproduce the run's totals.
        """
        if not self._pending:
            self.sample()
            self._schedule_tick()

    def _schedule_tick(self) -> None:
        engine = self.engine
        now = engine.now
        due = self._next_due if self._next_due > now else now
        self._pending = True
        engine._metric_ticks += 1
        engine._schedule(due - now, self._tick, None)

    def _tick(self, _ignored: Any) -> None:
        self._pending = False
        engine = self.engine
        engine._metric_ticks -= 1
        self.sample()
        # Re-arm only while real (non-metrics) work is pending, so an
        # otherwise-drained engine still drains; touch() re-arms.
        if len(engine._queue) > engine._metric_ticks:
            self._schedule_tick()

    def sample(self) -> None:
        """Take one sample now: run samplers, mirror counter tracks
        into the tracer, evaluate SLO rules."""
        now = self.engine.now
        self.ticks += 1
        self._next_due = now + self.cadence
        trace = self.trace
        emit = trace.enabled
        previous_t = self._last_sample_t
        for sampler in self.samplers:
            for path, value in sampler().items():
                series = self.series.get(path)
                if series is None:
                    series = self.series[path] = TimeSeries(
                        path, self.capacity
                    )
                    # A counter appearing mid-run was implicitly zero
                    # at the previous sample (registry counters are
                    # created on first increment); the backfilled point
                    # keeps interval deltas telescoping to the true
                    # total.
                    if (not series.gauge and previous_t is not None
                            and previous_t < now):
                        series.append(previous_t, 0.0)
                previous = series.last
                series.append(now, float(value))
                if emit and self._traced(path):
                    if series.gauge:
                        trace.counter(path, unit="metrics", value=value)
                    else:
                        rate = 0.0
                        if previous is not None and now > previous[0]:
                            rate = ((value - previous[1])
                                    / (now - previous[0]) * self.clock_hz)
                        trace.counter(path, unit="metrics", per_second=rate)
        self._last_sample_t = now
        self._evaluate_rules(now)

    def flush(self) -> None:
        """Sample at the current instant (end of a launch/run), so the
        final point lands exactly on the completion cycle and interval
        integration covers the whole window."""
        self.sample()

    def _traced(self, path: str) -> bool:
        match = self._trace_match.get(path)
        if match is None:
            match = any(
                fnmatchcase(path, pattern) for pattern in self.trace_patterns
            )
            self._trace_match[path] = match
        return match

    # -- SLO engine ----------------------------------------------------

    def rule_value(self, rule: SloRule) -> Optional[float]:
        """The quantity a rule currently evaluates, or None if the
        series/digest has no data yet."""
        if rule.kind == "quantile":
            digest = self.digests.get(rule.series)
            if digest is None or digest.count == 0:
                return None
            return digest.quantile(rule.quantile)
        series = self.series.get(rule.series)
        if series is None or not series.points:
            return None
        if rule.kind == "value":
            return series.points[-1][1]
        if len(series.points) < 2:
            return None
        (t0, v0), (t1, v1) = series.points[-2], series.points[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0) * self.clock_hz

    def _evaluate_rules(self, now: float) -> None:
        for rule in self.rules:
            value = self.rule_value(rule)
            if value is None:
                continue
            breaching = _OPS[rule.op](value, rule.threshold)
            if breaching:
                since = self._breach_since.setdefault(rule.name, now)
                if (not self._firing.get(rule.name)
                        and now - since >= rule.sustained_for):
                    self._firing[rule.name] = True
                    self._record_alert(now, rule, "firing", value, since)
            else:
                since = self._breach_since.pop(rule.name, now)
                if self._firing.get(rule.name):
                    self._firing[rule.name] = False
                    self._record_alert(now, rule, "resolved", value, since)

    def _record_alert(self, now: float, rule: SloRule, state: str,
                      value: float, since: float) -> None:
        alert = Alert(now, rule.name, state, float(value),
                      rule.threshold, since)
        if len(self.alerts) >= self.capacity:
            del self.alerts[0]
        self.alerts.append(alert)
        if self.trace.enabled:
            self.trace.emit(
                name=f"slo.{rule.name}", ph="i", ts=now, tid="slo", s="t",
                cat="alert",
                args={"rule": rule.name, "state": state, "value": value,
                      "threshold": rule.threshold, "since": since},
            )

    def firing(self) -> List[str]:
        """Names of rules currently in the firing state."""
        return [name for name, live in self._firing.items() if live]

    # -- derived series ------------------------------------------------

    def latest(self, path: str) -> float:
        series = self.series.get(path)
        if series is None or not series.points:
            return 0.0
        return series.points[-1][1]

    def integrate(self, path: str) -> float:
        """Sum of per-interval deltas over the retained window — for a
        counter sampled from t=0 with a final flush, exactly the total
        the point-in-time registry reports (telescoping is exact for
        integer-valued counters), so derived GB/s reproduces
        ``LaunchResult.gbps`` bit for bit."""
        series = self.series.get(path)
        return series.integrate() if series is not None else 0.0

    def rate_points(self, path: str,
                    per_second: bool = True) -> List[Tuple[float, float]]:
        """Per-interval rates ``[(t_i, rate_i)]`` for a counter path."""
        series = self.series.get(path)
        if series is None:
            return []
        points = list(series.points)
        scale = self.clock_hz if per_second else 1.0
        rates = []
        for i in range(1, len(points)):
            t0, v0 = points[i - 1]
            t1, v1 = points[i]
            if t1 > t0:
                rates.append((t1, (v1 - v0) / (t1 - t0) * scale))
        return rates

    # -- exporters -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic full export (the JSONL lines, as objects)."""
        records: List[Dict[str, Any]] = [{
            "type": "meta",
            "cadence": self.cadence,
            "clock_hz": self.clock_hz,
            "ticks": self.ticks,
            "engine_now": float(self.engine.now),
            "series": len(self.series),
            "digests": len(self.digests),
            "alerts": len(self.alerts),
            "annotations": len(self.annotations),
            "annotations_dropped": self.annotations_dropped,
        }]
        for name in sorted(self.series):
            series = self.series[name]
            records.append({
                "type": "series",
                "name": name,
                "gauge": series.gauge,
                "dropped": series.dropped,
                "points": [[t, v] for t, v in series.points],
            })
        for name in sorted(self.digests):
            record = {"type": "digest", "name": name}
            record.update(self.digests[name].to_dict())
            records.append(record)
        records.extend(alert.to_dict() for alert in self.alerts)
        records.extend(note.to_dict() for note in self.annotations)
        return {"records": records}

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns the line count."""
        records = self.to_dict()["records"]
        with io.open(path, "w", encoding="utf-8") as sink:
            for record in records:
                sink.write(json.dumps(record) + "\n")
        return len(records)

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the latest sample of every
        series plus digest quantiles and alert totals."""
        lines: List[str] = []
        for name in sorted(self.series):
            series = self.series[name]
            if not series.points:
                continue
            metric = _prom_name(name)
            kind = "gauge" if series.gauge else "counter"
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {_prom_value(series.points[-1][1])}")
        for name in sorted(self.digests):
            digest = self.digests[name]
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} summary")
            for label, fraction in (("0.5", 0.5), ("0.99", 0.99),
                                    ("0.999", 0.999)):
                lines.append(
                    f'{metric}{{quantile="{label}"}} '
                    f"{_prom_value(digest.quantile(fraction))}"
                )
            lines.append(f"{metric}_sum {_prom_value(digest.total)}")
            lines.append(f"{metric}_count {digest.count}")
        fired = sum(1 for alert in self.alerts if alert.state == "firing")
        lines.append("# TYPE repro_slo_alerts_fired_total counter")
        lines.append(f"repro_slo_alerts_fired_total {fired}")
        return "\n".join(lines) + "\n"

    def export_prometheus(self, path: str) -> None:
        with io.open(path, "w", encoding="utf-8") as sink:
            sink.write(self.to_prometheus())

    def render_report(self, width: int = 60) -> str:
        """The cluster/DPU health report (see :func:`render_report`)."""
        return render_report(self.to_dict()["records"], width=width)


def _prom_name(path: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in path
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_value(value: float) -> str:
    return f"{value:.17g}"


# -- health report rendering ----------------------------------------------

_RAMP = " .:-=+*#%@"


def _sparkline(points: List[Tuple[float, float]], t0: float, t1: float,
               width: int) -> Tuple[str, float, float]:
    """Resample ``points`` onto ``width`` buckets of [t0, t1]; returns
    (line, min, max). Buckets average the samples they contain and
    inherit their left neighbour when empty."""
    if not points or t1 <= t0:
        return " " * width, 0.0, 0.0
    sums = [0.0] * width
    counts = [0] * width
    for t, value in points:
        index = min(width - 1, max(0, int((t - t0) / (t1 - t0) * width)))
        sums[index] += value
        counts[index] += 1
    values: List[float] = []
    previous = 0.0
    for index in range(width):
        if counts[index]:
            previous = sums[index] / counts[index]
        values.append(previous)
    low, high = min(values), max(values)
    if high <= low:
        return _RAMP[0] * width, low, high
    chars = [
        _RAMP[min(len(_RAMP) - 1,
                  int((value - low) / (high - low) * (len(_RAMP) - 1)))]
        for value in values
    ]
    return "".join(chars), low, high


def _fmt(value: float) -> str:
    magnitude = abs(value)
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if magnitude >= scale:
            return f"{value / scale:.2f}{unit}"
    if value == int(value):
        return f"{value:.0f}"
    return f"{value:.2f}"


def render_report(records: List[Dict[str, Any]], width: int = 60,
                  timeline_series: Optional[List[str]] = None) -> str:
    """Render the per-DPU/cluster health report from exported records.

    Sections: run header, utilization/rate timelines (sparklines over
    the sampled window), fabric heatmap (per-endpoint link busy
    fraction per time bucket), latency digests, the alert log, and the
    annotation timeline.
    """
    meta = next((r for r in records if r.get("type") == "meta"), None)
    series = [r for r in records if r.get("type") == "series"]
    digests = [r for r in records if r.get("type") == "digest"]
    alerts = [r for r in records if r.get("type") == "alert"]
    notes = [r for r in records if r.get("type") == "annotation"]
    clock_hz = float(meta["clock_hz"]) if meta else 800e6

    t0, t1 = math.inf, -math.inf
    for record in series:
        for t, _v in record["points"]:
            t0 = min(t0, t)
            t1 = max(t1, t)
    if not series or t1 <= t0:
        t0, t1 = 0.0, max(t1, 1.0)

    lines = []
    now = meta["engine_now"] if meta else t1
    ticks = meta["ticks"] if meta else len(series)
    cadence = meta["cadence"] if meta else 0
    lines.append(
        f"=== cluster health report @ t={now:.0f} cycles "
        f"({ticks} samples, cadence {cadence:.0f}) ==="
    )

    # -- utilization / rate timelines --
    lines.append("")
    lines.append("-- timelines (sampled window) --")
    interesting = timeline_series
    if interesting is None:
        preferred = (
            "*.dms.bytes_read", "fabric.bytes_sent", "*.ddr.bytes_served",
            "*.admission.running", "*.heap.live_bytes",
        )
        interesting = [
            record["name"] for record in series
            if any(fnmatchcase(record["name"], pattern)
                   for pattern in preferred)
        ]
    shown = 0
    for record in series:
        name = record["name"]
        if name not in interesting:
            continue
        points = [(t, v) for t, v in record["points"]]
        if record.get("gauge"):
            label, unit = "value", ""
        else:
            # Counters render as per-interval rates (units/second).
            rates = []
            for i in range(1, len(points)):
                ta, va = points[i - 1]
                tb, vb = points[i]
                if tb > ta:
                    rates.append((tb, (vb - va) / (tb - ta) * clock_hz))
            points, label, unit = rates, "rate", "/s"
        spark, low, high = _sparkline(points, t0, t1, width)
        lines.append(f"{name}  ({label})")
        lines.append(f"  [{spark}]  min={_fmt(low)}{unit} "
                     f"max={_fmt(high)}{unit}")
        shown += 1
    if not shown:
        lines.append("  (no timeline series sampled)")

    # -- fabric heatmap --
    heat_rows = []
    for record in series:
        name = record["name"]
        if name.startswith("fabric.") and name.endswith(".utilization"):
            heat_rows.append(record)
    if heat_rows:
        lines.append("")
        lines.append("-- fabric heatmap (link busy fraction per interval) --")
        columns = max(8, width // 2)
        for record in sorted(heat_rows, key=lambda r: r["name"]):
            points = record["points"]
            # Cumulative utilization u(t) = busy/t; interval busy
            # fraction over [ta, tb] is (u_b*t_b - u_a*t_a)/(t_b - t_a).
            cells = []
            for i in range(1, len(points)):
                ta, ua = points[i - 1]
                tb, ub = points[i]
                if tb > ta:
                    cells.append((tb, max(0.0, (ub * tb - ua * ta)
                                          / (tb - ta))))
            spark, _low, _high = _sparkline(cells, t0, t1, columns)
            link = record["name"][len("fabric."):-len(".utilization")]
            lines.append(f"  {link:<8} [{spark}]")

    # -- latency digests --
    if digests:
        lines.append("")
        lines.append("-- latency digests (cycles) --")
        name_width = max(len(d["name"]) for d in digests)
        lines.append(f"  {'series':<{name_width}}  {'count':>7}  "
                     f"{'p50':>9}  {'p99':>9}  {'p999':>9}  {'max':>9}")
        for digest in sorted(digests, key=lambda d: d["name"]):
            lines.append(
                f"  {digest['name']:<{name_width}}  "
                f"{digest['count']:>7.0f}  {digest['p50']:>9.0f}  "
                f"{digest['p99']:>9.0f}  {digest['p999']:>9.0f}  "
                f"{digest['max']:>9.0f}"
            )

    # -- alert log --
    lines.append("")
    lines.append(f"-- alert log ({len(alerts)} transitions) --")
    if alerts:
        for alert in alerts:
            lines.append(
                f"  t={alert['t']:>12.0f}  {alert['state'].upper():<8} "
                f"{alert['rule']}  value={_fmt(alert['value'])} "
                f"threshold={_fmt(alert['threshold'])} "
                f"(breaching since t={alert['since']:.0f})"
            )
    else:
        lines.append("  (none fired)")

    # -- annotations --
    if notes:
        lines.append("")
        lines.append(f"-- timeline annotations ({len(notes)}) --")
        for note in sorted(notes, key=lambda n: n["t"]):
            attrs = " ".join(
                f"{key}={value}" for key, value in
                sorted(note.get("attrs", {}).items())
            )
            lines.append(f"  t={note['t']:>12.0f}  {note['kind']}"
                         + (f"  {attrs}" if attrs else ""))
    return "\n".join(lines)


# -- JSONL validation ------------------------------------------------------

def validate_metrics_jsonl(path: str) -> List[str]:
    """Structural checks over an exported metrics JSONL file.

    * line 1 is a ``meta`` record with cadence/clock/ticks;
    * every ``series`` has strictly finite numeric points with
      non-decreasing timestamps and a non-negative ``dropped``;
    * ``alert`` records carry rule/state/value/threshold/since and a
      known state;
    * ``annotation`` records carry a kind and numeric t.
    """
    problems: List[str] = []
    try:
        with io.open(path, "r", encoding="utf-8") as source:
            lines = source.read().splitlines()
    except OSError as error:
        return [f"cannot read {path}: {error}"]
    if not lines:
        return ["empty metrics file"]
    records = []
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError as error:
            problems.append(f"line {index + 1}: not JSON: {error}")
    if not records:
        return problems or ["no records"]
    if records[0].get("type") != "meta":
        problems.append("first record is not a 'meta' record")
    for index, record in enumerate(records):
        kind = record.get("type")
        if kind == "series":
            name = record.get("name", f"line {index + 1}")
            last_t = -math.inf
            for point in record.get("points", ()):
                if (not isinstance(point, list) or len(point) != 2
                        or not all(isinstance(x, (int, float))
                                   for x in point)):
                    problems.append(f"series {name}: bad point {point!r}")
                    continue
                t, value = point
                if not (math.isfinite(t) and math.isfinite(value)):
                    problems.append(f"series {name}: non-finite point "
                                    f"({t}, {value})")
                if t < last_t:
                    problems.append(
                        f"series {name}: timestamps not monotone "
                        f"({t} after {last_t})"
                    )
                last_t = t
            if record.get("dropped", 0) < 0:
                problems.append(f"series {name}: negative dropped count")
        elif kind == "alert":
            for field_name in ("t", "rule", "state", "value", "threshold",
                               "since"):
                if field_name not in record:
                    problems.append(
                        f"alert at line {index + 1}: missing {field_name!r}"
                    )
            if record.get("state") not in ("firing", "resolved"):
                problems.append(
                    f"alert at line {index + 1}: unknown state "
                    f"{record.get('state')!r}"
                )
        elif kind == "annotation":
            if "kind" not in record:
                problems.append(f"annotation at line {index + 1}: no kind")
            if not isinstance(record.get("t"), (int, float)):
                problems.append(
                    f"annotation at line {index + 1}: non-numeric t"
                )
        elif kind not in ("meta", "digest"):
            problems.append(f"line {index + 1}: unknown record type "
                            f"{kind!r}")
    return problems


# -- CLI -------------------------------------------------------------------

def _load_records(path: str) -> List[Dict[str, Any]]:
    with io.open(path, "r", encoding="utf-8") as source:
        return [json.loads(line) for line in source.read().splitlines()
                if line.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    usage = ("usage: python -m repro.obs.metrics "
             "{report|validate} metrics.jsonl [more.jsonl ...]")
    if len(argv) < 2 or argv[0] not in ("report", "validate"):
        print(usage, file=sys.stderr)
        return 2
    command, paths = argv[0], argv[1:]
    status = 0
    for path in paths:
        problems = validate_metrics_jsonl(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"INVALID: {path}: {problem}")
            continue
        if command == "validate":
            print(f"{path}: valid metrics export")
        else:
            if len(paths) > 1:
                print(f"\n##### {path} #####")
            print(render_report(_load_records(path)))
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
