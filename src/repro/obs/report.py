"""Perf-report rendering: utilization + latency histograms from counters.

``DPU.perf_report()`` returns a :class:`PerfReport` built purely from
the hierarchical counter registry plus the recorder's latency series.
Everything the paper plots per unit time is derived here from
counters and the elapsed simulated cycles — e.g. Figure 11's DMS GB/s
is ``dms.bytes_read / seconds(elapsed)`` — so a benchmark's headline
number and the report's number come from the same arithmetic and must
agree exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .registry import CounterRegistry

__all__ = ["PerfReport", "render_histogram"]


def render_histogram(name: str, series, bins: int = 8,
                     width: int = 40) -> List[str]:
    """ASCII latency histogram rows for one sample series."""
    counts, edges = series.histogram(bins)
    peak = max(counts) if counts else 0
    lines = [
        f"{name}: n={series.count} mean={series.mean:.1f} "
        f"p50={series.percentile(0.5):.0f} p99={series.percentile(0.99):.0f} "
        f"max={series.maximum:.0f}"
    ]
    for index, count in enumerate(counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(
            f"  [{edges[index]:>8.1f}, {edges[index + 1]:>8.1f})"
            f" {count:>7} {bar}"
        )
    return lines


class PerfReport:
    """A snapshot of where simulated time and bytes went.

    ``registry`` holds every counter (dot paths under the DPU's
    name); ``elapsed_cycles`` is the simulated window the rates are
    normalized over; ``utilization`` maps unit names to busy
    fractions; ``series`` maps latency-series names to the recorder's
    :class:`~repro.sim.trace.SampleSeries`.
    """

    def __init__(
        self,
        registry: CounterRegistry,
        elapsed_cycles: float,
        clock_hz: float,
        name: str = "dpu0",
        utilization: Optional[Dict[str, float]] = None,
        series: Optional[Dict[str, object]] = None,
    ) -> None:
        self.registry = registry
        self.elapsed_cycles = float(elapsed_cycles)
        self.clock_hz = clock_hz
        self.name = name
        self.utilization = dict(utilization or {})
        self.series = dict(series or {})

    # -- derived quantities --------------------------------------------

    @property
    def seconds(self) -> float:
        return self.elapsed_cycles / self.clock_hz

    def gbps(self, counter_path: str) -> float:
        """Counter bytes normalized to GB/s over the elapsed window.

        Same arithmetic as ``LaunchResult.gbps`` so a report generated
        right after a launch reproduces the benchmark's number.
        """
        if self.elapsed_cycles <= 0:
            return 0.0
        nbytes = self.registry.get(counter_path)
        return nbytes / self.seconds / 1e9

    def rate_per_second(self, counter_path: str) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.registry.get(counter_path) / self.seconds

    @property
    def dms_read_gbps(self) -> float:
        """Figure 11's headline quantity, from registry counters."""
        return self.gbps(f"{self.name}.dms.bytes_read")

    @property
    def dms_write_gbps(self) -> float:
        return self.gbps(f"{self.name}.dms.bytes_written")

    @property
    def dms_partition_gbps(self) -> float:
        """Figure 13's quantity: partitioned bytes over the window."""
        return self.gbps(f"{self.name}.dms.bytes_partitioned")

    # -- rendering -----------------------------------------------------

    def _utilization_rows(self) -> List[Tuple[str, float]]:
        return sorted(self.utilization.items())

    def render(self, top_counters: int = 24, histogram_bins: int = 6) -> str:
        """Utilization table + throughput lines + latency histograms."""
        lines = [
            f"=== perf report: {self.name} @ t={self.elapsed_cycles:.0f} "
            f"cycles ({self.seconds * 1e6:.1f} us) ===",
            "",
            "-- unit utilization --",
        ]
        for unit, busy in self._utilization_rows():
            bar = "#" * round(30 * min(busy, 1.0))
            lines.append(f"{unit:<12} {busy * 100:6.2f}%  {bar}")
        lines.append("")
        lines.append("-- throughput (from registry counters) --")
        for label, value in (
            ("DMS read", self.dms_read_gbps),
            ("DMS write", self.dms_write_gbps),
            ("DMS partition", self.dms_partition_gbps),
        ):
            lines.append(f"{label:<14} {value:6.2f} GB/s")
        lines.append("")
        lines.append("-- counters --")
        shown = 0
        for path, value in self.registry.rows():
            if shown >= top_counters:
                lines.append(f"  ... ({len(self.registry) - shown} more)")
                break
            text = f"{value:.0f}" if value == int(value) else f"{value:.3f}"
            lines.append(f"  {path:<44} {text}")
            shown += 1
        latency = {
            name: series for name, series in sorted(self.series.items())
            if len(series)
        }
        if latency:
            lines.append("")
            lines.append("-- latency histograms (cycles) --")
            for name, series in latency.items():
                lines.extend(render_histogram(name, series,
                                              bins=histogram_bins))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
