"""Q10.22 software fixed-point arithmetic.

The dpCore has no floating-point unit; the paper converts all machine
learning datasets to a 10.22 fixed-point format (10 integer bits
including sign, 22 fraction bits, in a 32-bit word) and reports
"negligible loss in accuracy" because analytics data is normalized
into a small range. This module provides both scalar helpers and
vectorized numpy kernels so the applications (SVM, disparity) compute
exactly what the dpCore would.

Multiplication of two Q10.22 values produces a Q20.44 intermediate
held in 64 bits; the product is renormalized by an arithmetic right
shift of 22 with round-to-nearest, then saturated back into 32 bits —
the standard DSP convention, and the one that makes SMO convergence
deterministic across platforms.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "FRACTION_BITS",
    "INTEGER_BITS",
    "FXP_ONE",
    "FXP_MAX",
    "FXP_MIN",
    "to_fixed",
    "from_fixed",
    "fxp_add",
    "fxp_sub",
    "fxp_mul",
    "fxp_div",
    "fxp_abs",
    "fxp_neg",
    "saturate",
]

FRACTION_BITS = 22
INTEGER_BITS = 10  # includes the sign bit
FXP_ONE = 1 << FRACTION_BITS
FXP_MAX = (1 << 31) - 1
FXP_MIN = -(1 << 31)

_ArrayOrScalar = Union[int, float, np.ndarray]


def saturate(value: _ArrayOrScalar) -> _ArrayOrScalar:
    """Clamp into the signed 32-bit range."""
    if isinstance(value, np.ndarray):
        return np.clip(value, FXP_MIN, FXP_MAX).astype(np.int64)
    return max(FXP_MIN, min(FXP_MAX, int(value)))


def to_fixed(value: _ArrayOrScalar) -> _ArrayOrScalar:
    """Convert float(s) to Q10.22 with round-to-nearest and saturation."""
    if isinstance(value, np.ndarray):
        scaled = np.rint(value.astype(np.float64) * FXP_ONE).astype(np.int64)
        return saturate(scaled)
    return saturate(int(round(float(value) * FXP_ONE)))


def from_fixed(value: _ArrayOrScalar) -> _ArrayOrScalar:
    """Convert Q10.22 value(s) back to float."""
    if isinstance(value, np.ndarray):
        return value.astype(np.float64) / FXP_ONE
    return float(value) / FXP_ONE


def fxp_add(a: _ArrayOrScalar, b: _ArrayOrScalar) -> _ArrayOrScalar:
    """Saturating Q10.22 addition."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return saturate(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64))
    return saturate(int(a) + int(b))


def fxp_sub(a: _ArrayOrScalar, b: _ArrayOrScalar) -> _ArrayOrScalar:
    """Saturating Q10.22 subtraction."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return saturate(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64))
    return saturate(int(a) - int(b))


def _round_shift(product: _ArrayOrScalar, shift: int) -> _ArrayOrScalar:
    """Arithmetic right shift with round-to-nearest (ties away from zero
    for negatives handled by the +half trick on the magnitude)."""
    half = 1 << (shift - 1)
    if isinstance(product, np.ndarray):
        return (product + half) >> shift
    return (int(product) + half) >> shift


def fxp_mul(a: _ArrayOrScalar, b: _ArrayOrScalar) -> _ArrayOrScalar:
    """Saturating Q10.22 multiply: (a*b + half) >> 22, clamped."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        return saturate(_round_shift(product, FRACTION_BITS))
    product = int(a) * int(b)
    return saturate(_round_shift(product, FRACTION_BITS))


def fxp_div(a: _ArrayOrScalar, b: _ArrayOrScalar) -> _ArrayOrScalar:
    """Saturating Q10.22 divide: (a << 22) / b, truncating toward zero.

    Division by zero saturates to FXP_MAX/FXP_MIN depending on the sign
    of the numerator (and FXP_MAX for 0/0), mirroring a saturating
    hardware divider rather than raising.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        num = np.asarray(a, dtype=np.int64) << FRACTION_BITS
        den = np.asarray(b, dtype=np.int64)
        zero = den == 0
        safe_den = np.where(zero, 1, den)
        with np.errstate(divide="ignore"):
            quotient = (num / safe_den).astype(np.int64)  # trunc toward zero
        quotient = np.where(zero & (num >= 0), FXP_MAX, quotient)
        quotient = np.where(zero & (num < 0), FXP_MIN, quotient)
        return saturate(quotient)
    if int(b) == 0:
        return FXP_MAX if int(a) >= 0 else FXP_MIN
    numerator = int(a) << FRACTION_BITS
    quotient = abs(numerator) // abs(int(b))
    if (numerator < 0) != (int(b) < 0):
        quotient = -quotient
    return saturate(quotient)


def fxp_abs(a: _ArrayOrScalar) -> _ArrayOrScalar:
    """Saturating absolute value (abs(FXP_MIN) clamps to FXP_MAX)."""
    if isinstance(a, np.ndarray):
        return saturate(np.abs(np.asarray(a, dtype=np.int64)))
    return saturate(abs(int(a)))


def fxp_neg(a: _ArrayOrScalar) -> _ArrayOrScalar:
    """Saturating negation."""
    if isinstance(a, np.ndarray):
        return saturate(-np.asarray(a, dtype=np.int64))
    return saturate(-int(a))
