"""Two-level heap allocator for DPU DRAM.

The paper (§4) manages "most of DRAM space" with a two-level heap
allocator "similar to Hoard or TCMalloc": per-core local heaps serve
small allocations out of size-classed superblocks with no
synchronization, and a global heap hands out superblocks and serves
large allocations. We reproduce that structure:

* small requests (<= half a superblock) round up to a size class and
  are served from a per-core :class:`LocalHeap`;
* each size class is backed by 64 KB *superblocks* obtained from the
  :class:`GlobalHeap`; an emptied superblock is returned to it;
* large requests are served directly by the global heap with a
  first-fit free list.

Addresses are plain integers into the DPU's DDR space; the allocator
is deterministic, which keeps every simulation bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["HeapAllocator", "OutOfMemoryError", "SUPERBLOCK_SIZE", "SIZE_CLASSES"]

SUPERBLOCK_SIZE = 64 * 1024
# Size classes: 16 B .. 32 KB, quadrupling then doubling for coverage
# comparable to TCMalloc's small-object classes.
SIZE_CLASSES = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 32768,
]
_ALIGNMENT = 16


class OutOfMemoryError(Exception):
    """The modelled DRAM heap is exhausted.

    Carries structured context so an exhaustion is diagnosable without
    parsing the message: the allocation ``site``, the ``requested``
    byte count, the simulation ``sim_time`` of the failure, and a
    ``heap_stats`` snapshot (bytes in use, free-list shape, per-class
    superblock counts) taken at raise time.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        requested: int = 0,
        sim_time: Optional[float] = None,
        heap_stats: Optional[Dict] = None,
    ) -> None:
        self.site = site
        self.requested = requested
        self.sim_time = sim_time
        self.heap_stats = dict(heap_stats) if heap_stats else {}
        detail = []
        if site:
            detail.append(f"site={site}")
        if sim_time is not None:
            detail.append(f"t={sim_time:.0f}")
        if self.heap_stats:
            in_use = self.heap_stats.get("live_bytes")
            free = self.heap_stats.get("free_bytes")
            if in_use is not None and free is not None:
                detail.append(f"live={in_use} free={free}")
        if detail:
            message = f"{message} [{' '.join(detail)}]"
        super().__init__(message)


def _size_class_for(size: int) -> Optional[int]:
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    return None


@dataclass
class _Superblock:
    base: int
    slot_size: int
    free_slots: List[int] = field(default_factory=list)
    allocated: int = 0

    def __post_init__(self) -> None:
        count = SUPERBLOCK_SIZE // self.slot_size
        self.free_slots = [self.base + i * self.slot_size for i in range(count)][::-1]

    @property
    def empty(self) -> bool:
        return self.allocated == 0

    @property
    def full(self) -> bool:
        return not self.free_slots

    def take(self) -> int:
        address = self.free_slots.pop()
        self.allocated += 1
        return address

    def give_back(self, address: int) -> None:
        self.free_slots.append(address)
        self.allocated -= 1


class GlobalHeap:
    """Owner of the raw heap range: superblocks and large objects."""

    def __init__(self, base: int, capacity: int) -> None:
        if capacity < SUPERBLOCK_SIZE:
            raise ValueError(f"heap capacity {capacity} smaller than a superblock")
        self.base = base
        self.capacity = capacity
        # First-fit free list of (address, length), kept sorted/merged.
        self._free: List[Tuple[int, int]] = [(base, capacity)]
        self.superblocks_out = 0

    def carve(self, size: int) -> int:
        """First-fit allocation of a raw range (aligned)."""
        size = -(-size // _ALIGNMENT) * _ALIGNMENT
        for index, (address, length) in enumerate(self._free):
            if length >= size:
                remainder = length - size
                if remainder:
                    self._free[index] = (address + size, remainder)
                else:
                    del self._free[index]
                return address
        raise OutOfMemoryError(
            f"cannot carve {size} bytes from heap of {self.capacity}",
            site="global_heap.carve",
            requested=size,
            heap_stats=self.stats(),
        )

    def reclaim(self, address: int, size: int) -> None:
        """Return a raw range, coalescing with neighbours."""
        size = -(-size // _ALIGNMENT) * _ALIGNMENT
        self._free.append((address, size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for start, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((start, length))
        self._free = merged

    def take_superblock(self, slot_size: int) -> _Superblock:
        base = self.carve(SUPERBLOCK_SIZE)
        self.superblocks_out += 1
        return _Superblock(base, slot_size)

    def return_superblock(self, superblock: _Superblock) -> None:
        self.superblocks_out -= 1
        self.reclaim(superblock.base, SUPERBLOCK_SIZE)

    def free_bytes(self) -> int:
        return sum(length for _addr, length in self._free)

    def stats(self) -> Dict:
        """Diagnosability snapshot of the raw heap range."""
        free = self.free_bytes()
        return {
            "capacity": self.capacity,
            "free_bytes": free,
            "live_bytes": self.capacity - free,
            "largest_free": max(
                (length for _addr, length in self._free), default=0
            ),
            "fragments": len(self._free),
            "superblocks_out": self.superblocks_out,
        }


class LocalHeap:
    """Per-core cache of partially-filled superblocks by size class."""

    def __init__(self, core_id: int, global_heap: GlobalHeap) -> None:
        self.core_id = core_id
        self.global_heap = global_heap
        self._by_class: Dict[int, List[_Superblock]] = {}

    def malloc(self, size_class: int) -> Tuple[int, _Superblock]:
        blocks = self._by_class.setdefault(size_class, [])
        for block in blocks:
            if not block.full:
                return block.take(), block
        block = self.global_heap.take_superblock(size_class)
        blocks.append(block)
        return block.take(), block

    def free(self, address: int, block: _Superblock) -> None:
        block.give_back(address)
        if block.empty:
            blocks = self._by_class.get(block.slot_size, [])
            # Keep one empty superblock cached per class (hysteresis,
            # as in Hoard); return the rest to the global heap.
            empties = [b for b in blocks if b.empty]
            if len(empties) > 1:
                # O(len(blocks)) removal is deliberate: hysteresis caps
                # empties at one, so this fires at most once per empty
                # transition, and list order must be preserved — malloc
                # scans in insertion order and a reordering would move
                # subsequent allocations to different addresses.
                blocks.remove(block)
                self.global_heap.return_superblock(block)

    def stats(self) -> Dict:
        """Per-size-class superblock counts and bytes in use."""
        per_class: Dict[int, Dict[str, int]] = {}
        bytes_in_use = 0
        for size_class, blocks in sorted(self._by_class.items()):
            allocated = sum(block.allocated for block in blocks)
            if not blocks:
                continue
            per_class[size_class] = {
                "superblocks": len(blocks),
                "allocated_slots": allocated,
            }
            bytes_in_use += allocated * size_class
        return {
            "core_id": self.core_id,
            "bytes_in_use": bytes_in_use,
            "size_classes": per_class,
        }


class HeapAllocator:
    """Public facade: ``malloc``/``free`` with per-core fast paths.

    ``malloc`` returns an integer DDR address. ``free`` needs only the
    address (allocation metadata is tracked internally, like a real
    allocator's page map).
    """

    def __init__(
        self, base: int, capacity: int, num_cores: int, engine=None
    ) -> None:
        self.global_heap = GlobalHeap(base, capacity)
        self.local_heaps = [LocalHeap(cid, self.global_heap) for cid in range(num_cores)]
        # address -> ("small", size_class, superblock) | ("large", size)
        self._live: Dict[int, tuple] = {}
        self.peak_live_bytes = 0
        self._live_bytes = 0
        self.engine = engine  # optional: timestamps exhaustion errors
        # Watermark callbacks: (threshold_bytes, fired, callback).
        # Each fires once when live bytes cross its threshold upward
        # and re-arms when usage drops back below.
        self._watermarks: List[List] = []

    def add_watermark(
        self, fraction: float, callback: Callable[["HeapAllocator"], None]
    ) -> None:
        """Call ``callback(heap)`` when live bytes first exceed
        ``fraction`` of capacity (re-armed after usage falls back)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"watermark fraction must be in (0, 1]: {fraction}")
        threshold = int(fraction * self.global_heap.capacity)
        self._watermarks.append([threshold, False, callback])

    def _check_watermarks(self) -> None:
        for mark in self._watermarks:
            threshold, fired, callback = mark
            if not fired and self._live_bytes >= threshold:
                mark[1] = True
                callback(self)
            elif fired and self._live_bytes < threshold:
                mark[1] = False

    def _now(self) -> Optional[float]:
        return float(self.engine.now) if self.engine is not None else None

    def malloc(self, size: int, core_id: int = 0) -> int:
        if size <= 0:
            raise ValueError(f"allocation size must be positive: {size}")
        size_class = _size_class_for(size)
        try:
            if size_class is not None:
                local = self.local_heaps[core_id % len(self.local_heaps)]
                address, block = local.malloc(size_class)
                self._live[address] = ("small", size_class, block, core_id)
                self._live_bytes += size_class
            else:
                address = self.global_heap.carve(size)
                self._live[address] = ("large", size)
                self._live_bytes += size
        except OutOfMemoryError as error:
            # Re-raise with the full two-level picture: the carve-level
            # error only sees the global free list.
            raise OutOfMemoryError(
                f"malloc of {size} bytes failed on core {core_id}",
                site=f"heap.malloc[core {core_id}]",
                requested=size,
                sim_time=self._now(),
                heap_stats=self.stats(),
            ) from error
        self.peak_live_bytes = max(self.peak_live_bytes, self._live_bytes)
        if self._watermarks:
            self._check_watermarks()
        return address

    def free(self, address: int) -> None:
        record = self._live.pop(address, None)
        if record is None:
            raise ValueError(f"free of unallocated address {address:#x}")
        if record[0] == "small":
            _kind, size_class, block, core_id = record
            self.local_heaps[core_id % len(self.local_heaps)].free(address, block)
            self._live_bytes -= size_class
        else:
            _kind, size = record
            self.global_heap.reclaim(address, size)
            self._live_bytes -= size
        if self._watermarks:
            # Dropping below a threshold re-arms its watermark.
            self._check_watermarks()

    def live_bytes(self) -> int:
        return self._live_bytes

    def stats(self) -> Dict:
        """Full two-level snapshot: global free-list shape plus
        per-core, per-size-class superblock occupancy. Attached to
        every exhaustion error and used by watermark callbacks."""
        per_core = [
            heap.stats() for heap in self.local_heaps if heap.stats()["size_classes"]
        ]
        return {
            "live_bytes": self._live_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "free_bytes": self.global_heap.free_bytes(),
            "global": self.global_heap.stats(),
            "local_heaps": per_core,
        }

    def allocation_size(self, address: int) -> int:
        record = self._live.get(address)
        if record is None:
            raise ValueError(f"{address:#x} is not a live allocation")
        return record[1]
