"""Physical address map of the DPU SoC.

The dpCore has no MMU: all software addresses physical memory
directly, and every core shares one address space (paper §2.2). That
address space contains two kinds of storage we model:

* DDR DRAM, mapped from address 0,
* each dpCore's 32 KB DMEM scratchpad, mapped high so ATE remote
  operations can target "any address in DDR or DMEM space" (§2.3).

The map is pure arithmetic — no simulation state — so it is shared
freely between the DMS, ATE, caches and allocator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AddressMap", "AddressRangeError", "DMEM_SIZE"]

DMEM_SIZE = 32 * 1024  # 32 KB scratchpad per dpCore (paper §2.1)


class AddressRangeError(Exception):
    """An access fell outside DDR and all DMEM windows."""


@dataclass(frozen=True)
class AddressMap:
    """Layout of the shared physical address space.

    ``ddr_capacity`` is the modelled DRAM size. DMEM windows are
    aligned 64 KB apart starting at ``dmem_base`` (default 1 << 40,
    comfortably above any DDR address on a 64-bit machine).
    """

    ddr_capacity: int
    num_cores: int
    dmem_base: int = 1 << 40
    dmem_stride: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.ddr_capacity <= 0:
            raise ValueError(f"ddr_capacity must be positive: {self.ddr_capacity}")
        if self.num_cores <= 0:
            raise ValueError(f"num_cores must be positive: {self.num_cores}")
        if self.dmem_base < self.ddr_capacity:
            raise ValueError("DMEM window overlaps DDR space")

    # -- classification ----------------------------------------------

    def is_ddr(self, address: int) -> bool:
        return 0 <= address < self.ddr_capacity

    def is_dmem(self, address: int) -> bool:
        if address < self.dmem_base:
            return False
        core, offset = divmod(address - self.dmem_base, self.dmem_stride)
        return core < self.num_cores and offset < DMEM_SIZE

    def dmem_window(self, core_id: int) -> range:
        """Address range of ``core_id``'s DMEM window."""
        self._check_core(core_id)
        base = self.dmem_base + core_id * self.dmem_stride
        return range(base, base + DMEM_SIZE)

    def dmem_address(self, core_id: int, offset: int) -> int:
        """Physical address of byte ``offset`` in a core's DMEM."""
        self._check_core(core_id)
        if not 0 <= offset < DMEM_SIZE:
            raise AddressRangeError(
                f"DMEM offset {offset:#x} outside 0..{DMEM_SIZE:#x}"
            )
        return self.dmem_base + core_id * self.dmem_stride + offset

    def split_dmem(self, address: int) -> tuple:
        """Decompose a DMEM address into ``(core_id, offset)``."""
        if not self.is_dmem(address):
            raise AddressRangeError(f"{address:#x} is not a DMEM address")
        core, offset = divmod(address - self.dmem_base, self.dmem_stride)
        return int(core), int(offset)

    def check_ddr_range(self, address: int, length: int) -> None:
        """Validate a DDR access of ``length`` bytes at ``address``."""
        if length < 0:
            raise AddressRangeError(f"negative access length {length}")
        if address < 0 or address + length > self.ddr_capacity:
            raise AddressRangeError(
                f"DDR access [{address:#x}, {address + length:#x}) outside "
                f"capacity {self.ddr_capacity:#x}"
            )

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise AddressRangeError(
                f"core id {core_id} outside 0..{self.num_cores - 1}"
            )
