"""Software-coherent cache hierarchy.

Besides the DMS/DMEM path, each dpCore has a small general-purpose
hierarchy: 16 KB L1-D and 8 KB L1-I private caches, and a 256 KB L2
shared by the 8 dpCores of a macro (paper §2.3). Hardware does *not*
keep the caches coherent; the ISA exposes flush and invalidate
instructions and software manages sharing.

The model is a tag-only set-associative cache with LRU replacement.
Data always lives in :class:`~repro.memory.ddr.DDRMemory`; the cache
answers "hit or miss, and how many cycles" and tracks dirty lines so
flushes cost write-back bandwidth. Stale-data *semantics* (reading a
line another core wrote without an invalidate) are checked separately
by :mod:`repro.runtime.coherence`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["CacheConfig", "Cache", "CacheStats", "MacroCacheHierarchy"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size: int
    line_size: int = 64
    associativity: int = 4
    hit_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size % (self.line_size * self.associativity) != 0:
            raise ValueError(
                f"size {self.size} not divisible by line*ways "
                f"({self.line_size}*{self.associativity})"
            )

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.associativity)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    invalidations: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative, write-back, LRU cache level (tags only)."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        # set index -> OrderedDict(tag -> dirty flag); LRU at front.
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_size
        return line % self.config.num_sets, line // self.config.num_sets

    def lookup(self, address: int) -> bool:
        """Probe without changing state (for the coherence checker)."""
        set_index, tag = self._locate(address)
        return tag in self._sets.get(set_index, ())

    def access(self, address: int, write: bool = False) -> Tuple[bool, int]:
        """Reference one byte address.

        Returns ``(hit, writebacks)`` where ``writebacks`` counts dirty
        lines evicted by the fill (each costs one line of DDR write
        bandwidth to the caller's timing model).
        """
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, OrderedDict())
        if tag in ways:
            self.stats.hits += 1
            ways.move_to_end(tag)
            if write:
                ways[tag] = True
            return True, 0
        self.stats.misses += 1
        writebacks = 0
        if len(ways) >= self.config.associativity:
            _victim, dirty = ways.popitem(last=False)
            if dirty:
                writebacks += 1
                self.stats.writebacks += 1
        ways[tag] = write
        return False, writebacks

    def flush_range(self, address: int, length: int) -> int:
        """Write back and drop dirty lines in a range; returns the
        number of dirty lines written back."""
        written = 0
        for set_index, tag in self._lines_in_range(address, length):
            ways = self._sets.get(set_index)
            if ways is not None and tag in ways:
                if ways[tag]:
                    written += 1
                    self.stats.writebacks += 1
                del ways[tag]
        self.stats.flushes += 1
        return written

    def invalidate_range(self, address: int, length: int) -> int:
        """Drop lines in a range without write-back; returns count."""
        dropped = 0
        for set_index, tag in self._lines_in_range(address, length):
            ways = self._sets.get(set_index)
            if ways is not None and tag in ways:
                del ways[tag]
                dropped += 1
        self.stats.invalidations += 1
        return dropped

    def flush_all(self) -> int:
        """Write back everything dirty and empty the cache."""
        written = 0
        for ways in self._sets.values():
            written += sum(1 for dirty in ways.values() if dirty)
            ways.clear()
        self.stats.writebacks += written
        self.stats.flushes += 1
        return written

    def _lines_in_range(self, address: int, length: int):
        if length <= 0:
            return
        first = address // self.config.line_size
        last = (address + length - 1) // self.config.line_size
        for line in range(first, last + 1):
            yield line % self.config.num_sets, line // self.config.num_sets


class MacroCacheHierarchy:
    """L1s private to each dpCore plus the macro-shared L2.

    ``access`` walks L1 -> L2 and reports the total cycle cost,
    including DDR fill latency on an L2 miss. The DDR latency is a
    constant handed in by the SoC config; bandwidth-accurate DDR
    traffic for the *cached* path is negligible in the paper's
    workloads (data goes through the DMS), so a latency constant is
    the right fidelity.
    """

    def __init__(
        self,
        core_ids,
        l1d_config: CacheConfig,
        l2_config: CacheConfig,
        ddr_latency_cycles: int = 110,
        l1i_config: CacheConfig = None,
    ) -> None:
        self.l1d = {cid: Cache(l1d_config, f"l1d[{cid}]") for cid in core_ids}
        self.l1i = {
            cid: Cache(l1i_config or CacheConfig(size=8192), f"l1i[{cid}]")
            for cid in core_ids
        }
        self.l2 = Cache(l2_config, "l2")
        self.l2_config = l2_config
        self.ddr_latency_cycles = ddr_latency_cycles

    def access(self, core_id: int, address: int, write: bool = False) -> int:
        """Data access from ``core_id``; returns cycles consumed."""
        l1 = self.l1d[core_id]
        hit, _wb = l1.access(address, write)
        if hit:
            return l1.config.hit_cycles
        l2_hit, _wb2 = self.l2.access(address, write)
        if l2_hit:
            return l1.config.hit_cycles + self.l2.config.hit_cycles
        return (
            l1.config.hit_cycles
            + self.l2.config.hit_cycles
            + self.ddr_latency_cycles
        )

    def flush(self, core_id: int, address: int, length: int) -> int:
        """Software cache flush of a range; returns cycles (one per
        line probed plus write-back cost per dirty line)."""
        lines = -(-max(length, 1) // self.l1d[core_id].config.line_size)
        written = self.l1d[core_id].flush_range(address, length)
        written += self.l2.flush_range(address, length)
        return lines + written * 4

    def invalidate(self, core_id: int, address: int, length: int) -> int:
        """Software cache invalidate of a range; returns cycles."""
        lines = -(-max(length, 1) // self.l1d[core_id].config.line_size)
        self.l1d[core_id].invalidate_range(address, length)
        self.l2.invalidate_range(address, length)
        return lines
