"""SECDED ECC on the DDR interface.

The DDR controller protects each 64-bit word with an 8-bit
single-error-correct / double-error-detect Hamming code, the standard
x72 DIMM arrangement. The model is behavioural, not bit-level:

* a **single** flipped bit in a codeword is corrected in-line; the
  controller charges a small scrub latency (read-correct-writeback)
  and the data stays bit-exact, so application results are unchanged;
* **two or more** flips in one codeword exceed SECDED's correction
  ability; the controller signals a machine check, surfaced to the
  simulated software as :class:`MachineCheckError` — the runtime may
  catch it and retry or fail the job.

Flips are drawn from the seeded :mod:`repro.faults` injector at the
``ddr.bitflip`` site with a per-bit rate, so a transfer of *n* bytes
sees ``Binomial(8n, rate)`` flips, deterministically per seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..faults import FaultInjector

__all__ = ["ECC_WORD_BITS", "MachineCheckError", "SecdedEcc", "classify_flips"]

ECC_WORD_BITS = 64  # data bits per SECDED codeword (x72: 64d + 8c)


class MachineCheckError(Exception):
    """An uncorrectable (multi-bit) ECC error on a DDR transfer."""

    def __init__(self, address: int, nbytes: int, words: Tuple[int, ...]) -> None:
        self.address = address
        self.nbytes = nbytes
        self.words = words
        super().__init__(
            f"uncorrectable ECC error: multi-bit flips in codeword(s) "
            f"{list(words)} of the {nbytes} B transfer at {address:#x}"
        )


def classify_flips(bit_positions: np.ndarray) -> Tuple[int, Tuple[int, ...]]:
    """Split flipped bit positions into SECDED outcomes.

    Returns ``(corrected, uncorrectable_words)``: the count of words
    with exactly one flip (corrected in-line) and the word indexes
    holding two or more flips (machine check).
    """
    if len(bit_positions) == 0:
        return 0, ()
    words, counts = np.unique(
        np.asarray(bit_positions) // ECC_WORD_BITS, return_counts=True
    )
    corrected = int(np.count_nonzero(counts == 1))
    uncorrectable = tuple(int(word) for word in words[counts >= 2])
    return corrected, uncorrectable


class SecdedEcc:
    """Per-channel ECC state: counters plus the injection hook."""

    SITE = "ddr.bitflip"

    def __init__(
        self,
        faults: Optional[FaultInjector] = None,
        scrub_cycles: float = 6.0,
    ) -> None:
        self.faults = faults if faults is not None else FaultInjector()
        self.scrub_cycles = scrub_cycles
        self.corrected = 0
        self.uncorrectable = 0

    @property
    def active(self) -> bool:
        return self.faults.active(self.SITE)

    def check(self, address: int, nbytes: int) -> float:
        """Draw flips for one transfer; return the scrub surcharge.

        Raises :class:`MachineCheckError` when any codeword takes two
        or more flips. Single flips are corrected silently (the data
        path is untouched) at ``scrub_cycles`` each.
        """
        bits = nbytes * 8
        flips = self.faults.count(
            self.SITE, bits, detail=f"transfer {address:#x}+{nbytes}B"
        )
        if flips == 0:
            return 0.0
        positions = self.faults.choose(self.SITE, bits, flips)
        corrected, uncorrectable = classify_flips(positions)
        self.corrected += corrected
        if uncorrectable:
            self.uncorrectable += len(uncorrectable)
            raise MachineCheckError(address, nbytes, uncorrectable)
        return corrected * self.scrub_cycles
