"""Memory substrate: DDR, DMEM scratchpads, caches, allocator."""

from .address import DMEM_SIZE, AddressMap, AddressRangeError
from .allocator import (
    SIZE_CLASSES,
    SUPERBLOCK_SIZE,
    HeapAllocator,
    OutOfMemoryError,
)
from .cache import Cache, CacheConfig, CacheStats, MacroCacheHierarchy
from .ddr import AXI_MAX_TRANSFER, DDRChannel, DDRMemory
from .dmem import Scratchpad
from .ecc import ECC_WORD_BITS, MachineCheckError, SecdedEcc, classify_flips

__all__ = [
    "AXI_MAX_TRANSFER",
    "ECC_WORD_BITS",
    "MachineCheckError",
    "SecdedEcc",
    "classify_flips",
    "AddressMap",
    "AddressRangeError",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "DDRChannel",
    "DDRMemory",
    "DMEM_SIZE",
    "HeapAllocator",
    "MacroCacheHierarchy",
    "OutOfMemoryError",
    "SIZE_CLASSES",
    "SUPERBLOCK_SIZE",
    "Scratchpad",
]
