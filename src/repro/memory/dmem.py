"""Per-dpCore DMEM scratchpad.

Each dpCore owns 32 KB of software-managed SRAM in lieu of a
hardware-managed data cache (paper §2.1). Access is single-cycle from
the core; the DMS writes into it directly, making transferred data
"immediately available for consumption" (§2.1). Like
:class:`repro.memory.ddr.DDRMemory`, the scratchpad holds real bytes.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from .address import DMEM_SIZE

__all__ = ["Scratchpad"]


class Scratchpad:
    """32 KB of byte-addressable SRAM local to one dpCore."""

    def __init__(self, core_id: int, size: int = DMEM_SIZE) -> None:
        if size <= 0:
            raise ValueError(f"scratchpad size must be positive: {size}")
        self.core_id = core_id
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self.peak_offset = 0  # high-water mark of bytes touched by writes
        self.bytes_written = 0
        self._watermarks: List[List] = []  # [threshold, fired, callback]

    def add_watermark(
        self, fraction: float, callback: Callable[["Scratchpad"], None]
    ) -> None:
        """Call ``callback(pad)`` when the write high-water mark first
        crosses ``fraction`` of capacity. Watermarks on a scratchpad
        are one-shot per crossing: the mark stays fired because DMEM
        contents are not reclaimed until :meth:`fill` resets them."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"watermark fraction must be in (0, 1]: {fraction}")
        self._watermarks.append([int(fraction * self.size), False, callback])

    def stats(self) -> dict:
        """Occupancy snapshot for overload diagnosis."""
        return {
            "core_id": self.core_id,
            "size": self.size,
            "peak_offset": self.peak_offset,
            "bytes_written": self.bytes_written,
        }

    def _check(self, offset: int, length: int) -> None:
        if length < 0:
            raise ValueError(f"negative access length {length}")
        if offset < 0 or offset + length > self.size:
            raise IndexError(
                f"DMEM access [{offset:#x}, {offset + length:#x}) outside "
                f"0..{self.size:#x} on core {self.core_id}"
            )

    def read(self, offset: int, length: int) -> np.ndarray:
        """Copy ``length`` bytes starting at ``offset``."""
        self._check(offset, length)
        return self.data[offset : offset + length].copy()

    def write(self, offset: int, payload: np.ndarray) -> None:
        """Store ``payload`` bytes at ``offset``."""
        raw = np.ascontiguousarray(payload).view(np.uint8).ravel()
        self._check(offset, len(raw))
        self.data[offset : offset + len(raw)] = raw
        end = offset + len(raw)
        self.bytes_written += len(raw)
        if end > self.peak_offset:
            self.peak_offset = end
            for mark in self._watermarks:
                if not mark[1] and end >= mark[0]:
                    mark[1] = True
                    mark[2](self)

    def view(self, offset: int, length: int, dtype=np.uint8) -> np.ndarray:
        """Zero-copy typed view (mutations are visible to hardware)."""
        self._check(offset, length)
        return self.data[offset : offset + length].view(dtype)

    def read_u64(self, offset: int) -> int:
        return int(self.view(offset, 8, np.uint64)[0])

    def write_u64(self, offset: int, value: int) -> None:
        self.view(offset, 8, np.uint64)[0] = np.uint64(value & (2**64 - 1))

    def read_i64(self, offset: int) -> int:
        return int(self.view(offset, 8, np.int64)[0])

    def write_i64(self, offset: int, value: int) -> None:
        self.view(offset, 8, np.int64)[0] = np.int64(value)

    def fill(self, value: int = 0) -> None:
        """Blank the scratchpad (used between kernel launches)."""
        self.data[:] = np.uint8(value & 0xFF)
        self.peak_offset = 0
        for mark in self._watermarks:
            mark[1] = False
