"""Functional DDR memory plus its timing channel.

Two orthogonal pieces:

* :class:`DDRMemory` — a flat byte array holding *real data*. DMS
  transfers copy actual bytes in and out, so application results are
  bit-exact, not merely timed.
* :class:`DDRChannel` — the timing model: a FIFO bandwidth server at
  the channel's peak rate. DDR3-1600 on the 40 nm DPU gives 12.8 GB/s
  peak = 16 bytes per 800 MHz core cycle; the effective ~9-10 GB/s the
  paper measures emerges from AXI transaction granularity (<= 256 B
  per request, §3.1) and per-transaction overheads, not from a fudged
  peak number.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..faults import FaultInjector
from ..obs import NULL_TRACER
from ..sim import BandwidthServer, Engine, SimEvent, Timeout
from .address import AddressMap
from .ecc import SecdedEcc

__all__ = ["DDRMemory", "DDRChannel", "AXI_MAX_TRANSFER"]

AXI_MAX_TRANSFER = 256  # max bytes per AXI transaction (paper §3.1)


class DDRMemory:
    """Byte-addressable DRAM contents backed by a numpy array."""

    def __init__(self, address_map: AddressMap) -> None:
        self.address_map = address_map
        self.data = np.zeros(address_map.ddr_capacity, dtype=np.uint8)

    @property
    def capacity(self) -> int:
        return self.address_map.ddr_capacity

    def read(self, address: int, length: int) -> np.ndarray:
        """Return a *copy* of ``length`` bytes at ``address``."""
        self.address_map.check_ddr_range(address, length)
        return self.data[address : address + length].copy()

    def write(self, address: int, payload: np.ndarray) -> None:
        """Store ``payload`` bytes at ``address``."""
        raw = np.ascontiguousarray(payload).view(np.uint8).ravel()
        self.address_map.check_ddr_range(address, len(raw))
        self.data[address : address + len(raw)] = raw

    def view(self, address: int, length: int, dtype=np.uint8) -> np.ndarray:
        """A zero-copy typed view of DDR contents (for fast kernels).

        Mutating the view mutates memory; use for hot loops where the
        copy in :meth:`read` would dominate Python runtime.
        """
        self.address_map.check_ddr_range(address, length)
        return self.data[address : address + length].view(dtype)

    def read_u64(self, address: int) -> int:
        return int(self.view(address, 8, np.uint64)[0])

    def write_u64(self, address: int, value: int) -> None:
        self.view(address, 8, np.uint64)[0] = np.uint64(value & (2**64 - 1))

    def read_i64(self, address: int) -> int:
        return int(self.view(address, 8, np.int64)[0])

    def write_i64(self, address: int, value: int) -> None:
        self.view(address, 8, np.int64)[0] = np.int64(value)


class DDRChannel:
    """Timing model of one DDR channel behind the memory controller.

    ``request(nbytes)`` models one logical transfer: it is split into
    AXI transactions of at most :data:`AXI_MAX_TRANSFER` bytes, each
    paying a small fixed controller overhead, then queued FIFO on the
    channel. A ``row_miss_cycles`` surcharge is applied once per
    request to model opening a new DRAM page when a transfer starts in
    a different region (the paper's "small latency overhead in
    fetching non-contiguous DRAM pages", §3.4).
    """

    def __init__(
        self,
        engine: Engine,
        peak_bytes_per_cycle: float = 16.0,
        transaction_overhead_cycles: float = 2.0,
        row_miss_cycles: float = 22.0,
        row_size: int = 4096,
        num_banks: int = 8,
        write_row_miss_factor: float = 0.25,
        faults: Optional[FaultInjector] = None,
        ecc_scrub_cycles: float = 6.0,
    ) -> None:
        self.engine = engine
        self.ecc = SecdedEcc(faults, scrub_cycles=ecc_scrub_cycles)
        self.server = BandwidthServer(
            engine, peak_bytes_per_cycle, overhead_cycles=0.0, name="ddr"
        )
        self.transaction_overhead_cycles = transaction_overhead_cycles
        self.row_miss_cycles = row_miss_cycles
        self.row_size = row_size
        self.num_banks = num_banks
        self.write_row_miss_factor = write_row_miss_factor
        # Open-row register per bank: DDR3 keeps one row open per bank,
        # so a handful of interleaved sequential streams (the partition
        # engine's column loads) each keep their own row open.
        self._open_rows = [-1] * num_banks
        self.row_misses = 0
        # The injector's plan is frozen, so whether ECC checks ever run
        # is a constant for the channel's lifetime.
        self._ecc_active = self.ecc.active
        # Observability hook; DPU.enable_tracing swaps in a live tracer.
        self.trace = NULL_TRACER

    @property
    def peak_bytes_per_cycle(self) -> float:
        return self.server.bytes_per_cycle

    def request(
        self,
        address: int,
        nbytes: int,
        extra_overhead_cycles: float = 0.0,
        is_write: bool = False,
    ) -> SimEvent:
        """Schedule a transfer; returns an event for its completion.

        ``extra_overhead_cycles`` lets callers charge controller-side
        work (e.g. DMAC descriptor decode) that occupies the channel.
        """
        if nbytes <= 0:
            return Timeout(self.engine, 0)
        overhead = float(extra_overhead_cycles)
        if self._ecc_active:
            # SECDED: correctable flips charge a scrub; a double flip
            # in one codeword raises MachineCheckError to the caller.
            overhead += self.ecc.check(address, nbytes)
        # Writes are posted: the controller's write buffer coalesces
        # and reorders them per bank, hiding most of the activate
        # latency scattered write streams would otherwise pay.
        miss_cost = self.row_miss_cycles * (
            self.write_row_miss_factor if is_write else 1.0
        )
        row_size = self.row_size
        first_row = address // row_size
        last_row = (address + nbytes - 1) // row_size
        open_rows = self._open_rows
        num_banks = self.num_banks
        if first_row == last_row:
            # Fast path: the transfer stays inside one DRAM row (every
            # AXI-sized and most tile-sized requests).
            row = first_row
            bank = (row ^ (row >> 3) ^ (row >> 6)) % num_banks
            if open_rows[bank] != row:
                overhead += miss_cost
                self.row_misses += 1
                open_rows[bank] = row
        else:
            for row in range(first_row, last_row + 1):
                # XOR-fold the row bits into the bank index, as real
                # controllers do, so power-of-two strided streams don't
                # all land in one bank.
                bank = (row ^ (row >> 3) ^ (row >> 6)) % num_banks
                if open_rows[bank] != row:
                    overhead += miss_cost
                    self.row_misses += 1
                    open_rows[bank] = row
        transactions = -(-nbytes // AXI_MAX_TRANSFER)
        overhead += transactions * self.transaction_overhead_cycles
        total = nbytes + int(overhead * self.server.bytes_per_cycle)
        event = self.server.transfer(total)
        if self.trace.enabled:
            # Queue backlog (cycles until the channel frees) and
            # cumulative bytes, sampled at each request: the DDR
            # bandwidth counter track in the Perfetto view.
            self.trace.counter(
                "ddr.channel", unit="ddr",
                backlog_cycles=max(0.0, self.server._free_at
                                   - self.engine.now),
                bytes_served=float(self.server.bytes_served),
            )
        return event

    def utilization(self) -> float:
        return self.server.utilization()

    @property
    def bytes_served(self) -> int:
        return self.server.bytes_served
