"""Similarity search on text (paper §5.2).

Cosine similarity of query vectors against a tf-idf document index,
formulated as sparse matrix-matrix multiplication (SpMM): accumulate
the inverted-index rows of each query's terms into a score
accumulator, then take the top-k documents per query.

Following the CPU/GPU algorithms the paper builds on, the index is
**range-partitioned into document tiles** so each tile's score
accumulator fits in DMEM. Tiles are variable-sized (they end where
the data says they end), which is the crux of the DMS story:

* **naive** — fetch a fixed-size buffer per posting segment because
  "we cannot know when a tile ends without actually reading the
  tile"; almost all fetched bytes are discarded. The paper measured
  0.26 GB/s of effective bandwidth.
* **dynamic tiles** — fetch buffers containing *multiple* tiles and
  track segment ends in software, consuming every byte in DMEM:
  5.24 GB/s effective, a 3.9x perf/watt win over the tuned x86 SpMM
  (which itself runs at 34.5 GB/s effective across 36 cores).

Scores are computed in Q10.22 fixed point on the DPU path (the
dpCore has no FPU); top-1 results are validated against the known
query-source documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baseline.xeon import XeonModel
from ..core.dpu import DPU
from ..fixedpoint import FXP_ONE, to_fixed
from ..runtime.task import static_partition
from ..workloads.corpus import CsrMatrix, SimilarityWorkload
from .sql.engine import DpuOpResult, XeonOpResult
from .streaming import stream_columns

__all__ = ["TiledIndex", "build_tiled_index", "dpu_simsearch", "xeon_simsearch"]

# Posting accumulate: load (doc, weight), fixed multiply on the
# iterative multiplier (Q10.22 weights are small: ~6 cycles), DMEM
# accumulator read-modify-write — ~12 cycles, matching the agg loop
# measurements in repro.apps.sql.costs.
_ACCUM_CYCLES_PER_POSTING = 12.0
# Post-accumulation top-k scan of the tile's accumulator slots.
_SCAN_CYCLES_PER_SLOT = 2.0
_NAIVE_FETCH_BYTES = 8192  # fixed DMS buffer of the naive variant
_POSTING_BYTES = 8  # u32 doc id + u32 fixed-point weight


@dataclass
class TiledIndex:
    """Inverted index segmented by document tile.

    ``postings`` is the flat (doc u32, weight-fixed u32) stream
    ordered by (tile, term); ``segment`` maps (tile, term) to its
    [start, end) posting range; ``tile_starts`` gives each tile's
    first posting (dynamic kernels parse tile ends from these).
    """

    num_docs: int
    num_terms: int
    tile_docs: int
    postings: np.ndarray  # shape (nnz, 2) uint32
    segments: Dict[Tuple[int, int], Tuple[int, int]]
    tile_starts: List[int]

    @property
    def num_tiles(self) -> int:
        return len(self.tile_starts) - 1

    def nbytes(self) -> int:
        return self.postings.nbytes


def build_tiled_index(index: CsrMatrix, tile_docs: int = 256) -> TiledIndex:
    """Invert a docs-x-terms CSR matrix into tiled postings."""
    if tile_docs <= 0:
        raise ValueError(f"tile_docs must be positive: {tile_docs}")
    num_docs = index.num_rows
    num_tiles = -(-num_docs // tile_docs)
    # Expand CSR to COO once (docs are CSR rows).
    docs = np.repeat(
        np.arange(num_docs, dtype=np.int64), np.diff(index.indptr)
    )
    terms = index.indices.astype(np.int64)
    weights = to_fixed(index.values.astype(np.float64))
    tiles = docs // tile_docs
    # Sort by (tile, term, doc): the storage order of the posting file.
    order = np.lexsort((docs, terms, tiles))
    docs, terms, weights, tiles = (
        docs[order], terms[order], weights[order], tiles[order],
    )
    postings = np.stack(
        [docs.astype(np.uint32), weights.astype(np.int64).astype(np.uint32)],
        axis=1,
    )
    segments: Dict[Tuple[int, int], Tuple[int, int]] = {}
    boundaries = np.nonzero(
        (np.diff(tiles) != 0) | (np.diff(terms) != 0)
    )[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(tiles)]])
    for start, end in zip(starts.tolist(), ends.tolist()):
        segments[(int(tiles[start]), int(terms[start]))] = (start, end)
    tile_starts = np.searchsorted(tiles, np.arange(num_tiles + 1)).tolist()
    return TiledIndex(
        num_docs=num_docs,
        num_terms=index.num_cols,
        tile_docs=tile_docs,
        postings=postings,
        segments=segments,
        tile_starts=tile_starts,
    )


def _topk_merge(
    best: List[Tuple[float, int]], scores: np.ndarray, base_doc: int, k: int
) -> List[Tuple[float, int]]:
    """Merge a tile's accumulator into a query's running top-k."""
    hot = np.nonzero(scores)[0]
    if len(hot):
        candidates = best + [
            (float(scores[slot]) / FXP_ONE, base_doc + int(slot))
            for slot in hot
        ]
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return candidates[:k]
    return best


def dpu_simsearch(
    dpu: DPU,
    workload: SimilarityWorkload,
    tiled: TiledIndex,
    postings_addr: int,
    variant: str = "dynamic",
    k: int = 5,
) -> DpuOpResult:
    """Run similarity search on the DPU; returns top-k per query.

    ``postings_addr`` is the posting stream's DDR address (store
    ``tiled.postings`` with :meth:`DPU.store_array` first).
    """
    if variant not in ("dynamic", "naive"):
        raise ValueError(f"unknown variant {variant!r}")
    queries = workload.queries
    cores = list(dpu.config.core_ids)
    num_queries = queries.num_rows
    fixed_qvals = to_fixed(queries.values.astype(np.float64))

    def query_terms(query: int) -> Tuple[np.ndarray, np.ndarray]:
        start, stop = queries.indptr[query], queries.indptr[query + 1]
        return queries.indices[start:stop], fixed_qvals[start:stop]

    useful_bytes_total = 0
    streamed_bytes_total = 0

    def kernel(ctx):
        nonlocal useful_bytes_total, streamed_bytes_total
        # Document tiles are range-partitioned across cores (each
        # core's DMEM holds its tiles' score accumulators); every
        # query visits every core. Per-query top-k fragments from all
        # cores merge on the host side of the launch.
        t_lo, t_hi = static_partition(
            tiled.num_tiles, len(cores), cores.index(ctx.core_id)
        )
        results: Dict[int, List[Tuple[float, int]]] = {
            query: [] for query in range(num_queries)
        }
        if t_lo >= t_hi:
            return results
        all_queries = list(range(num_queries))

        # A tile may straddle DMEM buffers: its per-query accumulators
        # persist until the tile's last posting has arrived, then the
        # top-k scan runs once (this is the "track state corresponding
        # to the end of each tile" software of §5.2).
        open_tiles: Dict[int, Dict[int, np.ndarray]] = {}

        def do_tile(tile: int, raw: np.ndarray, raw_base: int,
                    raw_end: int) -> float:
            """Accumulate one tile's postings present in the buffer;
            finalize when the tile is complete."""
            base_doc = tile * tiled.tile_docs
            cycles = 0.0
            accumulators = open_tiles.setdefault(tile, {})
            for query in all_queries:
                terms, q_weights = query_terms(query)
                for term, q_weight in zip(terms.tolist(), q_weights.tolist()):
                    segment = tiled.segments.get((tile, int(term)))
                    if segment is None:
                        continue
                    s_lo = max(segment[0], raw_base)
                    s_hi = min(segment[1], raw_end)
                    if s_lo >= s_hi:
                        continue
                    block = raw[s_lo - raw_base : s_hi - raw_base]
                    docs = block[:, 0].astype(np.int64) - base_doc
                    w = block[:, 1].astype(np.int64)
                    contrib = (q_weight * w) >> 22
                    accumulator = accumulators.get(query)
                    if accumulator is None:
                        accumulator = np.zeros(tiled.tile_docs, dtype=np.int64)
                        accumulators[query] = accumulator
                    np.add.at(accumulator, docs, contrib)
                    cycles += len(block) * _ACCUM_CYCLES_PER_POSTING
            if tiled.tile_starts[tile + 1] <= raw_end:
                for query, accumulator in accumulators.items():
                    results[query] = _topk_merge(
                        results[query], accumulator, base_doc, k
                    )
                    cycles += tiled.tile_docs * _SCAN_CYCLES_PER_SLOT
                open_tiles.pop(tile, None)
            return cycles

        p_lo = tiled.tile_starts[t_lo]
        p_hi = tiled.tile_starts[t_hi]
        if variant == "dynamic":
            # Stream this core's posting range once; segment/tile ends
            # are tracked in software so every fetched byte is used.
            def process(buffer_index, lo, hi, arrays):
                raw = arrays[0].view(np.uint32).reshape(-1, 2)
                raw_base, raw_end = p_lo + lo, p_lo + hi
                first_tile = int(
                    np.searchsorted(
                        tiled.tile_starts, raw_base, side="right"
                    ) - 1
                )
                cycles = 0.0
                for tile in range(first_tile, t_hi):
                    if tiled.tile_starts[tile] >= raw_end:
                        break
                    cycles += do_tile(tile, raw, raw_base, raw_end)
                return cycles

            yield from stream_columns(
                ctx,
                [(postings_addr + p_lo * 8, 8)],
                p_hi - p_lo,
                1024,  # 8 KB posting buffers, double buffered
                process,
            )
            useful_bytes_total += (p_hi - p_lo) * _POSTING_BYTES
            streamed_bytes_total += (p_hi - p_lo) * _POSTING_BYTES
        else:
            # Naive: one fixed-size DMS fetch per (query, term, tile)
            # posting segment; the remainder of each buffer is waste.
            from ..dms.descriptor import Descriptor, DescriptorType

            for tile in range(t_lo, t_hi):
                base_doc = tile * tiled.tile_docs
                for query in all_queries:
                    terms, q_weights = query_terms(query)
                    accumulator = np.zeros(tiled.tile_docs, dtype=np.int64)
                    any_hit = False
                    for term, q_weight in zip(
                        terms.tolist(), q_weights.tolist()
                    ):
                        segment = tiled.segments.get((tile, int(term)))
                        if segment is None:
                            continue
                        any_hit = True
                        s_lo, s_hi = segment
                        fetch_rows = min(
                            _NAIVE_FETCH_BYTES // _POSTING_BYTES,
                            len(tiled.postings) - s_lo,
                        )
                        ctx.push(
                            Descriptor(
                                dtype=DescriptorType.DDR_TO_DMEM,
                                rows=fetch_rows,
                                col_width=8,
                                ddr_addr=postings_addr + s_lo * 8,
                                dmem_addr=0,
                                notify_event=0,
                            )
                        )
                        yield from ctx.wfe(0)
                        ctx.clear_event(0)
                        raw = ctx.dmem.view(0, fetch_rows * 8, np.uint32)
                        block = raw.reshape(-1, 2)[: s_hi - s_lo]
                        docs = block[:, 0].astype(np.int64) - base_doc
                        w = block[:, 1].astype(np.int64)
                        contrib = (q_weight * w) >> 22
                        np.add.at(accumulator, docs, contrib)
                        yield from ctx.compute(
                            len(block) * _ACCUM_CYCLES_PER_POSTING
                        )
                        useful_bytes_total += (s_hi - s_lo) * _POSTING_BYTES
                        streamed_bytes_total += fetch_rows * _POSTING_BYTES
                    if any_hit:
                        results[query] = _topk_merge(
                            results[query], accumulator, base_doc, k
                        )
                        yield from ctx.compute(
                            tiled.tile_docs * _SCAN_CYCLES_PER_SLOT
                        )
        return results

    launch = dpu.launch(kernel, cores=cores)
    merged: Dict[int, List[Tuple[float, int]]] = {
        query: [] for query in range(num_queries)
    }
    for value in launch.values:
        for query, fragment in (value or {}).items():
            if fragment:
                combined = merged[query] + fragment
                combined.sort(key=lambda item: (-item[0], item[1]))
                merged[query] = combined[:k]
    useful = useful_bytes_total
    effective_gbps = useful / (launch.cycles / dpu.config.clock_hz) / 1e9
    return DpuOpResult(
        value=merged,
        cycles=launch.cycles,
        config=dpu.config,
        bytes_streamed=useful,
        detail={
            "variant": variant,
            "effective_gbps": effective_gbps,
            "streamed_bytes": streamed_bytes_total,
            "utilization": useful / max(streamed_bytes_total, 1),
        },
    )


def xeon_simsearch(
    model: XeonModel,
    workload: SimilarityWorkload,
    tiled: TiledIndex,
    k: int = 5,
) -> XeonOpResult:
    """Tuned x86 SpMM: the paper measured 34.5 GB/s effective.

    Functionally identical float-precision scoring (the x86 version
    keeps floats), timed at the measured effective bandwidth over the
    same per-worker posting traffic.
    """
    queries = workload.queries
    index = workload.index
    num_docs = index.num_rows
    results: Dict[int, List[Tuple[float, int]]] = {}
    inverted = _invert(index)
    for query in range(queries.num_rows):
        q_cols, q_vals = queries.row(query)
        scores = np.zeros(num_docs, dtype=np.float64)
        for term, q_weight in zip(q_cols.tolist(), q_vals.tolist()):
            docs, weights = inverted.get(int(term), (None, None))
            if docs is None:
                continue
            scores[docs] += q_weight * weights
        order = np.argsort(-scores)[:k]
        results[query] = [
            (float(scores[doc]), int(doc)) for doc in order if scores[doc] > 0
        ]
    # Same doc-partitioned accounting as the DPU kernel: the index is
    # streamed once per query batch, at the measured 34.5 GB/s
    # effective bandwidth across 36 cores.
    consumed_bytes = tiled.nbytes()
    seconds = consumed_bytes / (model.config.effective_bandwidth_gbps * 1e9)
    return XeonOpResult(
        value=results,
        seconds=seconds,
        bytes_streamed=consumed_bytes,
        detail={
            "effective_gbps": model.config.effective_bandwidth_gbps,
        },
    )


def _invert(index: CsrMatrix) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """term -> (doc ids, weights) inversion of a docs-x-terms CSR."""
    docs = np.repeat(
        np.arange(index.num_rows, dtype=np.int64), np.diff(index.indptr)
    )
    terms = index.indices.astype(np.int64)
    order = np.argsort(terms, kind="stable")
    docs, terms = docs[order], terms[order]
    weights = index.values[order]
    inverted: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    boundaries = np.concatenate(
        [[0], np.nonzero(np.diff(terms))[0] + 1, [len(terms)]]
    )
    for lo, hi in zip(boundaries[:-1].tolist(), boundaries[1:].tolist()):
        inverted[int(terms[lo])] = (docs[lo:hi], weights[lo:hi])
    return inverted
