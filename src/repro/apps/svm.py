"""Support vector machine training (paper §5.1).

A parallel SMO in the style of Cao et al., as the paper describes:
every dpCore owns a slice of the training samples and its slice of
the error cache; each iteration the cores compute their local maximal
violating pair, ship it to a designated master core over the ATE, the
master selects the global pair and computes the update, and the delta
is broadcast back so every core updates its error cache (two kernel
rows' worth of dot products per sample — the bandwidth-heavy part the
DMS feeds).

Arithmetic is Q10.22 fixed point end to end ("all datasets were
converted to 10.22 software fixed point"); the same trainer also runs
in float mode as the reference, which is how the paper's observation
that "the DPU converges in 35% fewer iterations, with no loss in
classification accuracy" is reproduced and tested — fixed-point error
rounding meets the KKT tolerance earlier.

The x86 baseline models LIBSVM with OpenMP (the paper's comparison,
with empirically tuned parameters): effective aggregate throughput of
a few GFLOP/s on kernel evaluations plus per-iteration serial
overhead, calibrated so published LIBSVM behaviour on ~100 K-sample
dense data is matched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..baseline.xeon import XeonModel
from ..core.dpu import DPU
from ..fixedpoint import FXP_ONE, from_fixed, to_fixed
from ..runtime.task import static_partition
from ..workloads.higgs import HiggsLike
from .sql.engine import DpuOpResult, XeonOpResult

__all__ = [
    "SmoTrainer",
    "SvmModel",
    "build_exp_lut",
    "dpu_svm_train",
    "fxp_exp_neg",
    "xeon_svm_train",
]


# Fixed-point exp(-x) lookup table: the dpCore has no FPU, so the RBF
# kernel's exponential is a DMEM-resident LUT indexed by the Q10.22
# argument (1024 entries over [0, 16); anything larger underflows to
# 0). 16 KB of float math replaced by one load — the standard trick.
_EXP_LUT_ENTRIES = 1024
_EXP_LUT_MAX = 16.0


def build_exp_lut(entries: int = _EXP_LUT_ENTRIES,
                  max_arg: float = _EXP_LUT_MAX) -> np.ndarray:
    """Q10.22 table of exp(-x) for x in [0, max_arg)."""
    xs = np.arange(entries) * (max_arg / entries)
    return to_fixed(np.exp(-xs))


_EXP_LUT = build_exp_lut()


def fxp_exp_neg(args_fixed: np.ndarray) -> np.ndarray:
    """exp(-x) for Q10.22 x >= 0 via the LUT (vectorized)."""
    scale = _EXP_LUT_ENTRIES / _EXP_LUT_MAX
    index = (args_fixed.astype(np.float64) / FXP_ONE * scale).astype(np.int64)
    index = np.clip(index, 0, _EXP_LUT_ENTRIES - 1)
    out = _EXP_LUT[index]
    out[args_fixed >= to_fixed(_EXP_LUT_MAX)] = 0
    return out

# dpCore cost of one fused multiply-accumulate step of a fixed-point
# dot product: two loads (dual-issued with ALU ops) + the iterative
# multiply (~6 cycles for Q10.22 operands) + shift/accumulate.
_DOT_CYCLES_PER_FEATURE = 8.0
_SELECT_CYCLES_PER_SAMPLE = 4.0  # compare/track min and max of f
_UPDATE_CYCLES = 400.0  # master's pair update (two dots + clipping)
# LIBSVM w/ OpenMP on the Xeon: effective kernel-evaluation rate and
# per-iteration serial overhead (working-set selection, shrinking).
_LIBSVM_EFFECTIVE_FLOPS = 18e9
_LIBSVM_ITER_OVERHEAD_S = 4e-6


@dataclass
class SvmModel:
    """A trained classifier (linear weights, or support vectors for
    the RBF kernel)."""

    weights: np.ndarray
    bias: float
    iterations: int
    converged: bool
    kernel: str = "linear"
    gamma: float = 0.5
    support_vectors: Optional[np.ndarray] = None
    support_coefficients: Optional[np.ndarray] = None  # alpha_i * y_i

    def decision(self, features: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return features @ self.weights + self.bias
        diffs = (
            features[:, None, :] - self.support_vectors[None, :, :]
        )
        kernels = np.exp(-self.gamma * np.sum(diffs * diffs, axis=2))
        return kernels @ self.support_coefficients + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.where(self.decision(features) >= 0, 1.0, -1.0)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(features) == labels))


class SmoTrainer:
    """Keerthi-style SMO with the maximal-violating-pair rule.

    ``arithmetic="fixed"`` keeps the error cache, alphas and kernel
    products in Q10.22 (stored as int64 numpy arrays); ``"float"`` is
    the double-precision reference. The update formulas are identical,
    so iteration-count differences are purely the arithmetic's doing.
    """

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        C: float = 1.0,
        tolerance: float = 1e-3,
        arithmetic: str = "fixed",
        kernel: str = "linear",
        gamma: float = 0.5,
    ) -> None:
        if arithmetic not in ("fixed", "float"):
            raise ValueError(f"unknown arithmetic {arithmetic!r}")
        if kernel not in ("linear", "rbf"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.arithmetic = arithmetic
        self.kernel = kernel
        self.gamma = float(gamma)
        self.num_samples, self.num_features = features.shape
        self.labels = labels.astype(np.float64)
        self.C_float = float(C)
        self.tol_float = float(tolerance)
        if arithmetic == "fixed":
            self.features = to_fixed(features)  # int64 Q10.22
            self.alphas = np.zeros(self.num_samples, dtype=np.int64)
            self.f = to_fixed(-self.labels)  # f_i = -y_i initially
            self.C = to_fixed(C)
            self.tol = to_fixed(tolerance)
        else:
            self.features = features.astype(np.float64)
            self.alphas = np.zeros(self.num_samples, dtype=np.float64)
            self.f = -self.labels.copy()
            self.C = float(C)
            self.tol = float(tolerance)
        self.bias = 0.0
        self.iterations = 0
        self.converged = False
        # local_extrema is called once per core per iteration but the
        # up/low masks depend only on (labels, alphas, C); cache them
        # until the next alpha update so the distributed trainer does
        # not rebuild them 32 times per iteration.
        self._masks_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- kernel ---------------------------------------------------------

    def kernel_row(self, index: int) -> np.ndarray:
        """K(x_index, x_k) for all k, computed on the fly (§5.1: "The
        DPU version generates kernels on the fly" — no kernel cache).
        """
        row = self.features[index]
        if self.kernel == "linear":
            if self.arithmetic == "fixed":
                products = self.features.astype(np.int64) @ row.astype(np.int64)
                return (products + (1 << 21)) >> 22  # Q20.44 -> Q10.22
            return self.features @ row
        # RBF: exp(-gamma * ||x_i - x_k||^2).
        if self.arithmetic == "fixed":
            diffs = self.features.astype(np.int64) - row.astype(np.int64)
            dist2 = (diffs * diffs).sum(axis=1) >> 22  # Q10.22
            gamma_fixed = to_fixed(self.gamma)
            args = (gamma_fixed * dist2) >> 22
            return fxp_exp_neg(np.maximum(args, 0))
        diffs = self.features - row
        return np.exp(-self.gamma * np.sum(diffs * diffs, axis=1))

    # -- pair selection ----------------------------------------------------

    def _masks(self) -> Tuple[np.ndarray, np.ndarray]:
        cached = self._masks_cache
        if cached is not None:
            return cached
        y = self.labels
        a = self.alphas
        upper = self.C
        i_up = ((y > 0) & (a < upper)) | ((y < 0) & (a > 0))
        i_low = ((y > 0) & (a > 0)) | ((y < 0) & (a < upper))
        self._masks_cache = (i_up, i_low)
        return i_up, i_low

    def local_extrema(self, lo: int, hi: int):
        """(f_min, idx_min, f_max, idx_max) over [lo, hi) — what one
        dpCore computes over its slice each iteration."""
        i_up, i_low = self._masks()
        window = slice(lo, hi)
        f = self.f[window]
        up_mask = i_up[window]
        low_mask = i_low[window]
        best_up = (None, None)
        best_low = (None, None)
        if up_mask.any():
            candidates = np.nonzero(up_mask)[0]
            pick = candidates[np.argmin(f[candidates])]
            best_up = (self.f[lo + pick], lo + int(pick))
        if low_mask.any():
            candidates = np.nonzero(low_mask)[0]
            pick = candidates[np.argmax(f[candidates])]
            best_low = (self.f[lo + pick], lo + int(pick))
        return best_up, best_low

    def select_pair(self) -> Optional[Tuple[int, int]]:
        """Global maximal violating pair, or None when KKT-converged."""
        best_up, best_low = self.local_extrema(0, self.num_samples)
        return self._resolve_pair(best_up, best_low)

    def _resolve_pair(self, best_up, best_low) -> Optional[Tuple[int, int]]:
        if best_up[1] is None or best_low[1] is None:
            return None
        two_tol = 2 * self.tol
        if best_low[0] - best_up[0] <= two_tol:
            return None
        return best_up[1], best_low[1]

    # -- update -------------------------------------------------------------

    def apply_update(self, i: int, j: int):
        """Optimize the (i, j) pair; returns (delta, K_i row, K_j row)
        where delta is the (alpha*y) transfer from j's side to i's."""
        k_i = self.kernel_row(i)
        k_j = self.kernel_row(j)
        if self.arithmetic == "fixed":
            eta = int(k_i[i]) + int(k_j[j]) - 2 * int(k_i[j])
            eta = max(eta, 1)  # Q10.22 epsilon floor
            gap = int(self.f[j]) - int(self.f[i])
            delta = (gap << 22) // eta  # Q10.22 divide
        else:
            eta = float(k_i[i]) + float(k_j[j]) - 2.0 * float(k_i[j])
            eta = max(eta, 1e-12)
            delta = (float(self.f[j]) - float(self.f[i])) / eta
        # Clip so both alphas stay in [0, C].
        y_i, y_j = self.labels[i], self.labels[j]
        lo, hi = self._delta_bounds(i, y_i, j, y_j)
        if self.arithmetic == "fixed":
            delta = max(int(lo), min(int(hi), int(delta)))
            self.alphas[i] += int(y_i) * delta
            self.alphas[j] -= int(y_j) * delta
        else:
            delta = max(lo, min(hi, delta))
            self.alphas[i] += y_i * delta
            self.alphas[j] -= y_j * delta
        self._masks_cache = None
        return delta, k_i, k_j

    def _delta_bounds(self, i, y_i, j, y_j):
        zero = 0 if self.arithmetic == "fixed" else 0.0
        a_i, a_j, C = self.alphas[i], self.alphas[j], self.C
        if y_i > 0:
            lo_i, hi_i = -a_i, C - a_i
        else:
            lo_i, hi_i = a_i - C, a_i
        if y_j > 0:
            lo_j, hi_j = a_j - C, a_j
        else:
            lo_j, hi_j = -a_j, C - a_j
        return max(lo_i, lo_j, zero), min(hi_i, hi_j)

    def update_errors(self, delta, k_i, k_j, lo: int, hi: int) -> None:
        """f_k += delta * (K_ik - K_jk) over one core's slice."""
        window = slice(lo, hi)
        if self.arithmetic == "fixed":
            change = (int(delta) * (k_i[window] - k_j[window])) >> 22
            self.f[window] = self.f[window] + change
        else:
            self.f[window] = self.f[window] + delta * (
                k_i[window] - k_j[window]
            )

    def finalize(self) -> SvmModel:
        """Extract the model: linear weights, or support vectors."""
        if self.arithmetic == "fixed":
            alphas = from_fixed(self.alphas)
            features = from_fixed(self.features)
        else:
            alphas = self.alphas
            features = self.features
        weights = (alphas * self.labels) @ features
        # b from the KKT midpoint of the final up/low extrema.
        best_up, best_low = self.local_extrema(0, self.num_samples)
        f_up = from_fixed(best_up[0]) if (
            self.arithmetic == "fixed" and best_up[0] is not None
        ) else (best_up[0] or 0.0)
        f_low = from_fixed(best_low[0]) if (
            self.arithmetic == "fixed" and best_low[0] is not None
        ) else (best_low[0] or 0.0)
        bias = -(float(f_up) + float(f_low)) / 2.0
        support = np.asarray(alphas) > 1e-9
        return SvmModel(
            weights=weights,
            bias=bias,
            iterations=self.iterations,
            converged=self.converged,
            kernel=self.kernel,
            gamma=self.gamma,
            support_vectors=np.asarray(features)[support],
            support_coefficients=(
                np.asarray(alphas)[support] * self.labels[support]
            ),
        )

    # -- reference driver -------------------------------------------------------

    def train(self, max_iterations: int = 20000) -> SvmModel:
        """Run SMO to convergence (the single-machine reference)."""
        for _ in range(max_iterations):
            pair = self.select_pair()
            if pair is None:
                self.converged = True
                break
            i, j = pair
            delta, k_i, k_j = self.apply_update(i, j)
            if delta == 0:
                self.converged = True
                break
            self.update_errors(delta, k_i, k_j, 0, self.num_samples)
            self.iterations += 1
        return self.finalize()


# -- DPU execution ------------------------------------------------------------------


def dpu_svm_train(
    dpu: DPU,
    dataset: HiggsLike,
    C: float = 1.0,
    tolerance: float = 1e-3,
    max_iterations: int = 20000,
    kernel: str = "linear",
    gamma: float = 0.5,
) -> DpuOpResult:
    """Distributed fixed-point SMO across the dpCores.

    Sample slices and error caches are DMEM-resident (or DMS-streamed
    per iteration when a slice exceeds DMEM); pair reduction uses ATE
    remote stores into the master's DMEM; the master broadcasts the
    update over the mailbox.
    """
    trainer = SmoTrainer(
        dataset.features, dataset.labels, C, tolerance, arithmetic="fixed",
        kernel=kernel, gamma=gamma,
    )
    # RBF error updates add a subtract per feature and the exp-LUT
    # lookup per sample on top of the dot-product cost.
    dot_cycles = _DOT_CYCLES_PER_FEATURE + (2.0 if kernel == "rbf" else 0.0)
    n = trainer.num_samples
    num_features = trainer.num_features
    cores = list(dpu.config.core_ids)
    master = cores[0]
    sample_bytes = num_features * 4
    slice_rows = -(-n // len(cores))
    slice_resident = slice_rows * sample_bytes <= 20 * 1024

    # Master-side reduction slots: 4 u64 per core in master's DMEM.
    slot_base = 1024
    features_addr = dpu.store_array(trainer.features.astype(np.int32))

    def kernel(ctx):
        index = cores.index(ctx.core_id)
        lo, hi = static_partition(n, len(cores), index)
        is_master = ctx.core_id == master
        iterations = 0
        # Load the sample slice into DMEM once (resident case).
        if lo < hi and slice_resident:
            from ..dms.descriptor import Descriptor, DescriptorType

            ctx.push(
                Descriptor(
                    dtype=DescriptorType.DDR_TO_DMEM,
                    rows=min((hi - lo) * num_features, 65535),
                    col_width=4,
                    ddr_addr=features_addr + lo * sample_bytes,
                    dmem_addr=4096,
                    notify_event=0,
                )
            )
            yield from ctx.wfe(0)
            ctx.clear_event(0)
        while True:
            # 1. Local extrema over the slice.
            if lo < hi:
                best_up, best_low = trainer.local_extrema(lo, hi)
                yield from ctx.compute((hi - lo) * _SELECT_CYCLES_PER_SAMPLE)
            else:
                best_up, best_low = (None, None), (None, None)
            # 2. Reduce at the master: pack (f, idx) into ATE stores.
            if not is_master:
                payload = (
                    _pack(best_up), _pack(best_low)
                )
                base = slot_base + index * 16
                address = dpu.address_map.dmem_address(master, base)
                yield from ctx.remote_store(master, address, payload[0])
                yield from ctx.remote_store(master, address + 8, payload[1])
                yield from ctx.mbox_send(master, ("arrived",))
                _src, message = yield from ctx.mbox_receive()
            else:
                for _ in range(len(cores) - 1):
                    yield from ctx.mbox_receive()
                candidates_up = [best_up]
                candidates_low = [best_low]
                for other in range(1, len(cores)):
                    base = slot_base + other * 16
                    candidates_up.append(
                        _unpack(ctx.dmem.read_u64(base))
                    )
                    candidates_low.append(
                        _unpack(ctx.dmem.read_u64(base + 8))
                    )
                best_up = min(
                    (c for c in candidates_up if c[1] is not None),
                    key=lambda c: (c[0], c[1]),
                    default=(None, None),
                )
                best_low = max(
                    (c for c in candidates_low if c[1] is not None),
                    key=lambda c: (c[0], -c[1]),
                    default=(None, None),
                )
                pair = trainer._resolve_pair(best_up, best_low)
                if pair is None or iterations >= max_iterations:
                    trainer.converged = pair is None
                    message = ("stop", None)
                else:
                    i, j = pair
                    delta, k_i, k_j = trainer.apply_update(i, j)
                    yield from ctx.compute(_UPDATE_CYCLES)
                    if delta == 0:
                        trainer.converged = True
                        message = ("stop", None)
                    else:
                        trainer.iterations += 1
                        message = ("update", (delta, k_i, k_j))
                for core in cores:
                    if core != master:
                        yield from ctx.mbox_send(core, message)
            # 3. Apply the update locally.
            if message[0] == "stop":
                break
            delta, k_i, k_j = message[1]
            if lo < hi:
                trainer.update_errors(delta, k_i, k_j, lo, hi)
                # Each sample: dots with the two updated rows (the
                # rows arrive via DMS broadcast, 2 x 112 B).
                yield from ctx.compute(
                    (hi - lo) * 2 * num_features * dot_cycles
                )
            iterations += 1
        return iterations

    launch = dpu.launch(kernel, cores=cores)
    model = trainer.finalize()
    bytes_streamed = trainer.iterations * (
        2 * sample_bytes * len(cores)  # broadcast rows
        + (0 if slice_resident else n * sample_bytes)
    ) + n * sample_bytes
    return DpuOpResult(
        value=model,
        cycles=launch.cycles,
        config=dpu.config,
        bytes_streamed=bytes_streamed,
        detail={
            "iterations": model.iterations,
            "converged": model.converged,
            "resident": slice_resident,
        },
    )


def _pack(extremum) -> int:
    """(f, idx) -> one u64: f (Q10.22, offset-binary 32 bits) | idx."""
    value, index = extremum
    if index is None:
        return (1 << 63) | 0xFFFFFFFF  # sentinel: no candidate
    biased = (int(value) + (1 << 31)) & 0xFFFFFFFF
    return (biased << 32) | (index & 0xFFFFFFFF)


def _unpack(packed: int):
    if packed == ((1 << 63) | 0xFFFFFFFF):
        return (None, None)
    index = packed & 0xFFFFFFFF
    value = (packed >> 32) - (1 << 31)
    return (value, int(index))


def xeon_svm_train(
    model: XeonModel,
    dataset: HiggsLike,
    C: float = 1.0,
    tolerance: float = 1e-3,
    max_iterations: int = 20000,
    kernel: str = "linear",
    gamma: float = 0.5,
) -> XeonOpResult:
    """LIBSVM-with-OpenMP baseline: float SMO reference, timed at the
    calibrated effective kernel-evaluation rate."""
    trainer = SmoTrainer(
        dataset.features, dataset.labels, C, tolerance, arithmetic="float",
        kernel=kernel, gamma=gamma,
    )
    svm = trainer.train(max_iterations)
    n, d = dataset.features.shape
    flops_per_iteration = 2 * n * d * 2  # two kernel rows + error update
    seconds = svm.iterations * (
        flops_per_iteration / _LIBSVM_EFFECTIVE_FLOPS + _LIBSVM_ITER_OVERHEAD_S
    )
    return XeonOpResult(
        value=svm,
        seconds=seconds,
        bytes_streamed=svm.iterations * n * d * 8,
        detail={"iterations": svm.iterations, "converged": svm.converged},
    )
