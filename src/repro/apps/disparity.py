"""Stereo disparity maps (paper §5.6).

Block-matching disparity: for every candidate shift X in [0,
max_shift], compute the window-SAD between the left image and the
right image shifted by X, and keep the argmin shift per pixel. The
three access patterns of Figure 17 (row, column, pixelated) all
appear in the SAD + box-filter pipeline.

Two parallelizations, as the paper compares:

* **fine-grained** — the image is split into row tiles, one per
  dpCore; all cores compute every shift over their tile in lockstep
  with a system-wide :class:`~repro.runtime.parallel.AteBarrier`
  between vision kernels. Tiles (plus halo rows) are DMEM-resident,
  so each image byte crosses the memory bus once. This is the
  paper's winning variant (8.6x perf/watt over OpenMP x86).
* **coarse-grained** — each dpCore owns one shift and streams the
  whole image pair, then a merge pass reduces the per-shift SAD maps.
  Far less synchronization, but the image pair is fetched once *per
  shift* and the SAD maps round-trip through DRAM — it cannot use
  the available bandwidth efficiently, exactly as §5.6 observes.

Both produce bit-identical disparity maps, validated against the
generator's ground truth.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..baseline.xeon import XeonModel
from ..core.dpu import DPU
from ..dms.descriptor import Descriptor, DescriptorType
from ..runtime.parallel import AteBarrier
from ..runtime.task import static_partition
from ..workloads.stereo import StereoPair
from .sql.engine import DpuOpResult, XeonOpResult

__all__ = [
    "compute_disparity_reference",
    "dpu_disparity",
    "xeon_disparity",
    "disparity_accuracy",
]

_WINDOW = 5  # SAD window (odd)
# Per pixel per shift: abs-diff (2 loads + sub/abs, dual-issued) +
# two-pass running box sums + best-shift compare/update.
_SAD_CYCLES_PER_PIXEL = 8.0
_MERGE_CYCLES_PER_PIXEL = 2.0  # coarse variant's argmin pass
_XEON_OPS_PER_PIXEL_SHIFT = 1.5  # AVX2 uint8 SAD + update
_XEON_MEMORY_PASSES = 2.5  # images + spilled SAD intermediates


def _box_filter(values: np.ndarray, window: int) -> np.ndarray:
    """Window-sum via separable running sums (same as the kernel)."""
    half = window // 2
    padded = np.pad(values.astype(np.int64), half, mode="edge")
    csum_rows = np.cumsum(padded, axis=0)
    rows = csum_rows[window - 1 :, :] - np.vstack(
        [np.zeros((1, padded.shape[1]), dtype=np.int64), csum_rows[:-window, :]]
    )
    csum_cols = np.cumsum(rows, axis=1)
    out = csum_cols[:, window - 1 :] - np.hstack(
        [np.zeros((rows.shape[0], 1), dtype=np.int64), csum_cols[:, :-window]]
    )
    return out


def compute_disparity_reference(
    pair: StereoPair, window: int = _WINDOW
) -> np.ndarray:
    """Host reference disparity map (int16)."""
    rows, cols = pair.left.shape
    best_sad = np.full((rows, cols), np.iinfo(np.int64).max, dtype=np.int64)
    best_shift = np.zeros((rows, cols), dtype=np.int16)
    left = pair.left.astype(np.int64)
    right = pair.right.astype(np.int64)
    for shift in range(pair.max_shift + 1):
        shifted = np.empty_like(right)
        if shift:
            shifted[:, shift:] = right[:, : cols - shift]
            shifted[:, :shift] = right[:, :1]
        else:
            shifted[:] = right
        sad = _box_filter(np.abs(left - shifted), window)
        better = sad < best_sad
        best_sad[better] = sad[better]
        best_shift[better] = shift
    return best_shift


def disparity_accuracy(
    computed: np.ndarray, truth: np.ndarray, tolerance: int = 1,
    margin: int = 8,
) -> float:
    """Fraction of interior pixels within ``tolerance`` of truth."""
    interior_c = computed[margin:-margin, margin:-margin]
    interior_t = truth[margin:-margin, margin:-margin]
    return float(np.mean(np.abs(interior_c - interior_t) <= tolerance))


def dpu_disparity(
    dpu: DPU,
    pair: StereoPair,
    images_addr: Tuple[int, int],
    variant: str = "fine",
    window: int = _WINDOW,
) -> DpuOpResult:
    """Compute the disparity map on the DPU.

    ``images_addr`` are the DDR addresses of the left and right images
    (row-major uint8, stored with :meth:`DPU.store_array`).
    """
    if variant not in ("fine", "coarse"):
        raise ValueError(f"unknown variant {variant!r}")
    rows, cols = pair.left.shape
    shifts = pair.max_shift + 1
    left_addr, right_addr = images_addr
    out_addr = dpu.alloc(rows * cols * 2)
    cores = list(dpu.config.core_ids)
    half = window // 2

    if variant == "fine":
        barrier = AteBarrier(dpu, cores, counter_offset=31 * 1024,
                             flag_offset=31 * 1024 + 16)

        def kernel(ctx):
            index = cores.index(ctx.core_id)
            r_lo, r_hi = static_partition(rows, len(cores), index)
            halo_lo = max(0, r_lo - half)
            halo_hi = min(rows, r_hi + half)
            tile_rows = halo_hi - halo_lo
            tile_bytes = tile_rows * cols
            if r_lo < r_hi:
                # Load left and right row tiles (with halo) into DMEM.
                for which, addr in ((0, left_addr), (1, right_addr)):
                    ctx.push(
                        Descriptor(
                            dtype=DescriptorType.DDR_TO_DMEM,
                            rows=tile_bytes,
                            col_width=1,
                            ddr_addr=addr + halo_lo * cols,
                            dmem_addr=which * tile_bytes,
                            notify_event=0,
                        )
                    )
                    yield from ctx.wfe(0)
                    ctx.clear_event(0)
                left_tile = (
                    ctx.dmem.view(0, tile_bytes).reshape(tile_rows, cols)
                    .astype(np.int64)
                )
                right_tile = (
                    ctx.dmem.view(tile_bytes, tile_bytes)
                    .reshape(tile_rows, cols).astype(np.int64)
                )
                best_sad = np.full(
                    (r_hi - r_lo, cols), np.iinfo(np.int64).max, dtype=np.int64
                )
                best_shift = np.zeros((r_hi - r_lo, cols), dtype=np.int16)
            for shift in range(shifts):
                if r_lo < r_hi:
                    shifted = np.empty_like(right_tile)
                    if shift:
                        shifted[:, shift:] = right_tile[:, : cols - shift]
                        shifted[:, :shift] = right_tile[:, :1]
                    else:
                        shifted[:] = right_tile
                    sad_full = _box_filter(
                        np.abs(left_tile - shifted), window
                    )
                    sad = sad_full[r_lo - halo_lo : r_hi - halo_lo]
                    better = sad < best_sad
                    best_sad[better] = sad[better]
                    best_shift[better] = shift
                    yield from ctx.compute(
                        (r_hi - r_lo) * cols * _SAD_CYCLES_PER_PIXEL
                    )
                # Lockstep between vision kernels (the fine-grained
                # cost the ATE makes affordable).
                yield from barrier.wait(ctx)
            if r_lo < r_hi:
                # Write the tile's disparity rows back via the DMS.
                ctx.dmem.write(2 * tile_bytes, best_shift.astype("<i2"))
                ctx.push(
                    Descriptor(
                        dtype=DescriptorType.DMEM_TO_DDR,
                        rows=(r_hi - r_lo) * cols,
                        col_width=2,
                        ddr_addr=out_addr + r_lo * cols * 2,
                        dmem_addr=2 * tile_bytes,
                        notify_event=1,
                    ),
                    channel=1,
                )
                yield from ctx.wfe(1)
                ctx.clear_event(1)
            return None

        launch = dpu.launch(kernel, cores=cores)
        bytes_streamed = 2 * rows * cols + rows * cols * 2
    else:
        # Coarse: core s computes the full-image SAD map for shift s,
        # writes it to DDR; core 0 then merges argmin over all maps.
        sad_maps_addr = dpu.alloc(shifts * rows * cols * 4)
        active = cores[: min(shifts, len(cores))]

        def kernel(ctx):
            index = cores.index(ctx.core_id)
            if index < shifts:
                shift = index
                # Stream the full image pair through DMEM in row
                # blocks (whole image does not fit DMEM).
                block_rows = max(window, (10 * 1024 // cols) // 2)
                position = 0
                sad_rows = []
                while position < rows:
                    r_lo = max(0, position - half)
                    r_hi = min(rows, position + block_rows + half)
                    nbytes = (r_hi - r_lo) * cols
                    for which, addr in ((0, left_addr), (1, right_addr)):
                        ctx.push(
                            Descriptor(
                                dtype=DescriptorType.DDR_TO_DMEM,
                                rows=nbytes,
                                col_width=1,
                                ddr_addr=addr + r_lo * cols,
                                dmem_addr=which * 12 * 1024,
                                notify_event=0,
                            )
                        )
                        yield from ctx.wfe(0)
                        ctx.clear_event(0)
                    left_block = ctx.dmem.view(0, nbytes).reshape(
                        r_hi - r_lo, cols
                    ).astype(np.int64)
                    right_block = ctx.dmem.view(12 * 1024, nbytes).reshape(
                        r_hi - r_lo, cols
                    ).astype(np.int64)
                    shifted = np.empty_like(right_block)
                    if shift:
                        shifted[:, shift:] = right_block[:, : cols - shift]
                        shifted[:, :shift] = right_block[:, :1]
                    else:
                        shifted[:] = right_block
                    sad_full = _box_filter(
                        np.abs(left_block - shifted), window
                    )
                    lo_off = position - r_lo
                    hi_off = lo_off + min(block_rows, rows - position)
                    sad_rows.append(sad_full[lo_off:hi_off])
                    yield from ctx.compute(
                        (hi_off - lo_off) * cols * _SAD_CYCLES_PER_PIXEL
                    )
                    position += block_rows
                sad_map = np.vstack(sad_rows).astype(np.int32)
                # Write the SAD map to DDR (a full extra round trip —
                # the coarse variant's bandwidth tax).
                map_addr = sad_maps_addr + shift * rows * cols * 4
                raw = sad_map.astype("<i4").view(np.uint8).ravel()
                written = 0
                while written < len(raw):
                    piece = min(len(raw) - written, 8 * 1024)
                    ctx.dmem.write(24 * 1024, raw[written : written + piece])
                    ctx.push(
                        Descriptor(
                            dtype=DescriptorType.DMEM_TO_DDR,
                            rows=piece,
                            col_width=1,
                            ddr_addr=map_addr + written,
                            dmem_addr=24 * 1024,
                            notify_event=1,
                        ),
                        channel=1,
                    )
                    yield from ctx.wfe(1)
                    ctx.clear_event(1)
                    written += piece
                yield from ctx.mbox_send(cores[0], ("done", shift))
            if ctx.core_id == cores[0]:
                for _ in range(len(active)):
                    yield from ctx.mbox_receive()
                # Merge pass: argmin across the shift maps.
                maps = dpu.load_array(
                    sad_maps_addr, shifts * rows * cols, np.int32
                ).reshape(shifts, rows, cols)
                best = np.argmin(maps, axis=0).astype(np.int16)
                yield from ctx.compute(
                    shifts * rows * cols * _MERGE_CYCLES_PER_PIXEL
                    + shifts * rows * cols * 4 / 16.0  # map re-read stream
                )
                dpu.ddr.write(out_addr, best.astype("<i2"))
                return None
            return None

        launch = dpu.launch(kernel, cores=cores)
        bytes_streamed = (
            2 * rows * cols * shifts  # image pair per shift
            + 2 * shifts * rows * cols * 4  # SAD maps out and back
            + rows * cols * 2
        )

    disparity = dpu.load_array(out_addr, rows * cols, np.int16).reshape(
        rows, cols
    )
    return DpuOpResult(
        value=disparity,
        cycles=launch.cycles,
        config=dpu.config,
        bytes_streamed=bytes_streamed,
        detail={"variant": variant, "shifts": shifts},
    )


def xeon_disparity(
    model: XeonModel, pair: StereoPair, window: int = _WINDOW
) -> XeonOpResult:
    """OpenMP block-matching baseline (functional + roofline).

    SIMD SAD is cheap; the cost is the intermediate difference/SAD
    maps spilling past the caches — modelled as extra memory passes.
    """
    disparity = compute_disparity_reference(pair, window)
    rows, cols = pair.left.shape
    shifts = pair.max_shift + 1
    seconds = model.roofline_seconds(
        instructions=rows * cols * shifts * _XEON_OPS_PER_PIXEL_SHIFT,
        nbytes=2 * rows * cols * shifts,
        memory_passes=_XEON_MEMORY_PASSES,
    )
    return XeonOpResult(
        value=disparity,
        seconds=seconds,
        bytes_streamed=2 * rows * cols * shifts,
        detail={"shifts": shifts},
    )
