"""Double-buffered DMS tile streaming — the idiom every DPU app uses.

The pattern from the paper's Listing 1: two DMEM buffers per input
column, descriptors refilling one while the dpCore consumes the
other, with DMS events for flow control. ``stream_columns`` wraps it
for kernels that read N parallel columns tile by tile and charge a
compute cost per tile; ``writeback`` optionally streams results out
on the second DMS channel with its own event pair so refills never
overwrite unwritten output.

The ``process`` callback does *functional* work with numpy views of
DMEM and returns the dpCore cycle cost to charge for the tile, using
constants derived from the ISA interpreter (see
``repro.apps.sql.costs``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dpu import CoreContext
from ..dms.descriptor import Descriptor, DescriptorType

__all__ = ["stream_columns", "ColumnRef", "WIDTH_DTYPE", "ref_dtype", "ref_width"]

WIDTH_DTYPE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}

# A column in DDR: (base address, element dtype). A bare integer width
# is accepted and treated as the unsigned type of that many bytes.
ColumnRef = Tuple[int, object]


def ref_dtype(spec) -> np.dtype:
    """Normalize a ColumnRef's second element to a numpy dtype."""
    if isinstance(spec, (int, np.integer)):
        return np.dtype(WIDTH_DTYPE[int(spec)])
    return np.dtype(spec)


def ref_width(spec) -> int:
    return ref_dtype(spec).itemsize

_READ_EVENTS = (0, 1)
_WRITE_EVENTS = (2, 3)

# Software cost of a buffer swap: the wfe wake, event clear, pointer
# flip and descriptor push for the refill (~2 dozen instructions).
# Negligible for 8 KB tiles; visible at the small-tile end of the
# paper's Figure 15 sweep.
BUFFER_SWAP_CYCLES = 24.0


def stream_columns(
    ctx: CoreContext,
    columns: Sequence[ColumnRef],
    rows: int,
    tile_rows: int,
    process: Callable,
    dmem_base: int = 0,
    writeback: Optional[ColumnRef] = None,
):
    """Stream ``rows`` of ``columns`` through DMEM in double-buffered
    tiles, invoking ``process(tile_index, lo, hi, arrays)`` per tile.

    ``arrays`` are numpy views (one per column) over the tile's DMEM
    region — zero-copy, mutations visible to write-back. ``process``
    returns cycles to charge (0 for free). With ``writeback=(addr,
    width)``, the first ``hi-lo`` elements of the first column's
    buffer are streamed back to DDR after processing (read-modify-
    write tiles, the paper's R+W microbenchmark shape).

    Kernel usage::

        yield from stream_columns(ctx, cols, rows, 2048, work)
    """
    if rows <= 0:
        return
    if tile_rows <= 0:
        raise ValueError(f"tile_rows must be positive: {tile_rows}")
    num_tiles = -(-rows // tile_rows)
    dtypes = [ref_dtype(spec) for _addr, spec in columns]
    widths = [dtype.itemsize for dtype in dtypes]
    tile_bytes = [tile_rows * width for width in widths]
    # DMEM layout: [buf0: col0 col1 ...][buf1: col0 col1 ...]
    set_bytes = sum(tile_bytes)
    if dmem_base + 2 * set_bytes > ctx.dmem.size:
        raise ValueError(
            f"streaming needs {2 * set_bytes} B of DMEM at {dmem_base}, "
            f"have {ctx.dmem.size}"
        )
    col_offsets: List[int] = []
    cursor = 0
    for nbytes in tile_bytes:
        col_offsets.append(cursor)
        cursor += nbytes

    def buffer_offset(buf: int, col: int) -> int:
        return dmem_base + buf * set_bytes + col_offsets[col]

    def issue(tile: int, buf: int) -> None:
        lo = tile * tile_rows
        hi = min(rows, lo + tile_rows)
        count = hi - lo
        for col, (addr, _spec) in enumerate(columns):
            width = widths[col]
            ctx.push(
                Descriptor(
                    dtype=DescriptorType.DDR_TO_DMEM,
                    rows=count,
                    col_width=width,
                    ddr_addr=addr + lo * width,
                    dmem_addr=buffer_offset(buf, col),
                    notify_event=(
                        _READ_EVENTS[buf] if col == len(columns) - 1 else None
                    ),
                ),
                channel=0,
            )

    writeback_width = ref_width(writeback[1]) if writeback is not None else 0
    if writeback is not None:
        # Write events start "done" so the first two tiles don't wait.
        ctx.set_event(_WRITE_EVENTS[0])
        ctx.set_event(_WRITE_EVENTS[1])

    issue(0, 0)
    if num_tiles > 1:
        issue(1, 1)
    trace = ctx.dpu.trace
    for tile in range(num_tiles):
        buf = tile % 2
        span = trace.span("stream.tile", unit=ctx._unit, tile=tile)
        yield from ctx.wfe(_READ_EVENTS[buf])
        lo = tile * tile_rows
        hi = min(rows, lo + tile_rows)
        arrays = [
            ctx.dmem.view(
                buffer_offset(buf, col),
                (hi - lo) * widths[col],
                dtypes[col],
            )
            for col in range(len(columns))
        ]
        cycles = process(tile, lo, hi, arrays) + BUFFER_SWAP_CYCLES
        if cycles:
            yield from ctx.compute(cycles)
        if writeback is not None:
            out_addr, out_width = writeback[0], writeback_width
            yield from ctx.wfe(_WRITE_EVENTS[buf])
            ctx.clear_event(_WRITE_EVENTS[buf])
            ctx.push(
                Descriptor(
                    dtype=DescriptorType.DMEM_TO_DDR,
                    rows=hi - lo,
                    col_width=out_width,
                    ddr_addr=out_addr + lo * out_width,
                    dmem_addr=buffer_offset(buf, 0),
                    notify_event=_WRITE_EVENTS[buf],
                ),
                channel=1,
            )
        ctx.clear_event(_READ_EVENTS[buf])
        if tile + 2 < num_tiles:
            issue(tile + 2, buf)
        span.end()
    if writeback is not None:
        # Drain outstanding writes before returning.
        for event in _WRITE_EVENTS:
            yield from ctx.wfe(event)
