"""SQL-text frontend: tokenizer + recursive-descent parser.

Layer 1 of the compile pipeline (see ``docs/SQL.md``): turns SQL text
into the AST of :mod:`repro.apps.sql.ir`. Grammar covers the analytic
subset the lowering supports — single SELECT, comma-FROM or explicit
``JOIN .. ON``, WHERE conjunctions of ranges / IN lists / prefix LIKE
/ OR-of-ranges, GROUP BY plain columns, aggregate select expressions
(sum/count/avg/min/max over arithmetic + CASE), ORDER BY (alias,
position, or expression; ASC/DESC) and LIMIT. ``date 'Y-M-D'``
literals become day codes against the 1992-01-01 epoch at parse time;
``+/- interval 'n' day|month|year`` folds with calendar math.

Anything outside the subset raises :class:`~repro.apps.sql.ir.PlanError`
with the query text and the offending clause — never a mid-parse
assertion.
"""

from __future__ import annotations

import datetime
import os
import re
from typing import Any, List, Optional, Tuple

from .ir import (
    AggCall,
    Arith,
    Case,
    Cmp,
    Col,
    InList,
    Interval,
    Like,
    Lit,
    Logic,
    PlanError,
    RangeTest,
    SelectStmt,
    fold_date_arith,
)

__all__ = ["compile_query", "load_query", "parse_sql", "QUERY_DIR"]

QUERY_DIR = os.path.join(os.path.dirname(__file__), "queries")

_TOKEN_RE = re.compile(
    r"\s+"
    r"|--[^\n]*"
    r"|(?P<num>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<str>'[^']*')"
    r"|(?P<id>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|\(|\)|,|;|\.)"
)

_AGG_FNS = ("sum", "count", "avg", "min", "max")
_KEYWORDS = frozenset(
    "select from where group by order limit join inner on and or not "
    "between in like as asc desc case when then else end date interval "
    "distinct having union".split()
) | frozenset(_AGG_FNS)


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any) -> None:
        self.kind = kind  # num | str | name | kw | op
        self.value = value

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PlanError(f"cannot tokenize at {text[pos:pos + 20]!r}",
                            query=text, clause="lexer")
        pos = match.end()
        if match.lastgroup == "num":
            raw = match.group("num")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("num", value))
        elif match.lastgroup == "str":
            tokens.append(_Token("str", match.group("str")[1:-1]))
        elif match.lastgroup == "id":
            word = match.group("id")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token("kw", lowered))
            else:
                tokens.append(_Token("name", lowered))
        elif match.lastgroup == "op":
            op = match.group("op")
            tokens.append(_Token("op", "<>" if op == "!=" else op))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise PlanError("unexpected end of query", query=self.text,
                            clause="parser")
        self.pos += 1
        return token

    def accept_kw(self, *words: str) -> Optional[str]:
        token = self.peek()
        if token is not None and token.kind == "kw" and token.value in words:
            self.pos += 1
            return token.value
        return None

    def accept_op(self, *ops: str) -> Optional[str]:
        token = self.peek()
        if token is not None and token.kind == "op" and token.value in ops:
            self.pos += 1
            return token.value
        return None

    def expect_kw(self, word: str, clause: str) -> None:
        if not self.accept_kw(word):
            raise PlanError(f"expected {word.upper()!r}, got "
                            f"{self._describe(self.peek())}",
                            query=self.text, clause=clause)

    def expect_op(self, op: str, clause: str) -> None:
        if not self.accept_op(op):
            raise PlanError(f"expected {op!r}, got "
                            f"{self._describe(self.peek())}",
                            query=self.text, clause=clause)

    def expect_name(self, clause: str) -> str:
        token = self.peek()
        if token is None or token.kind != "name":
            raise PlanError(f"expected an identifier, got "
                            f"{self._describe(token)}",
                            query=self.text, clause=clause)
        self.pos += 1
        return token.value

    @staticmethod
    def _describe(token: Optional[_Token]) -> str:
        return "end of query" if token is None else repr(token.value)

    # -- grammar --------------------------------------------------------
    def parse(self) -> SelectStmt:
        self.expect_kw("select", "select")
        if self.accept_kw("distinct"):
            raise PlanError("SELECT DISTINCT is not supported",
                            query=self.text, clause="select")
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())

        self.expect_kw("from", "from")
        tables = [self.expect_name("from")]
        join_ons: List[Any] = []
        while True:
            if self.accept_op(","):
                tables.append(self.expect_name("from"))
                continue
            if self.accept_kw("join") or \
                    (self.accept_kw("inner") and
                     (self.expect_kw("join", "join") or True)):
                tables.append(self.expect_name("join"))
                self.expect_kw("on", "join")
                join_ons.append(self._expr())
                continue
            break

        where = self._expr() if self.accept_kw("where") else None

        group_by: List[Any] = []
        if self.accept_kw("group"):
            self.expect_kw("by", "group by")
            group_by.append(self._expr())
            while self.accept_op(","):
                group_by.append(self._expr())

        if self.accept_kw("having"):
            raise PlanError("HAVING is not supported", query=self.text,
                            clause="having")

        order_by: List[Tuple[Any, bool]] = []
        if self.accept_kw("order"):
            self.expect_kw("by", "order by")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())

        limit: Optional[int] = None
        if self.accept_kw("limit"):
            token = self.next()
            if token.kind != "num" or not isinstance(token.value, int):
                raise PlanError("LIMIT needs an integer literal",
                                query=self.text, clause="limit")
            limit = token.value

        self.accept_op(";")
        if self.accept_kw("union"):
            raise PlanError("UNION is not supported", query=self.text,
                            clause="union")
        trailing = self.peek()
        if trailing is not None:
            raise PlanError(f"unexpected trailing input "
                            f"{self._describe(trailing)}",
                            query=self.text, clause="parser")
        return SelectStmt(items=items, tables=tables, join_ons=join_ons,
                          where=where, group_by=group_by, order_by=order_by,
                          limit=limit, text=self.text)

    def _select_item(self) -> Tuple[Any, Optional[str]]:
        expr = self._expr()
        alias: Optional[str] = None
        if self.accept_kw("as"):
            alias = self.expect_name("select")
        else:
            token = self.peek()
            if token is not None and token.kind == "name":
                self.pos += 1
                alias = token.value
        return expr, alias

    def _order_item(self) -> Tuple[Any, bool]:
        expr = self._expr()
        desc = False
        if self.accept_kw("desc"):
            desc = True
        else:
            self.accept_kw("asc")
        return expr, desc

    def _expr(self) -> Any:
        return self._or_expr()

    def _or_expr(self) -> Any:
        node = self._and_expr()
        args = [node]
        while self.accept_kw("or"):
            args.append(self._and_expr())
        return node if len(args) == 1 else Logic("or", tuple(args))

    def _and_expr(self) -> Any:
        node = self._predicate()
        args = [node]
        while self.accept_kw("and"):
            args.append(self._predicate())
        return node if len(args) == 1 else Logic("and", tuple(args))

    def _predicate(self) -> Any:
        if self.accept_kw("not"):
            raise PlanError("NOT is not supported", query=self.text,
                            clause="where")
        left = self._additive()
        if self.accept_kw("between"):
            lo = self._additive()
            self.expect_kw("and", "between")
            hi = self._additive()
            return RangeTest(left, lo, hi)
        if self.accept_kw("in"):
            self.expect_op("(", "in")
            values = [self._additive()]
            while self.accept_op(","):
                values.append(self._additive())
            self.expect_op(")", "in")
            return InList(left, tuple(values))
        if self.accept_kw("like"):
            token = self.next()
            if token.kind != "str":
                raise PlanError("LIKE needs a string pattern",
                                query=self.text, clause="like")
            return Like(left, token.value)
        op = self.accept_op("=", "<>", "<=", ">=", "<", ">")
        if op is not None:
            return Cmp(op, left, self._additive())
        return left

    def _additive(self) -> Any:
        node = self._multiplicative()
        while True:
            op = self.accept_op("+", "-")
            if op is None:
                return node
            right = self._multiplicative()
            node = fold_date_arith(Arith(op, node, right), self.text)

    def _multiplicative(self) -> Any:
        node = self._unary()
        while True:
            op = self.accept_op("*", "/")
            if op is None:
                return node
            node = Arith(op, node, self._unary())

    def _unary(self) -> Any:
        if self.accept_op("-"):
            operand = self._unary()
            if isinstance(operand, Lit):
                return Lit(-operand.value)
            return Arith("-", Lit(0), operand)
        return self._primary()

    def _primary(self) -> Any:
        token = self.peek()
        if token is None:
            raise PlanError("unexpected end of expression", query=self.text,
                            clause="expression")
        if token.kind == "num":
            self.pos += 1
            return Lit(token.value)
        if token.kind == "str":
            self.pos += 1
            return Lit(token.value)
        if token.kind == "op" and token.value == "(":
            self.pos += 1
            node = self._expr()
            self.expect_op(")", "expression")
            return node
        if token.kind == "kw":
            if token.value == "date":
                self.pos += 1
                return self._date_literal()
            if token.value == "interval":
                self.pos += 1
                return self._interval_literal()
            if token.value == "case":
                self.pos += 1
                return self._case_expr()
            if token.value in _AGG_FNS:
                self.pos += 1
                return self._agg_call(token.value)
            raise PlanError(f"unexpected keyword {token.value!r} in "
                            "expression", query=self.text,
                            clause="expression")
        if token.kind == "name":
            self.pos += 1
            name = token.value
            if self.accept_op("."):
                column = self.expect_name("column reference")
                return Col(column, table=name)
            return Col(name)
        raise PlanError(f"unexpected token {self._describe(token)}",
                        query=self.text, clause="expression")

    def _date_literal(self) -> Lit:
        token = self.next()
        if token.kind != "str":
            raise PlanError("DATE needs a 'Y-M-D' string", query=self.text,
                            clause="date literal")
        try:
            year, month, day = (int(part) for part in token.value.split("-"))
            code = (datetime.date(year, month, day)
                    - datetime.date(1992, 1, 1)).days
        except ValueError:
            raise PlanError(f"bad date literal {token.value!r}",
                            query=self.text, clause="date literal") from None
        return Lit(code)

    def _interval_literal(self) -> Interval:
        token = self.next()
        if token.kind == "str":
            try:
                count = int(token.value)
            except ValueError:
                raise PlanError(f"bad interval count {token.value!r}",
                                query=self.text, clause="interval") from None
        elif token.kind == "num" and isinstance(token.value, int):
            count = token.value
        else:
            raise PlanError("INTERVAL needs an integer count",
                            query=self.text, clause="interval")
        unit_token = self.next()
        unit = str(unit_token.value).rstrip("s")
        if unit not in ("day", "month", "year"):
            raise PlanError(f"unsupported interval unit {unit!r}",
                            query=self.text, clause="interval")
        return Interval(count, unit)

    def _case_expr(self) -> Case:
        whens: List[Tuple[Any, Any]] = []
        while self.accept_kw("when"):
            cond = self._expr()
            self.expect_kw("then", "case")
            whens.append((cond, self._additive()))
        if not whens:
            raise PlanError("CASE needs at least one WHEN", query=self.text,
                            clause="case")
        default: Any = Lit(0)
        if self.accept_kw("else"):
            default = self._additive()
        self.expect_kw("end", "case")
        return Case(tuple(whens), default)

    def _agg_call(self, fn: str) -> AggCall:
        self.expect_op("(", "aggregate")
        if fn == "count" and self.accept_op("*"):
            self.expect_op(")", "aggregate")
            return AggCall("count", None)
        arg = self._expr()
        self.expect_op(")", "aggregate")
        return AggCall(fn, arg)


def parse_sql(text: str) -> SelectStmt:
    """Parse one SELECT statement into a :class:`SelectStmt`."""
    return _Parser(text).parse()


def load_query(name: str) -> str:
    """Read ``queries/<name>.sql`` shipped with the package."""
    path = os.path.join(QUERY_DIR, f"{name}.sql")
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def compile_query(sql: str, catalog, name: str = "query"):
    """SQL text -> executable :class:`~repro.apps.sql.physical.CompiledQuery`.

    Convenience wrapper running all four layers: parse, logical
    compile + rewrites, physical planning, lowering.
    """
    from .ir import compile_logical
    from .physical import lower_plan

    stmt = parse_sql(sql)
    logical = compile_logical(stmt, catalog, name=name)
    return lower_plan(logical, catalog)
