"""Scan-filter and scan-project (paper §5.3, Figure 15).

DPU execution: the DMS streams the predicate's columns into
double-buffered DMEM tiles; the dpCore runs the SETFL/SETFH + FILT
loop (~1.6 cycles/tuple/term, measured on the ISA interpreter) and
packs one result bit per row; packed bit-vector words stream back to
DDR on the second DMS channel. One dpCore sustains ~500 Mtuples/s
compute-bound; 32 cores saturate the DDR channel at ~9.5 GB/s.

``dpu_scan_project`` is the same streaming skeleton but materializes
a computed column instead of a bitvector (e.g. Q5's per-order nation
code), which is how the engine pipelines join lookups without a
separate materialization operator.

Xeon execution: AVX2 compares are cheap enough that the scan is
memory-bandwidth-bound; the roofline uses the measured 34.5 GB/s
effective bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional, Tuple, Union

import numpy as np

from ...baseline.xeon import XeonModel
from ...core.bitvector import pack_bits, unpack_bits
from ...core.dpu import DPU
from ...obs import traced_op
from ...dms.descriptor import Descriptor, DescriptorType
from ...runtime.task import static_partition
from ..streaming import WIDTH_DTYPE, ref_width, stream_columns
from .aggregate import Broadcast, RowFilter, _as_row_filter, _load_broadcasts
from .engine import DpuOpResult, XeonOpResult
from .expr import Predicate
from .table import DpuTable, Table

__all__ = ["dpu_filter", "xeon_filter", "dpu_scan_project"]

_OUT_SLOT_EVENTS = (4, 5)  # write-back flow control for output slots
_OUT_STAGING = (0, 2048)  # two 2 KB staging slots at DMEM offsets 0/2K
_STREAM_BASE = 4096  # streaming buffers start above the staging area


def _streamed_scan(
    dpu: DPU,
    dtable: DpuTable,
    row_filter: RowFilter,
    out_addr: int,
    out_width: int,
    make_output: Callable,
    rows_per_out_unit: int,
    cores: Optional[Iterable[int]],
    tile_rows: int,
    broadcasts: Tuple[Broadcast, ...],
) -> float:
    """Common skeleton: stream columns, compute per-tile output units,
    write them back on channel 1. Returns launch cycles.

    ``make_output(columns) -> ndarray`` produces ``(hi-lo) /
    rows_per_out_unit`` elements of ``out_width`` bytes per tile.
    """
    rows = dtable.num_rows
    core_list = list(cores) if cores is not None else list(dpu.config.core_ids)
    names = list(row_filter.columns)
    refs = dtable.column_refs(names)
    cycles_per_row = row_filter.dpu_cycles_per_row
    bcast_bytes = sum(b.nbytes for b in broadcasts)
    row_bytes = sum(ref_width(spec) for _addr, spec in refs)
    stream_budget = dpu.config.dmem_size - _STREAM_BASE - bcast_bytes
    tile_rows = min(
        tile_rows, max(64, (stream_budget // (2 * row_bytes)) // 64 * 64)
    )
    # A tile's output must fit one staging slot.
    max_out_tile = (_OUT_STAGING[1] // out_width) * rows_per_out_unit
    tile_rows = max(rows_per_out_unit, min(tile_rows, max_out_tile))

    # Cores own disjoint ranges aligned to the output unit so output
    # words never straddle cores.
    num_units = -(-rows // rows_per_out_unit)
    unit_ranges = {
        core: static_partition(num_units, len(core_list), index)
        for index, core in enumerate(core_list)
    }

    def kernel(ctx):
        unit_lo, unit_hi = unit_ranges[ctx.core_id]
        row_lo = unit_lo * rows_per_out_unit
        row_hi = min(rows, unit_hi * rows_per_out_unit)
        if row_lo >= row_hi:
            return 0
        if broadcasts:
            yield from _load_broadcasts(
                ctx, broadcasts, ctx.dmem.size - bcast_bytes
            )
        for event in _OUT_SLOT_EVENTS:
            ctx.set_event(event)
        shifted = [
            (addr + row_lo * ref_width(spec), spec) for addr, spec in refs
        ]
        # Output tiles awaiting DMEM->DDR write-back; deque keeps
        # the drain O(1) per tile.
        staged: deque = deque()
        state = {"unit_cursor": unit_lo}

        def process(tile, lo, hi, arrays):
            columns = dict(zip(names, arrays))
            out = make_output(columns)
            staged.append((tile % 2, out, state["unit_cursor"]))
            state["unit_cursor"] += len(out)
            return (hi - lo) * cycles_per_row

        stream = stream_columns(
            ctx, shifted, row_hi - row_lo, tile_rows, process,
            dmem_base=_STREAM_BASE,
        )
        while True:
            try:
                event = next(stream)
            except StopIteration:
                break
            yield event
            while staged:
                slot, out, unit_at = staged.popleft()
                yield from ctx.wfe(_OUT_SLOT_EVENTS[slot])
                ctx.clear_event(_OUT_SLOT_EVENTS[slot])
                ctx.dmem.write(_OUT_STAGING[slot], out)
                ctx.push(
                    Descriptor(
                        dtype=DescriptorType.DMEM_TO_DDR,
                        rows=len(out),
                        col_width=out_width,
                        ddr_addr=out_addr + unit_at * out_width,
                        dmem_addr=_OUT_STAGING[slot],
                        notify_event=_OUT_SLOT_EVENTS[slot],
                    ),
                    channel=1,
                )
        for event in _OUT_SLOT_EVENTS:
            yield from ctx.wfe(event)
        return row_hi - row_lo

    launch = dpu.launch(kernel, cores=core_list)
    return launch.cycles


@traced_op("sql.filter")
def dpu_filter(
    dpu: DPU,
    dtable: DpuTable,
    predicate: Union[Predicate, RowFilter],
    cores: Optional[Iterable[int]] = None,
    tile_rows: int = 2048,
    broadcasts: Tuple[Broadcast, ...] = (),
) -> DpuOpResult:
    """Run the filter on the DPU; returns the selection mask.

    The returned mask is *read back from the bit-vector the kernel
    actually wrote to simulated DDR* — the data path is functional.
    """
    row_filter = _as_row_filter(predicate)
    rows = dtable.num_rows
    num_words = -(-rows // 64)
    bv_addr = dpu.alloc(max(num_words * 8, 8))

    def make_output(columns):
        return pack_bits(row_filter.mask_fn(columns))

    cycles = _streamed_scan(
        dpu, dtable, row_filter, bv_addr, 8, make_output, 64,
        cores, tile_rows, broadcasts,
    )
    words = dpu.load_array(bv_addr, num_words, np.uint64)
    mask = unpack_bits(words, rows)
    bytes_streamed = dtable.nbytes(list(row_filter.columns)) + num_words * 8
    return DpuOpResult(
        value=mask,
        cycles=cycles,
        config=dpu.config,
        bytes_streamed=bytes_streamed,
        detail={"rows": rows, "selected": int(mask.sum())},
    )


@traced_op("sql.scan_project")
def dpu_scan_project(
    dpu: DPU,
    dtable: DpuTable,
    row_filter: RowFilter,
    project: Callable,
    out_dtype,
    cores: Optional[Iterable[int]] = None,
    tile_rows: int = 2048,
    broadcasts: Tuple[Broadcast, ...] = (),
) -> DpuOpResult:
    """Materialize ``project(columns)`` (one value per row) to DDR.

    ``row_filter`` supplies the streamed columns and the per-row cost;
    ``project`` computes the output element for every row (it can see
    the filter's mask logic through its own closure).
    """
    rows = dtable.num_rows
    out_width = np.dtype(out_dtype).itemsize
    out_addr = dpu.alloc(max(rows * out_width, 8))

    def make_output(columns):
        return np.ascontiguousarray(project(columns), dtype=out_dtype)

    cycles = _streamed_scan(
        dpu, dtable, row_filter, out_addr, out_width, make_output, 1,
        cores, tile_rows, broadcasts,
    )
    values = dpu.load_array(out_addr, rows, out_dtype)
    bytes_streamed = dtable.nbytes(list(row_filter.columns)) + rows * out_width
    return DpuOpResult(
        value=values,
        cycles=cycles,
        config=dpu.config,
        bytes_streamed=bytes_streamed,
        detail={"rows": rows, "out_addr": out_addr},
    )


def xeon_filter(
    model: XeonModel,
    table: Table,
    predicate: Union[Predicate, RowFilter],
) -> XeonOpResult:
    """The AVX2 scan on the roofline baseline."""
    row_filter = _as_row_filter(predicate)
    columns = {name: table.column(name) for name in row_filter.columns}
    mask = row_filter.mask_fn(columns)
    rows = table.num_rows
    nbytes = table.nbytes(list(row_filter.columns)) + rows / 8
    seconds = model.roofline_seconds(
        instructions=rows * row_filter.xeon_ops_per_row,
        nbytes=nbytes,
    )
    return XeonOpResult(
        value=mask,
        seconds=seconds,
        bytes_streamed=int(nbytes),
        detail={"rows": rows, "selected": int(mask.sum())},
    )
