"""Top-k selection (paper §5.3 mentions Top-k among the implemented
partition-based operators).

DPU strategy: each core streams its static share of the value column,
keeping a k-element min-heap in DMEM (scan cost ~2 cycles/row
compare, a heap sift only on the rare replacement), then ships its
candidates to core 0 whose final merge selects the global top k —
the standard two-phase scheme.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ...baseline.xeon import XeonModel
from ...core.dpu import DPU
from ...runtime.task import static_partition
from ...obs import traced_op
from ..streaming import ref_width, stream_columns
from .costs import TOPK_CYCLES_PER_HIT, TOPK_CYCLES_PER_ROW
from .engine import DpuOpResult, XeonOpResult
from .table import DpuTable, Table

__all__ = ["dpu_topk", "xeon_topk"]

_XEON_SCAN_OPS_PER_ROW = 1.0 / 4.0  # SIMD max-threshold prefilter


@traced_op("sql.topk")
def dpu_topk(
    dpu: DPU,
    dtable: DpuTable,
    column: str,
    k: int,
    tile_rows: int = 4096,
) -> DpuOpResult:
    """Global top-k values (descending) with row ids."""
    if k <= 0:
        raise ValueError(f"k must be positive: {k}")
    rows = dtable.num_rows
    ref = dtable.column_ref(column)
    cores = list(dpu.config.core_ids)

    def kernel(ctx):
        lo, hi = static_partition(rows, len(cores), ctx.core_id)
        heap: List[Tuple[float, int]] = []  # (value, row_id) min-heap
        if lo < hi:
            width = ref_width(ref[1])
            safe_tile = max(64, (24 * 1024 // (2 * width)) // 64 * 64)
            shifted = [(ref[0] + lo * width, ref[1])]

            def process(tile, tlo, thi, arrays):
                values = arrays[0]
                base_row = lo + tlo
                hits = 0
                if len(heap) < k:
                    seed = min(k - len(heap), len(values))
                    for offset in range(seed):
                        heapq.heappush(
                            heap, (float(values[offset]), base_row + offset)
                        )
                    hits += seed
                    remaining = values[seed:]
                    remaining_base = base_row + seed
                else:
                    remaining = values
                    remaining_base = base_row
                if len(remaining) and heap:
                    threshold = heap[0][0]
                    over = np.nonzero(remaining > threshold)[0]
                    for offset in over.tolist():
                        value = float(remaining[offset])
                        if value > heap[0][0]:
                            heapq.heapreplace(
                                heap, (value, remaining_base + offset)
                            )
                            hits += 1
                return (thi - tlo) * TOPK_CYCLES_PER_ROW + hits * (
                    TOPK_CYCLES_PER_HIT * np.log2(max(2, k))
                )

            yield from stream_columns(
                ctx, shifted, hi - lo, min(tile_rows, safe_tile), process,
                dmem_base=0,
            )
        if ctx.core_id != cores[0]:
            yield from ctx.mbox_send(cores[0], heap)
            return None
        merged = list(heap)
        for _ in range(len(cores) - 1):
            _src, candidates = yield from ctx.mbox_receive()
            merged.extend(candidates)
            yield from ctx.compute(len(candidates) * TOPK_CYCLES_PER_HIT)
        merged.sort(reverse=True)
        return merged[:k]

    launch = dpu.launch(kernel, cores=cores)
    top = launch.values[0]
    return DpuOpResult(
        value=top,
        cycles=launch.cycles,
        config=dpu.config,
        bytes_streamed=dtable.nbytes([column]),
        detail={"rows": rows, "k": k},
    )


def xeon_topk(
    model: XeonModel, table: Table, column: str, k: int
) -> XeonOpResult:
    """Baseline top-k: SIMD scan + heap, memory-bound."""
    values = table.column(column)
    order = np.argpartition(values, -min(k, len(values)))[-k:]
    ranked = order[np.argsort(values[order])[::-1]]
    top = [(float(values[row]), int(row)) for row in ranked]
    seconds = model.roofline_seconds(
        instructions=len(values) * _XEON_SCAN_OPS_PER_ROW,
        nbytes=values.nbytes,
    )
    return XeonOpResult(value=top, seconds=seconds, bytes_streamed=values.nbytes)
