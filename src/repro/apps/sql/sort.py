"""ORDER BY: range-partitioned sort (paper §5.3, §3.1).

The DMS's *range* partitioning mode exists for exactly this operator
(and its cousins in the comparison-sort literature the paper cites):

1. sample the key column to pick 32 balanced range bounds;
2. hardware range-partition the rows so core *i* receives only keys
   in range *i* — the partitions are already globally ordered
   core-to-core;
3. each core sorts its partition locally in DMEM (spilling to its
   DDR scratch between waves) and writes its run to the output slot
   determined by the per-core counts;
4. concatenation of the runs is the sorted column: no merge needed.

Functional output is checked against ``numpy.sort`` in the tests; the
x86 baseline models a radix sort at memory bandwidth (Polychroniou &
Ross), the comparison the paper's partitioning discussion builds on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ...baseline.xeon import XeonModel
from ...core.dpu import DPU
from ...dms.descriptor import (
    Descriptor,
    DescriptorType,
    PartitionMode,
    PartitionSpec,
)
from ...dms.partition import PartitionLayout
from ...obs import traced_op
from ..streaming import WIDTH_DTYPE, ref_dtype
from .engine import DpuOpResult, XeonOpResult
from .table import DpuTable, Table

__all__ = ["dpu_sort", "xeon_sort"]

# Local sort: an in-DMEM merge sort at ~4 cycles per element per
# level (load/compare/store, dual-issued), the standard scalar rate.
_SORT_CYCLES_PER_ELEMENT_LEVEL = 4.0
_SAMPLE_CYCLES_PER_VALUE = 3.0
_XEON_RADIX_PASSES = 3.0  # LSB radix over 32-bit keys, read+write each


def _sample_bounds(values: np.ndarray, fanout: int, rng_seed: int = 0):
    """Range bounds plus the sample's worst partition share.

    The driver scans a 1K-row sample to program the range engine; the
    observed skew sizes the partition waves (the paper: "if the size
    of a partition is larger than estimated, the execution engine can
    re-partition" — we instead provision waves for the estimate).
    """
    rng = np.random.default_rng(rng_seed)
    sample_size = min(len(values), 1024)
    sample = rng.choice(values, size=sample_size, replace=False)
    quantiles = np.quantile(
        sample.astype(np.float64), np.linspace(1 / fanout, 1.0, fanout)
    )
    bounds = np.unique(quantiles.astype(np.int64))
    # Bounds must be strictly ascending; pad if the sample collapsed.
    while len(bounds) < fanout:
        bounds = np.append(bounds, bounds[-1] + 1 + len(bounds))
    bounds = bounds[:fanout]
    cids = np.minimum(
        np.searchsorted(bounds, sample.astype(np.int64), side="left"),
        fanout - 1,
    )
    max_share = np.bincount(cids, minlength=fanout).max() / sample_size
    return tuple(int(b) for b in bounds), sample_size, float(max_share)


@traced_op("sql.sort")
def dpu_sort(
    dpu: DPU,
    dtable: DpuTable,
    column: str,
    descending: bool = False,
    governor=None,
) -> DpuOpResult:
    """Sort one integer column; returns the sorted array (read back
    from simulated DDR) plus timing.

    With a :class:`~repro.runtime.admission.MemoryGovernor`, the
    per-core spill scratch (32x the column size in the eager plan) is
    acquired as an up-front grant. A denied grant degrades to an
    external sort: the column is split into segments that fit the
    granted budget, each segment is range-partition sorted, and the
    sorted segments are merged at modelled DMS streaming cost — the
    result stays byte-exact, only cycles grow. Without a governor the
    code path (and its timing) is exactly the eager plan.
    """
    ref = dtable.column_ref(column)
    dtype = ref_dtype(ref[1])
    width = dtype.itemsize
    rows = dtable.num_rows
    cores = list(dpu.config.core_ids)
    host_values = dtable.table.column(column)
    if host_values.min() < 0:
        raise ValueError(
            "range partitioning compares keys in their stored (unsigned) "
            "representation; bias negative keys before sorting"
        )

    bounds, sample_size, max_share = _sample_bounds(host_values, len(cores))
    spec = PartitionSpec(mode=PartitionMode.RANGE, bounds=bounds,
                         radix_bits=5)
    buffer_capacity = 20 * 1024
    count_offset = 31 * 1024
    layout = PartitionLayout(
        target_cores=tuple(cores), dmem_base=0, capacity=buffer_capacity,
        count_offset=count_offset,
    )
    out_addr = dpu.alloc(max(rows * width, 8))
    driver = cores[0]
    chunk_rows = min(2040, dpu.config.cmem_bank_bytes // width)
    # Wave sizing against the most loaded core, from the sample's
    # observed skew (2x safety margin for estimation error).
    per_core_rows = buffer_capacity // width
    wave_rows = int(per_core_rows / max(2.0 * max_share, 2.0 / len(cores)))
    wave_chunks = max(1, wave_rows // chunk_rows)

    # Memory grant: the eager plan reserves a full column-size spill
    # per core. Under pressure, shrink to segments that fit the grant.
    spill_need = len(cores) * max(rows * width, 8)
    segments = 1
    granted = 0
    if governor is not None:
        floor = len(cores) * max(chunk_rows * width, 8)
        granted = governor.grant_or_largest(
            spill_need, floor=floor, site="sql.sort.spill"
        )
        segments = max(1, -(-spill_need // granted))

    def run_segment(seg_row0: int, seg_rows: int, spill_addr, seg_descending):
        """Partition-sort rows [seg_row0, seg_row0+seg_rows)."""

        def kernel(ctx):
            is_driver = ctx.core_id == driver
            collected: List[np.ndarray] = []
            spilled = 0
            if is_driver:
                # Sampling pass to program the range engine.
                yield from ctx.compute(sample_size * _SAMPLE_CYCLES_PER_VALUE)
                ctx.push(Descriptor(dtype=DescriptorType.RANGE_CONFIG,
                                    partition=spec, partition_layout=layout))
            chunk_starts = list(range(0, seg_rows, chunk_rows))
            wave_start = 0
            while True:
                wave = chunk_starts[wave_start : wave_start + wave_chunks]
                if is_driver:
                    for start in wave:
                        count = min(chunk_rows, seg_rows - start)
                        ctx.push(Descriptor(
                            dtype=DescriptorType.DDR_TO_DMS, rows=count,
                            col_width=width,
                            ddr_addr=ref[0] + (seg_row0 + start) * width,
                            is_key_column=True,
                        ))
                        ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                            partition=spec))
                        ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMEM,
                                            partition=spec))
                    while not ctx.dmad.idle():
                        yield from ctx.compute(200)
                    for core in cores:
                        if core != driver:
                            yield from ctx.mbox_send(core, ("wave",))
                else:
                    yield from ctx.mbox_receive()
                # Spill this wave's partition rows to DDR scratch.
                count = int(ctx.dmem.view(count_offset, 4, np.uint32)[0])
                if count:
                    raw = ctx.dmem.view(0, count * width, np.uint8).copy()
                    values = raw.view(dtype)
                    collected.append(values.copy())
                    ctx.push(Descriptor(
                        dtype=DescriptorType.DMEM_TO_DDR, rows=count,
                        col_width=width,
                        ddr_addr=spill_addr[ctx.core_id] + spilled * width,
                        dmem_addr=0, notify_event=6,
                    ), channel=1)
                    yield from ctx.wfe(6)
                    ctx.clear_event(6)
                    spilled += count
                done = wave_start + wave_chunks >= len(chunk_starts)
                if is_driver:
                    for _ in range(len(cores) - 1):
                        yield from ctx.mbox_receive()
                    layout.reset()
                    for core in cores:
                        dpu.scratchpads[core].view(
                            count_offset, 4, np.uint32
                        )[0] = 0
                    for core in cores:
                        if core != driver:
                            yield from ctx.mbox_send(core, ("next", done))
                else:
                    yield from ctx.mbox_send(driver, ("ack",))
                    yield from ctx.mbox_receive()
                wave_start += wave_chunks
                if done:
                    break
            # Local sort: stream the spill back through DMEM in runs and
            # merge (charged as n log2 n element-levels + the re-read).
            mine = (np.concatenate(collected) if collected
                    else np.empty(0, dtype=dtype))
            if len(mine):
                levels = max(1, int(np.ceil(np.log2(max(2, len(mine))))))
                yield from ctx.compute(
                    len(mine) * levels * _SORT_CYCLES_PER_ELEMENT_LEVEL
                    + len(mine) * width / 16.0  # spill re-read stream
                )
                mine = np.sort(mine)
                if seg_descending:
                    mine = mine[::-1]
            return mine

        return dpu.launch(kernel, cores=cores)

    if segments == 1:
        # Eager plan: full per-core spill scratch, one partition pass.
        spill_addr = {core: dpu.alloc(max(rows * width, 8)) for core in cores}
        launch = run_segment(0, rows, spill_addr, descending)
        runs = launch.values if not descending else launch.values[::-1]
        # Write the runs to the output region in partition order and
        # charge the final sequential write.
        offset = 0
        total_cycles = launch.cycles
        for run in runs:
            if run is None or len(run) == 0:
                continue
            dpu.ddr.write(out_addr + offset, np.ascontiguousarray(run))
            offset += len(run) * width
        total_cycles += rows * width / 16.0  # output write at line rate
    else:
        # External sort under memory pressure: each segment's spill
        # fits the grant; sorted segments are then merged at DMS
        # streaming cost (one read+write pass per merge level).
        seg_rows_max = -(-rows // segments)
        total_cycles = 0.0
        seg_arrays: List[np.ndarray] = []
        for seg in range(segments):
            seg_row0 = seg * seg_rows_max
            seg_rows = min(seg_rows_max, rows - seg_row0)
            if seg_rows <= 0:
                break
            spill_addr = {
                core: dpu.alloc(max(seg_rows * width, 8)) for core in cores
            }
            launch = run_segment(seg_row0, seg_rows, spill_addr, False)
            total_cycles += launch.cycles
            parts = [run for run in launch.values
                     if run is not None and len(run)]
            seg_arrays.append(
                np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
            )
            for address in spill_addr.values():
                dpu.free(address)
        merged = (np.sort(np.concatenate(seg_arrays)) if seg_arrays
                  else np.empty(0, dtype=dtype))
        if descending:
            merged = merged[::-1]
        merge_passes = max(1, int(np.ceil(np.log2(max(2, segments)))))
        total_cycles += merge_passes * 2 * rows * width / 16.0
        dpu.ddr.write(out_addr, np.ascontiguousarray(merged))
        total_cycles += rows * width / 16.0  # output write at line rate
    if governor is not None and granted:
        governor.release_grant(granted)
    sorted_values = dpu.load_array(out_addr, rows, dtype)
    return DpuOpResult(
        value=sorted_values,
        cycles=total_cycles,
        config=dpu.config,
        bytes_streamed=rows * width * 3,  # partition read + spill + out
        detail={"bounds": len(bounds), "rows": rows,
                "spill_segments": segments},
    )


def xeon_sort(model: XeonModel, table: Table, column: str,
              descending: bool = False) -> XeonOpResult:
    """Radix sort at memory bandwidth (Polychroniou & Ross)."""
    values = np.sort(table.column(column))
    if descending:
        values = values[::-1]
    nbytes = table.column(column).nbytes
    seconds = model.roofline_seconds(
        instructions=len(values) * 4.0 * _XEON_RADIX_PASSES,
        nbytes=nbytes,
        memory_passes=2 * _XEON_RADIX_PASSES,
    )
    return XeonOpResult(value=values, seconds=seconds,
                        bytes_streamed=int(nbytes * 2 * _XEON_RADIX_PASSES))
